//! Workspace-level integration tests: the full pipeline (parse → class
//! table → typecheck → interpret → energy simulation) across crates, plus
//! cross-checks between the experiment harness and the baselines.

use ent_baselines::{check_energy_types, EnergyTypesResult};
use ent_core::{compile, CompileError, TypeErrorKind};
use ent_energy::{Platform, PlatformKind};
use ent_runtime::{run, RtError, RuntimeConfig, Value};
use ent_workloads::{benchmark, e1_program, e2_program, platform_of, run_e1};

/// The paper's Listing 1, written out in full in the reproduction's
/// concrete syntax: the discover–check–crawl loop, three modes, dynamic
/// Agent and Site, configuration rules, mode cases.
const LISTING_1: &str = r#"
modes { energy_saver <= managed; managed <= full_throttle; }

class Rule@mode<R> {
  bool localOnly;
  bool isLocalOnly() { return this.localOnly; }
}

class Resource@mode<E> {
  int weight;
  int process(int depth) {
    Sim.work("net", Math.toDouble(this.weight * depth) * 1000000.0);
    return this.weight * depth;
  }
}

class Site@mode<? <= S> {
  int resources;
  attributor {
    if (this.resources > 200) { return full_throttle; }
    else if (this.resources > 50) { return managed; }
    else { return energy_saver; }
  }
  int crawl(int depth) {
    Sim.work("net", Math.toDouble(this.resources * depth) * 1000000.0);
    return this.resources * depth;
  }
}

class Agent@mode<? <= X> {
  Rule@mode<energy_saver> rule;
  mcase<int> depth = mcase{ energy_saver: 1; managed: 2; full_throttle: 3; };
  attributor {
    if (Ext.battery() >= 0.75) { return full_throttle; }
    else if (this.rule.isLocalOnly()) { return full_throttle; }
    else if (Ext.battery() >= 0.50) { return managed; }
    else { return energy_saver; }
  }
  int work(int resources) {
    let ds = new Site(resources);
    let Site s = snapshot ds [_, X];
    return s.crawl(this.depth <| X);
  }
}

class Main {
  int main() {
    let da = new Agent(new Rule@mode<energy_saver>(false));
    let Agent a = snapshot da [_, _];
    return try { a.work(150) } catch { 0 - 1 };
  }
}
"#;

#[test]
fn listing1_compiles_and_adapts_to_battery() {
    let compiled =
        compile(LISTING_1).unwrap_or_else(|e| panic!("listing 1 failed:\n{}", e.render(LISTING_1)));

    // Full battery: full_throttle agent, managed site, depth 3.
    let r = run(
        &compiled,
        Platform::system_a(),
        RuntimeConfig {
            battery_level: 0.95,
            ..RuntimeConfig::default()
        },
    );
    assert_eq!(r.value.unwrap(), Value::Int(450));

    // Mid battery: managed agent, managed site, depth 2.
    let r = run(
        &compiled,
        Platform::system_a(),
        RuntimeConfig {
            battery_level: 0.6,
            ..RuntimeConfig::default()
        },
    );
    assert_eq!(r.value.unwrap(), Value::Int(300));

    // Low battery: energy_saver agent, managed site → EnergyException,
    // caught, -1.
    let r = run(
        &compiled,
        Platform::system_a(),
        RuntimeConfig {
            battery_level: 0.3,
            ..RuntimeConfig::default()
        },
    );
    assert_eq!(r.value.unwrap(), Value::Int(-1));
    assert_eq!(r.stats.energy_exceptions, 1);
}

#[test]
fn listing1_configuration_dependence() {
    // With the local-only rule set, the agent boots full_throttle even on
    // low battery (intention A1 of §2).
    let src = LISTING_1.replace(
        "new Rule@mode<energy_saver>(false)",
        "new Rule@mode<energy_saver>(true)",
    );
    let compiled = compile(&src).unwrap();
    let r = run(
        &compiled,
        Platform::system_a(),
        RuntimeConfig {
            battery_level: 0.3,
            ..RuntimeConfig::default()
        },
    );
    assert_eq!(r.value.unwrap(), Value::Int(450));
}

#[test]
fn listing1_is_not_expressible_in_energy_types() {
    assert!(matches!(
        check_energy_types(LISTING_1),
        EnergyTypesResult::RequiresEnt(_)
    ));
}

#[test]
fn the_debugging_story_of_section_6_3() {
    // Forgetting the [_, X] bound produces the compile-time waterfall
    // error described in §6.3.
    let src = LISTING_1.replace("snapshot ds [_, X]", "snapshot ds [_, _]");
    match compile(&src) {
        Err(CompileError::Type(errors)) => {
            assert!(errors
                .iter()
                .any(|e| e.kind == TypeErrorKind::WaterfallViolation));
        }
        other => panic!("expected a waterfall violation, got {other:?}"),
    }
}

#[test]
fn harness_and_direct_runtime_agree_on_e1() {
    // The workloads crate's runner and a by-hand run of the generated
    // program must produce identical measurements.
    let spec = benchmark("jspider").unwrap();
    let platform = platform_of(PlatformKind::SystemA);
    let src = e1_program(&spec, &platform, 2);
    let compiled = compile(&src).unwrap();
    let direct = run(
        &compiled,
        platform_of(PlatformKind::SystemA),
        RuntimeConfig {
            battery_level: ent_workloads::battery_for_boot(0),
            seed: 42,
            ..RuntimeConfig::default()
        },
    );
    let via_runner = run_e1(&spec, PlatformKind::SystemA, 0, 2, false, 42);
    assert_eq!(direct.measurement.energy_j, via_runner.energy_j);
    assert!(via_runner.exception);
}

#[test]
fn all_generated_benchmark_programs_are_well_typed_and_runnable() {
    for spec in ent_workloads::all_benchmarks() {
        for system in spec.systems {
            let platform = platform_of(*system);
            for workload in 0..3 {
                let src = e2_program(&spec, &platform, workload);
                let compiled = compile(&src).unwrap_or_else(|e| {
                    panic!("{} on {:?}: {}", spec.name, system, e.render(&src))
                });
                let r = run(
                    &compiled,
                    platform_of(*system),
                    RuntimeConfig {
                        battery_level: 0.78,
                        ..RuntimeConfig::default()
                    },
                );
                assert!(
                    r.value.is_ok(),
                    "{} w{} on {:?}: {:?}",
                    spec.name,
                    workload,
                    system,
                    r.value
                );
            }
        }
    }
}

#[test]
fn exceptions_never_fire_in_e2_programs() {
    // The battery-casing shape adapts through mode cases only.
    for spec in ent_workloads::all_benchmarks() {
        let platform = platform_of(spec.primary_platform());
        let src = e2_program(&spec, &platform, 2);
        let compiled = compile(&src).unwrap();
        for boot in 0..3 {
            let r = run(
                &compiled,
                platform_of(spec.primary_platform()),
                RuntimeConfig {
                    battery_level: ent_workloads::battery_for_boot(boot),
                    ..RuntimeConfig::default()
                },
            );
            assert!(r.value.is_ok());
            assert_eq!(r.stats.energy_exceptions, 0, "{} boot {boot}", spec.name);
        }
    }
}

#[test]
fn uncaught_energy_exception_terminates_the_program() {
    let src = LISTING_1.replace("try { a.work(150) } catch { 0 - 1 }", "a.work(150)");
    let compiled = compile(&src).unwrap();
    let r = run(
        &compiled,
        Platform::system_a(),
        RuntimeConfig {
            battery_level: 0.3,
            ..RuntimeConfig::default()
        },
    );
    assert!(matches!(r.value, Err(RtError::EnergyException(_))));
}
