//! Property tests: pretty-printed expressions re-parse to the same tree
//! (compared via their printed normal form, since spans differ).

use ent_syntax::{parse_expr, print_expr_string, Expr, ExprKind, Ident, Lit};
use proptest::prelude::*;

const MODES: &[&str] = &["energy_saver", "managed", "full_throttle"];

fn leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i64..1000).prop_map(|n| mk(ExprKind::Lit(Lit::Int(n)))),
        any::<bool>().prop_map(|b| mk(ExprKind::Lit(Lit::Bool(b)))),
        "[a-z][a-z0-9_]{0,5}"
            .prop_filter("not a keyword or mode", |s| { !is_reserved(s) })
            .prop_map(|s| mk(ExprKind::Var(Ident::new(s)))),
        Just(mk(ExprKind::This)),
        "[a-z ]{0,8}".prop_map(|s| mk(ExprKind::Lit(Lit::Str(s)))),
    ]
}

fn is_reserved(s: &str) -> bool {
    MODES.contains(&s)
        || matches!(
            s,
            "class"
                | "extends"
                | "modes"
                | "mode"
                | "attributor"
                | "snapshot"
                | "mcase"
                | "new"
                | "let"
                | "if"
                | "else"
                | "return"
                | "try"
                | "catch"
                | "this"
                | "true"
                | "false"
                | "bot"
                | "top"
                | "int"
                | "double"
                | "bool"
                | "string"
                | "unit"
        )
}

fn mk(kind: ExprKind) -> Expr {
    Expr::new(kind, ent_syntax::Span::DUMMY)
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    leaf().prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            // Binary operations
            (inner.clone(), inner.clone(), 0usize..6).prop_map(|(l, r, op)| {
                use ent_syntax::BinOp::*;
                let op = [Add, Sub, Mul, Lt, Eq, And][op];
                mk(ExprKind::Binary {
                    op,
                    lhs: Box::new(l),
                    rhs: Box::new(r),
                })
            }),
            // Field access
            (
                inner.clone(),
                "[a-z][a-z0-9]{0,4}".prop_filter("reserved", |s| !is_reserved(s))
            )
                .prop_map(|(e, f)| mk(ExprKind::Field {
                    recv: Box::new(e),
                    name: Ident::new(f),
                })),
            // Method call
            (
                inner.clone(),
                proptest::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(e, args)| mk(ExprKind::Call {
                    recv: Box::new(e),
                    method: Ident::new("work"),
                    mode_args: vec![],
                    args,
                })),
            // Unary
            inner.clone().prop_map(|e| mk(ExprKind::Unary {
                op: ent_syntax::UnOp::Not,
                expr: Box::new(e),
            })),
            // If
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| {
                mk(ExprKind::If {
                    cond: Box::new(c),
                    then: Box::new(t),
                    els: Some(Box::new(e)),
                })
            }),
            // Array literal
            proptest::collection::vec(inner.clone(), 0..4)
                .prop_map(|items| mk(ExprKind::ArrayLit(items))),
            // Snapshot (unbounded)
            inner.clone().prop_map(|e| mk(ExprKind::Snapshot {
                expr: Box::new(e),
                lo: ent_modes::StaticMode::Bot,
                hi: ent_modes::StaticMode::Top,
            })),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print → parse → print is a fixpoint.
    #[test]
    fn printed_expressions_reparse(e in arb_expr()) {
        let printed = print_expr_string(&e);
        let reparsed = parse_expr(&printed, MODES)
            .unwrap_or_else(|err| panic!("printed `{printed}` failed to parse: {err}"));
        prop_assert_eq!(printed.clone(), print_expr_string(&reparsed));
    }
}
