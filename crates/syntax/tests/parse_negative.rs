//! Negative syntax tests: every malformed construct produces a located
//! diagnostic, never a panic or a silent acceptance.

use ent_syntax::{lex, parse_program};

fn parse_err(src: &str) -> String {
    match parse_program(src) {
        Err(e) => e.render(src),
        Ok(_) => panic!("expected a parse error for: {src}"),
    }
}

#[test]
fn lexer_rejects_bad_numbers_and_chars() {
    assert!(
        lex("999999999999999999999999999").is_err(),
        "integer overflow"
    );
    assert!(lex("a $ b").is_err(), "unknown character");
    assert!(lex("\"unterminated").is_err());
    assert!(lex("\"bad \\q escape\"").is_err());
    assert!(lex("/* no end").is_err());
}

#[test]
fn modes_block_errors() {
    assert!(parse_err("modes { a <= }").contains("expected identifier"));
    assert!(parse_err("modes { a <= b }").contains("expected `;`"));
    // Cyclic order is a semantic error surfaced at parse time.
    assert!(parse_err("modes { a <= b; b <= a; }").contains("cyclic"));
    // Reserved names: `top`/`bot` are keywords, so they cannot even be
    // declared (the lattice-end check in ModeTableBuilder guards the
    // programmatic API).
    assert!(parse_err("modes { top <= a; }").contains("expected identifier"));
}

#[test]
fn class_declaration_errors() {
    assert!(parse_err("class { }").contains("expected identifier"));
    assert!(parse_err("class C").contains("expected `{`"));
    assert!(parse_err("class C@mode<> { }").contains("expected a mode"));
    assert!(parse_err("class C@mode { }").contains("expected `<`"));
    assert!(parse_err("class C extends { }").contains("expected identifier"));
}

#[test]
fn member_errors() {
    assert!(parse_err("class C { int ; }").contains("expected identifier"));
    assert!(
        parse_err("class C { int f( { } }").contains("uppercase")
            || !parse_err("class C { int f( { } }").is_empty()
    );
    assert!(parse_err("class C { @mode<x> int f; }").contains("not allowed on fields"));
}

#[test]
fn expression_errors() {
    let p = |body: &str| parse_err(&format!("class C {{ int f() {{ {body} }} }}"));
    assert!(p("return 1 +;").contains("expected an expression"));
    assert!(p("let = 3;").contains("uppercase") || !p("let = 3;").is_empty());
    assert!(p("return (1;").contains("expected"));
    assert!(p("return snapshot x [a b];").contains("expected `,`"));
    assert!(p("return x <|;").contains("expected a mode"));
}

#[test]
fn mcase_errors() {
    let p = |body: &str| {
        parse_err(&format!(
            "modes {{ low <= high; }} class C {{ int f() {{ {body} }} }}"
        ))
    };
    assert!(p("return mcase{ low: 1 };").contains("expected `;`"));
    assert!(p("return mcase{ nope: 1; };").contains("not a declared mode"));
    assert!(p("return mcase{ low 1; };").contains("expected `:`"));
}

#[test]
fn diagnostics_carry_line_and_column() {
    let src = "modes { low <= high; }\nclass C {\n  int f() { return 1 +; }\n}";
    let rendered = parse_err(src);
    assert!(rendered.starts_with("3:"), "points at line 3: {rendered}");
}

#[test]
fn eof_inside_structures() {
    assert!(!parse_err("class C {").is_empty());
    assert!(!parse_err("class C { int f() {").is_empty());
    assert!(!parse_err("modes {").is_empty());
    assert!(!parse_err("class C { int f() { return mcase{ }").is_empty());
}
