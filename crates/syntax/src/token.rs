//! Tokens produced by the ENT lexer.

use std::fmt;

use crate::Span;

/// A lexed token: a [`TokenKind`] plus its source [`Span`].
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it came from in the source buffer.
    pub span: Span,
}

/// The kinds of tokens in ENT's concrete syntax.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    // Literals and names
    /// An identifier or non-keyword name.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Double(f64),
    /// A string literal (contents, unescaped).
    Str(String),

    // Keywords
    /// `class`
    Class,
    /// `extends`
    Extends,
    /// `modes`
    Modes,
    /// `mode` (only inside `@mode<...>`)
    Mode,
    /// `attributor`
    Attributor,
    /// `snapshot`
    Snapshot,
    /// `mcase`
    MCase,
    /// `new`
    New,
    /// `let`
    Let,
    /// `if`
    If,
    /// `else`
    Else,
    /// `return`
    Return,
    /// `try`
    Try,
    /// `catch`
    Catch,
    /// `this`
    This,
    /// `true`
    True,
    /// `false`
    False,
    /// `bot` — the lattice bottom `⊥` in mode positions.
    Bot,
    /// `top` — the lattice top `⊤` in mode positions.
    Top,

    // Punctuation and operators
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `@`
    At,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `<|` — mode case elimination.
    TriangleLeft,
    /// `_` — an unconstrained snapshot bound / implicit elimination mode.
    Underscore,
    /// `?` — the dynamic mode.
    Question,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(n) => format!("integer `{n}`"),
            TokenKind::Double(x) => format!("double `{x}`"),
            TokenKind::Str(_) => "string literal".to_string(),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{other}`"),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TokenKind::Ident(s) => s.as_str(),
            TokenKind::Int(n) => return write!(f, "{n}"),
            TokenKind::Double(x) => return write!(f, "{x}"),
            TokenKind::Str(s) => return write!(f, "{s:?}"),
            TokenKind::Class => "class",
            TokenKind::Extends => "extends",
            TokenKind::Modes => "modes",
            TokenKind::Mode => "mode",
            TokenKind::Attributor => "attributor",
            TokenKind::Snapshot => "snapshot",
            TokenKind::MCase => "mcase",
            TokenKind::New => "new",
            TokenKind::Let => "let",
            TokenKind::If => "if",
            TokenKind::Else => "else",
            TokenKind::Return => "return",
            TokenKind::Try => "try",
            TokenKind::Catch => "catch",
            TokenKind::This => "this",
            TokenKind::True => "true",
            TokenKind::False => "false",
            TokenKind::Bot => "bot",
            TokenKind::Top => "top",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Comma => ",",
            TokenKind::Semi => ";",
            TokenKind::Colon => ":",
            TokenKind::Dot => ".",
            TokenKind::At => "@",
            TokenKind::Eq => "=",
            TokenKind::EqEq => "==",
            TokenKind::NotEq => "!=",
            TokenKind::Lt => "<",
            TokenKind::Gt => ">",
            TokenKind::Le => "<=",
            TokenKind::Ge => ">=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Bang => "!",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::TriangleLeft => "<|",
            TokenKind::Underscore => "_",
            TokenKind::Question => "?",
            TokenKind::Eof => "<eof>",
        };
        f.write_str(s)
    }
}

/// Resolves a word to its keyword token, or `None` for plain identifiers.
pub(crate) fn keyword(word: &str) -> Option<TokenKind> {
    Some(match word {
        "class" => TokenKind::Class,
        "extends" => TokenKind::Extends,
        "modes" => TokenKind::Modes,
        "mode" => TokenKind::Mode,
        "attributor" => TokenKind::Attributor,
        "snapshot" => TokenKind::Snapshot,
        "mcase" => TokenKind::MCase,
        "new" => TokenKind::New,
        "let" => TokenKind::Let,
        "if" => TokenKind::If,
        "else" => TokenKind::Else,
        "return" => TokenKind::Return,
        "try" => TokenKind::Try,
        "catch" => TokenKind::Catch,
        "this" => TokenKind::This,
        "true" => TokenKind::True,
        "false" => TokenKind::False,
        "bot" => TokenKind::Bot,
        "top" => TokenKind::Top,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(keyword("class"), Some(TokenKind::Class));
        assert_eq!(keyword("snapshot"), Some(TokenKind::Snapshot));
        assert_eq!(keyword("agent"), None);
    }

    #[test]
    fn display_for_operators() {
        assert_eq!(TokenKind::TriangleLeft.to_string(), "<|");
        assert_eq!(TokenKind::Le.to_string(), "<=");
        assert_eq!(TokenKind::Question.to_string(), "?");
    }

    #[test]
    fn describe_wraps_punctuation_in_backticks() {
        assert_eq!(TokenKind::Comma.describe(), "`,`");
        assert_eq!(TokenKind::Ident("x".into()).describe(), "identifier `x`");
    }
}
