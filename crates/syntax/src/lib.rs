//! Syntax of the ENT energy-aware programming language.
//!
//! This crate provides the abstract syntax tree, lexer, parser,
//! pretty-printer, and class table for ENT, the language of
//! "Proactive and Adaptive Energy-Aware Programming with Mixed Typechecking"
//! (Canino & Liu, PLDI 2017).
//!
//! The language is Featherweight Java extended with ENT's energy constructs
//! — `modes { ... }` declarations, `@mode<...>` class and method qualifiers,
//! attributors, `snapshot`, `mcase` and the elimination operator `<|` — plus
//! the practical extensions needed to write the paper's benchmarks
//! (primitives, `let`, `if`, blocks, arrays, `try`/`catch`, builtins).
//!
//! # Grammar sketch
//!
//! ```text
//! program    := modes-block? class*
//! modes-block:= "modes" "{" (name ("<=" name)? ";")* "}"
//! class      := "class" Name mode-annot? ("extends" Name inst?)? "{" member* "}"
//! mode-annot := "@mode<" param ("," param)* ">"
//! param      := "?" | "? <= X" | X | m | lo "<=" X "<=" hi
//! member     := attributor | field | method
//! attributor := "attributor" block
//! field      := type name ("=" expr)? ";"
//! method     := ("@mode<" mode ">")? type name ("<" param,* ">")? "(" (type name),* ")"
//!               ("attributor" block)? block
//! type       := prim | "mcase<" type ">" | Name ("@mode<" ("?"|mode) ("," mode)* ">")? "[]"*
//! expr       := ... | "snapshot" expr ("[" bound "," bound "]")?
//!             | "mcase" ("<" type ">")? "{" (m ":" expr ";")* "}" | expr "<|" (mode | "_")
//! ```
//!
//! # Example
//!
//! ```
//! use ent_syntax::{parse_program, ClassTable};
//!
//! let program = parse_program(
//!     "modes { energy_saver <= managed; managed <= full_throttle; }
//!      class Agent@mode<? <= X> {
//!        attributor {
//!          if (Ext.battery() >= 0.75) { return full_throttle; }
//!          else { return energy_saver; }
//!        }
//!        int work(int n) { return n * 2; }
//!      }",
//! )?;
//! let table = ClassTable::new(&program).expect("valid class structure");
//! assert!(table.class(&"Agent".into()).unwrap().mode_params.dynamic);
//! # Ok::<(), ent_syntax::SyntaxError>(())
//! ```

mod ast;
mod error;
pub mod intern;
mod lex;
mod parse;
mod pretty;
mod span;
mod table;
mod token;

pub use ast::{
    Attributor, BinOp, ClassDecl, ClassName, Expr, ExprKind, FieldDecl, Ident, Lit, MethodDecl,
    PrimType, Program, Stmt, Type, UnOp,
};
pub use error::SyntaxError;
pub use intern::{Interner, Symbol};
pub use lex::lex;
pub use parse::{parse_expr, parse_program};
pub use pretty::{mode_args_string, print_expr_string, print_program};
pub use span::{LineMap, Span};
pub use table::{ClassTable, ResolvedField, ResolvedMethod, TableError};
pub use token::{Token, TokenKind};
