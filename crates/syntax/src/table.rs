//! The class table: inheritance-aware lookup of fields, methods, and
//! attributors (the paper's `fields`, `mtype`, `mbody`, and `abody`).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use ent_modes::{Mode, ModeArgs, StaticMode, Subst};

use crate::ast::*;

/// An error found while assembling the class table.
#[derive(Clone, Debug, PartialEq)]
pub enum TableError {
    /// Two classes share a name.
    DuplicateClass(ClassName),
    /// A class extends an undeclared class.
    UnknownSuperclass(ClassName, ClassName),
    /// The inheritance relation is cyclic through the named class.
    InheritanceCycle(ClassName),
    /// The superclass instantiation has the wrong number of mode arguments.
    SuperArgArity {
        /// The subclass.
        class: ClassName,
        /// Expected count (the superclass's parameter count).
        expected: usize,
        /// Found count.
        found: usize,
    },
    /// The superclass instantiation changes the object's own mode, which
    /// would let an upcast evade the waterfall invariant.
    SuperModeMismatch(ClassName),
    /// A class has two fields (possibly inherited) with the same name.
    DuplicateField(ClassName, Ident),
    /// A class declares two methods with the same name.
    DuplicateMethod(ClassName, Ident),
    /// A class uses the reserved name `Object` or `Main` incorrectly.
    ReservedClass(ClassName),
    /// A dynamic class is missing its attributor, or a non-dynamic class
    /// has one.
    AttributorMismatch(ClassName, &'static str),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::DuplicateClass(c) => write!(f, "class `{c}` is declared twice"),
            TableError::UnknownSuperclass(c, s) => {
                write!(f, "class `{c}` extends unknown class `{s}`")
            }
            TableError::InheritanceCycle(c) => {
                write!(f, "inheritance cycle through class `{c}`")
            }
            TableError::SuperArgArity { class, expected, found } => write!(
                f,
                "class `{class}` instantiates its superclass with {found} mode arguments, expected {expected}"
            ),
            TableError::SuperModeMismatch(c) => write!(
                f,
                "class `{c}` must pass its own mode as the first mode argument of its superclass"
            ),
            TableError::DuplicateField(c, x) => {
                write!(f, "class `{c}` has duplicate field `{x}`")
            }
            TableError::DuplicateMethod(c, x) => {
                write!(f, "class `{c}` declares method `{x}` twice")
            }
            TableError::ReservedClass(c) => {
                write!(f, "class name `{c}` is reserved")
            }
            TableError::AttributorMismatch(c, what) => {
                write!(f, "class `{c}` {what}")
            }
        }
    }
}

impl Error for TableError {}

/// A field resolved through the inheritance chain, with class-level mode
/// parameters substituted.
#[derive(Clone, Debug, PartialEq)]
pub struct ResolvedField {
    /// The class that declared the field.
    pub owner: ClassName,
    /// The field name.
    pub name: Ident,
    /// The field type after substitution.
    pub ty: Type,
    /// Whether the field has an initializer (initialized fields are not
    /// constructor parameters).
    pub has_init: bool,
}

/// A method resolved through the inheritance chain (the paper's `mtype` +
/// `mbody` combined), with class-level mode parameters substituted into the
/// signature.
#[derive(Clone, Debug)]
pub struct ResolvedMethod {
    /// The class that declared the method.
    pub owner: ClassName,
    /// Parameter types after class-level substitution.
    pub params: Vec<Type>,
    /// Parameter names.
    pub param_names: Vec<Ident>,
    /// Return type after class-level substitution.
    pub ret: Type,
    /// Method-level mode override, substituted.
    pub mode: Option<StaticMode>,
    /// Generic method-mode parameters with substituted bounds.
    pub mode_params: Vec<ent_modes::Bounded>,
    /// Whether the method has a method-level attributor.
    pub has_attributor: bool,
    /// The substitution mapping the owner class's mode parameters to the
    /// receiver's mode arguments (used to interpret the body).
    pub subst: Subst,
}

/// The class table for a program: validated inheritance structure plus
/// lookup of members through the chain.
///
/// # Example
///
/// ```
/// use ent_syntax::{parse_program, ClassTable};
///
/// let p = parse_program(
///     "modes { low <= high; }
///      class Rule@mode<R> { int max; }
///      class DepthRule@mode<X> extends Rule@mode<X> { int depth; }",
/// ).unwrap();
/// let table = ClassTable::new(&p)?;
/// assert!(table.is_subclass(&"DepthRule".into(), &"Rule".into()));
/// # Ok::<(), ent_syntax::TableError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ClassTable {
    classes: HashMap<ClassName, ClassDecl>,
    order: Vec<ClassName>,
}

impl ClassTable {
    /// Builds and validates the class table for a program.
    ///
    /// # Errors
    ///
    /// Returns a [`TableError`] for duplicate classes/members, unknown or
    /// cyclic inheritance, bad superclass instantiations, or attributor
    /// mismatches (a dynamic class must have an attributor; a non-dynamic
    /// class must not).
    pub fn new(program: &Program) -> Result<Self, TableError> {
        let mut classes = HashMap::new();
        let mut order = Vec::new();
        for c in &program.classes {
            if c.name == ClassName::object() {
                return Err(TableError::ReservedClass(c.name.clone()));
            }
            if classes.insert(c.name.clone(), c.clone()).is_some() {
                return Err(TableError::DuplicateClass(c.name.clone()));
            }
            order.push(c.name.clone());
        }
        let table = ClassTable { classes, order };
        table.validate()?;
        Ok(table)
    }

    fn validate(&self) -> Result<(), TableError> {
        for name in &self.order {
            let c = &self.classes[name];

            // Superclass existence + acyclicity.
            let mut seen = vec![name.clone()];
            let mut cur = c;
            while cur.superclass != ClassName::object() {
                if seen.contains(&cur.superclass) {
                    return Err(TableError::InheritanceCycle(name.clone()));
                }
                seen.push(cur.superclass.clone());
                cur = self.classes.get(&cur.superclass).ok_or_else(|| {
                    TableError::UnknownSuperclass(cur.name.clone(), cur.superclass.clone())
                })?;
            }

            // Superclass instantiation arity + own-mode preservation.
            if c.superclass != ClassName::object() {
                let sup = &self.classes[&c.superclass];
                if sup.mode_params.dynamic {
                    // Extending a dynamic class is out of scope for the
                    // reproduction (as in the paper's examples).
                    return Err(TableError::SuperModeMismatch(name.clone()));
                }
                let expected = sup.mode_params.bounds.len();
                let found = c.super_args.len();
                // Pinned-only superclasses may be instantiated implicitly.
                let pinned_only =
                    sup.mode_params.bounds.iter().all(|b| b.lo == b.hi) && !sup.mode_params.dynamic;
                if found != expected && !(found == 0 && (expected == 0 || pinned_only)) {
                    return Err(TableError::SuperArgArity {
                        class: name.clone(),
                        expected,
                        found,
                    });
                }
                // Own-mode preservation: the first super arg must be the
                // subclass's own mode.
                if expected > 0 && found > 0 {
                    let own = c.mode_params.bounds.first();
                    let ok = match (&c.super_args[0], own) {
                        (StaticMode::Var(v), Some(b)) => *v == b.var,
                        (pinned, Some(b)) => b.lo == b.hi && *pinned == b.lo,
                        (StaticMode::Bot, None) => true,
                        _ => false,
                    };
                    if !ok {
                        return Err(TableError::SuperModeMismatch(name.clone()));
                    }
                } else if expected > 0 && found == 0 {
                    // Implicit pinned instantiation: subclass must be pinned
                    // to the same mode or neutral extending pinned — accept,
                    // the typechecker compares modes structurally.
                }
            }

            // Member uniqueness (fields also against inherited ones).
            let mut field_names: Vec<Ident> = Vec::new();
            for anc in self.superclass_chain(name) {
                let decl = self.classes.get(&anc).expect("chain is validated");
                for fd in &decl.fields {
                    if field_names.contains(&fd.name) {
                        return Err(TableError::DuplicateField(name.clone(), fd.name.clone()));
                    }
                    field_names.push(fd.name.clone());
                }
            }
            let mut method_names: Vec<Ident> = Vec::new();
            for m in &c.methods {
                if method_names.contains(&m.name) {
                    return Err(TableError::DuplicateMethod(name.clone(), m.name.clone()));
                }
                method_names.push(m.name.clone());
            }

            // Attributor presence must match dynamicness.
            if c.mode_params.dynamic && c.attributor.is_none() {
                return Err(TableError::AttributorMismatch(
                    name.clone(),
                    "is dynamic but has no attributor",
                ));
            }
            if !c.mode_params.dynamic && c.attributor.is_some() {
                return Err(TableError::AttributorMismatch(
                    name.clone(),
                    "has an attributor but is not dynamic",
                ));
            }
        }
        Ok(())
    }

    /// Looks up a class declaration.
    pub fn class(&self, name: &ClassName) -> Option<&ClassDecl> {
        self.classes.get(name)
    }

    /// Class names in declaration order.
    pub fn names(&self) -> &[ClassName] {
        &self.order
    }

    /// The inheritance chain from the root (`Object` excluded) down to and
    /// including `name`.
    pub fn superclass_chain(&self, name: &ClassName) -> Vec<ClassName> {
        let mut chain = Vec::new();
        let mut cur = name.clone();
        while cur != ClassName::object() {
            chain.push(cur.clone());
            match self.classes.get(&cur) {
                Some(c) => cur = c.superclass.clone(),
                None => break,
            }
        }
        chain.reverse();
        chain
    }

    /// Nominal subclassing: is `c` equal to or a subclass of `d`?
    pub fn is_subclass(&self, c: &ClassName, d: &ClassName) -> bool {
        if d == &ClassName::object() {
            return true;
        }
        let mut cur = c.clone();
        loop {
            if &cur == d {
                return true;
            }
            if cur == ClassName::object() {
                return false;
            }
            match self.classes.get(&cur) {
                Some(decl) => cur = decl.superclass.clone(),
                None => return false,
            }
        }
    }

    /// Builds the substitution mapping a class's mode parameters to the
    /// given instantiation `ι`.
    ///
    /// The object's own mode (first element of `ι`) maps to the class's
    /// first bound variable when that mode is static; a dynamic `?` leaves
    /// the internal variable unsubstituted (the internal view).
    pub fn class_subst(&self, class: &ClassName, args: &ModeArgs) -> Subst {
        let Some(decl) = self.classes.get(class) else {
            return Subst::new();
        };
        let params = decl.mode_params.params();
        let mut flat: Vec<StaticMode> = Vec::new();
        if let Mode::Static(m) = &args.mode {
            flat.push(m.clone());
        } else if !params.is_empty() {
            // Dynamic instantiation: keep the internal variable.
            flat.push(StaticMode::Var(params[0].clone()));
        }
        flat.extend(args.rest.iter().cloned());
        Subst::bind(&params, &flat)
    }

    /// The paper's `fields(T)`: every field of `class` and its ancestors,
    /// inherited first, with mode parameters substituted per `args`.
    pub fn fields(&self, class: &ClassName, args: &ModeArgs) -> Vec<ResolvedField> {
        let mut out = Vec::new();
        self.fields_rec(class, &self.class_subst(class, args), &mut out);
        out
    }

    fn fields_rec(&self, class: &ClassName, subst: &Subst, out: &mut Vec<ResolvedField>) {
        let Some(decl) = self.classes.get(class) else {
            return;
        };
        if decl.superclass != ClassName::object() {
            // Compose: super args are in terms of this class's vars.
            let sup = &self.classes[&decl.superclass];
            let sup_params = sup.mode_params.params();
            let sup_args: Vec<StaticMode> = if decl.super_args.is_empty() {
                sup.mode_params
                    .bounds
                    .iter()
                    .map(|b| b.lo.clone())
                    .collect()
            } else {
                decl.super_args.iter().map(|m| m.apply(subst)).collect()
            };
            let sup_subst = Subst::bind(&sup_params, &sup_args);
            self.fields_rec(&decl.superclass, &sup_subst, out);
        }
        for fd in &decl.fields {
            out.push(ResolvedField {
                owner: class.clone(),
                name: fd.name.clone(),
                ty: fd.ty.apply(subst),
                has_init: fd.init.is_some(),
            });
        }
    }

    /// The constructor parameters of a class instantiation: all fields
    /// without initializers, inherited first.
    pub fn ctor_params(&self, class: &ClassName, args: &ModeArgs) -> Vec<ResolvedField> {
        self.fields(class, args)
            .into_iter()
            .filter(|f| !f.has_init)
            .collect()
    }

    /// The paper's `mtype`/`mbody`: resolves a method through the chain,
    /// substituting class-level mode parameters per `args`.
    pub fn method(
        &self,
        class: &ClassName,
        args: &ModeArgs,
        name: &Ident,
    ) -> Option<ResolvedMethod> {
        let mut cur = class.clone();
        let mut subst = self.class_subst(class, args);
        loop {
            let decl = self.classes.get(&cur)?;
            if let Some(m) = decl.method(name) {
                return Some(ResolvedMethod {
                    owner: cur,
                    params: m.params.iter().map(|(t, _)| t.apply(&subst)).collect(),
                    param_names: m.params.iter().map(|(_, x)| x.clone()).collect(),
                    ret: m.ret.apply(&subst),
                    mode: m.mode.as_ref().map(|mo| mo.apply(&subst)),
                    mode_params: m
                        .mode_params
                        .iter()
                        .map(|b| b.apply_bounds(&subst))
                        .collect(),
                    has_attributor: m.attributor.is_some(),
                    subst,
                });
            }
            if decl.superclass == ClassName::object() {
                return None;
            }
            let sup = &self.classes[&decl.superclass];
            let sup_params = sup.mode_params.params();
            let sup_args: Vec<StaticMode> = if decl.super_args.is_empty() {
                sup.mode_params
                    .bounds
                    .iter()
                    .map(|b| b.lo.clone())
                    .collect()
            } else {
                decl.super_args.iter().map(|m| m.apply(&subst)).collect()
            };
            subst = Subst::bind(&sup_params, &sup_args);
            cur = decl.superclass.clone();
        }
    }

    /// The paper's `abody`: the class-level attributor of a class.
    pub fn abody(&self, class: &ClassName) -> Option<&Attributor> {
        self.classes.get(class)?.attributor.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;
    use ent_modes::{ModeName, ModeVar};

    fn table(src: &str) -> ClassTable {
        ClassTable::new(&parse_program(src).unwrap()).unwrap()
    }

    const BASE: &str = "modes { low <= high; }
        class Rule@mode<R> { int max; }
        class DepthRule@mode<X> extends Rule@mode<X> { int depth; }
        class Plain { string tag; }
    ";

    #[test]
    fn chain_and_subclassing() {
        let t = table(BASE);
        assert_eq!(
            t.superclass_chain(&"DepthRule".into()),
            vec![ClassName::new("Rule"), ClassName::new("DepthRule")]
        );
        assert!(t.is_subclass(&"DepthRule".into(), &"Rule".into()));
        assert!(t.is_subclass(&"Rule".into(), &"Rule".into()));
        assert!(!t.is_subclass(&"Rule".into(), &"DepthRule".into()));
        assert!(t.is_subclass(&"Plain".into(), &ClassName::object()));
    }

    #[test]
    fn fields_are_inherited_first_and_substituted() {
        let t = table(BASE);
        let args = ModeArgs::of_static(StaticMode::Const(ModeName::new("high")));
        let fields = t.fields(&"DepthRule".into(), &args);
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].name, Ident::new("max"));
        assert_eq!(fields[0].owner, ClassName::new("Rule"));
        assert_eq!(fields[1].name, Ident::new("depth"));
    }

    #[test]
    fn field_type_substitution_through_chain() {
        let t = table(
            "modes { low <= high; }
             class Box@mode<B> { Box@mode<B> next; }
             class SubBox@mode<S> extends Box@mode<S> { }",
        );
        let args = ModeArgs::of_static(StaticMode::Const(ModeName::new("low")));
        let fields = t.fields(&"SubBox".into(), &args);
        assert_eq!(fields[0].ty.to_string(), "Box@mode<low>");
    }

    #[test]
    fn method_lookup_walks_the_chain() {
        let t = table(
            "modes { low <= high; }
             class A@mode<X> { Site@mode<X> get(int n) { return this.get(n); } }
             class B@mode<Y> extends A@mode<Y> { }
             class Site@mode<S> { }",
        );
        let args = ModeArgs::of_static(StaticMode::Const(ModeName::new("high")));
        let m = t.method(&"B".into(), &args, &Ident::new("get")).unwrap();
        assert_eq!(m.owner, ClassName::new("A"));
        assert_eq!(m.ret.to_string(), "Site@mode<high>");
        assert_eq!(m.params, vec![Type::INT]);
    }

    #[test]
    fn dynamic_instantiation_keeps_internal_view() {
        let t = table(
            "modes { low <= high; }
             class Agent@mode<? <= X> {
               attributor { return low; }
               Site@mode<X> peek() { return this.peek(); }
             }
             class Site@mode<S> { }",
        );
        let m = t
            .method(
                &"Agent".into(),
                &ModeArgs::of_dynamic(),
                &Ident::new("peek"),
            )
            .unwrap();
        assert_eq!(m.ret.to_string(), "Site@mode<X>");
        assert_eq!(
            m.subst.get(&ModeVar::new("X")),
            Some(&StaticMode::Var(ModeVar::new("X")))
        );
    }

    #[test]
    fn duplicate_class_is_rejected() {
        let err = ClassTable::new(&parse_program("class A { } class A { }").unwrap()).unwrap_err();
        assert!(matches!(err, TableError::DuplicateClass(_)));
    }

    #[test]
    fn unknown_superclass_is_rejected() {
        let err = ClassTable::new(&parse_program("class A extends B { }").unwrap()).unwrap_err();
        assert!(matches!(err, TableError::UnknownSuperclass(_, _)));
    }

    #[test]
    fn inheritance_cycle_is_rejected() {
        let err =
            ClassTable::new(&parse_program("class A extends B { } class B extends A { }").unwrap())
                .unwrap_err();
        assert!(matches!(err, TableError::InheritanceCycle(_)));
    }

    #[test]
    fn superclass_mode_mismatch_is_rejected() {
        // DepthRule passes a constant instead of its own mode var.
        let err = ClassTable::new(
            &parse_program(
                "modes { low <= high; }
                 class Rule@mode<R> { }
                 class DepthRule@mode<X> extends Rule@mode<high> { }",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, TableError::SuperModeMismatch(_)));
    }

    #[test]
    fn extending_dynamic_class_is_rejected() {
        let err = ClassTable::new(
            &parse_program(
                "modes { low <= high; }
                 class D@mode<?> { attributor { return low; } }
                 class E extends D { }",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, TableError::SuperModeMismatch(_)));
    }

    #[test]
    fn dynamic_class_requires_attributor() {
        let err =
            ClassTable::new(&parse_program("modes { low <= high; } class D@mode<?> { }").unwrap())
                .unwrap_err();
        assert!(matches!(err, TableError::AttributorMismatch(_, _)));
    }

    #[test]
    fn static_class_must_not_have_attributor() {
        let err = ClassTable::new(
            &parse_program(
                "modes { low <= high; }
                 class S@mode<X> { attributor { return low; } }",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, TableError::AttributorMismatch(_, _)));
    }

    #[test]
    fn inherited_field_shadowing_is_rejected() {
        let err = ClassTable::new(
            &parse_program(
                "class A { int x; }
                 class B extends A { int x; }",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, TableError::DuplicateField(_, _)));
    }

    #[test]
    fn ctor_params_skip_initialized_fields() {
        let t = table(
            "modes { low <= high; }
             class C { int a; int b = 3; string c; }",
        );
        let params = t.ctor_params(&"C".into(), &ModeArgs::of_static(StaticMode::Bot));
        let names: Vec<_> = params.iter().map(|f| f.name.as_str().to_string()).collect();
        assert_eq!(names, ["a", "c"]);
    }

    #[test]
    fn reserved_object_class_is_rejected() {
        let err = ClassTable::new(&parse_program("class Object { }").unwrap()).unwrap_err();
        assert!(matches!(err, TableError::ReservedClass(_)));
    }

    #[test]
    fn super_arg_arity_is_checked() {
        let err = ClassTable::new(
            &parse_program(
                "modes { low <= high; }
                 class R@mode<A, B> { }
                 class S@mode<X> extends R@mode<X> { }",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, TableError::SuperArgArity { .. }));
    }
}
