//! Byte-offset source spans and line/column rendering.

use std::fmt;

/// A half-open byte range `[lo, hi)` into a source buffer.
///
/// # Example
///
/// ```
/// use ent_syntax::Span;
///
/// let s = Span::new(3, 7);
/// assert_eq!(s.len(), 4);
/// assert!(s.join(Span::new(10, 12)) == Span::new(3, 12));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Span {
    /// Start byte offset (inclusive).
    pub lo: u32,
    /// End byte offset (exclusive).
    pub hi: u32,
}

impl Span {
    /// Creates a span covering bytes `lo..hi`.
    pub fn new(lo: u32, hi: u32) -> Self {
        debug_assert!(lo <= hi, "span must not be inverted");
        Span { lo, hi }
    }

    /// A zero-width span at offset 0, used for synthesized nodes.
    pub const DUMMY: Span = Span { lo: 0, hi: 0 };

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        (self.hi - self.lo) as usize
    }

    /// Returns `true` for zero-width spans.
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// The smallest span covering both `self` and `other`.
    pub fn join(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.lo, self.hi)
    }
}

/// Maps byte offsets back to 1-based line/column pairs for diagnostics.
///
/// # Example
///
/// ```
/// use ent_syntax::{LineMap, Span};
///
/// let map = LineMap::new("ab\ncd");
/// assert_eq!(map.line_col(3), (2, 1)); // 'c' starts line 2
/// ```
#[derive(Clone, Debug)]
pub struct LineMap {
    /// Byte offset at which each line starts.
    line_starts: Vec<u32>,
}

impl LineMap {
    /// Builds a line map for the given source text.
    pub fn new(src: &str) -> Self {
        let mut line_starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        LineMap { line_starts }
    }

    /// Returns the 1-based `(line, column)` of a byte offset.
    pub fn line_col(&self, offset: u32) -> (u32, u32) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line as u32 + 1, offset - self.line_starts[line] + 1)
    }

    /// Renders a span as `line:col` of its start.
    pub fn describe(&self, span: Span) -> String {
        let (l, c) = self.line_col(span.lo);
        format!("{l}:{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_covers_both_spans() {
        assert_eq!(Span::new(2, 4).join(Span::new(8, 9)), Span::new(2, 9));
        assert_eq!(Span::new(8, 9).join(Span::new(2, 4)), Span::new(2, 9));
    }

    #[test]
    fn dummy_is_empty() {
        assert!(Span::DUMMY.is_empty());
        assert_eq!(Span::new(3, 5).len(), 2);
    }

    #[test]
    fn line_map_first_line() {
        let m = LineMap::new("hello");
        assert_eq!(m.line_col(0), (1, 1));
        assert_eq!(m.line_col(4), (1, 5));
    }

    #[test]
    fn line_map_multiline() {
        let m = LineMap::new("a\nbb\nccc\n");
        assert_eq!(m.line_col(0), (1, 1));
        assert_eq!(m.line_col(2), (2, 1));
        assert_eq!(m.line_col(3), (2, 2));
        assert_eq!(m.line_col(5), (3, 1));
        assert_eq!(m.line_col(9), (4, 1));
    }

    #[test]
    fn describe_renders_line_col() {
        let m = LineMap::new("x\ny");
        assert_eq!(m.describe(Span::new(2, 3)), "2:1");
    }
}
