//! Recursive-descent parser for ENT's concrete syntax.
//!
//! The surface language is the Java-like notation of the paper's listings:
//! a leading `modes { ... }` block, class declarations with `@mode<...>`
//! qualifiers, attributors, `snapshot e [lo, hi]`, `mcase` literals, and the
//! elimination operator `<|`. See the crate docs for a grammar sketch.

use std::collections::HashSet;

use ent_modes::{
    Bounded, ClassModeParams, Mode, ModeArgs, ModeName, ModeTable, ModeVar, StaticMode,
};

use crate::ast::*;
use crate::error::SyntaxError;
use crate::lex::lex;
use crate::token::{Token, TokenKind};
use crate::Span;

/// Parses a complete ENT program.
///
/// # Errors
///
/// Returns the first lexing or parsing error encountered, or a mode-table
/// validation error (cyclic or non-lattice `modes` block) re-wrapped as a
/// [`SyntaxError`].
///
/// # Example
///
/// ```
/// use ent_syntax::parse_program;
///
/// let program = parse_program(
///     "modes { low <= high; }
///      class Main { unit main() { return {}; } }",
/// )?;
/// assert_eq!(program.classes.len(), 1);
/// # Ok::<(), ent_syntax::SyntaxError>(())
/// ```
pub fn parse_program(src: &str) -> Result<Program, SyntaxError> {
    let tokens = lex(src)?;
    Parser::new(tokens).program()
}

/// Parses a single expression (useful in tests and the REPL-style examples).
///
/// Mode-name resolution uses the given mode names as constants.
///
/// # Errors
///
/// Returns the first lexing or parsing error encountered.
pub fn parse_expr(src: &str, mode_names: &[&str]) -> Result<Expr, SyntaxError> {
    let tokens = lex(src)?;
    let mut parser = Parser::new(tokens);
    parser.mode_names = mode_names.iter().map(|s| s.to_string()).collect();
    let expr = parser.expr()?;
    parser.expect(TokenKind::Eof)?;
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    mode_names: HashSet<String>,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            mode_names: HashSet::new(),
        }
    }

    // ---- token plumbing -------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if *self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, SyntaxError> {
        if *self.peek() == kind {
            Ok(self.bump())
        } else {
            Err(SyntaxError::new(
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek().describe()
                ),
                self.span(),
            ))
        }
    }

    fn ident(&mut self) -> Result<(String, Span), SyntaxError> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok((name, span))
            }
            other => Err(SyntaxError::new(
                format!("expected identifier, found {}", other.describe()),
                span,
            )),
        }
    }

    // ---- program structure ----------------------------------------------

    fn program(&mut self) -> Result<Program, SyntaxError> {
        let mode_table = if *self.peek() == TokenKind::Modes {
            self.modes_block()?
        } else {
            // Programs that never mention modes still need a lattice; give
            // them a single implicit mode.
            ModeTable::linear(["default"]).expect("singleton lattice is valid")
        };
        self.mode_names = mode_table
            .modes()
            .iter()
            .map(|m| m.as_str().to_string())
            .collect();

        let mut classes = Vec::new();
        while *self.peek() != TokenKind::Eof {
            classes.push(self.class_decl()?);
        }
        Ok(Program {
            mode_table,
            classes,
        })
    }

    fn modes_block(&mut self) -> Result<ModeTable, SyntaxError> {
        let start = self.span();
        self.expect(TokenKind::Modes)?;
        self.expect(TokenKind::LBrace)?;
        let mut builder = ModeTable::builder();
        while *self.peek() != TokenKind::RBrace {
            let (lo, _) = self.ident()?;
            if self.eat(TokenKind::Le) {
                let (hi, _) = self.ident()?;
                builder = builder.le(ModeName::new(lo), ModeName::new(hi));
            } else {
                builder = builder.mode(ModeName::new(lo));
            }
            self.expect(TokenKind::Semi)?;
        }
        self.expect(TokenKind::RBrace)?;
        builder
            .build()
            .map_err(|e| SyntaxError::new(e.to_string(), start.join(self.prev_span())))
    }

    fn class_decl(&mut self) -> Result<ClassDecl, SyntaxError> {
        let start = self.span();
        self.expect(TokenKind::Class)?;
        let (name, _) = self.ident()?;
        let mode_params = if *self.peek() == TokenKind::At {
            self.class_mode_params(&name)?
        } else {
            ClassModeParams::neutral()
        };

        let (superclass, super_args) = if self.eat(TokenKind::Extends) {
            let (sup, _) = self.ident()?;
            let args = if *self.peek() == TokenKind::At {
                self.at_mode_open()?;
                let mut args = vec![self.static_mode()?];
                while self.eat(TokenKind::Comma) {
                    args.push(self.static_mode()?);
                }
                self.expect(TokenKind::Gt)?;
                args
            } else {
                Vec::new()
            };
            (ClassName::new(sup), args)
        } else {
            (ClassName::object(), Vec::new())
        };

        self.expect(TokenKind::LBrace)?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        let mut attributor = None;
        while *self.peek() != TokenKind::RBrace {
            if *self.peek() == TokenKind::Attributor {
                let a = self.attributor()?;
                if attributor.replace(a).is_some() {
                    return Err(SyntaxError::new(
                        "class has more than one attributor",
                        self.prev_span(),
                    ));
                }
            } else {
                self.member(&mut fields, &mut methods)?;
            }
        }
        self.expect(TokenKind::RBrace)?;

        Ok(ClassDecl {
            name: ClassName::new(name),
            mode_params,
            superclass,
            super_args,
            fields,
            methods,
            attributor,
            span: start.join(self.prev_span()),
        })
    }

    /// Parses `@mode<...>` after a class name into a `ClassModeParams`.
    fn class_mode_params(&mut self, class: &str) -> Result<ClassModeParams, SyntaxError> {
        self.at_mode_open()?;
        let mut dynamic = false;
        let mut bounds: Vec<Bounded> = Vec::new();

        // First parameter: may be `?`, `? <= X`, a constant, a var, or a
        // bounded var.
        if self.eat(TokenKind::Question) {
            dynamic = true;
            if self.eat(TokenKind::Le) {
                let (var, _) = self.ident()?;
                let hi = if self.eat(TokenKind::Le) {
                    self.static_mode()?
                } else {
                    StaticMode::Top
                };
                bounds.push(Bounded::new(StaticMode::Bot, ModeVar::new(var), hi));
            } else {
                bounds.push(Bounded::unconstrained(ModeVar::new(format!(
                    "Self_{class}"
                ))));
            }
        } else {
            bounds.push(self.bounded_param(class)?);
        }
        while self.eat(TokenKind::Comma) {
            bounds.push(self.bounded_param(class)?);
        }
        self.expect(TokenKind::Gt)?;
        Ok(if dynamic {
            ClassModeParams::dynamic(bounds)
        } else {
            ClassModeParams::with_bounds(bounds)
        })
    }

    /// One static mode parameter: `X`, `m` (pinned), or `lo <= X <= hi`.
    fn bounded_param(&mut self, class: &str) -> Result<Bounded, SyntaxError> {
        let first = self.static_mode()?;
        if self.eat(TokenKind::Le) {
            let (var, span) = self.ident()?;
            if self.mode_names.contains(&var) {
                return Err(SyntaxError::new(
                    format!("`{var}` is a mode constant, not a parameter name"),
                    span,
                ));
            }
            self.expect(TokenKind::Le)?;
            let hi = self.static_mode()?;
            Ok(Bounded::new(first, ModeVar::new(var), hi))
        } else {
            match first {
                StaticMode::Var(v) => Ok(Bounded::unconstrained(v)),
                pinned => {
                    // A pinned mode: objects of the class always have this
                    // mode. Modeled as `m ≤ Self ≤ m`.
                    Ok(Bounded::new(
                        pinned.clone(),
                        ModeVar::new(format!("Self_{class}")),
                        pinned,
                    ))
                }
            }
        }
    }

    /// Consumes the tokens `@ mode <`.
    fn at_mode_open(&mut self) -> Result<(), SyntaxError> {
        self.expect(TokenKind::At)?;
        self.expect(TokenKind::Mode)?;
        self.expect(TokenKind::Lt)?;
        Ok(())
    }

    /// A static mode: `bot`, `top`, a declared constant, or a variable.
    fn static_mode(&mut self) -> Result<StaticMode, SyntaxError> {
        match self.peek().clone() {
            TokenKind::Bot => {
                self.bump();
                Ok(StaticMode::Bot)
            }
            TokenKind::Top => {
                self.bump();
                Ok(StaticMode::Top)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.mode_names.contains(&name) {
                    Ok(StaticMode::Const(ModeName::new(name)))
                } else {
                    Ok(StaticMode::Var(ModeVar::new(name)))
                }
            }
            other => Err(SyntaxError::new(
                format!("expected a mode, found {}", other.describe()),
                self.span(),
            )),
        }
    }

    fn attributor(&mut self) -> Result<Attributor, SyntaxError> {
        let start = self.span();
        self.expect(TokenKind::Attributor)?;
        let body = self.block()?;
        Ok(Attributor {
            body,
            span: start.join(self.prev_span()),
        })
    }

    /// A field or method member.
    fn member(
        &mut self,
        fields: &mut Vec<FieldDecl>,
        methods: &mut Vec<MethodDecl>,
    ) -> Result<(), SyntaxError> {
        let start = self.span();

        // Optional method-level mode override `@mode<η>`.
        let method_mode = if *self.peek() == TokenKind::At {
            self.at_mode_open()?;
            let m = self.static_mode()?;
            self.expect(TokenKind::Gt)?;
            Some(m)
        } else {
            None
        };

        let ty = self.ty()?;
        let (name, _) = self.ident()?;

        // Generic method-mode parameters `<X, lo <= Y <= hi>`.
        let mut mode_params = Vec::new();
        if *self.peek() == TokenKind::Lt {
            self.bump();
            loop {
                mode_params.push(self.bounded_param(&name)?);
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::Gt)?;
        }

        if *self.peek() == TokenKind::LParen {
            // Method.
            self.bump();
            let mut params = Vec::new();
            if *self.peek() != TokenKind::RParen {
                loop {
                    let pty = self.ty()?;
                    let (pname, _) = self.ident()?;
                    params.push((pty, Ident::new(pname)));
                    if !self.eat(TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(TokenKind::RParen)?;
            let attributor = if *self.peek() == TokenKind::Attributor {
                Some(self.attributor()?)
            } else {
                None
            };
            let body = self.block()?;
            methods.push(MethodDecl {
                mode: method_mode,
                mode_params,
                ret: ty,
                name: Ident::new(name),
                params,
                attributor,
                body,
                span: start.join(self.prev_span()),
            });
        } else {
            // Field.
            if method_mode.is_some() || !mode_params.is_empty() {
                return Err(SyntaxError::new(
                    "mode annotations are not allowed on fields",
                    start,
                ));
            }
            let init = if self.eat(TokenKind::Eq) {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect(TokenKind::Semi)?;
            fields.push(FieldDecl {
                ty,
                name: Ident::new(name),
                init,
                span: start.join(self.prev_span()),
            });
        }
        Ok(())
    }

    // ---- types ------------------------------------------------------------

    fn ty(&mut self) -> Result<Type, SyntaxError> {
        let mut base = self.base_ty()?;
        while *self.peek() == TokenKind::LBracket && *self.peek2() == TokenKind::RBracket {
            self.bump();
            self.bump();
            base = Type::Array(Box::new(base));
        }
        Ok(base)
    }

    fn base_ty(&mut self) -> Result<Type, SyntaxError> {
        if *self.peek() == TokenKind::MCase {
            self.bump();
            self.expect(TokenKind::Lt)?;
            let inner = self.ty()?;
            self.expect(TokenKind::Gt)?;
            return Ok(Type::MCase(Box::new(inner)));
        }
        let (name, span) = self.ident()?;
        match name.as_str() {
            "int" => return Ok(Type::INT),
            "double" => return Ok(Type::DOUBLE),
            "bool" => return Ok(Type::BOOL),
            "string" => return Ok(Type::STR),
            "unit" => return Ok(Type::UNIT),
            _ => {}
        }
        if !name.chars().next().is_some_and(char::is_uppercase) {
            return Err(SyntaxError::new(
                format!("class names must start uppercase: `{name}`"),
                span,
            ));
        }
        let args = if *self.peek() == TokenKind::At {
            self.at_mode_open()?;
            let mode = if self.eat(TokenKind::Question) {
                Mode::Dynamic
            } else {
                Mode::Static(self.static_mode()?)
            };
            let mut rest = Vec::new();
            while self.eat(TokenKind::Comma) {
                rest.push(self.static_mode()?);
            }
            self.expect(TokenKind::Gt)?;
            ModeArgs::new(mode, rest)
        } else {
            // Mode-neutral reference: the typechecker validates that the
            // class is actually neutral (or pins the mode itself).
            ModeArgs::of_static(StaticMode::Bot)
        };
        Ok(Type::Object {
            class: ClassName::new(name),
            args,
        })
    }

    // ---- statements and blocks ---------------------------------------------

    fn block(&mut self) -> Result<Expr, SyntaxError> {
        let start = self.span();
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != TokenKind::RBrace {
            stmts.push(self.stmt()?);
        }
        self.expect(TokenKind::RBrace)?;
        Ok(Expr::new(
            ExprKind::Block(stmts),
            start.join(self.prev_span()),
        ))
    }

    fn stmt(&mut self) -> Result<Stmt, SyntaxError> {
        match self.peek().clone() {
            TokenKind::Let => {
                self.bump();
                // `let x = e;` or `let T x = e;`
                let (ty, name) = if matches!(self.peek(), TokenKind::Ident(_))
                    && *self.peek2() == TokenKind::Eq
                {
                    let (name, _) = self.ident()?;
                    (None, name)
                } else {
                    let ty = self.ty()?;
                    let (name, _) = self.ident()?;
                    (Some(ty), name)
                };
                self.expect(TokenKind::Eq)?;
                let value = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Let {
                    ty,
                    name: Ident::new(name),
                    value,
                })
            }
            TokenKind::Return => {
                self.bump();
                let value = if *self.peek() == TokenKind::Semi {
                    Expr::new(ExprKind::Lit(Lit::Unit), self.span())
                } else {
                    self.expr()?
                };
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Return(value))
            }
            TokenKind::If | TokenKind::Try => {
                // Statement-style `if`/`try` do not require a trailing `;`.
                let e = self.expr()?;
                self.eat(TokenKind::Semi);
                Ok(Stmt::Expr(e))
            }
            _ => {
                let e = self.expr()?;
                self.eat(TokenKind::Semi);
                Ok(Stmt::Expr(e))
            }
        }
    }

    // ---- expressions ---------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, SyntaxError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SyntaxError> {
        let mut lhs = self.and_expr()?;
        while self.eat(TokenKind::OrOr) {
            let rhs = self.and_expr()?;
            let span = lhs.span.join(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op: BinOp::Or,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, SyntaxError> {
        let mut lhs = self.eq_expr()?;
        while self.eat(TokenKind::AndAnd) {
            let rhs = self.eq_expr()?;
            let span = lhs.span.join(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op: BinOp::And,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn eq_expr(&mut self) -> Result<Expr, SyntaxError> {
        let mut lhs = self.rel_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::NotEq => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.rel_expr()?;
            let span = lhs.span.join(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn rel_expr(&mut self) -> Result<Expr, SyntaxError> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.add_expr()?;
            let span = lhs.span.join(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, SyntaxError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            let span = lhs.span.join(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, SyntaxError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            let span = lhs.span.join(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, SyntaxError> {
        let start = self.span();
        if self.eat(TokenKind::Bang) {
            let e = self.unary_expr()?;
            let span = start.join(e.span);
            return Ok(Expr::new(
                ExprKind::Unary {
                    op: UnOp::Not,
                    expr: Box::new(e),
                },
                span,
            ));
        }
        if self.eat(TokenKind::Minus) {
            let e = self.unary_expr()?;
            let span = start.join(e.span);
            return Ok(Expr::new(
                ExprKind::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(e),
                },
                span,
            ));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, SyntaxError> {
        let mut e = self.primary_expr()?;
        loop {
            if self.eat(TokenKind::Dot) {
                let (name, nspan) = self.ident()?;
                // Method-mode instantiation `.md@mode<η, ...>(args)`.
                let mode_args = if *self.peek() == TokenKind::At {
                    self.at_mode_open()?;
                    let mut args = vec![self.static_mode()?];
                    while self.eat(TokenKind::Comma) {
                        args.push(self.static_mode()?);
                    }
                    self.expect(TokenKind::Gt)?;
                    args
                } else {
                    Vec::new()
                };
                if *self.peek() == TokenKind::LParen {
                    let args = self.call_args()?;
                    let span = e.span.join(self.prev_span());
                    // Calls on a builtin namespace identifier become
                    // Builtin expressions.
                    if let ExprKind::Var(ns) = &e.kind {
                        if is_builtin_ns(ns.as_str()) {
                            e = Expr::new(
                                ExprKind::Builtin {
                                    ns: ns.clone(),
                                    name: Ident::new(name),
                                    args,
                                },
                                span,
                            );
                            continue;
                        }
                    }
                    e = Expr::new(
                        ExprKind::Call {
                            recv: Box::new(e),
                            method: Ident::new(name),
                            mode_args,
                            args,
                        },
                        span,
                    );
                } else {
                    if !mode_args.is_empty() {
                        return Err(SyntaxError::new("mode arguments require a call", nspan));
                    }
                    let span = e.span.join(nspan);
                    e = Expr::new(
                        ExprKind::Field {
                            recv: Box::new(e),
                            name: Ident::new(name),
                        },
                        span,
                    );
                }
            } else if self.eat(TokenKind::TriangleLeft) {
                let mode = if self.eat(TokenKind::Underscore) {
                    None
                } else {
                    Some(self.static_mode()?)
                };
                let span = e.span.join(self.prev_span());
                e = Expr::new(
                    ExprKind::Elim {
                        expr: Box::new(e),
                        mode,
                    },
                    span,
                );
            } else {
                return Ok(e);
            }
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, SyntaxError> {
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                args.push(self.expr()?);
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(args)
    }

    fn primary_expr(&mut self) -> Result<Expr, SyntaxError> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::new(ExprKind::Lit(Lit::Int(n)), start))
            }
            TokenKind::Double(x) => {
                self.bump();
                Ok(Expr::new(ExprKind::Lit(Lit::Double(x)), start))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::new(ExprKind::Lit(Lit::Str(s)), start))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::new(ExprKind::Lit(Lit::Bool(true)), start))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::new(ExprKind::Lit(Lit::Bool(false)), start))
            }
            TokenKind::This => {
                self.bump();
                Ok(Expr::new(ExprKind::This, start))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.mode_names.contains(&name) {
                    Ok(Expr::new(ExprKind::ModeConst(ModeName::new(name)), start))
                } else {
                    Ok(Expr::new(ExprKind::Var(Ident::new(name)), start))
                }
            }
            TokenKind::New => self.new_expr(),
            TokenKind::Snapshot => self.snapshot_expr(),
            TokenKind::MCase => self.mcase_expr(),
            TokenKind::If => self.if_expr(),
            TokenKind::Try => self.try_expr(),
            TokenKind::LBrace => self.block(),
            TokenKind::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if *self.peek() != TokenKind::RBracket {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(TokenKind::RBracket)?;
                Ok(Expr::new(
                    ExprKind::ArrayLit(items),
                    start.join(self.prev_span()),
                ))
            }
            TokenKind::LParen => self.paren_or_cast(),
            other => Err(SyntaxError::new(
                format!("expected an expression, found {}", other.describe()),
                start,
            )),
        }
    }

    fn new_expr(&mut self) -> Result<Expr, SyntaxError> {
        let start = self.span();
        self.expect(TokenKind::New)?;
        let (class, _) = self.ident()?;
        let args = if *self.peek() == TokenKind::At {
            self.at_mode_open()?;
            let mode = if self.eat(TokenKind::Question) {
                Mode::Dynamic
            } else {
                Mode::Static(self.static_mode()?)
            };
            let mut rest = Vec::new();
            while self.eat(TokenKind::Comma) {
                rest.push(self.static_mode()?);
            }
            self.expect(TokenKind::Gt)?;
            Some(ModeArgs::new(mode, rest))
        } else {
            None
        };
        let ctor_args = self.call_args()?;
        Ok(Expr::new(
            ExprKind::New {
                class: ClassName::new(class),
                args,
                ctor_args,
            },
            start.join(self.prev_span()),
        ))
    }

    fn snapshot_expr(&mut self) -> Result<Expr, SyntaxError> {
        let start = self.span();
        self.expect(TokenKind::Snapshot)?;
        let expr = self.postfix_expr()?;
        let (lo, hi) = if self.eat(TokenKind::LBracket) {
            let lo = if self.eat(TokenKind::Underscore) {
                StaticMode::Bot
            } else {
                self.static_mode()?
            };
            self.expect(TokenKind::Comma)?;
            let hi = if self.eat(TokenKind::Underscore) {
                StaticMode::Top
            } else {
                self.static_mode()?
            };
            self.expect(TokenKind::RBracket)?;
            (lo, hi)
        } else {
            (StaticMode::Bot, StaticMode::Top)
        };
        Ok(Expr::new(
            ExprKind::Snapshot {
                expr: Box::new(expr),
                lo,
                hi,
            },
            start.join(self.prev_span()),
        ))
    }

    fn mcase_expr(&mut self) -> Result<Expr, SyntaxError> {
        let start = self.span();
        self.expect(TokenKind::MCase)?;
        let ty = if *self.peek() == TokenKind::Lt {
            self.bump();
            let t = self.ty()?;
            self.expect(TokenKind::Gt)?;
            Some(t)
        } else {
            None
        };
        self.expect(TokenKind::LBrace)?;
        let mut arms = Vec::new();
        while *self.peek() != TokenKind::RBrace {
            let (mode, mspan) = self.ident()?;
            if !self.mode_names.contains(&mode) {
                return Err(SyntaxError::new(
                    format!("`{mode}` is not a declared mode"),
                    mspan,
                ));
            }
            self.expect(TokenKind::Colon)?;
            let value = self.expr()?;
            self.expect(TokenKind::Semi)?;
            arms.push((ModeName::new(mode), value));
        }
        self.expect(TokenKind::RBrace)?;
        Ok(Expr::new(
            ExprKind::MCase { ty, arms },
            start.join(self.prev_span()),
        ))
    }

    fn if_expr(&mut self) -> Result<Expr, SyntaxError> {
        let start = self.span();
        self.expect(TokenKind::If)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let then = self.block()?;
        let els = if self.eat(TokenKind::Else) {
            if *self.peek() == TokenKind::If {
                Some(Box::new(self.if_expr()?))
            } else {
                Some(Box::new(self.block()?))
            }
        } else {
            None
        };
        Ok(Expr::new(
            ExprKind::If {
                cond: Box::new(cond),
                then: Box::new(then),
                els,
            },
            start.join(self.prev_span()),
        ))
    }

    fn try_expr(&mut self) -> Result<Expr, SyntaxError> {
        let start = self.span();
        self.expect(TokenKind::Try)?;
        let body = self.block()?;
        self.expect(TokenKind::Catch)?;
        let handler = self.block()?;
        Ok(Expr::new(
            ExprKind::Try {
                body: Box::new(body),
                handler: Box::new(handler),
            },
            start.join(self.prev_span()),
        ))
    }

    /// Disambiguates `(expr)` from a cast `(T)e`.
    ///
    /// A parenthesized prefix is a cast when its content parses as a type
    /// that is not a bare lowercase identifier, and the token after `)`
    /// starts an expression. Class names are uppercase by convention, which
    /// is what makes `(Rule)r` parse as a cast but `(x) + 1` as grouping.
    fn paren_or_cast(&mut self) -> Result<Expr, SyntaxError> {
        let start = self.span();
        let save = self.pos;
        self.expect(TokenKind::LParen)?;

        // Attempt a cast parse.
        let looks_like_type = matches!(self.peek(), TokenKind::MCase)
            || matches!(self.peek(), TokenKind::Ident(name)
                if name.chars().next().is_some_and(char::is_uppercase)
                    || matches!(name.as_str(), "int" | "double" | "bool" | "string" | "unit"));
        if looks_like_type {
            if let Ok(ty) = self.ty() {
                if self.eat(TokenKind::RParen) && starts_expression(self.peek()) {
                    let expr = self.unary_expr()?;
                    let span = start.join(expr.span);
                    return Ok(Expr::new(
                        ExprKind::Cast {
                            ty,
                            expr: Box::new(expr),
                        },
                        span,
                    ));
                }
            }
            self.pos = save;
            self.expect(TokenKind::LParen)?;
        }

        let inner = self.expr()?;
        self.expect(TokenKind::RParen)?;
        Ok(inner)
    }
}

fn is_builtin_ns(name: &str) -> bool {
    matches!(name, "Ext" | "Sim" | "IO" | "Arr" | "Str" | "Math")
}

fn starts_expression(kind: &TokenKind) -> bool {
    matches!(
        kind,
        TokenKind::Ident(_)
            | TokenKind::Int(_)
            | TokenKind::Double(_)
            | TokenKind::Str(_)
            | TokenKind::True
            | TokenKind::False
            | TokenKind::This
            | TokenKind::New
            | TokenKind::Snapshot
            | TokenKind::MCase
            | TokenKind::LParen
            | TokenKind::LBracket
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(src: &str) -> Expr {
        parse_expr(src, &["energy_saver", "managed", "full_throttle"]).unwrap()
    }

    #[test]
    fn parses_arithmetic_with_precedence() {
        let e = expr("1 + 2 * 3");
        match e.kind {
            ExprKind::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => {
                assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("expected addition, got {other:?}"),
        }
    }

    #[test]
    fn parses_snapshot_with_bounds() {
        let e = expr("snapshot ds [_, X]");
        match e.kind {
            ExprKind::Snapshot { lo, hi, .. } => {
                assert_eq!(lo, StaticMode::Bot);
                assert_eq!(hi, StaticMode::Var(ModeVar::new("X")));
            }
            other => panic!("expected snapshot, got {other:?}"),
        }
    }

    #[test]
    fn parses_snapshot_without_bounds() {
        let e = expr("snapshot da");
        match e.kind {
            ExprKind::Snapshot { lo, hi, .. } => {
                assert_eq!(lo, StaticMode::Bot);
                assert_eq!(hi, StaticMode::Top);
            }
            other => panic!("expected snapshot, got {other:?}"),
        }
    }

    #[test]
    fn parses_mcase_literal() {
        let e = expr("mcase<int>{ energy_saver: 1; managed: 2; full_throttle: 3; }");
        match e.kind {
            ExprKind::MCase { ty, arms } => {
                assert_eq!(ty, Some(Type::INT));
                assert_eq!(arms.len(), 3);
                assert_eq!(arms[1].0, ModeName::new("managed"));
            }
            other => panic!("expected mcase, got {other:?}"),
        }
    }

    #[test]
    fn mcase_arm_requires_declared_mode() {
        let err = parse_expr("mcase<int>{ bogus: 1; }", &["managed"]).unwrap_err();
        assert!(err.message().contains("not a declared mode"));
    }

    #[test]
    fn parses_elimination_operator() {
        let e = expr("this.depth <| managed");
        match e.kind {
            ExprKind::Elim { mode, .. } => {
                assert_eq!(mode, Some(StaticMode::Const(ModeName::new("managed"))));
            }
            other => panic!("expected elim, got {other:?}"),
        }
        let e = expr("this.depth <| _");
        assert!(matches!(e.kind, ExprKind::Elim { mode: None, .. }));
    }

    #[test]
    fn mode_constants_resolve_in_expressions() {
        let e = expr("managed");
        assert!(matches!(e.kind, ExprKind::ModeConst(_)));
        let e = expr("notamode");
        assert!(matches!(e.kind, ExprKind::Var(_)));
    }

    #[test]
    fn builtin_namespaces_become_builtin_calls() {
        let e = expr("Ext.battery()");
        assert!(matches!(e.kind, ExprKind::Builtin { .. }));
        let e = expr("foo.bar()");
        assert!(matches!(e.kind, ExprKind::Call { .. }));
    }

    #[test]
    fn cast_vs_grouping() {
        let e = expr("(Site)s");
        assert!(matches!(e.kind, ExprKind::Cast { .. }));
        let e = expr("(x)");
        assert!(matches!(e.kind, ExprKind::Var(_)));
        let e = expr("(1 + 2) * 3");
        assert!(matches!(e.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parses_new_with_mode_instantiation() {
        let e = expr("new Site@mode<full_throttle>(url)");
        match e.kind {
            ExprKind::New {
                class,
                args,
                ctor_args,
            } => {
                assert_eq!(class, ClassName::new("Site"));
                let args = args.unwrap();
                assert_eq!(
                    args.mode,
                    Mode::Static(StaticMode::Const(ModeName::new("full_throttle")))
                );
                assert_eq!(ctor_args.len(), 1);
            }
            other => panic!("expected new, got {other:?}"),
        }
    }

    #[test]
    fn parses_new_without_mode() {
        let e = expr("new Rule()");
        assert!(matches!(e.kind, ExprKind::New { args: None, .. }));
    }

    #[test]
    fn parses_program_with_modes_and_class() {
        let p = parse_program(
            "modes { low <= high; }
             class Agent@mode<? <= X> {
               attributor { return high; }
               int work(int n) { return n + 1; }
             }",
        )
        .unwrap();
        assert_eq!(p.mode_table.modes().len(), 2);
        let agent = &p.classes[0];
        assert!(agent.mode_params.dynamic);
        assert!(agent.attributor.is_some());
        assert_eq!(agent.methods.len(), 1);
    }

    #[test]
    fn program_without_modes_block_gets_default_mode() {
        let p = parse_program("class Main { unit main() { return {}; } }").unwrap();
        assert_eq!(p.mode_table.modes().len(), 1);
    }

    #[test]
    fn parses_class_with_pinned_mode() {
        let p = parse_program(
            "modes { low <= high; }
             class Worker@mode<high> { }",
        )
        .unwrap();
        let worker = &p.classes[0];
        assert!(!worker.mode_params.dynamic);
        assert_eq!(worker.mode_params.bounds.len(), 1);
        let b = &worker.mode_params.bounds[0];
        assert_eq!(b.lo, b.hi);
    }

    #[test]
    fn parses_generic_class_and_method() {
        let p = parse_program(
            "modes { low <= high; }
             class Helper@mode<X> {
               @mode<high> int heavy(int n) { return n; }
               int id<s>(int n) { return n; }
             }",
        )
        .unwrap();
        let helper = &p.classes[0];
        assert_eq!(helper.mode_params.bounds[0].var, ModeVar::new("X"));
        assert_eq!(
            helper.methods[0].mode,
            Some(StaticMode::Const(ModeName::new("high")))
        );
        assert_eq!(helper.methods[1].mode_params.len(), 1);
    }

    #[test]
    fn parses_method_level_attributor() {
        let p = parse_program(
            "modes { low <= high; }
             class C {
               int f(int n) attributor { return high; } { return n; }
             }",
        )
        .unwrap();
        assert!(p.classes[0].methods[0].attributor.is_some());
    }

    #[test]
    fn parses_field_with_mcase_initializer() {
        let p = parse_program(
            "modes { low <= high; }
             class C {
               mcase<int> depth = mcase{ low: 1; high: 3; };
             }",
        )
        .unwrap();
        let field = &p.classes[0].fields[0];
        assert_eq!(field.ty, Type::MCase(Box::new(Type::INT)));
        assert!(field.init.is_some());
    }

    #[test]
    fn parses_try_catch_and_if_else_chain() {
        let e = expr(
            "try { if (Ext.battery() >= 0.75) { 1 } else if (x) { 2 } else { 3 } } catch { 0 }",
        );
        assert!(matches!(e.kind, ExprKind::Try { .. }));
    }

    #[test]
    fn parses_array_types_and_literals() {
        let p = parse_program(
            "class C {
               int[] xs = [1, 2, 3];
               string[][] grid = [];
             }",
        )
        .unwrap();
        let c = &p.classes[0];
        assert_eq!(c.fields[0].ty, Type::Array(Box::new(Type::INT)));
        assert_eq!(
            c.fields[1].ty,
            Type::Array(Box::new(Type::Array(Box::new(Type::STR))))
        );
    }

    #[test]
    fn parses_extends_with_super_args() {
        let p = parse_program(
            "modes { low <= high; }
             class Base@mode<X> { }
             class Derived@mode<Y> extends Base@mode<Y> { }",
        )
        .unwrap();
        let d = &p.classes[1];
        assert_eq!(d.superclass, ClassName::new("Base"));
        assert_eq!(d.super_args, vec![StaticMode::Var(ModeVar::new("Y"))]);
    }

    #[test]
    fn rejects_two_attributors() {
        let err = parse_program(
            "modes { low <= high; }
             class C@mode<?> {
               attributor { return low; }
               attributor { return high; }
             }",
        )
        .unwrap_err();
        assert!(err.message().contains("more than one attributor"));
    }

    #[test]
    fn rejects_lowercase_class_name_in_type_position() {
        let err = parse_program("class C { foo x; }").unwrap_err();
        assert!(err.message().contains("uppercase"));
    }

    #[test]
    fn let_with_and_without_annotation() {
        let e = expr("{ let x = 1; let int y = 2; x + y }");
        match e.kind {
            ExprKind::Block(stmts) => {
                assert!(matches!(&stmts[0], Stmt::Let { ty: None, .. }));
                assert!(matches!(
                    &stmts[1],
                    Stmt::Let {
                        ty: Some(Type::Prim(PrimType::Int)),
                        ..
                    }
                ));
                assert!(matches!(&stmts[2], Stmt::Expr(_)));
            }
            other => panic!("expected block, got {other:?}"),
        }
    }

    #[test]
    fn return_without_value_is_unit() {
        let e = expr("{ return; }");
        match e.kind {
            ExprKind::Block(stmts) => {
                assert!(
                    matches!(&stmts[0], Stmt::Return(e) if matches!(e.kind, ExprKind::Lit(Lit::Unit)))
                );
            }
            other => panic!("expected block, got {other:?}"),
        }
    }
}
