//! Syntax errors with source locations.

use std::error::Error;
use std::fmt;

use crate::{LineMap, Span};

/// A lexing or parsing error, with the span where it occurred.
///
/// # Example
///
/// ```
/// use ent_syntax::parse_program;
///
/// let err = parse_program("modes { a <= }").unwrap_err();
/// assert!(err.to_string().contains("expected"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyntaxError {
    message: String,
    span: Span,
}

impl SyntaxError {
    /// Creates a new error at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        SyntaxError {
            message: message.into(),
            span,
        }
    }

    /// The error message (no location).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The source span of the error.
    pub fn span(&self) -> Span {
        self.span
    }

    /// Renders the error with `line:col` resolved against the given source.
    pub fn render(&self, src: &str) -> String {
        let map = LineMap::new(src);
        format!("{}: {}", map.describe(self.span), self.message)
    }
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at bytes {}", self.message, self.span)
    }
}

impl Error for SyntaxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_resolves_line_and_column() {
        let err = SyntaxError::new("boom", Span::new(2, 3));
        assert_eq!(err.render("a\nb"), "2:1: boom");
    }

    #[test]
    fn display_is_nonempty() {
        let err = SyntaxError::new("boom", Span::new(0, 1));
        assert!(err.to_string().contains("boom"));
    }
}
