//! A string interner mapping names to dense `u32` symbols.
//!
//! The runtime's lowering pass (see `ent-runtime`) compiles every name in a
//! program — class names, field and method identifiers, mode names and mode
//! variables — into an index into one of these tables, so the interpreter's
//! hot paths compare integers instead of strings and index vectors instead
//! of probing hash maps.
//!
//! # Example
//!
//! ```
//! use ent_syntax::{Interner, Symbol};
//!
//! let mut names = Interner::new();
//! let a = names.intern("battery");
//! let b = names.intern("battery");
//! assert_eq!(a, b);
//! assert_eq!(names.resolve(a), "battery");
//! assert_eq!(names.get("battery"), Some(a));
//! assert_eq!(names.get("missing"), None);
//! ```

use std::collections::HashMap;
use std::sync::Arc;

/// A dense handle for an interned string.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// Builds a symbol from a raw index (as stored in compact IR tables).
    #[must_use]
    pub fn from_raw(raw: u32) -> Self {
        Symbol(raw)
    }

    /// The raw `u32` index, for storage in compact IR tables.
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The index as a `usize`, for direct vector indexing.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only map from strings to dense [`Symbol`]s.
///
/// Symbols are handed out in interning order starting at zero, so an
/// interner doubles as an ordered name table: `resolve` is a plain vector
/// index.
#[derive(Clone, Debug, Default)]
pub struct Interner {
    ids: HashMap<Arc<str>, u32>,
    names: Vec<Arc<str>>,
}

impl Interner {
    /// An empty interner.
    #[must_use]
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns `name`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&id) = self.ids.get(name) {
            return Symbol(id);
        }
        let id = u32::try_from(self.names.len()).expect("interner overflow");
        let shared: Arc<str> = Arc::from(name);
        self.names.push(Arc::clone(&shared));
        self.ids.insert(shared, id);
        Symbol(id)
    }

    /// Looks up `name` without interning it.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.ids.get(name).map(|&id| Symbol(id))
    }

    /// The string for `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this interner.
    #[must_use]
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// The shared string for `sym` (an `Arc` clone, no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this interner.
    #[must_use]
    pub fn resolve_arc(&self, sym: Symbol) -> Arc<str> {
        Arc::clone(&self.names[sym.index()])
    }

    /// The number of interned strings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(symbol, string)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_eq!(a.raw(), 0);
        assert_eq!(b.raw(), 1);
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let s = i.intern("snapshot");
        assert_eq!(i.resolve(s), "snapshot");
        assert_eq!(&*i.resolve_arc(s), "snapshot");
        assert_eq!(i.resolve(Symbol::from_raw(s.raw())), "snapshot");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        assert!(i.is_empty());
        let x = i.intern("x");
        assert_eq!(i.get("x"), Some(x));
    }

    #[test]
    fn iter_preserves_order() {
        let mut i = Interner::new();
        i.intern("c");
        i.intern("a");
        i.intern("b");
        let names: Vec<&str> = i.iter().map(|(_, s)| s).collect();
        assert_eq!(names, ["c", "a", "b"]);
    }
}
