//! The ENT lexer: source text to a token stream.

use crate::error::SyntaxError;
use crate::token::{keyword, Token, TokenKind};
use crate::Span;

/// Lexes an entire source buffer into tokens (terminated by `Eof`).
///
/// # Errors
///
/// Returns a [`SyntaxError`] for unterminated strings, malformed numbers, or
/// characters outside the language's alphabet.
///
/// # Example
///
/// ```
/// use ent_syntax::lex;
///
/// let tokens = lex("class Main { }")?;
/// assert_eq!(tokens.len(), 5); // class, Main, {, }, eof
/// # Ok::<(), ent_syntax::SyntaxError>(())
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>, SyntaxError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn run(mut self) -> Result<Vec<Token>, SyntaxError> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let Some(b) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::new(start as u32, start as u32),
                });
                return Ok(tokens);
            };
            let kind = match b {
                b'a'..=b'z' | b'A'..=b'Z' => self.word(),
                b'_' => {
                    // `_` alone is a hole; `_foo` is an identifier.
                    if self
                        .bytes
                        .get(self.pos + 1)
                        .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
                    {
                        self.word()
                    } else {
                        self.pos += 1;
                        TokenKind::Underscore
                    }
                }
                b'0'..=b'9' => self.number(start)?,
                b'"' => self.string(start)?,
                _ => self.operator(start)?,
            };
            tokens.push(Token {
                kind,
                span: Span::new(start as u32, self.pos as u32),
            });
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_trivia(&mut self) -> Result<(), SyntaxError> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => self.pos += 1,
                Some(b'/') if self.bytes.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(b) = self.peek() {
                        self.pos += 1;
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.bytes.get(self.pos + 1) == Some(&b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match (self.peek(), self.bytes.get(self.pos + 1)) {
                            (Some(b'*'), Some(b'/')) => {
                                self.pos += 2;
                                break;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(SyntaxError::new(
                                    "unterminated block comment",
                                    Span::new(start as u32, self.pos as u32),
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn word(&mut self) -> TokenKind {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()))
    }

    fn number(&mut self, start: usize) -> Result<TokenKind, SyntaxError> {
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_double = false;
        if self.peek() == Some(b'.')
            && self
                .bytes
                .get(self.pos + 1)
                .is_some_and(|b| b.is_ascii_digit())
        {
            is_double = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let save = self.pos;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if self.peek().is_some_and(|b| b.is_ascii_digit()) {
                is_double = true;
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
            } else {
                self.pos = save;
            }
        }
        let text = &self.src[start..self.pos];
        let span = Span::new(start as u32, self.pos as u32);
        if is_double {
            text.parse::<f64>()
                .map(TokenKind::Double)
                .map_err(|_| SyntaxError::new(format!("malformed double `{text}`"), span))
        } else {
            text.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|_| SyntaxError::new(format!("integer `{text}` is out of range"), span))
        }
    }

    fn string(&mut self, start: usize) -> Result<TokenKind, SyntaxError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(TokenKind::Str(out));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| {
                        SyntaxError::new(
                            "unterminated string literal",
                            Span::new(start as u32, self.pos as u32),
                        )
                    })?;
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'\\' => '\\',
                        b'"' => '"',
                        other => {
                            return Err(SyntaxError::new(
                                format!("unknown escape `\\{}`", other as char),
                                Span::new(self.pos as u32 - 1, self.pos as u32 + 1),
                            ))
                        }
                    });
                    self.pos += 1;
                }
                Some(_) => {
                    // Strings are UTF-8; step over a full scalar value.
                    let rest = &self.src[self.pos..];
                    let ch = rest.chars().next().expect("peeked byte implies a char");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => {
                    return Err(SyntaxError::new(
                        "unterminated string literal",
                        Span::new(start as u32, self.pos as u32),
                    ))
                }
            }
        }
    }

    fn operator(&mut self, start: usize) -> Result<TokenKind, SyntaxError> {
        let b = self.bytes[self.pos];
        let two = self.bytes.get(self.pos + 1).copied();
        let (kind, width) = match (b, two) {
            (b'=', Some(b'=')) => (TokenKind::EqEq, 2),
            (b'!', Some(b'=')) => (TokenKind::NotEq, 2),
            (b'<', Some(b'=')) => (TokenKind::Le, 2),
            (b'<', Some(b'|')) => (TokenKind::TriangleLeft, 2),
            (b'>', Some(b'=')) => (TokenKind::Ge, 2),
            (b'&', Some(b'&')) => (TokenKind::AndAnd, 2),
            (b'|', Some(b'|')) => (TokenKind::OrOr, 2),
            (b'(', _) => (TokenKind::LParen, 1),
            (b')', _) => (TokenKind::RParen, 1),
            (b'{', _) => (TokenKind::LBrace, 1),
            (b'}', _) => (TokenKind::RBrace, 1),
            (b'[', _) => (TokenKind::LBracket, 1),
            (b']', _) => (TokenKind::RBracket, 1),
            (b',', _) => (TokenKind::Comma, 1),
            (b';', _) => (TokenKind::Semi, 1),
            (b':', _) => (TokenKind::Colon, 1),
            (b'.', _) => (TokenKind::Dot, 1),
            (b'@', _) => (TokenKind::At, 1),
            (b'=', _) => (TokenKind::Eq, 1),
            (b'<', _) => (TokenKind::Lt, 1),
            (b'>', _) => (TokenKind::Gt, 1),
            (b'+', _) => (TokenKind::Plus, 1),
            (b'-', _) => (TokenKind::Minus, 1),
            (b'*', _) => (TokenKind::Star, 1),
            (b'/', _) => (TokenKind::Slash, 1),
            (b'%', _) => (TokenKind::Percent, 1),
            (b'!', _) => (TokenKind::Bang, 1),
            (b'?', _) => (TokenKind::Question, 1),
            _ => {
                return Err(SyntaxError::new(
                    format!("unexpected character `{}`", b as char),
                    Span::new(start as u32, start as u32 + 1),
                ))
            }
        };
        self.pos += width;
        Ok(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_and_identifiers() {
        assert_eq!(
            kinds("class Agent extends Object"),
            vec![
                TokenKind::Class,
                TokenKind::Ident("Agent".into()),
                TokenKind::Extends,
                TokenKind::Ident("Object".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_mode_annotation_sequence() {
        assert_eq!(
            kinds("@mode<? <= X>"),
            vec![
                TokenKind::At,
                TokenKind::Mode,
                TokenKind::Lt,
                TokenKind::Question,
                TokenKind::Le,
                TokenKind::Ident("X".into()),
                TokenKind::Gt,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("42 3.25 1e3 7"),
            vec![
                TokenKind::Int(42),
                TokenKind::Double(3.25),
                TokenKind::Double(1000.0),
                TokenKind::Int(7),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn dot_after_int_is_field_access_not_double() {
        // `2.foo` must lex as Int, Dot, Ident.
        assert_eq!(
            kinds("2.x"),
            vec![
                TokenKind::Int(2),
                TokenKind::Dot,
                TokenKind::Ident("x".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            kinds(r#""hi\n\"there\"""#),
            vec![TokenKind::Str("hi\n\"there\"".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // line\n b /* block\n more */ c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_is_an_error() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn triangle_left_vs_lt() {
        assert_eq!(
            kinds("a <| b < c <= d"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::TriangleLeft,
                TokenKind::Ident("b".into()),
                TokenKind::Lt,
                TokenKind::Ident("c".into()),
                TokenKind::Le,
                TokenKind::Ident("d".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn underscore_hole_vs_identifier() {
        assert_eq!(
            kinds("_ _x"),
            vec![
                TokenKind::Underscore,
                TokenKind::Ident("_x".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn spans_cover_token_text() {
        let tokens = lex("let xy = 5;").unwrap();
        assert_eq!(tokens[1].span, Span::new(4, 6));
        assert_eq!(tokens[3].span, Span::new(9, 10));
    }

    #[test]
    fn unexpected_character_reports_error() {
        let err = lex("a # b").unwrap_err();
        assert!(err.to_string().contains('#'));
    }
}
