//! Pretty-printing of ENT programs back to concrete syntax.
//!
//! The printer produces text the parser accepts, which the round-trip
//! property tests rely on: `parse(print(ast)) == ast` (up to spans).

use std::fmt::Write as _;

use ent_modes::{Mode, StaticMode};

use crate::ast::*;

/// Renders a static mode in *source* form: the lattice ends print as the
/// keywords `bot`/`top` (their `Display` forms `⊥`/`⊤` are not lexable).
fn src_mode(m: &StaticMode) -> String {
    match m {
        StaticMode::Bot => "bot".to_string(),
        StaticMode::Top => "top".to_string(),
        other => other.to_string(),
    }
}

/// Renders mode arguments in source form.
fn src_margs(args: &ent_modes::ModeArgs) -> String {
    let mut parts = vec![match &args.mode {
        Mode::Dynamic => "?".to_string(),
        Mode::Static(m) => src_mode(m),
    }];
    parts.extend(args.rest.iter().map(src_mode));
    parts.join(", ")
}

/// Renders a type in source form (see [`src_mode`]).
fn src_type(t: &ent_syntax_types::Type) -> String {
    match t {
        ent_syntax_types::Type::Object { class, args } => {
            if args.rest.is_empty() && args.mode == Mode::Static(StaticMode::Bot) {
                class.to_string()
            } else {
                format!("{class}@mode<{}>", src_margs(args))
            }
        }
        ent_syntax_types::Type::MCase(inner) => format!("mcase<{}>", src_type(inner)),
        ent_syntax_types::Type::Array(inner) => format!("{}[]", src_type(inner)),
        other => other.to_string(),
    }
}

mod ent_syntax_types {
    pub use crate::ast::Type;
}

/// Pretty-prints a program to parseable concrete syntax.
///
/// # Example
///
/// ```
/// use ent_syntax::{parse_program, print_program};
///
/// let src = "modes { low <= high; } class Main { unit main() { return {}; } }";
/// let p = parse_program(src)?;
/// let printed = print_program(&p);
/// assert!(printed.contains("class Main"));
/// // And the printed text parses again:
/// parse_program(&printed)?;
/// # Ok::<(), ent_syntax::SyntaxError>(())
/// ```
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    out.push_str("modes {\n");
    // Print the full declared order (covering edges via Display plus
    // isolated modes); simplest faithful encoding: every ordered pair.
    let modes = p.mode_table.modes();
    let mut printed_any = vec![false; modes.len()];
    for (i, a) in modes.iter().enumerate() {
        for (j, b) in modes.iter().enumerate() {
            if i != j && p.mode_table.le_const(a, b) {
                let _ = writeln!(out, "  {a} <= {b};");
                printed_any[i] = true;
                printed_any[j] = true;
            }
        }
    }
    for (i, a) in modes.iter().enumerate() {
        if !printed_any[i] {
            let _ = writeln!(out, "  {a};");
        }
    }
    out.push_str("}\n\n");
    for c in &p.classes {
        print_class(&mut out, c);
        out.push('\n');
    }
    out
}

fn print_class(out: &mut String, c: &ClassDecl) {
    let _ = write!(out, "class {}", c.name);
    print_class_mode_params(out, c);
    if c.superclass != ClassName::object() {
        let _ = write!(out, " extends {}", c.superclass);
        if !c.super_args.is_empty() {
            let args: Vec<String> = c.super_args.iter().map(src_mode).collect();
            let _ = write!(out, "@mode<{}>", args.join(", "));
        }
    }
    out.push_str(" {\n");
    if let Some(a) = &c.attributor {
        out.push_str("  attributor ");
        print_expr(out, &a.body, 1);
        out.push('\n');
    }
    for f in &c.fields {
        let _ = write!(out, "  {} {}", src_type(&f.ty), f.name);
        if let Some(init) = &f.init {
            out.push_str(" = ");
            print_expr(out, init, 1);
        }
        out.push_str(";\n");
    }
    for m in &c.methods {
        print_method(out, m);
    }
    out.push_str("}\n");
}

fn print_class_mode_params(out: &mut String, c: &ClassDecl) {
    let mp = &c.mode_params;
    if !mp.dynamic && mp.bounds.is_empty() {
        return;
    }
    out.push_str("@mode<");
    let mut parts = Vec::new();
    let mut bounds = mp.bounds.iter();
    if mp.dynamic {
        let first = bounds
            .next()
            .expect("dynamic class has an internal parameter");
        if first.var.as_str().starts_with("Self_") {
            parts.push("?".to_string());
        } else if first.hi == StaticMode::Top {
            parts.push(format!("? <= {}", first.var));
        } else {
            parts.push(format!("? <= {} <= {}", first.var, src_mode(&first.hi)));
        }
    }
    for b in bounds {
        parts.push(print_bounded(b));
    }
    let _ = write!(out, "{}>", parts.join(", "));
}

fn print_bounded(b: &ent_modes::Bounded) -> String {
    if b.lo == b.hi {
        // Pinned mode.
        src_mode(&b.lo)
    } else if b.lo == StaticMode::Bot && b.hi == StaticMode::Top {
        b.var.to_string()
    } else {
        format!("{} <= {} <= {}", src_mode(&b.lo), b.var, src_mode(&b.hi))
    }
}

fn print_method(out: &mut String, m: &MethodDecl) {
    out.push_str("  ");
    if let Some(mode) = &m.mode {
        let _ = write!(out, "@mode<{}> ", src_mode(mode));
    }
    let _ = write!(out, "{} {}", src_type(&m.ret), m.name);
    if !m.mode_params.is_empty() {
        let parts: Vec<String> = m.mode_params.iter().map(print_bounded).collect();
        let _ = write!(out, "<{}>", parts.join(", "));
    }
    out.push('(');
    let params: Vec<String> = m
        .params
        .iter()
        .map(|(t, x)| format!("{} {x}", src_type(t)))
        .collect();
    let _ = write!(out, "{}) ", params.join(", "));
    if let Some(a) = &m.attributor {
        out.push_str("attributor ");
        print_expr(out, &a.body, 1);
        out.push(' ');
    }
    print_expr(out, &m.body, 1);
    out.push('\n');
}

/// Pretty-prints a single expression.
pub fn print_expr_string(e: &Expr) -> String {
    let mut out = String::new();
    print_expr(&mut out, e, 0);
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn print_expr(out: &mut String, e: &Expr, depth: usize) {
    match &e.kind {
        ExprKind::Var(x) => {
            let _ = write!(out, "{x}");
        }
        ExprKind::This => out.push_str("this"),
        ExprKind::Lit(l) => {
            let _ = write!(out, "{l}");
        }
        ExprKind::ModeConst(m) => {
            let _ = write!(out, "{m}");
        }
        ExprKind::Field { recv, name } => {
            print_postfix_operand(out, recv, depth);
            let _ = write!(out, ".{name}");
        }
        ExprKind::New {
            class,
            args,
            ctor_args,
        } => {
            let _ = write!(out, "new {class}");
            if let Some(args) = args {
                let _ = write!(out, "@mode<{}>", src_margs(args));
            }
            out.push('(');
            print_comma(out, ctor_args, depth);
            out.push(')');
        }
        ExprKind::Call {
            recv,
            method,
            mode_args,
            args,
        } => {
            print_postfix_operand(out, recv, depth);
            let _ = write!(out, ".{method}");
            if !mode_args.is_empty() {
                let parts: Vec<String> = mode_args.iter().map(src_mode).collect();
                let _ = write!(out, "@mode<{}>", parts.join(", "));
            }
            out.push('(');
            print_comma(out, args, depth);
            out.push(')');
        }
        ExprKind::Builtin { ns, name, args } => {
            let _ = write!(out, "{ns}.{name}(");
            print_comma(out, args, depth);
            out.push(')');
        }
        ExprKind::Cast { ty, expr } => {
            let _ = write!(out, "({})", src_type(ty));
            print_expr(out, expr, depth);
        }
        ExprKind::Snapshot { expr, lo, hi } => {
            out.push_str("snapshot ");
            // The snapshot operand is parsed at postfix precedence; wrap
            // anything looser in parentheses.
            let simple = matches!(
                expr.kind,
                ExprKind::Var(_)
                    | ExprKind::This
                    | ExprKind::Lit(_)
                    | ExprKind::Field { .. }
                    | ExprKind::Call { .. }
                    | ExprKind::Builtin { .. }
                    | ExprKind::New { .. }
            );
            if simple {
                print_expr(out, expr, depth);
            } else {
                out.push('(');
                print_expr(out, expr, depth);
                out.push(')');
            }
            let lo_s = if *lo == StaticMode::Bot {
                "_".to_string()
            } else {
                src_mode(lo)
            };
            let hi_s = if *hi == StaticMode::Top {
                "_".to_string()
            } else {
                src_mode(hi)
            };
            let _ = write!(out, " [{lo_s}, {hi_s}]");
        }
        ExprKind::MCase { ty, arms } => {
            out.push_str("mcase");
            if let Some(t) = ty {
                let _ = write!(out, "<{}>", src_type(t));
            }
            out.push_str("{ ");
            for (m, v) in arms {
                let _ = write!(out, "{m}: ");
                print_expr(out, v, depth);
                out.push_str("; ");
            }
            out.push('}');
        }
        ExprKind::Elim { expr, mode } => {
            print_expr(out, expr, depth);
            match mode {
                Some(m) => {
                    let _ = write!(out, " <| {}", src_mode(m));
                }
                None => out.push_str(" <| _"),
            }
        }
        ExprKind::Binary { op, lhs, rhs } => {
            out.push('(');
            print_expr(out, lhs, depth);
            let _ = write!(out, " {op} ");
            print_expr(out, rhs, depth);
            out.push(')');
        }
        ExprKind::Unary { op, expr } => {
            let _ = write!(out, "{op}");
            out.push('(');
            print_expr(out, expr, depth);
            out.push(')');
        }
        ExprKind::If { cond, then, els } => {
            out.push_str("if (");
            print_expr(out, cond, depth);
            out.push_str(") ");
            print_block_like(out, then, depth);
            if let Some(els) = els {
                out.push_str(" else ");
                if matches!(els.kind, ExprKind::If { .. }) {
                    print_expr(out, els, depth);
                } else {
                    print_block_like(out, els, depth);
                }
            }
        }
        ExprKind::Block(stmts) => {
            out.push_str("{\n");
            for s in stmts {
                indent(out, depth + 1);
                match s {
                    Stmt::Let { ty, name, value } => {
                        out.push_str("let ");
                        if let Some(t) = ty {
                            let _ = write!(out, "{} ", src_type(t));
                        }
                        let _ = write!(out, "{name} = ");
                        print_expr(out, value, depth + 1);
                        out.push_str(";\n");
                    }
                    Stmt::Expr(e) => {
                        print_expr(out, e, depth + 1);
                        out.push_str(";\n");
                    }
                    Stmt::Return(e) => {
                        out.push_str("return ");
                        print_expr(out, e, depth + 1);
                        out.push_str(";\n");
                    }
                }
            }
            indent(out, depth);
            out.push('}');
        }
        ExprKind::Try { body, handler } => {
            out.push_str("try ");
            print_block_like(out, body, depth);
            out.push_str(" catch ");
            print_block_like(out, handler, depth);
        }
        ExprKind::ArrayLit(items) => {
            out.push('[');
            print_comma(out, items, depth);
            out.push(']');
        }
    }
}

/// Prints an expression in a postfix-operand position (`.field`, `.call()`,
/// `<|`), parenthesizing anything looser than postfix precedence.
fn print_postfix_operand(out: &mut String, e: &Expr, depth: usize) {
    let simple = matches!(
        e.kind,
        ExprKind::Var(_)
            | ExprKind::This
            | ExprKind::Lit(_)
            | ExprKind::ModeConst(_)
            | ExprKind::Field { .. }
            | ExprKind::Call { .. }
            | ExprKind::Builtin { .. }
            | ExprKind::New { .. }
            | ExprKind::ArrayLit(_)
            | ExprKind::Binary { .. } // printed parenthesized already
    );
    if simple {
        print_expr(out, e, depth);
    } else {
        out.push('(');
        print_expr(out, e, depth);
        out.push(')');
    }
}

fn print_block_like(out: &mut String, e: &Expr, depth: usize) {
    if matches!(e.kind, ExprKind::Block(_)) {
        print_expr(out, e, depth);
    } else {
        // Canonicalize to a one-statement block so print∘parse∘print is a
        // fixpoint (the parser represents `{ e }` as a Block).
        let block = Expr::new(ExprKind::Block(vec![Stmt::Expr(e.clone())]), e.span);
        print_expr(out, &block, depth);
    }
}

fn print_comma(out: &mut String, items: &[Expr], depth: usize) {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        print_expr(out, item, depth);
    }
}

/// Prints a type's mode arguments. (Used by diagnostics in downstream
/// crates; re-exported for convenience.)
pub fn mode_args_string(args: &ent_modes::ModeArgs) -> String {
    match (&args.mode, args.rest.is_empty()) {
        (Mode::Static(StaticMode::Bot), true) => String::new(),
        _ => format!("@mode<{args}>"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_expr, parse_program};

    #[test]
    fn print_parse_roundtrip_program() {
        let src = "modes { low <= high; }
            class Agent@mode<? <= X> {
              mcase<int> depth = mcase{ low: 1; high: 3; };
              attributor { if (Ext.battery() >= 0.5) { return high; } else { return low; } }
              int work(int n) {
                let a = snapshot this [_, X];
                return n + (this.depth <| low);
              }
            }
            class Main {
              unit main() { return {}; }
            }";
        let p1 = parse_program(src).unwrap();
        let printed = print_program(&p1);
        let p2 = parse_program(&printed).expect("printed program must parse");
        assert_eq!(p1.classes.len(), p2.classes.len());
        assert_eq!(
            p1.classes[0].mode_params, p2.classes[0].mode_params,
            "mode params survive roundtrip"
        );
    }

    #[test]
    fn expression_printing_is_parseable() {
        let e1 = parse_expr("1 + 2 * -x", &[]).unwrap();
        let s = print_expr_string(&e1);
        let e2 = parse_expr(&s, &[]).unwrap();
        // Printed form is fully parenthesized; compare printed forms.
        assert_eq!(s, print_expr_string(&e2));
    }

    #[test]
    fn snapshot_bounds_print_with_holes() {
        let e = parse_expr("snapshot x", &[]).unwrap();
        assert_eq!(print_expr_string(&e), "snapshot x [_, _]");
    }

    #[test]
    fn pinned_mode_class_roundtrips() {
        let src = "modes { low <= high; } class W@mode<high> { }";
        let p1 = parse_program(src).unwrap();
        let p2 = parse_program(&print_program(&p1)).unwrap();
        assert_eq!(p1.classes[0].mode_params, p2.classes[0].mode_params);
    }
}
