//! The abstract syntax of ENT.
//!
//! The grammar follows Figure 2 of the paper — Featherweight Java extended
//! with mode declarations, attributors, `snapshot`, mode cases and mode-case
//! elimination — plus the practical extensions needed to write the paper's
//! benchmark programs: primitive literals and operators, `let`, `if`,
//! blocks with `return`, immutable arrays, `try`/`catch` for
//! `EnergyException`, and calls to the builtin namespaces (`Ext`, `Sim`,
//! `IO`, `Arr`, `Str`, `Math`).

use std::fmt;
use std::sync::Arc;

use ent_modes::{Bounded, ClassModeParams, ModeArgs, ModeName, ModeTable, StaticMode};

use crate::Span;

/// A class name (interned, cheap to clone).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassName(Arc<str>);

impl ClassName {
    /// Creates a class name.
    pub fn new(name: impl AsRef<str>) -> Self {
        ClassName(Arc::from(name.as_ref()))
    }

    /// The root of the inheritance hierarchy.
    pub fn object() -> Self {
        ClassName::new("Object")
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ClassName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for ClassName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClassName({})", self.0)
    }
}

impl From<&str> for ClassName {
    fn from(s: &str) -> Self {
        ClassName::new(s)
    }
}

/// A variable, field, or method name (interned, cheap to clone).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ident(Arc<str>);

impl Ident {
    /// Creates an identifier.
    pub fn new(name: impl AsRef<str>) -> Self {
        Ident(Arc::from(name.as_ref()))
    }

    /// The identifier as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ident({})", self.0)
    }
}

impl From<&str> for Ident {
    fn from(s: &str) -> Self {
        Ident::new(s)
    }
}

/// Primitive (non-object) types — a practical extension over the formal FJ
/// core, needed by the benchmark programs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PrimType {
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats.
    Double,
    /// Booleans.
    Bool,
    /// Immutable strings.
    Str,
    /// The unit type (the result of statements used for effect).
    Unit,
}

impl fmt::Display for PrimType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PrimType::Int => "int",
            PrimType::Double => "double",
            PrimType::Bool => "bool",
            PrimType::Str => "string",
            PrimType::Unit => "unit",
        })
    }
}

/// A programmer type `T` (Figure 2), extended with primitives and arrays.
#[derive(Clone, Debug, PartialEq)]
pub enum Type {
    /// An object type `c⟨ι⟩`, e.g. `Site@mode<managed>` or `Agent@mode<?>`.
    Object {
        /// The class.
        class: ClassName,
        /// The mode arguments `ι` (object mode first).
        args: ModeArgs,
    },
    /// A mode case type `mcase⟨T⟩`.
    MCase(Box<Type>),
    /// A primitive type.
    Prim(PrimType),
    /// An immutable array `T[]`.
    Array(Box<Type>),
    /// The type of modes themselves (`modev`); the result type of an
    /// attributor body. Not denotable in surface syntax.
    ModeValue,
    /// A bounded existential `∃ω.τ`, the type of a `snapshot` expression.
    /// Produced by the typechecker; not denotable in surface syntax.
    Exists {
        /// The bounded mode variable `ω`.
        bound: Bounded,
        /// The body type `τ`.
        inner: Box<Type>,
    },
    /// A poison type produced by the typechecker after reporting an error,
    /// so checking can continue without cascading diagnostics. Not
    /// denotable in surface syntax.
    Error,
}

impl Type {
    /// An object type with the given class and mode arguments.
    pub fn object(class: impl Into<ClassName>, args: ModeArgs) -> Type {
        Type::Object {
            class: class.into(),
            args,
        }
    }

    /// The `int` type.
    pub const INT: Type = Type::Prim(PrimType::Int);
    /// The `double` type.
    pub const DOUBLE: Type = Type::Prim(PrimType::Double);
    /// The `bool` type.
    pub const BOOL: Type = Type::Prim(PrimType::Bool);
    /// The `string` type.
    pub const STR: Type = Type::Prim(PrimType::Str);
    /// The `unit` type.
    pub const UNIT: Type = Type::Prim(PrimType::Unit);

    /// Applies a mode substitution throughout the type.
    pub fn apply(&self, subst: &ent_modes::Subst) -> Type {
        match self {
            Type::Object { class, args } => Type::Object {
                class: class.clone(),
                args: args.apply(subst),
            },
            Type::MCase(t) => Type::MCase(Box::new(t.apply(subst))),
            Type::Array(t) => Type::Array(Box::new(t.apply(subst))),
            Type::Exists { bound, inner } => Type::Exists {
                bound: bound.apply_bounds(subst),
                inner: Box::new(inner.apply(subst)),
            },
            Type::Prim(_) | Type::ModeValue | Type::Error => self.clone(),
        }
    }

    /// The paper's `omode(T)` for object types; `None` otherwise.
    pub fn omode(&self) -> Option<&ent_modes::Mode> {
        match self {
            Type::Object { args, .. } => Some(args.omode()),
            _ => None,
        }
    }

    /// Returns `true` for object types with the dynamic mode `?`.
    pub fn is_dynamic_object(&self) -> bool {
        matches!(self, Type::Object { args, .. } if args.is_dynamic())
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Object { class, args } => {
                if args.rest.is_empty() && args.mode == ent_modes::Mode::Static(StaticMode::Bot) {
                    write!(f, "{class}")
                } else {
                    write!(f, "{class}@mode<{args}>")
                }
            }
            Type::MCase(t) => write!(f, "mcase<{t}>"),
            Type::Prim(p) => write!(f, "{p}"),
            Type::Array(t) => write!(f, "{t}[]"),
            Type::ModeValue => f.write_str("modev"),
            Type::Exists { bound, inner } => write!(f, "∃{bound}.{inner}"),
            Type::Error => f.write_str("<error>"),
        }
    }
}

/// A literal value.
#[derive(Clone, Debug, PartialEq)]
pub enum Lit {
    /// Integer literal.
    Int(i64),
    /// Double literal.
    Double(f64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// The unit value (written as an empty block).
    Unit,
}

impl Lit {
    /// The type of the literal.
    pub fn ty(&self) -> Type {
        match self {
            Lit::Int(_) => Type::INT,
            Lit::Double(_) => Type::DOUBLE,
            Lit::Bool(_) => Type::BOOL,
            Lit::Str(_) => Type::STR,
            Lit::Unit => Type::UNIT,
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::Int(n) => write!(f, "{n}"),
            Lit::Double(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Lit::Bool(b) => write!(f, "{b}"),
            Lit::Str(s) => write!(f, "{s:?}"),
            Lit::Unit => f.write_str("{}"),
        }
    }
}

/// Binary operators over primitives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+` (ints, doubles, or string concatenation)
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuiting)
    And,
    /// `||` (short-circuiting)
    Or,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        })
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Logical negation `!`.
    Not,
    /// Arithmetic negation `-`.
    Neg,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Not => "!",
            UnOp::Neg => "-",
        })
    }
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub struct Expr {
    /// What the expression is.
    pub kind: ExprKind,
    /// Where it came from.
    pub span: Span,
}

impl Expr {
    /// Creates an expression.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }
}

/// The kinds of expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum ExprKind {
    /// A variable reference `x`.
    Var(Ident),
    /// The receiver `this`.
    This,
    /// A literal.
    Lit(Lit),
    /// A mode constant used as a value (inside attributors: `return managed`).
    ModeConst(ModeName),
    /// Field access `e.fd` (with implicit mcase elimination applied by the
    /// typechecker when needed).
    Field {
        /// The receiver.
        recv: Box<Expr>,
        /// The field name.
        name: Ident,
    },
    /// Object creation `new c@mode<ι>(e...)`. `args` is `None` when the
    /// programmer omitted the instantiation (allowed for mode-neutral and
    /// pinned-mode classes).
    New {
        /// The class to instantiate.
        class: ClassName,
        /// Explicit mode arguments, if written.
        args: Option<ModeArgs>,
        /// Constructor arguments (positional field values).
        ctor_args: Vec<Expr>,
    },
    /// Method invocation `e.md@mode<η...>(e...)`; `mode_args` instantiate
    /// generic method modes (usually empty and inferred).
    Call {
        /// The receiver.
        recv: Box<Expr>,
        /// The method name.
        method: Ident,
        /// Explicit generic-mode instantiations.
        mode_args: Vec<StaticMode>,
        /// The arguments.
        args: Vec<Expr>,
    },
    /// A call into a builtin namespace, e.g. `Ext.battery()`.
    Builtin {
        /// The namespace (`Ext`, `Sim`, `IO`, `Arr`, `Str`, `Math`).
        ns: Ident,
        /// The operation name.
        name: Ident,
        /// The arguments.
        args: Vec<Expr>,
    },
    /// A cast `(T)e`.
    Cast {
        /// The target type.
        ty: Type,
        /// The operand.
        expr: Box<Expr>,
    },
    /// `snapshot e [lo, hi]` — bounds default to `⊥`/`⊤` when omitted.
    Snapshot {
        /// The dynamic object being snapshotted.
        expr: Box<Expr>,
        /// The lower bound on the resulting mode.
        lo: StaticMode,
        /// The upper bound on the resulting mode.
        hi: StaticMode,
    },
    /// A mode case literal `mcase<T>{m: e; ...}`; the type annotation is
    /// optional in surface syntax and inferred when absent.
    MCase {
        /// The optional element type annotation.
        ty: Option<Type>,
        /// The arms, one per declared mode.
        arms: Vec<(ModeName, Expr)>,
    },
    /// Mode case elimination `e <| η` (`η == None` means "the enclosing
    /// object's internal mode", written `e <| _`).
    Elim {
        /// The mode case being eliminated.
        expr: Box<Expr>,
        /// The mode to project, if explicit.
        mode: Option<StaticMode>,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// `if (c) { .. } else { .. }`; a missing else-branch is `unit`.
    If {
        /// The condition.
        cond: Box<Expr>,
        /// The then-branch.
        then: Box<Expr>,
        /// The else-branch.
        els: Option<Box<Expr>>,
    },
    /// A block `{ stmt* }`; evaluates to its last expression statement, or
    /// unit.
    Block(Vec<Stmt>),
    /// `try { e } catch { e }` — catches `EnergyException` (a failed
    /// snapshot bound check).
    Try {
        /// The protected body.
        body: Box<Expr>,
        /// The handler.
        handler: Box<Expr>,
    },
    /// An array literal `[e, ...]`.
    ArrayLit(Vec<Expr>),
}

/// A statement inside a block.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `let x = e;` or `let T x = e;`
    Let {
        /// Optional type annotation.
        ty: Option<Type>,
        /// The bound variable.
        name: Ident,
        /// The initializer.
        value: Expr,
    },
    /// An expression statement `e;` (or a trailing expression).
    Expr(Expr),
    /// `return e;` — exits the enclosing method or attributor.
    Return(Expr),
}

/// A field declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct FieldDecl {
    /// The field type.
    pub ty: Type,
    /// The field name.
    pub name: Ident,
    /// Optional initializer; fields without initializers are set
    /// positionally by `new`, in declaration order, inherited fields first.
    pub init: Option<Expr>,
    /// Source location.
    pub span: Span,
}

/// A method declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct MethodDecl {
    /// Method-level mode override `@mode<η>` (the paper's method-grained
    /// mode characterization), if present.
    pub mode: Option<StaticMode>,
    /// Generic method-mode parameters with bounds.
    pub mode_params: Vec<Bounded>,
    /// The return type.
    pub ret: Type,
    /// The method name.
    pub name: Ident,
    /// Parameters as `(type, name)` pairs.
    pub params: Vec<(Type, Ident)>,
    /// A method-level attributor, making the method's mode dynamic.
    pub attributor: Option<Attributor>,
    /// The body.
    pub body: Expr,
    /// Source location.
    pub span: Span,
}

/// A class-level or method-level attributor block.
#[derive(Clone, Debug, PartialEq)]
pub struct Attributor {
    /// The body, evaluating to a mode value.
    pub body: Expr,
    /// Source location.
    pub span: Span,
}

/// A class declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassDecl {
    /// The class name.
    pub name: ClassName,
    /// The mode parameter list `∆`.
    pub mode_params: ClassModeParams,
    /// The superclass (defaults to `Object`).
    pub superclass: ClassName,
    /// Static mode arguments instantiating the superclass's parameters.
    pub super_args: Vec<StaticMode>,
    /// Field declarations.
    pub fields: Vec<FieldDecl>,
    /// Method declarations.
    pub methods: Vec<MethodDecl>,
    /// The class-level attributor (required iff the class is dynamic).
    pub attributor: Option<Attributor>,
    /// Source location.
    pub span: Span,
}

impl ClassDecl {
    /// Looks up a declared (non-inherited) field.
    pub fn field(&self, name: &Ident) -> Option<&FieldDecl> {
        self.fields.iter().find(|f| &f.name == name)
    }

    /// Looks up a declared (non-inherited) method.
    pub fn method(&self, name: &Ident) -> Option<&MethodDecl> {
        self.methods.iter().find(|m| &m.name == name)
    }
}

/// A whole program `P = D C`: the validated mode table plus class
/// declarations.
#[derive(Clone, Debug)]
pub struct Program {
    /// The validated mode declaration `D`.
    pub mode_table: ModeTable,
    /// The classes, in declaration order.
    pub classes: Vec<ClassDecl>,
}

impl Program {
    /// Finds a class by name.
    pub fn class(&self, name: &ClassName) -> Option<&ClassDecl> {
        self.classes.iter().find(|c| &c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ent_modes::Mode;

    #[test]
    fn type_display_forms() {
        let neutral = Type::object("Rule", ModeArgs::of_static(StaticMode::Bot));
        assert_eq!(neutral.to_string(), "Rule");

        let site = Type::object(
            "Site",
            ModeArgs::of_static(StaticMode::Const(ModeName::new("managed"))),
        );
        assert_eq!(site.to_string(), "Site@mode<managed>");

        let dynamic = Type::object("Agent", ModeArgs::of_dynamic());
        assert_eq!(dynamic.to_string(), "Agent@mode<?>");

        assert_eq!(Type::MCase(Box::new(Type::INT)).to_string(), "mcase<int>");
        assert_eq!(Type::Array(Box::new(Type::STR)).to_string(), "string[]");
    }

    #[test]
    fn type_omode_and_dynamicness() {
        let dynamic = Type::object("Agent", ModeArgs::of_dynamic());
        assert!(dynamic.is_dynamic_object());
        assert_eq!(dynamic.omode(), Some(&Mode::Dynamic));
        assert!(Type::INT.omode().is_none());
    }

    #[test]
    fn literal_types() {
        assert_eq!(Lit::Int(3).ty(), Type::INT);
        assert_eq!(Lit::Str("s".into()).ty(), Type::STR);
        assert_eq!(Lit::Unit.ty(), Type::UNIT);
    }

    #[test]
    fn type_substitution_reaches_nested_positions() {
        use ent_modes::{ModeVar, Subst};
        let mut s = Subst::new();
        s.insert(ModeVar::new("X"), StaticMode::Const(ModeName::new("m")));
        let t = Type::Array(Box::new(Type::object(
            "Site",
            ModeArgs::of_static(StaticMode::Var(ModeVar::new("X"))),
        )));
        assert_eq!(t.apply(&s).to_string(), "Site@mode<m>[]");
    }

    #[test]
    fn class_decl_lookup() {
        let decl = ClassDecl {
            name: ClassName::new("C"),
            mode_params: ClassModeParams::neutral(),
            superclass: ClassName::object(),
            super_args: vec![],
            fields: vec![FieldDecl {
                ty: Type::INT,
                name: Ident::new("x"),
                init: None,
                span: Span::DUMMY,
            }],
            methods: vec![],
            attributor: None,
            span: Span::DUMMY,
        };
        assert!(decl.field(&Ident::new("x")).is_some());
        assert!(decl.field(&Ident::new("y")).is_none());
        assert!(decl.method(&Ident::new("m")).is_none());
    }
}
