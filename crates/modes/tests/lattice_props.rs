//! Property-based tests for the mode lattice and constraint entailment.

use ent_modes::{ConstraintSet, ModeName, ModeTable, ModeVar, StaticMode};
use proptest::prelude::*;

/// Generates a random mode table: a random DAG over up to 6 named modes.
/// Edges only go from lower index to higher index, so the order is acyclic
/// by construction; non-lattice shapes are discarded by filtering on the
/// builder result.
fn arb_table() -> impl Strategy<Value = ModeTable> {
    (2usize..=6, proptest::collection::vec(any::<bool>(), 0..36)).prop_filter_map(
        "declaration must form a lattice",
        |(n, edges)| {
            let names: Vec<ModeName> = (0..n).map(|i| ModeName::new(format!("m{i}"))).collect();
            let mut builder = ModeTable::builder();
            for m in &names {
                builder = builder.mode(m.clone());
            }
            let mut bit = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if edges.get(bit).copied().unwrap_or(false) {
                        builder = builder.le(names[i].clone(), names[j].clone());
                    }
                    bit += 1;
                }
            }
            builder.build().ok()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `le_ground` is a partial order: reflexive, transitive, antisymmetric.
    #[test]
    fn ground_order_is_a_partial_order(table in arb_table()) {
        let mut elems = vec![StaticMode::Bot, StaticMode::Top];
        elems.extend(table.modes().iter().cloned().map(StaticMode::Const));

        for a in &elems {
            prop_assert!(table.le_ground(a, a));
            for b in &elems {
                if table.le_ground(a, b) && table.le_ground(b, a) {
                    prop_assert_eq!(a, b);
                }
                for c in &elems {
                    if table.le_ground(a, b) && table.le_ground(b, c) {
                        prop_assert!(table.le_ground(a, c));
                    }
                }
            }
        }
    }

    /// lub is the least upper bound: an upper bound below all upper bounds.
    #[test]
    fn lub_is_least_upper_bound(table in arb_table()) {
        let mut elems = vec![StaticMode::Bot, StaticMode::Top];
        elems.extend(table.modes().iter().cloned().map(StaticMode::Const));

        for a in &elems {
            for b in &elems {
                let j = table.lub(a, b).expect("validated table must have lubs");
                prop_assert!(table.le_ground(a, &j));
                prop_assert!(table.le_ground(b, &j));
                for u in &elems {
                    if table.le_ground(a, u) && table.le_ground(b, u) {
                        prop_assert!(table.le_ground(&j, u));
                    }
                }
            }
        }
    }

    /// glb is the greatest lower bound, dually.
    #[test]
    fn glb_is_greatest_lower_bound(table in arb_table()) {
        let mut elems = vec![StaticMode::Bot, StaticMode::Top];
        elems.extend(table.modes().iter().cloned().map(StaticMode::Const));

        for a in &elems {
            for b in &elems {
                let m = table.glb(a, b).expect("validated table must have glbs");
                prop_assert!(table.le_ground(&m, a));
                prop_assert!(table.le_ground(&m, b));
                for l in &elems {
                    if table.le_ground(l, a) && table.le_ground(l, b) {
                        prop_assert!(table.le_ground(l, &m));
                    }
                }
            }
        }
    }

    /// lub and glb are commutative and idempotent.
    #[test]
    fn lub_glb_algebraic_laws(table in arb_table()) {
        let mut elems = vec![StaticMode::Bot, StaticMode::Top];
        elems.extend(table.modes().iter().cloned().map(StaticMode::Const));

        for a in &elems {
            prop_assert_eq!(table.lub(a, a), Some(a.clone()));
            prop_assert_eq!(table.glb(a, a), Some(a.clone()));
            for b in &elems {
                prop_assert_eq!(table.lub(a, b), table.lub(b, a));
                prop_assert_eq!(table.glb(a, b), table.glb(b, a));
                // Absorption: a ⊔ (a ⊓ b) = a
                let m = table.glb(a, b).unwrap();
                prop_assert_eq!(table.lub(a, &m), Some(a.clone()));
            }
        }
    }

    /// Entailment with an empty constraint set agrees with the ground order.
    #[test]
    fn empty_entailment_matches_ground_order(table in arb_table()) {
        let k = ConstraintSet::new();
        let mut elems = vec![StaticMode::Bot, StaticMode::Top];
        elems.extend(table.modes().iter().cloned().map(StaticMode::Const));
        for a in &elems {
            for b in &elems {
                prop_assert_eq!(k.entails(&table, a, b), table.le_ground(a, b));
            }
        }
    }

    /// Entailment is monotone: adding constraints never removes entailments.
    #[test]
    fn entailment_is_monotone(table in arb_table()) {
        let x = StaticMode::Var(ModeVar::new("X"));
        let y = StaticMode::Var(ModeVar::new("Y"));
        let modes: Vec<StaticMode> = table
            .modes()
            .iter()
            .cloned()
            .map(StaticMode::Const)
            .collect();

        let mut small = ConstraintSet::new();
        small.push(x.clone(), modes[0].clone());
        let mut big = small.clone();
        big.push(y.clone(), x.clone());

        let mut elems = vec![StaticMode::Bot, StaticMode::Top, x, y];
        elems.extend(modes);
        for a in &elems {
            for b in &elems {
                if small.entails(&table, a, b) {
                    prop_assert!(big.entails(&table, a, b));
                }
            }
        }
    }
}

#[test]
fn arb_table_strategy_is_satisfiable() {
    // Sanity check that the generator produces at least one table quickly.
    let table = ModeTable::linear(["a", "b", "c", "d"]).unwrap();
    assert_eq!(table.modes().len(), 4);
}
