//! The validated mode declaration `D`: a finite lattice of mode constants.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::{ModeName, ModeTableError, StaticMode};

/// The program's mode declaration `D`, validated into a finite lattice.
///
/// Built from the pairs written in a `modes { a <= b; ... }` block. The
/// implicit ends `⊥` and `⊤` are adjoined automatically; construction fails
/// if the declared order is cyclic or if any pair of modes lacks a unique
/// least upper bound or greatest lower bound (the paper requires `D` to form
/// a lattice for the program to be well-typed).
///
/// # Example
///
/// ```
/// use ent_modes::{ModeName, ModeTable};
///
/// # fn main() -> Result<(), ent_modes::ModeTableError> {
/// let table = ModeTable::linear(["energy_saver", "managed", "full_throttle"])?;
/// assert_eq!(table.modes().len(), 3);
/// assert!(table.le_const(&ModeName::new("energy_saver"), &ModeName::new("full_throttle")));
/// assert!(!table.le_const(&ModeName::new("full_throttle"), &ModeName::new("managed")));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModeTable {
    /// Declared mode constants in declaration order.
    modes: Vec<ModeName>,
    /// Index of each mode in `modes`.
    index: HashMap<ModeName, usize>,
    /// `le[a][b]` = `a ≤ b` over declared constants (reflexive–transitive).
    le: Vec<Vec<bool>>,
}

impl ModeTable {
    /// Starts building a mode table from `≤` pairs.
    pub fn builder() -> ModeTableBuilder {
        ModeTableBuilder::default()
    }

    /// Builds a totally ordered ("linear") mode table, lowest mode first.
    ///
    /// This is the common shape in the paper's benchmarks:
    /// `energy_saver <= managed <= full_throttle`.
    ///
    /// # Errors
    ///
    /// Returns an error if `names` is empty or uses a reserved name.
    pub fn linear<I, S>(names: I) -> Result<Self, ModeTableError>
    where
        I: IntoIterator<Item = S>,
        S: Into<ModeName>,
    {
        let names: Vec<ModeName> = names.into_iter().map(Into::into).collect();
        let mut builder = ModeTable::builder();
        for m in &names {
            builder = builder.mode(m.clone());
        }
        for pair in names.windows(2) {
            builder = builder.le(pair[0].clone(), pair[1].clone());
        }
        builder.build()
    }

    /// The declared mode constants, in declaration order (the paper's
    /// `modes(P)`, used for mcase exhaustiveness).
    pub fn modes(&self) -> &[ModeName] {
        &self.modes
    }

    /// Returns `true` if `name` is a declared mode constant.
    pub fn contains(&self, name: &ModeName) -> bool {
        self.index.contains_key(name)
    }

    /// Orders two declared constants: `a ≤ b` under the declared order.
    ///
    /// Undeclared names are unrelated to everything except themselves.
    pub fn le_const(&self, a: &ModeName, b: &ModeName) -> bool {
        if a == b {
            return true;
        }
        match (self.index.get(a), self.index.get(b)) {
            (Some(&i), Some(&j)) => self.le[i][j],
            _ => false,
        }
    }

    /// Orders two *ground* static modes (no variables), with `⊥`/`⊤` at the
    /// ends. Returns `false` when either side is a variable — variable
    /// ordering is the business of [`crate::ConstraintSet::entails`].
    pub fn le_ground(&self, a: &StaticMode, b: &StaticMode) -> bool {
        match (a, b) {
            (StaticMode::Bot, _) | (_, StaticMode::Top) => true,
            (StaticMode::Top, _) | (_, StaticMode::Bot) => false,
            (StaticMode::Const(x), StaticMode::Const(y)) => self.le_const(x, y),
            _ => false,
        }
    }

    /// Least upper bound of two ground modes in the `⊥`/`⊤`-completed
    /// lattice. Returns `None` if either argument is a variable.
    pub fn lub(&self, a: &StaticMode, b: &StaticMode) -> Option<StaticMode> {
        if !a.is_ground() || !b.is_ground() {
            return None;
        }
        if self.le_ground(a, b) {
            return Some(b.clone());
        }
        if self.le_ground(b, a) {
            return Some(a.clone());
        }
        // Incomparable constants: search minimal common upper bounds.
        let (x, y) = match (a, b) {
            (StaticMode::Const(x), StaticMode::Const(y)) => (x, y),
            _ => unreachable!("non-const ground modes are always comparable"),
        };
        let (&i, &j) = (self.index.get(x)?, self.index.get(y)?);
        let uppers: Vec<usize> = (0..self.modes.len())
            .filter(|&k| self.le[i][k] && self.le[j][k])
            .collect();
        let minimal: Vec<usize> = uppers
            .iter()
            .copied()
            .filter(|&k| uppers.iter().all(|&u| !self.le[u][k] || u == k))
            .collect();
        match minimal.as_slice() {
            [only] => Some(StaticMode::Const(self.modes[*only].clone())),
            [] => Some(StaticMode::Top),
            _ => None,
        }
    }

    /// Greatest lower bound of two ground modes in the `⊥`/`⊤`-completed
    /// lattice. Returns `None` if either argument is a variable.
    pub fn glb(&self, a: &StaticMode, b: &StaticMode) -> Option<StaticMode> {
        if !a.is_ground() || !b.is_ground() {
            return None;
        }
        if self.le_ground(a, b) {
            return Some(a.clone());
        }
        if self.le_ground(b, a) {
            return Some(b.clone());
        }
        let (x, y) = match (a, b) {
            (StaticMode::Const(x), StaticMode::Const(y)) => (x, y),
            _ => unreachable!("non-const ground modes are always comparable"),
        };
        let (&i, &j) = (self.index.get(x)?, self.index.get(y)?);
        let lowers: Vec<usize> = (0..self.modes.len())
            .filter(|&k| self.le[k][i] && self.le[k][j])
            .collect();
        let maximal: Vec<usize> = lowers
            .iter()
            .copied()
            .filter(|&k| lowers.iter().all(|&l| !self.le[k][l] || l == k))
            .collect();
        match maximal.as_slice() {
            [only] => Some(StaticMode::Const(self.modes[*only].clone())),
            [] => Some(StaticMode::Bot),
            _ => None,
        }
    }
}

impl ModeTable {
    /// Renders the lattice's covering edges as Graphviz DOT, with the
    /// implicit `⊥`/`⊤` ends included — handy for documenting a program's
    /// mode structure.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph modes {\n  rankdir=BT;\n");
        out.push_str("  bot [label=\"⊥\"];\n  top [label=\"⊤\"];\n");
        for m in &self.modes {
            out.push_str(&format!("  {m};\n"));
        }
        let n = self.modes.len();
        let covering = |i: usize, j: usize| {
            i != j
                && self.le[i][j]
                && !(0..n).any(|k| k != i && k != j && self.le[i][k] && self.le[k][j])
        };
        for (i, a) in self.modes.iter().enumerate() {
            // bot -> minimal elements; maximal elements -> top.
            if !(0..n).any(|k| k != i && self.le[k][i]) {
                out.push_str(&format!("  bot -> {a};\n"));
            }
            if !(0..n).any(|k| k != i && self.le[i][k]) {
                out.push_str(&format!("  {a} -> top;\n"));
            }
            for (j, b) in self.modes.iter().enumerate() {
                if covering(i, j) {
                    out.push_str(&format!("  {a} -> {b};\n"));
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for ModeTable {
    #[allow(clippy::needless_range_loop)]
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "modes {{ ")?;
        let mut first = true;
        for (i, a) in self.modes.iter().enumerate() {
            for (j, b) in self.modes.iter().enumerate() {
                // Print only covering edges (transitive reduction).
                if i != j
                    && self.le[i][j]
                    && !(0..self.modes.len())
                        .any(|k| k != i && k != j && self.le[i][k] && self.le[k][j])
                {
                    if !first {
                        write!(f, "; ")?;
                    }
                    write!(f, "{a} <= {b}")?;
                    first = false;
                }
            }
        }
        write!(f, " }}")
    }
}

/// Incrementally collects `≤` pairs and validates them into a [`ModeTable`].
#[derive(Clone, Debug, Default)]
pub struct ModeTableBuilder {
    modes: Vec<ModeName>,
    pairs: Vec<(ModeName, ModeName)>,
}

impl ModeTableBuilder {
    /// Declares a mode constant without relating it to any other (useful for
    /// isolated modes, which sit between `⊥` and `⊤` only).
    pub fn mode(mut self, name: ModeName) -> Self {
        if !self.modes.contains(&name) {
            self.modes.push(name);
        }
        self
    }

    /// Declares `lo <= hi`, declaring both names as needed.
    pub fn le(mut self, lo: ModeName, hi: ModeName) -> Self {
        if !self.modes.contains(&lo) {
            self.modes.push(lo.clone());
        }
        if !self.modes.contains(&hi) {
            self.modes.push(hi.clone());
        }
        self.pairs.push((lo, hi));
        self
    }

    /// Validates the collected declaration into a [`ModeTable`].
    ///
    /// # Errors
    ///
    /// * [`ModeTableError::Empty`] if no mode was declared;
    /// * [`ModeTableError::ReservedName`] for `bot`/`top`;
    /// * [`ModeTableError::Cycle`] if the declared `≤` pairs are cyclic;
    /// * [`ModeTableError::NoLub`]/[`ModeTableError::NoGlb`] if the
    ///   `⊥`/`⊤`-completion fails to be a lattice.
    #[allow(clippy::needless_range_loop)] // Floyd–Warshall is clearest with indices
    pub fn build(self) -> Result<ModeTable, ModeTableError> {
        if self.modes.is_empty() {
            return Err(ModeTableError::Empty);
        }
        for m in &self.modes {
            if m.as_str() == "bot" || m.as_str() == "top" {
                return Err(ModeTableError::ReservedName(m.clone()));
            }
        }
        let n = self.modes.len();
        let index: HashMap<ModeName, usize> = self
            .modes
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, m)| (m, i))
            .collect();

        // Reflexive–transitive closure via Floyd–Warshall.
        let mut le = vec![vec![false; n]; n];
        for (i, row) in le.iter_mut().enumerate() {
            row[i] = true;
        }
        for (a, b) in &self.pairs {
            le[index[a]][index[b]] = true;
        }
        for k in 0..n {
            for i in 0..n {
                if le[i][k] {
                    for j in 0..n {
                        if le[k][j] {
                            le[i][j] = true;
                        }
                    }
                }
            }
        }

        // Antisymmetry: a cycle makes two distinct modes mutually ≤.
        for i in 0..n {
            for j in 0..n {
                if i != j && le[i][j] && le[j][i] {
                    return Err(ModeTableError::Cycle(self.modes[i].clone()));
                }
            }
        }

        let table = ModeTable {
            modes: self.modes,
            index,
            le,
        };

        // Lattice check over the ⊥/⊤-completion: every pair of declared
        // constants must have a unique lub and glb.
        let names: Vec<ModeName> = table.modes.clone();
        let mut seen = HashSet::new();
        for a in &names {
            for b in &names {
                if a == b || !seen.insert((a.clone(), b.clone())) {
                    continue;
                }
                let (sa, sb) = (StaticMode::Const(a.clone()), StaticMode::Const(b.clone()));
                if table.lub(&sa, &sb).is_none() {
                    return Err(ModeTableError::NoLub(a.clone(), b.clone()));
                }
                if table.glb(&sa, &sb).is_none() {
                    return Err(ModeTableError::NoGlb(a.clone(), b.clone()));
                }
            }
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(name: &str) -> StaticMode {
        StaticMode::Const(ModeName::new(name))
    }

    fn three() -> ModeTable {
        ModeTable::linear(["energy_saver", "managed", "full_throttle"]).unwrap()
    }

    #[test]
    fn linear_order_is_transitive_and_reflexive() {
        let t = three();
        let (s, m, f) = (
            ModeName::new("energy_saver"),
            ModeName::new("managed"),
            ModeName::new("full_throttle"),
        );
        assert!(t.le_const(&s, &s));
        assert!(t.le_const(&s, &m));
        assert!(t.le_const(&m, &f));
        assert!(t.le_const(&s, &f));
        assert!(!t.le_const(&f, &s));
        assert!(!t.le_const(&m, &s));
    }

    #[test]
    fn bot_and_top_bound_everything() {
        let t = three();
        assert!(t.le_ground(&StaticMode::Bot, &c("managed")));
        assert!(t.le_ground(&c("managed"), &StaticMode::Top));
        assert!(t.le_ground(&StaticMode::Bot, &StaticMode::Top));
        assert!(!t.le_ground(&StaticMode::Top, &c("managed")));
        assert!(!t.le_ground(&c("managed"), &StaticMode::Bot));
    }

    #[test]
    fn undeclared_names_are_only_reflexively_related() {
        let t = three();
        let ghost = ModeName::new("ghost");
        assert!(t.le_const(&ghost, &ghost));
        assert!(!t.le_const(&ghost, &ModeName::new("managed")));
        assert!(!t.le_const(&ModeName::new("managed"), &ghost));
    }

    #[test]
    fn cycle_is_rejected() {
        let err = ModeTable::builder()
            .le(ModeName::new("a"), ModeName::new("b"))
            .le(ModeName::new("b"), ModeName::new("a"))
            .build()
            .unwrap_err();
        assert!(matches!(err, ModeTableError::Cycle(_)));
    }

    #[test]
    fn empty_declaration_is_rejected() {
        assert_eq!(
            ModeTable::builder().build().unwrap_err(),
            ModeTableError::Empty
        );
    }

    #[test]
    fn reserved_names_are_rejected() {
        let err = ModeTable::builder()
            .mode(ModeName::new("top"))
            .build()
            .unwrap_err();
        assert!(matches!(err, ModeTableError::ReservedName(_)));
    }

    #[test]
    fn diamond_is_a_lattice() {
        // a <= b, a <= c, b <= d, c <= d
        let t = ModeTable::builder()
            .le(ModeName::new("a"), ModeName::new("b"))
            .le(ModeName::new("a"), ModeName::new("c"))
            .le(ModeName::new("b"), ModeName::new("d"))
            .le(ModeName::new("c"), ModeName::new("d"))
            .build()
            .unwrap();
        assert_eq!(t.lub(&c("b"), &c("c")), Some(c("d")));
        assert_eq!(t.glb(&c("b"), &c("c")), Some(c("a")));
    }

    #[test]
    fn incomparable_pair_without_common_bound_meets_at_lattice_ends() {
        // Two isolated modes: lub is ⊤, glb is ⊥ in the completion.
        let t = ModeTable::builder()
            .mode(ModeName::new("a"))
            .mode(ModeName::new("b"))
            .build()
            .unwrap();
        assert_eq!(t.lub(&c("a"), &c("b")), Some(StaticMode::Top));
        assert_eq!(t.glb(&c("a"), &c("b")), Some(StaticMode::Bot));
    }

    #[test]
    fn non_lattice_order_is_rejected() {
        // "Bowtie": a,b <= c and a,b <= d with c,d incomparable gives two
        // minimal upper bounds for {a,b} — not a lattice.
        let err = ModeTable::builder()
            .le(ModeName::new("a"), ModeName::new("c"))
            .le(ModeName::new("a"), ModeName::new("d"))
            .le(ModeName::new("b"), ModeName::new("c"))
            .le(ModeName::new("b"), ModeName::new("d"))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ModeTableError::NoLub(_, _) | ModeTableError::NoGlb(_, _)
        ));
    }

    #[test]
    fn lub_glb_with_comparable_arguments() {
        let t = three();
        assert_eq!(t.lub(&c("energy_saver"), &c("managed")), Some(c("managed")));
        assert_eq!(
            t.glb(&c("energy_saver"), &c("managed")),
            Some(c("energy_saver"))
        );
        assert_eq!(t.lub(&StaticMode::Bot, &c("managed")), Some(c("managed")));
        assert_eq!(t.glb(&StaticMode::Top, &c("managed")), Some(c("managed")));
    }

    #[test]
    fn lub_of_variables_is_none() {
        let t = three();
        let x = StaticMode::Var(crate::ModeVar::new("X"));
        assert_eq!(t.lub(&x, &c("managed")), None);
        assert_eq!(t.glb(&c("managed"), &x), None);
        assert!(!t.le_ground(&x, &c("managed")));
    }

    #[test]
    fn to_dot_renders_covering_edges_and_ends() {
        let dot = three().to_dot();
        assert!(dot.contains("energy_saver -> managed"));
        assert!(dot.contains("managed -> full_throttle"));
        assert!(!dot.contains("energy_saver -> full_throttle"));
        assert!(dot.contains("bot -> energy_saver"));
        assert!(dot.contains("full_throttle -> top"));

        // Diamond: both middle elements reachable from a, both reach d.
        let t = ModeTable::builder()
            .le(ModeName::new("a"), ModeName::new("b"))
            .le(ModeName::new("a"), ModeName::new("c"))
            .le(ModeName::new("b"), ModeName::new("d"))
            .le(ModeName::new("c"), ModeName::new("d"))
            .build()
            .unwrap();
        let dot = t.to_dot();
        assert!(dot.contains("a -> b") && dot.contains("a -> c"));
        assert!(dot.contains("b -> d") && dot.contains("c -> d"));
        assert!(dot.contains("bot -> a") && dot.contains("d -> top"));
    }

    #[test]
    fn display_prints_covering_edges() {
        let s = three().to_string();
        assert!(s.contains("energy_saver <= managed"));
        assert!(s.contains("managed <= full_throttle"));
        assert!(!s.contains("energy_saver <= full_throttle"));
    }
}
