//! Interned names for mode constants and mode type variables.

use std::fmt;
use std::sync::Arc;

/// The name of a mode constant declared in a `modes { ... }` block, such as
/// `energy_saver` or `full_throttle`.
///
/// `ModeName` is cheap to clone (it shares an `Arc<str>`), compares by
/// string content, and is ordered lexicographically so collections of names
/// have a deterministic iteration order.
///
/// # Example
///
/// ```
/// use ent_modes::ModeName;
///
/// let a = ModeName::new("managed");
/// let b = a.clone();
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "managed");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModeName(Arc<str>);

impl ModeName {
    /// Creates a mode name from a string.
    pub fn new(name: impl AsRef<str>) -> Self {
        ModeName(Arc::from(name.as_ref()))
    }

    /// Returns the name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ModeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for ModeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ModeName({})", self.0)
    }
}

impl From<&str> for ModeName {
    fn from(s: &str) -> Self {
        ModeName::new(s)
    }
}

impl From<String> for ModeName {
    fn from(s: String) -> Self {
        ModeName::new(s)
    }
}

/// A mode *type variable* `mt`, ranging over modes.
///
/// Mode variables come from two places:
///
/// * generic mode parameters written by the programmer, e.g. the `X` in
///   `class Agent@mode<? <= X>`;
/// * fresh variables invented by the typechecker when opening the bounded
///   existential type of a `snapshot` expression.
///
/// # Example
///
/// ```
/// use ent_modes::ModeVar;
///
/// let x = ModeVar::new("X");
/// assert_eq!(x.as_str(), "X");
/// assert_ne!(x, ModeVar::new("Y"));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModeVar(Arc<str>);

impl ModeVar {
    /// Creates a mode variable with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        ModeVar(Arc::from(name.as_ref()))
    }

    /// Returns the variable name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ModeVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for ModeVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ModeVar({})", self.0)
    }
}

impl From<&str> for ModeVar {
    fn from(s: &str) -> Self {
        ModeVar::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mode_name_equality_is_by_content() {
        assert_eq!(ModeName::new("a"), ModeName::new("a"));
        assert_ne!(ModeName::new("a"), ModeName::new("b"));
    }

    #[test]
    fn mode_name_display_round_trips() {
        let n = ModeName::new("full_throttle");
        assert_eq!(n.to_string(), "full_throttle");
    }

    #[test]
    fn mode_name_ordering_is_lexicographic() {
        let mut v = [ModeName::new("c"), ModeName::new("a"), ModeName::new("b")];
        v.sort();
        let names: Vec<_> = v.iter().map(ModeName::as_str).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn mode_names_hash_consistently() {
        let mut set = HashSet::new();
        set.insert(ModeName::new("m"));
        assert!(set.contains(&ModeName::new("m")));
        assert!(!set.contains(&ModeName::new("n")));
    }

    #[test]
    fn mode_var_roundtrip_and_debug_nonempty() {
        let x = ModeVar::new("X");
        assert_eq!(x.to_string(), "X");
        assert!(!format!("{x:?}").is_empty());
    }

    #[test]
    fn conversions_from_str_and_string() {
        let a: ModeName = "m".into();
        let b: ModeName = String::from("m").into();
        assert_eq!(a, b);
        let v: ModeVar = "X".into();
        assert_eq!(v.as_str(), "X");
    }
}
