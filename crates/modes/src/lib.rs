//! Mode lattices, mode expressions, and constraint entailment for ENT.
//!
//! This crate implements the *mode* layer of the ENT language from
//! "Proactive and Adaptive Energy-Aware Programming with Mixed Typechecking"
//! (Canino & Liu, PLDI 2017): the programmer-declared partial order over mode
//! constants (`modes { energy_saver <= managed; ... }`), the grammar of mode
//! expressions used by the type system (Figure 2 of the paper), and the
//! constraint sets `K` with the entailment judgment `K ⊨ K'` that drives the
//! waterfall invariant.
//!
//! # Overview
//!
//! * [`ModeName`] / [`ModeVar`] — interned names for mode constants and mode
//!   type variables.
//! * [`StaticMode`] — the paper's `η ::= m | mt | ⊤ | ⊥`.
//! * [`Mode`] — the paper's `µ ::= η | ?`, i.e. a static mode or the dynamic
//!   mode `?` whose concrete value is determined at run time by an attributor.
//! * [`ModeTable`] — the validated `modes { ... }` declaration `D`; checks
//!   that the declared order is a partial order and forms a lattice once the
//!   implicit `⊥`/`⊤` ends are adjoined, and answers ordering, join and meet
//!   queries.
//! * [`ConstraintSet`] — the constraint set `K` of the typing judgment
//!   `Γ; K ⊢ e : τ`, with entailment by graph reachability over the
//!   reflexive–transitive closure of `K ∪ D`.
//! * [`Bounded`], [`ClassModeParams`], [`ModeArgs`], [`Subst`] — the `ω`, `∆`
//!   and `ι` forms of Figure 2 plus point-wise mode substitution.
//!
//! # Example
//!
//! ```
//! use ent_modes::{ModeTable, ModeName, StaticMode, ConstraintSet};
//!
//! # fn main() -> Result<(), ent_modes::ModeTableError> {
//! let saver = ModeName::new("energy_saver");
//! let managed = ModeName::new("managed");
//! let full = ModeName::new("full_throttle");
//! let table = ModeTable::builder()
//!     .le(saver.clone(), managed.clone())
//!     .le(managed.clone(), full.clone())
//!     .build()?;
//!
//! assert!(table.le_const(&saver, &full));
//! let k = ConstraintSet::new();
//! assert!(k.entails(&table, &StaticMode::Const(saver), &StaticMode::Const(full)));
//! # Ok(())
//! # }
//! ```

mod constraint;
mod error;
mod mode;
mod name;
mod table;

pub use constraint::{Constraint, ConstraintSet};
pub use error::ModeTableError;
pub use mode::{Bounded, ClassModeParams, Mode, ModeArgs, StaticMode, Subst};
pub use name::{ModeName, ModeVar};
pub use table::{ModeTable, ModeTableBuilder};
