//! Constraint sets `K` and the entailment judgment `K ⊨ K'`.

use std::fmt;

use crate::{ModeTable, ModeVar, StaticMode};

/// A single constraint `η ≤ η'` between static modes.
///
/// The dynamic mode `?` cannot appear in a constraint — this is the paper's
/// requirement that "no `?` may appear on either end of `≤`", and it is
/// enforced here by construction since [`StaticMode`] has no dynamic variant.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// The smaller side.
    pub lo: StaticMode,
    /// The larger side.
    pub hi: StaticMode,
}

impl Constraint {
    /// Creates the constraint `lo ≤ hi`.
    pub fn new(lo: StaticMode, hi: StaticMode) -> Self {
        Constraint { lo, hi }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ≤ {}", self.lo, self.hi)
    }
}

impl From<(StaticMode, StaticMode)> for Constraint {
    fn from((lo, hi): (StaticMode, StaticMode)) -> Self {
        Constraint { lo, hi }
    }
}

/// The constraint set `K` of the typing judgment `Γ; K ⊢ e : τ`.
///
/// Entailment `K ⊨ {η ≤ η'}` holds iff `η ≤ η'` is in the
/// reflexive–transitive closure of `K ∪ D`, where `D` is the program's
/// declared mode order ([`ModeTable`]). Queries are answered by a graph
/// search over the constraint edges plus the lattice's ground ordering, so
/// constraints between variables compose transitively with the declared
/// order (e.g. `K = {X ≤ managed}` entails `X ≤ full_throttle`).
///
/// # Example
///
/// ```
/// use ent_modes::{ConstraintSet, ModeTable, ModeName, ModeVar, StaticMode};
///
/// # fn main() -> Result<(), ent_modes::ModeTableError> {
/// let table = ModeTable::linear(["low", "high"])?;
/// let x = StaticMode::Var(ModeVar::new("X"));
/// let low = StaticMode::Const(ModeName::new("low"));
/// let high = StaticMode::Const(ModeName::new("high"));
///
/// let mut k = ConstraintSet::new();
/// k.push(x.clone(), low.clone());
/// assert!(k.entails(&table, &x, &high)); // X ≤ low ≤ high
/// assert!(!k.entails(&table, &high, &x));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConstraintSet {
    items: Vec<Constraint>,
}

impl ConstraintSet {
    /// Creates an empty constraint set.
    pub fn new() -> Self {
        ConstraintSet::default()
    }

    /// Adds the constraint `lo ≤ hi`.
    pub fn push(&mut self, lo: StaticMode, hi: StaticMode) {
        let c = Constraint::new(lo, hi);
        if !self.items.contains(&c) {
            self.items.push(c);
        }
    }

    /// Adds every constraint from an iterator of `(lo, hi)` pairs.
    pub fn extend_pairs<I>(&mut self, pairs: I)
    where
        I: IntoIterator<Item = (StaticMode, StaticMode)>,
    {
        for (lo, hi) in pairs {
            self.push(lo, hi);
        }
    }

    /// The constraints currently in the set.
    pub fn iter(&self) -> impl Iterator<Item = &Constraint> {
        self.items.iter()
    }

    /// Returns `true` if the set holds no constraints.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of constraints in the set.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// The entailment judgment `K ⊨ {lo ≤ hi}`.
    ///
    /// Searches the reachability graph whose edges are this set's
    /// constraints plus the ground ordering of `table` (with `⊥`/`⊤` at the
    /// ends). Reflexivity and transitivity are built in.
    pub fn entails(&self, table: &ModeTable, lo: &StaticMode, hi: &StaticMode) -> bool {
        if lo == hi || matches!(lo, StaticMode::Bot) || matches!(hi, StaticMode::Top) {
            return true;
        }
        // Worklist search from `lo`, following constraint edges and, between
        // ground modes, the declared order.
        let mut visited: Vec<StaticMode> = vec![lo.clone()];
        let mut frontier: Vec<StaticMode> = vec![lo.clone()];
        while let Some(cur) = frontier.pop() {
            // Direct ground comparison with the goal.
            if cur.is_ground() && hi.is_ground() && table.le_ground(&cur, hi) {
                return true;
            }
            for c in &self.items {
                let steps_to = if c.lo == cur {
                    Some(c.hi.clone())
                } else if cur.is_ground() && c.lo.is_ground() && table.le_ground(&cur, &c.lo) {
                    // cur ≤ c.lo ≤ c.hi via the declared order.
                    Some(c.hi.clone())
                } else {
                    None
                };
                if let Some(next) = steps_to {
                    if next == *hi {
                        return true;
                    }
                    if !visited.contains(&next) {
                        visited.push(next.clone());
                        frontier.push(next);
                    }
                }
            }
        }
        false
    }

    /// The entailment judgment `K ⊨ K'` for a whole set: every constraint of
    /// `other` must be entailed.
    pub fn entails_all(&self, table: &ModeTable, other: &ConstraintSet) -> bool {
        other.iter().all(|c| self.entails(table, &c.lo, &c.hi))
    }

    /// Entails every `(lo, hi)` pair in the iterator.
    pub fn entails_pairs<'a, I>(&self, table: &ModeTable, pairs: I) -> bool
    where
        I: IntoIterator<Item = &'a (StaticMode, StaticMode)>,
    {
        pairs
            .into_iter()
            .all(|(lo, hi)| self.entails(table, lo, hi))
    }

    /// Collects every mode variable mentioned by the constraints into `out`.
    pub fn collect_vars(&self, out: &mut Vec<ModeVar>) {
        for c in &self.items {
            c.lo.collect_vars(out);
            c.hi.collect_vars(out);
        }
    }
}

impl FromIterator<(StaticMode, StaticMode)> for ConstraintSet {
    fn from_iter<I: IntoIterator<Item = (StaticMode, StaticMode)>>(iter: I) -> Self {
        let mut k = ConstraintSet::new();
        k.extend_pairs(iter);
        k
    }
}

impl Extend<(StaticMode, StaticMode)> for ConstraintSet {
    fn extend<I: IntoIterator<Item = (StaticMode, StaticMode)>>(&mut self, iter: I) {
        self.extend_pairs(iter);
    }
}

impl fmt::Display for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModeName;

    fn c(name: &str) -> StaticMode {
        StaticMode::Const(ModeName::new(name))
    }

    fn v(name: &str) -> StaticMode {
        StaticMode::Var(ModeVar::new(name))
    }

    fn table() -> ModeTable {
        ModeTable::linear(["energy_saver", "managed", "full_throttle"]).unwrap()
    }

    #[test]
    fn empty_set_entails_declared_order() {
        let k = ConstraintSet::new();
        let t = table();
        assert!(k.entails(&t, &c("energy_saver"), &c("full_throttle")));
        assert!(!k.entails(&t, &c("full_throttle"), &c("energy_saver")));
    }

    #[test]
    fn reflexivity_holds_for_variables() {
        let k = ConstraintSet::new();
        let t = table();
        assert!(k.entails(&t, &v("X"), &v("X")));
    }

    #[test]
    fn bot_and_top_are_universal_bounds() {
        let k = ConstraintSet::new();
        let t = table();
        assert!(k.entails(&t, &StaticMode::Bot, &v("X")));
        assert!(k.entails(&t, &v("X"), &StaticMode::Top));
    }

    #[test]
    fn transitivity_through_variables() {
        let t = table();
        let mut k = ConstraintSet::new();
        k.push(v("X"), v("Y"));
        k.push(v("Y"), c("managed"));
        assert!(k.entails(&t, &v("X"), &c("managed")));
        // And further through the declared order:
        assert!(k.entails(&t, &v("X"), &c("full_throttle")));
        assert!(!k.entails(&t, &v("X"), &c("energy_saver")));
    }

    #[test]
    fn ground_step_into_constraint_edges() {
        // energy_saver ≤ X should follow from managed ≤ X (since
        // energy_saver ≤ managed is declared).
        let t = table();
        let mut k = ConstraintSet::new();
        k.push(c("managed"), v("X"));
        assert!(k.entails(&t, &c("energy_saver"), &v("X")));
        assert!(!k.entails(&t, &c("full_throttle"), &v("X")));
    }

    #[test]
    fn unrelated_variables_are_not_entailed() {
        let t = table();
        let mut k = ConstraintSet::new();
        k.push(v("X"), c("managed"));
        assert!(!k.entails(&t, &v("Y"), &c("managed")));
        assert!(!k.entails(&t, &v("X"), &v("Y")));
    }

    #[test]
    fn entails_all_requires_every_constraint() {
        let t = table();
        let mut k = ConstraintSet::new();
        k.push(v("X"), c("managed"));

        let goal: ConstraintSet = [(v("X"), c("full_throttle"))].into_iter().collect();
        assert!(k.entails_all(&t, &goal));

        let goal: ConstraintSet = [(v("X"), c("full_throttle")), (c("managed"), v("X"))]
            .into_iter()
            .collect();
        assert!(!k.entails_all(&t, &goal));
    }

    #[test]
    fn duplicate_constraints_are_deduplicated() {
        let mut k = ConstraintSet::new();
        k.push(v("X"), c("managed"));
        k.push(v("X"), c("managed"));
        assert_eq!(k.len(), 1);
    }

    #[test]
    fn display_shows_constraints() {
        let mut k = ConstraintSet::new();
        k.push(v("X"), c("managed"));
        assert_eq!(k.to_string(), "{X ≤ managed}");
    }

    #[test]
    fn collect_vars_finds_both_sides() {
        let mut k = ConstraintSet::new();
        k.push(v("X"), v("Y"));
        let mut vars = Vec::new();
        k.collect_vars(&mut vars);
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn cyclic_constraints_terminate() {
        let t = table();
        let mut k = ConstraintSet::new();
        k.push(v("X"), v("Y"));
        k.push(v("Y"), v("X"));
        assert!(k.entails(&t, &v("X"), &v("Y")));
        assert!(k.entails(&t, &v("Y"), &v("X")));
        assert!(!k.entails(&t, &v("X"), &c("energy_saver")));
    }
}
