//! Mode expressions: the `η`, `µ`, `ω`, `∆` and `ι` forms of Figure 2.

use std::collections::HashMap;
use std::fmt;

use crate::{ModeName, ModeVar};

/// A *static* mode `η ::= m | mt | ⊤ | ⊥`.
///
/// Static modes are the modes the type system can reason about at compile
/// time: a declared mode constant, a mode type variable, or one of the two
/// implicit lattice ends. The dynamic mode `?` is deliberately *not* a
/// `StaticMode`; the paper's waterfall constraints forbid `?` on either side
/// of `≤`, and this crate enforces that prohibition in the types.
///
/// # Example
///
/// ```
/// use ent_modes::{ModeName, ModeVar, StaticMode};
///
/// let m = StaticMode::Const(ModeName::new("managed"));
/// let x = StaticMode::Var(ModeVar::new("X"));
/// assert!(m.is_ground());
/// assert!(!x.is_ground());
/// assert_eq!(StaticMode::Top.to_string(), "⊤");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StaticMode {
    /// The bottom of the mode lattice; less than every mode.
    Bot,
    /// The top of the mode lattice; greater than every mode. The program is
    /// booted under `⊤` (`boot(P) = cl(⊤, e)`).
    Top,
    /// A mode constant declared in the `modes { ... }` block.
    Const(ModeName),
    /// A mode type variable, e.g. a class generic mode parameter or a fresh
    /// existential variable introduced for a snapshot result.
    Var(ModeVar),
}

impl StaticMode {
    /// Returns `true` if the mode contains no mode variables.
    pub fn is_ground(&self) -> bool {
        !matches!(self, StaticMode::Var(_))
    }

    /// Returns the mode variable if this is a variable, otherwise `None`.
    pub fn as_var(&self) -> Option<&ModeVar> {
        match self {
            StaticMode::Var(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the mode constant if this is a constant, otherwise `None`.
    pub fn as_const(&self) -> Option<&ModeName> {
        match self {
            StaticMode::Const(m) => Some(m),
            _ => None,
        }
    }

    /// Applies a substitution, replacing variables bound in `subst`.
    pub fn apply(&self, subst: &Subst) -> StaticMode {
        match self {
            StaticMode::Var(v) => subst.get(v).cloned().unwrap_or_else(|| self.clone()),
            _ => self.clone(),
        }
    }

    /// Collects every mode variable occurring in this mode into `out`.
    pub fn collect_vars(&self, out: &mut Vec<ModeVar>) {
        if let StaticMode::Var(v) = self {
            if !out.contains(v) {
                out.push(v.clone());
            }
        }
    }
}

impl fmt::Display for StaticMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaticMode::Bot => f.write_str("⊥"),
            StaticMode::Top => f.write_str("⊤"),
            StaticMode::Const(m) => write!(f, "{m}"),
            StaticMode::Var(v) => write!(f, "{v}"),
        }
    }
}

impl From<ModeName> for StaticMode {
    fn from(m: ModeName) -> Self {
        StaticMode::Const(m)
    }
}

impl From<ModeVar> for StaticMode {
    fn from(v: ModeVar) -> Self {
        StaticMode::Var(v)
    }
}

/// A mode `µ ::= η | ?` — either a static mode or the dynamic mode.
///
/// The dynamic mode `?` marks an object whose mode is determined at run time
/// by evaluating its attributor; the type system refuses to send messages to
/// such objects until they are `snapshot`-ted into a static mode.
///
/// # Example
///
/// ```
/// use ent_modes::{Mode, StaticMode};
///
/// assert!(Mode::Dynamic.is_dynamic());
/// assert_eq!(Mode::Dynamic.to_string(), "?");
/// let top = Mode::Static(StaticMode::Top);
/// assert_eq!(top.as_static(), Some(&StaticMode::Top));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Mode {
    /// The dynamic mode `?`.
    Dynamic,
    /// A static mode `η`.
    Static(StaticMode),
}

impl Mode {
    /// Returns `true` if this is the dynamic mode `?`.
    pub fn is_dynamic(&self) -> bool {
        matches!(self, Mode::Dynamic)
    }

    /// Returns the static mode if this mode is static, otherwise `None`.
    pub fn as_static(&self) -> Option<&StaticMode> {
        match self {
            Mode::Dynamic => None,
            Mode::Static(m) => Some(m),
        }
    }

    /// Applies a substitution to the static part, leaving `?` untouched.
    pub fn apply(&self, subst: &Subst) -> Mode {
        match self {
            Mode::Dynamic => Mode::Dynamic,
            Mode::Static(m) => Mode::Static(m.apply(subst)),
        }
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::Dynamic => f.write_str("?"),
            Mode::Static(m) => write!(f, "{m}"),
        }
    }
}

impl From<StaticMode> for Mode {
    fn from(m: StaticMode) -> Self {
        Mode::Static(m)
    }
}

/// A bounded mode variable `ω ::= η ≤ mt ≤ η'` (a "constrained mode").
///
/// Bounded variables appear in class parameter lists `∆` and in the bounded
/// existential types `∃ω.τ` that type `snapshot` expressions.
///
/// # Example
///
/// ```
/// use ent_modes::{Bounded, ModeVar, StaticMode};
///
/// let w = Bounded::unconstrained(ModeVar::new("X"));
/// assert_eq!(w.lo, StaticMode::Bot);
/// assert_eq!(w.hi, StaticMode::Top);
/// assert_eq!(w.to_string(), "⊥ ≤ X ≤ ⊤");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Bounded {
    /// The lower bound `η`.
    pub lo: StaticMode,
    /// The bounded variable `mt`.
    pub var: ModeVar,
    /// The upper bound `η'`.
    pub hi: StaticMode,
}

impl Bounded {
    /// Creates a bounded variable with the given bounds.
    pub fn new(lo: StaticMode, var: ModeVar, hi: StaticMode) -> Self {
        Bounded { lo, var, hi }
    }

    /// Creates a variable bounded only by the lattice ends: `⊥ ≤ mt ≤ ⊤`.
    pub fn unconstrained(var: ModeVar) -> Self {
        Bounded {
            lo: StaticMode::Bot,
            var,
            hi: StaticMode::Top,
        }
    }

    /// The paper's `cons(ω)`: the pair of constraints `{η ≤ mt, mt ≤ η'}`.
    pub fn cons(&self) -> [(StaticMode, StaticMode); 2] {
        let v = StaticMode::Var(self.var.clone());
        [(self.lo.clone(), v.clone()), (v, self.hi.clone())]
    }

    /// Applies a substitution to the bounds (not the bound variable itself).
    pub fn apply_bounds(&self, subst: &Subst) -> Bounded {
        Bounded {
            lo: self.lo.apply(subst),
            var: self.var.clone(),
            hi: self.hi.apply(subst),
        }
    }
}

impl fmt::Display for Bounded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ≤ {} ≤ {}", self.lo, self.var, self.hi)
    }
}

/// A class parameter list `∆ ::= ? → ω, Ω | Ω`.
///
/// The first (implicit) parameter of every class is the mode of the object
/// itself. A *dynamic* class (`dynamic == true`) is written
/// `class C@mode<? <= X>` in the surface syntax: objects are instantiated
/// with the dynamic mode, while the class body views its own mode as the
/// bounded variable carried by the first element of `bounds`. A non-dynamic
/// class with bounds is a *generic-mode* class `class C@mode<X>`.
///
/// # Example
///
/// ```
/// use ent_modes::{Bounded, ClassModeParams, Mode, ModeVar};
///
/// // class Agent@mode<? <= X>
/// let delta = ClassModeParams::dynamic(vec![Bounded::unconstrained(ModeVar::new("X"))]);
/// assert_eq!(delta.cmode(), Mode::Dynamic);
/// assert_eq!(delta.params(), vec![ModeVar::new("X")]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassModeParams {
    /// `true` when the class is declared with the dynamic mode `?`.
    pub dynamic: bool,
    /// The bounded mode parameters `Ω`. For a dynamic class the first entry
    /// is the internal view of the object's own mode; for a static generic
    /// class the first entry is the mode parameter itself.
    pub bounds: Vec<Bounded>,
}

impl ClassModeParams {
    /// A class with no mode machinery at all (mode-neutral helper classes);
    /// such classes get the fixed mode `⊥` so any context can message them.
    pub fn neutral() -> Self {
        ClassModeParams {
            dynamic: false,
            bounds: Vec::new(),
        }
    }

    /// A dynamic class `? → ω, Ω`. `bounds` must be non-empty: its first
    /// element is the internal generic view of the object's own mode.
    pub fn dynamic(bounds: Vec<Bounded>) -> Self {
        debug_assert!(
            !bounds.is_empty(),
            "dynamic class needs an internal mode parameter"
        );
        ClassModeParams {
            dynamic: true,
            bounds,
        }
    }

    /// A static class parameter list `Ω`.
    pub fn with_bounds(bounds: Vec<Bounded>) -> Self {
        ClassModeParams {
            dynamic: false,
            bounds,
        }
    }

    /// The paper's `cmode(∆)`: `?` for dynamic classes, otherwise the first
    /// declared parameter (or `⊥` for mode-neutral classes).
    pub fn cmode(&self) -> Mode {
        if self.dynamic {
            Mode::Dynamic
        } else if let Some(first) = self.bounds.first() {
            Mode::Static(StaticMode::Var(first.var.clone()))
        } else {
            Mode::Static(StaticMode::Bot)
        }
    }

    /// The paper's `param(∆)`: the list of bound mode variables, in order.
    pub fn params(&self) -> Vec<ModeVar> {
        self.bounds.iter().map(|b| b.var.clone()).collect()
    }

    /// The paper's `cons(∆)`: the constraints generated by all bounds.
    pub fn cons(&self) -> Vec<(StaticMode, StaticMode)> {
        self.bounds.iter().flat_map(|b| b.cons()).collect()
    }

    /// The number of mode arguments an instantiation must supply (the object
    /// mode plus any *additional* mode parameters).
    ///
    /// A dynamic class's first bound is its object mode, so the count of
    /// additional arguments is `bounds.len() - 1`; a static generic class's
    /// first bound is also the object mode. Mode-neutral classes take no
    /// arguments.
    pub fn extra_arity(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }
}

impl fmt::Display for ClassModeParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        let mut bounds = self.bounds.iter();
        if self.dynamic {
            match bounds.next() {
                Some(b) => parts.push(format!("? → {b}")),
                None => parts.push("?".to_string()),
            }
        }
        for b in bounds {
            parts.push(b.to_string());
        }
        write!(f, "{}", parts.join(", "))
    }
}

/// An object parameter list `ι ::= η | ?, η` — the mode arguments of an
/// object type `c⟨ι⟩`.
///
/// The first element (`mode`) is the mode of the object itself, possibly
/// dynamic; subsequent elements (`rest`) instantiate any additional mode
/// parameters and must be static.
///
/// # Example
///
/// ```
/// use ent_modes::{Mode, ModeArgs, ModeName, StaticMode};
///
/// let managed = StaticMode::Const(ModeName::new("managed"));
/// let args = ModeArgs::of_static(managed.clone());
/// assert_eq!(args.omode(), &Mode::Static(managed));
/// assert_eq!(args.to_string(), "managed");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModeArgs {
    /// The mode of the object itself (`omode`).
    pub mode: Mode,
    /// Instantiations for additional mode parameters.
    pub rest: Vec<StaticMode>,
}

impl ModeArgs {
    /// Creates mode arguments from an object mode and extra arguments.
    pub fn new(mode: Mode, rest: Vec<StaticMode>) -> Self {
        ModeArgs { mode, rest }
    }

    /// A single static object mode with no extra arguments.
    pub fn of_static(mode: StaticMode) -> Self {
        ModeArgs {
            mode: Mode::Static(mode),
            rest: Vec::new(),
        }
    }

    /// The dynamic object mode with no extra arguments.
    pub fn of_dynamic() -> Self {
        ModeArgs {
            mode: Mode::Dynamic,
            rest: Vec::new(),
        }
    }

    /// The paper's `omode(c⟨ι⟩)`: the first element of the list.
    pub fn omode(&self) -> &Mode {
        &self.mode
    }

    /// Applies a substitution point-wise.
    pub fn apply(&self, subst: &Subst) -> ModeArgs {
        ModeArgs {
            mode: self.mode.apply(subst),
            rest: self.rest.iter().map(|m| m.apply(subst)).collect(),
        }
    }

    /// Collects every mode variable occurring in the arguments into `out`.
    pub fn collect_vars(&self, out: &mut Vec<ModeVar>) {
        if let Mode::Static(m) = &self.mode {
            m.collect_vars(out);
        }
        for m in &self.rest {
            m.collect_vars(out);
        }
    }

    /// Returns `true` if the object mode is dynamic.
    pub fn is_dynamic(&self) -> bool {
        self.mode.is_dynamic()
    }
}

impl fmt::Display for ModeArgs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mode)?;
        for m in &self.rest {
            write!(f, ", {m}")?;
        }
        Ok(())
    }
}

/// A substitution from mode variables to static modes, used for the
/// point-wise instantiation `∆{ι/ι'}` and for generic method-mode inference.
///
/// # Example
///
/// ```
/// use ent_modes::{ModeName, ModeVar, StaticMode, Subst};
///
/// let mut s = Subst::new();
/// s.insert(ModeVar::new("X"), StaticMode::Const(ModeName::new("managed")));
/// let x = StaticMode::Var(ModeVar::new("X"));
/// assert_eq!(x.apply(&s), StaticMode::Const(ModeName::new("managed")));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Subst {
    map: HashMap<ModeVar, StaticMode>,
}

impl Subst {
    /// Creates an empty substitution.
    pub fn new() -> Self {
        Subst::default()
    }

    /// Creates a substitution binding each variable in `vars` to the
    /// corresponding mode in `args` (pairs beyond the shorter list are
    /// ignored).
    pub fn bind(vars: &[ModeVar], args: &[StaticMode]) -> Self {
        let map = vars.iter().cloned().zip(args.iter().cloned()).collect();
        Subst { map }
    }

    /// Adds a binding, returning the previous binding for the variable.
    pub fn insert(&mut self, var: ModeVar, mode: StaticMode) -> Option<StaticMode> {
        self.map.insert(var, mode)
    }

    /// Looks up the binding for a variable.
    pub fn get(&self, var: &ModeVar) -> Option<&StaticMode> {
        self.map.get(var)
    }

    /// Returns `true` if the substitution binds no variables.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }
}

impl FromIterator<(ModeVar, StaticMode)> for Subst {
    fn from_iter<I: IntoIterator<Item = (ModeVar, StaticMode)>>(iter: I) -> Self {
        Subst {
            map: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(name: &str) -> StaticMode {
        StaticMode::Const(ModeName::new(name))
    }

    fn v(name: &str) -> StaticMode {
        StaticMode::Var(ModeVar::new(name))
    }

    #[test]
    fn static_mode_groundness() {
        assert!(StaticMode::Bot.is_ground());
        assert!(StaticMode::Top.is_ground());
        assert!(c("m").is_ground());
        assert!(!v("X").is_ground());
    }

    #[test]
    fn static_mode_display() {
        assert_eq!(StaticMode::Bot.to_string(), "⊥");
        assert_eq!(StaticMode::Top.to_string(), "⊤");
        assert_eq!(c("m").to_string(), "m");
        assert_eq!(v("X").to_string(), "X");
    }

    #[test]
    fn substitution_replaces_bound_vars_only() {
        let mut s = Subst::new();
        s.insert(ModeVar::new("X"), c("m"));
        assert_eq!(v("X").apply(&s), c("m"));
        assert_eq!(v("Y").apply(&s), v("Y"));
        assert_eq!(c("m").apply(&s), c("m"));
        assert_eq!(StaticMode::Top.apply(&s), StaticMode::Top);
    }

    #[test]
    fn subst_bind_pairs_vars_with_args() {
        let s = Subst::bind(&[ModeVar::new("X"), ModeVar::new("Y")], &[c("a"), c("b")]);
        assert_eq!(v("X").apply(&s), c("a"));
        assert_eq!(v("Y").apply(&s), c("b"));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn mode_dynamic_is_preserved_by_substitution() {
        let mut s = Subst::new();
        s.insert(ModeVar::new("X"), c("m"));
        assert_eq!(Mode::Dynamic.apply(&s), Mode::Dynamic);
        assert_eq!(Mode::Static(v("X")).apply(&s), Mode::Static(c("m")));
    }

    #[test]
    fn bounded_cons_produces_both_constraints() {
        let w = Bounded::new(c("lo"), ModeVar::new("X"), c("hi"));
        let [l, r] = w.cons();
        assert_eq!(l, (c("lo"), v("X")));
        assert_eq!(r, (v("X"), c("hi")));
    }

    #[test]
    fn class_params_cmode_variants() {
        assert_eq!(
            ClassModeParams::neutral().cmode(),
            Mode::Static(StaticMode::Bot)
        );

        let dynamic = ClassModeParams::dynamic(vec![Bounded::unconstrained(ModeVar::new("X"))]);
        assert_eq!(dynamic.cmode(), Mode::Dynamic);

        let generic = ClassModeParams::with_bounds(vec![Bounded::unconstrained(ModeVar::new("X"))]);
        assert_eq!(generic.cmode(), Mode::Static(v("X")));
    }

    #[test]
    fn class_params_cons_flattens_all_bounds() {
        let delta = ClassModeParams::dynamic(vec![
            Bounded::new(StaticMode::Bot, ModeVar::new("X"), c("hi")),
            Bounded::unconstrained(ModeVar::new("Y")),
        ]);
        assert_eq!(delta.cons().len(), 4);
        assert_eq!(delta.params(), vec![ModeVar::new("X"), ModeVar::new("Y")]);
        assert_eq!(delta.extra_arity(), 1);
    }

    #[test]
    fn mode_args_omode_and_display() {
        let args = ModeArgs::new(Mode::Dynamic, vec![c("m")]);
        assert!(args.is_dynamic());
        assert_eq!(args.to_string(), "?, m");

        let args = ModeArgs::of_static(c("m"));
        assert_eq!(args.omode(), &Mode::Static(c("m")));
    }

    #[test]
    fn mode_args_collect_vars_dedupes() {
        let args = ModeArgs::new(Mode::Static(v("X")), vec![v("X"), v("Y")]);
        let mut vars = Vec::new();
        args.collect_vars(&mut vars);
        assert_eq!(vars, vec![ModeVar::new("X"), ModeVar::new("Y")]);
    }

    #[test]
    fn mode_args_apply_substitutes_pointwise() {
        let mut s = Subst::new();
        s.insert(ModeVar::new("X"), c("m"));
        let args = ModeArgs::new(Mode::Static(v("X")), vec![v("X")]);
        let applied = args.apply(&s);
        assert_eq!(applied.mode, Mode::Static(c("m")));
        assert_eq!(applied.rest, vec![c("m")]);
    }
}
