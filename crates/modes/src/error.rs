//! Errors raised while validating a `modes { ... }` declaration.

use std::error::Error;
use std::fmt;

use crate::ModeName;

/// An error produced while building a [`crate::ModeTable`].
///
/// A program's mode declaration `D` must form a partial order whose
/// `⊥`/`⊤`-completion is a lattice; these variants describe each way the
/// declaration can fail that requirement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModeTableError {
    /// The declared `≤` edges form a cycle through the named mode, so the
    /// order is not antisymmetric.
    Cycle(ModeName),
    /// Two modes have no *least* upper bound: both candidates are minimal
    /// upper bounds and incomparable.
    NoLub(ModeName, ModeName),
    /// Two modes have no *greatest* lower bound among the declared modes and
    /// the lattice ends.
    NoGlb(ModeName, ModeName),
    /// The declaration uses the reserved names `bot`/`top` (the lattice ends
    /// are implicit and may not be redeclared).
    ReservedName(ModeName),
    /// The declaration block is empty; a mode-based program needs at least
    /// one mode.
    Empty,
}

impl fmt::Display for ModeTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModeTableError::Cycle(m) => {
                write!(f, "mode declaration is cyclic through `{m}`")
            }
            ModeTableError::NoLub(a, b) => {
                write!(f, "modes `{a}` and `{b}` have no least upper bound")
            }
            ModeTableError::NoGlb(a, b) => {
                write!(f, "modes `{a}` and `{b}` have no greatest lower bound")
            }
            ModeTableError::ReservedName(m) => {
                write!(
                    f,
                    "mode name `{m}` is reserved for the implicit lattice end"
                )
            }
            ModeTableError::Empty => f.write_str("mode declaration block is empty"),
        }
    }
}

impl Error for ModeTableError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ModeTableError::Cycle(ModeName::new("m"));
        assert!(e.to_string().contains("cyclic"));
        let e = ModeTableError::NoLub(ModeName::new("a"), ModeName::new("b"));
        assert!(e.to_string().contains("least upper bound"));
        let e = ModeTableError::Empty;
        assert!(e.to_string().contains("empty"));
    }
}
