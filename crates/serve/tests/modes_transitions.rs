//! Table-driven mode-controller transition suite: the hysteresis
//! invariants hold for every scripted observation sequence, and the
//! verdicts are a pure function of the sequence — independent of worker
//! count, wall clock, or machine.

use ent_serve::modes::{
    check_hysteresis, ModeConfig, ModeController, Observation, SystemMode, Transition,
};
use ent_serve::quarantine::{Quarantine, QuarantineConfig, Verdict};
use ent_serve::soak::{run_soak, SoakConfig};

/// One scripted tick: `(completions, failures, sensor_faults,
/// queue_depth)` against a fixed capacity of 64.
type Tick = (u64, u64, u64, u64);

fn drive(ticks: &[Tick]) -> (ModeController, Vec<Transition>) {
    let mut c = ModeController::new(ModeConfig::default());
    for &(completions, failures, sensor_faults, queue_depth) in ticks {
        c.observe(&Observation {
            completions,
            failures,
            sensor_faults,
            queue_depth,
            queue_capacity: 64,
        });
    }
    let transitions = c.transitions().to_vec();
    (c, transitions)
}

const CLEAN: Tick = (10, 0, 0, 0);
const ALL_FAIL: Tick = (10, 10, 0, 0);
const HALF_FAIL: Tick = (10, 5, 0, 0);
const FAULTY: Tick = (10, 0, 30, 0);
const FULL_QUEUE: Tick = (10, 0, 0, 64);
const IDLE: Tick = (0, 0, 0, 0);

/// The table: a name, a script, and the mode the controller must end in.
/// Every case's transition log must also pass the shared hysteresis
/// checker.
fn table() -> Vec<(&'static str, Vec<Tick>, SystemMode)> {
    vec![
        ("clean stays normal", vec![CLEAN; 50], SystemMode::Normal),
        (
            "sustained failure dives to the floor",
            vec![ALL_FAIL; 6],
            SystemMode::FallbackOnly,
        ),
        (
            "half failure settles below the floor",
            vec![HALF_FAIL; 10],
            SystemMode::EnergySaver,
        ),
        (
            "sensor faults alone demand degraded",
            vec![FAULTY; 6],
            SystemMode::Degraded,
        ),
        (
            "queue pressure alone caps at energy_saver",
            vec![FULL_QUEUE; 20],
            SystemMode::EnergySaver,
        ),
        (
            "full recovery walks home",
            [vec![ALL_FAIL; 6], vec![CLEAN; 40]].concat(),
            SystemMode::Normal,
        ),
        (
            "idle decay recovers too",
            [vec![ALL_FAIL; 6], vec![IDLE; 60]].concat(),
            SystemMode::Normal,
        ),
        (
            "a relapse mid-recovery restarts the clean count",
            [
                vec![ALL_FAIL; 6],
                vec![CLEAN; 4],
                vec![ALL_FAIL; 3],
                vec![CLEAN; 40],
            ]
            .concat(),
            SystemMode::Normal,
        ),
        (
            "mixed pressure follows the worst signal",
            [vec![FULL_QUEUE; 5], vec![ALL_FAIL; 5]].concat(),
            SystemMode::FallbackOnly,
        ),
    ]
}

#[test]
fn every_script_lands_where_the_table_says_and_respects_hysteresis() {
    for (name, script, want) in table() {
        let (c, transitions) = drive(&script);
        assert_eq!(c.mode(), want, "{name}");
        check_hysteresis(&transitions).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn no_script_ever_jumps_fallback_to_normal() {
    for (name, script, _) in table() {
        let (_, transitions) = drive(&script);
        for &(tick, from, to) in &transitions {
            assert!(
                !(from == SystemMode::FallbackOnly && to == SystemMode::Normal),
                "{name}: fallback_only -> normal at tick {tick}"
            );
        }
    }
}

#[test]
fn recovery_is_one_level_at_a_time_with_the_configured_dwell() {
    // From the floor, clean ticks step down exactly one level per
    // `recovery_ticks` — never faster, never skipping.
    let cfg = ModeConfig::default();
    let mut c = ModeController::new(cfg.clone());
    for _ in 0..6 {
        c.observe(&Observation {
            completions: 10,
            failures: 10,
            sensor_faults: 0,
            queue_depth: 0,
            queue_capacity: 64,
        });
    }
    assert_eq!(c.mode(), SystemMode::FallbackOnly);
    let mut downs = Vec::new();
    let mut last = c.mode();
    let mut clean_since_step = 0u32;
    for _ in 0..60 {
        let m = c.observe(&Observation {
            completions: 10,
            failures: 0,
            sensor_faults: 0,
            queue_depth: 0,
            queue_capacity: 64,
        });
        clean_since_step += 1;
        if m != last {
            assert_eq!(
                last.severity() - m.severity(),
                1,
                "recovery steps exactly one level"
            );
            assert!(
                clean_since_step >= cfg.recovery_ticks,
                "stepped down after only {clean_since_step} clean ticks"
            );
            downs.push(m);
            clean_since_step = 0;
            last = m;
        }
    }
    assert_eq!(
        downs,
        vec![
            SystemMode::EnergySaver,
            SystemMode::Degraded,
            SystemMode::Normal
        ]
    );
}

#[test]
fn controller_is_a_pure_function_of_the_observation_sequence() {
    for (name, script, _) in table() {
        let (a, ta) = drive(&script);
        let (b, tb) = drive(&script);
        assert_eq!(a.mode(), b.mode(), "{name}");
        assert_eq!(ta, tb, "{name}: same script, same transition log");
    }
}

#[test]
fn parole_requires_the_configured_consecutive_clean_probes() {
    let cfg = QuarantineConfig {
        strike_threshold: 3.0,
        decay_interval_ms: 60_000,
        probe_every: 4,
        parole_probes: 3,
    };
    let mut q = Quarantine::new(cfg);
    for _ in 0..3 {
        q.note_failure(11, 0);
    }
    assert_eq!(q.active(), 1);
    // N-1 clean probes are not release; a dirty probe resets the streak.
    q.note_success(11, 10);
    q.note_success(11, 20);
    assert_eq!(q.active(), 1, "two of three clean probes is not parole");
    q.note_failure(11, 30);
    q.note_success(11, 40);
    q.note_success(11, 50);
    assert_eq!(q.active(), 1, "the dirty probe reset the streak");
    q.note_success(11, 60);
    assert_eq!(q.active(), 0, "three consecutive clean probes release");
    assert_eq!(q.paroled(), 1);
    assert_eq!(q.check(11, 70), Verdict::Admit);
}

#[test]
fn soak_verdicts_are_independent_of_worker_count() {
    // The whole point of the drain-barrier design: the deterministic
    // record (every wave fact and the entire transition log) is the same
    // whether one worker or four drain the queue.
    let solo = run_soak(&SoakConfig {
        workers: 1,
        flood_jobs: 40,
        ..SoakConfig::default()
    });
    let pool = run_soak(&SoakConfig {
        workers: 4,
        flood_jobs: 40,
        ..SoakConfig::default()
    });
    assert_eq!(
        solo.deterministic_signature(),
        pool.deterministic_signature()
    );
    assert_eq!(solo.transitions, pool.transitions);
    assert!(solo.hysteresis_ok && pool.hysteresis_ok);
}
