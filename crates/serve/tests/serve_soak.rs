//! The chaos-soak acceptance contract: the daemon survives the scripted
//! storm with zero crashes, every accepted job is byte-identical to its
//! one-shot `ent run`, shed jobs get typed replies, and the whole
//! deterministic record replays exactly.

use ent_serve::modes::SystemMode;
use ent_serve::soak::{run_soak, SoakConfig};

#[test]
fn soak_replays_byte_identically_with_the_same_seed() {
    let cfg = SoakConfig {
        flood_jobs: 40,
        ..SoakConfig::default()
    };
    let a = run_soak(&cfg);
    let b = run_soak(&cfg);

    // Zero daemon crashes, zero lost replies — both runs.
    assert_eq!((a.daemon_errors, b.daemon_errors), (0, 0));
    // Byte identity of every accepted job against one-shot `ent run`.
    assert!(a.byte_identical, "{:?}", a.mismatches);
    assert!(b.byte_identical, "{:?}", b.mismatches);
    // The replay-invariant record is identical: every wave fact and the
    // full transition log.
    assert_eq!(a.deterministic_signature(), b.deterministic_signature());
    assert_eq!(a.transitions, b.transitions);
    // Hysteresis holds and the controller walked all the way home.
    assert!(a.hysteresis_ok);
    assert_eq!(a.final_mode, SystemMode::Normal);
}

#[test]
fn a_different_seed_reshuffles_the_chaos_but_not_the_invariants() {
    let report = run_soak(&SoakConfig {
        seed: 7,
        flood_jobs: 40,
        ..SoakConfig::default()
    });
    // The scripted storm de-poisons its fixed programs per seed, so the
    // invariants are seed-independent even though the poisoned program
    // set is not.
    assert_eq!(report.daemon_errors, 0);
    assert!(report.byte_identical, "{:?}", report.mismatches);
    assert!(report.hysteresis_ok);
    assert_eq!(report.final_mode, SystemMode::Normal);
    assert_eq!(report.quarantine_paroled, 1);
    assert!(report
        .transitions
        .iter()
        .any(|(_, _, to)| *to == SystemMode::FallbackOnly));
}

#[test]
fn soak_report_renders_a_valid_bench_document() {
    let report = run_soak(&SoakConfig {
        flood_jobs: 20,
        ..SoakConfig::default()
    });
    let doc = report.to_json();
    assert!(ent_runtime::json_is_valid(&doc), "{doc}");
    for needle in [
        "\"schema\": \"ent-serve-soak/1\"",
        "\"byte_identical\": true",
        "\"hysteresis_ok\": true",
        "\"daemon_errors\": 0",
        "\"transitions\": [",
        "\"determinism_log\": [",
        "\"req_per_s\":",
        "\"p99_ms\":",
    ] {
        assert!(doc.contains(needle), "missing {needle} in {doc}");
    }
}
