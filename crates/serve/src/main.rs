//! The `ent-serve` daemon binary. See [`ent_serve`] for the library.

use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;

use ent_serve::server::{Server, ServerConfig};
use ent_serve::tcp;

const USAGE: &str = "\
usage: ent-serve [options]           (or: ent serve [options])

A resident multi-tenant ENT daemon speaking newline-delimited JSON
(ent-serve-proto/1) over TCP. See README.md for the wire protocol.

options:
  --addr <host:port>   listen address (default: 127.0.0.1:7474)
  --workers <n>        worker threads (default: 4)
  --queue <n>          bounded work-queue capacity (default: 64)
  --retries <n>        per-job retry budget (default: 1)
  --tick-ms <n>        mode-controller tick period (default: 500)
";

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7474".to_string();
    let mut cfg = ServerConfig::default();
    let mut tick_ms = 500u64;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut numeric = |name: &str| -> Result<u64, String> {
            let v = it.next().ok_or_else(|| format!("{name} needs a value"))?;
            let n: u64 = v
                .parse()
                .map_err(|_| format!("malformed {name} value `{v}`"))?;
            if n == 0 {
                return Err(format!("{name} must be at least 1"));
            }
            Ok(n)
        };
        let result = match flag.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--addr" => match it.next() {
                Some(v) => {
                    addr = v.clone();
                    Ok(())
                }
                None => Err("--addr needs a value".to_string()),
            },
            "--workers" => numeric("--workers").map(|n| cfg.workers = n as usize),
            "--queue" => numeric("--queue").map(|n| cfg.queue_capacity = n as usize),
            "--retries" => {
                // Zero retries is legitimate here: one attempt, no re-run.
                match it.next() {
                    Some(v) => match v.parse::<u32>() {
                        Ok(n) => {
                            cfg.policy.retries = n;
                            Ok(())
                        }
                        Err(_) => Err(format!("malformed --retries value `{v}`")),
                    },
                    None => Err("--retries needs a value".to_string()),
                }
            }
            "--tick-ms" => numeric("--tick-ms").map(|n| tick_ms = n),
            other => Err(format!("unknown option `{other}`")),
        };
        if let Err(msg) = result {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(1);
        }
    }

    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind `{addr}`: {e}");
            return ExitCode::from(1);
        }
    };
    eprintln!(
        "ent-serve listening on {addr} ({} workers, queue {}, {} retries, tick {tick_ms} ms)",
        cfg.workers, cfg.queue_capacity, cfg.policy.retries
    );
    let server = Arc::new(Server::start(cfg));
    tcp::serve(listener, server, tick_ms);
    ExitCode::SUCCESS
}
