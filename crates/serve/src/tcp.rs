//! The TCP front-end: newline-delimited JSON over `std::net`.
//!
//! One thread per connection (the daemon's concurrency is bounded by the
//! worker pool and the bounded queue, not by connection count — a
//! connection is just a reply pipe), plus a ticker thread driving the
//! mode controller off wall-clock. All virtual-time determinism lives
//! below this layer; the TCP front-end is deliberately the only place
//! the wall clock enters.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::server::{Server, Submission};

/// Runs the accept loop forever, ticking the mode controller every
/// `tick_ms` of wall time. Connection handler threads are detached; a
/// client that disconnects mid-job only loses its reply pipe.
pub fn serve(listener: TcpListener, server: Arc<Server>, tick_ms: u64) {
    let epoch = Instant::now();
    {
        let server = Arc::clone(&server);
        std::thread::Builder::new()
            .name("ent-serve-ticker".to_string())
            .spawn(move || loop {
                std::thread::sleep(Duration::from_millis(tick_ms.max(10)));
                server.tick();
            })
            .expect("spawn ticker");
    }
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let server = Arc::clone(&server);
        let _ = std::thread::Builder::new()
            .name("ent-serve-conn".to_string())
            .spawn(move || handle_connection(stream, &server, epoch));
    }
}

fn handle_connection(stream: TcpStream, server: &Server, epoch: Instant) {
    let Ok(peer) = stream.try_clone() else { return };
    let mut writer = peer;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let now_ms = epoch.elapsed().as_millis() as u64;
        let reply = match server.handle_line(&line, now_ms) {
            Submission::Immediate(reply) => reply,
            Submission::Queued(rx) => match rx.recv() {
                Ok(reply) => reply,
                // The worker pool is shutting down.
                Err(_) => return,
            },
        };
        if writer
            .write_all(format!("{}\n", reply.to_json()).as_bytes())
            .is_err()
        {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use std::io::BufRead;

    #[test]
    fn round_trips_requests_over_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
        let addr = listener.local_addr().unwrap();
        let server = Arc::new(Server::start(ServerConfig::default()));
        std::thread::spawn(move || serve(listener, server, 50));

        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let src = "class Main { int main() { return 40 + 2; } }";
        let request = format!(
            "{{\"op\": \"run\", \"id\": \"tcp-1\", \"tenant\": \"t\", \"src\": \"{}\"}}\n\
             {{\"op\": \"health\"}}\n\
             not even json\n",
            ent_runtime::json_escape(src)
        );
        writer.write_all(request.as_bytes()).unwrap();

        let mut lines = Vec::new();
        for _ in 0..3 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(ent_runtime::json_is_valid(line.trim()), "{line}");
            lines.push(line);
        }
        assert!(lines[0].contains("\"id\": \"tcp-1\""), "{}", lines[0]);
        assert!(lines[0].contains("result: 42"), "{}", lines[0]);
        assert!(lines[1].contains("\"ok\": true"), "{}", lines[1]);
        assert!(lines[2].contains("bad_request"), "{}", lines[2]);
    }
}
