//! Quarantine of repeatedly-failing programs.
//!
//! A multi-tenant daemon cannot let one poisoned program burn worker
//! time forever: a program (keyed by its [`source fingerprint`]
//! [`ent_workloads::source_fingerprint`], so no tenant source text is
//! retained) accumulates a **strike** per failed job. Strikes decay by
//! halving every [`QuarantineConfig::decay_interval_ms`] of virtual
//! time, so an old bad patch doesn't condemn a program forever; crossing
//! [`QuarantineConfig::strike_threshold`] quarantines it.
//!
//! Release is **parole, not amnesty**: while quarantined, every
//! [`QuarantineConfig::probe_every`]-th submission is admitted as a
//! probe (the rest are shed with a typed reply), and only
//! [`QuarantineConfig::parole_probes`] *consecutive* clean probes lift
//! the quarantine. One failed probe resets the count — mirroring the
//! mode controller's fast-degrade / slow-recover asymmetry.
//!
//! The table is a pure function of the `(event, now_ms)` sequence it is
//! fed; virtual time makes soak runs replayable.

use std::collections::HashMap;

/// Quarantine policy knobs.
#[derive(Clone, Debug)]
pub struct QuarantineConfig {
    /// Decayed strikes at or above this quarantine the program.
    pub strike_threshold: f64,
    /// Virtual milliseconds for one strike half-life.
    pub decay_interval_ms: u64,
    /// While quarantined, every Nth submission runs as a parole probe.
    pub probe_every: u64,
    /// Consecutive clean probes required for release.
    pub parole_probes: u32,
}

impl Default for QuarantineConfig {
    fn default() -> Self {
        QuarantineConfig {
            strike_threshold: 3.0,
            decay_interval_ms: 60_000,
            probe_every: 8,
            parole_probes: 2,
        }
    }
}

/// The verdict for one submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Not quarantined: run normally.
    Admit,
    /// Quarantined, but this submission is the parole probe: run it, and
    /// report the outcome back via `note_success` / `note_failure`.
    Probe,
    /// Quarantined: shed with a typed `quarantined` reply.
    Reject,
}

#[derive(Clone, Debug, Default)]
struct Entry {
    strikes: f64,
    last_update_ms: u64,
    quarantined: bool,
    /// Submissions seen while quarantined (for probe cadence).
    held: u64,
    clean_probes: u32,
}

impl Entry {
    fn decay(&mut self, now_ms: u64, half_life_ms: u64) {
        if half_life_ms == 0 || now_ms <= self.last_update_ms {
            self.last_update_ms = self.last_update_ms.max(now_ms);
            return;
        }
        let elapsed = (now_ms - self.last_update_ms) as f64 / half_life_ms as f64;
        self.strikes *= 0.5f64.powf(elapsed);
        self.last_update_ms = now_ms;
    }
}

/// The quarantine table.
#[derive(Clone, Debug)]
pub struct Quarantine {
    config: QuarantineConfig,
    entries: HashMap<u64, Entry>,
    /// Programs ever released on parole (monotone counter).
    paroled: u64,
}

impl Quarantine {
    /// An empty table under `config`.
    #[must_use]
    pub fn new(config: QuarantineConfig) -> Self {
        Quarantine {
            config,
            entries: HashMap::new(),
            paroled: 0,
        }
    }

    /// Decides the fate of a submission of `fingerprint` at `now_ms`.
    pub fn check(&mut self, fingerprint: u64, now_ms: u64) -> Verdict {
        let half_life = self.config.decay_interval_ms;
        let Some(entry) = self.entries.get_mut(&fingerprint) else {
            return Verdict::Admit;
        };
        entry.decay(now_ms, half_life);
        if !entry.quarantined {
            return Verdict::Admit;
        }
        entry.held += 1;
        if self.config.probe_every > 0 && entry.held % self.config.probe_every == 0 {
            Verdict::Probe
        } else {
            Verdict::Reject
        }
    }

    /// Records a failed job (panic, runtime error, or compile error).
    pub fn note_failure(&mut self, fingerprint: u64, now_ms: u64) {
        let half_life = self.config.decay_interval_ms;
        let threshold = self.config.strike_threshold;
        let entry = self.entries.entry(fingerprint).or_default();
        entry.decay(now_ms, half_life);
        entry.strikes += 1.0;
        // A failed parole probe resets the clean streak; crossing the
        // threshold (re-)quarantines.
        entry.clean_probes = 0;
        if entry.strikes >= threshold {
            entry.quarantined = true;
        }
    }

    /// Records a clean job. For a quarantined program this is a clean
    /// parole probe; enough of them in a row lift the quarantine and
    /// clear the strikes.
    pub fn note_success(&mut self, fingerprint: u64, now_ms: u64) {
        let half_life = self.config.decay_interval_ms;
        let parole_probes = self.config.parole_probes;
        let Some(entry) = self.entries.get_mut(&fingerprint) else {
            return;
        };
        entry.decay(now_ms, half_life);
        if entry.quarantined {
            entry.clean_probes += 1;
            if entry.clean_probes >= parole_probes {
                entry.quarantined = false;
                entry.strikes = 0.0;
                entry.held = 0;
                entry.clean_probes = 0;
                self.paroled += 1;
            }
        }
    }

    /// Programs currently quarantined.
    #[must_use]
    pub fn active(&self) -> u64 {
        self.entries.values().filter(|e| e.quarantined).count() as u64
    }

    /// Programs ever released on parole.
    #[must_use]
    pub fn paroled(&self) -> u64 {
        self.paroled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Quarantine {
        Quarantine::new(QuarantineConfig {
            strike_threshold: 3.0,
            decay_interval_ms: 1000,
            probe_every: 4,
            parole_probes: 2,
        })
    }

    #[test]
    fn three_strikes_quarantine_and_probes_cycle() {
        let mut q = table();
        for _ in 0..3 {
            assert_eq!(q.check(7, 0), Verdict::Admit);
            q.note_failure(7, 0);
        }
        assert_eq!(q.active(), 1);
        // Every 4th submission is the probe; the rest shed.
        let verdicts: Vec<Verdict> = (0..8).map(|_| q.check(7, 1)).collect();
        assert_eq!(verdicts.iter().filter(|v| **v == Verdict::Probe).count(), 2);
        assert_eq!(verdicts[3], Verdict::Probe);
        assert_eq!(verdicts[0], Verdict::Reject);
    }

    #[test]
    fn parole_requires_consecutive_clean_probes() {
        let mut q = table();
        for _ in 0..3 {
            q.note_failure(9, 0);
        }
        assert_eq!(q.active(), 1);
        // One clean probe is not enough…
        q.note_success(9, 10);
        assert_eq!(q.active(), 1);
        // …and a failed probe resets the streak entirely.
        q.note_failure(9, 20);
        q.note_success(9, 30);
        assert_eq!(q.active(), 1, "streak was reset by the failed probe");
        // Two consecutive clean probes release.
        q.note_success(9, 40);
        assert_eq!(q.active(), 0);
        assert_eq!(q.paroled(), 1);
        assert_eq!(q.check(9, 50), Verdict::Admit);
    }

    #[test]
    fn strikes_decay_with_virtual_time() {
        let mut q = table();
        q.note_failure(5, 0);
        q.note_failure(5, 0);
        // Two half-lives later the 2 strikes have decayed to 0.5: one
        // more failure stays under the threshold of 3.
        q.note_failure(5, 2000);
        assert_eq!(q.active(), 0);
        // Fresh failures in a burst still quarantine.
        q.note_failure(5, 2000);
        q.note_failure(5, 2000);
        assert_eq!(q.active(), 1);
    }

    #[test]
    fn unknown_programs_are_admitted_without_allocating() {
        let mut q = table();
        for fp in 0..100 {
            assert_eq!(q.check(fp, 0), Verdict::Admit);
        }
        assert_eq!(q.entries.len(), 0, "check never allocates entries");
    }
}
