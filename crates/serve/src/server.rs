//! The resident server core: bounded queue, worker pool, admission,
//! modes, quarantine.
//!
//! The TCP front-end ([`crate::tcp`]) and the deterministic soak harness
//! ([`crate::soak`]) both drive this same object — the only difference
//! is where requests and the virtual clock come from. The pipeline for
//! one `run` request:
//!
//! ```text
//! parse → mode gate → quarantine gate → queue bound → token/energy gate
//!       → bounded queue → worker: catch_unwind(run_prepared) → reply
//! ```
//!
//! Every gate that refuses a request sends a typed reply immediately —
//! the queue is the only place a request waits, and it is bounded, so
//! memory use is bounded by construction. Workers reuse the engine's
//! [`run_job_isolated`] machinery (the same catch_unwind / retry /
//! backoff policy as batch jobs) and the shared compile-once program
//! cache ([`try_lowered_cached`]), so a hundred tenants submitting the
//! same benchmark compile it once.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use ent_cli::{run_prepared, Options, EXIT_DEGRADED, EXIT_OK, EXIT_RUNTIME};
use ent_runtime::json_f64;
use ent_workloads::{
    lowered_cache_shard_entries, lowered_cache_stats, run_job_isolated, source_fingerprint,
    try_lowered_cached, BatchPolicy,
};

use crate::admission::{Admission, AdmissionConfig, AdmissionShed};
use crate::modes::{ModeConfig, ModeController, Observation, SystemMode, Transition};
use crate::proto::{ErrorKind, Op, Reply, Request, STATS_SCHEMA};
use crate::quarantine::{Quarantine, QuarantineConfig, Verdict};

/// Deterministic chaos injection for the soak: panics keyed by job
/// identity, the worker-pool analogue of the energy layer's
/// `FaultInjector` (a pure function of seed and identity, never of
/// timing).
#[derive(Clone, Copy, Debug)]
pub struct ChaosPlan {
    /// Seed decorrelating this plan from the fault injector's.
    pub seed: u64,
    /// Fraction of *programs* (by fingerprint) whose every attempt
    /// panics — repeat offenders destined for quarantine.
    pub poison_rate: f64,
    /// Fraction of *jobs* (by fingerprint and sequence number) whose
    /// first attempt panics — transient faults a retry absorbs.
    pub transient_rate: f64,
}

/// splitmix64, as in the engine and the fault injector: a stateless
/// mixer so chaos is a pure function of identity.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn fraction(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl ChaosPlan {
    /// Does this plan poison every attempt of `fingerprint`?
    #[must_use]
    pub fn poisons(&self, fingerprint: u64) -> bool {
        fraction(splitmix64(self.seed ^ fingerprint)) < self.poison_rate
    }

    /// Does this plan panic the first attempt of job `seq`?
    #[must_use]
    pub fn transient(&self, fingerprint: u64, seq: u64) -> bool {
        fraction(splitmix64(
            self.seed ^ fingerprint.rotate_left(17) ^ seq.wrapping_mul(0x9e37),
        )) < self.transient_rate
    }
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bounded queue capacity under `normal` mode (degraded modes shrink
    /// the effective bound; see [`Server::effective_capacity`]).
    pub queue_capacity: usize,
    /// Per-job isolation policy (retries, backoff, deadline) — the same
    /// [`BatchPolicy`] the batch scheduler uses.
    pub policy: BatchPolicy,
    /// Per-tenant admission policy.
    pub admission: AdmissionConfig,
    /// Mode-controller thresholds.
    pub modes: ModeConfig,
    /// Quarantine policy.
    pub quarantine: QuarantineConfig,
    /// Deterministic panic injection (soak only; `None` in production).
    pub chaos: Option<ChaosPlan>,
    /// Execution engine for served runs when the request does not pick
    /// one (`None` = the one-shot CLI default). Engine choice is
    /// value-neutral — all engines are bit-identical — so this knob can
    /// only change the daemon's timing.
    pub engine: Option<ent_runtime::Engine>,
    /// Tier-up threshold for served runs under the threaded engine
    /// (`None` = the runtime default).
    pub tier_up: Option<ent_runtime::TierUp>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            policy: BatchPolicy {
                retries: 1,
                ..BatchPolicy::default()
            },
            admission: AdmissionConfig::default(),
            modes: ModeConfig::default(),
            quarantine: QuarantineConfig::default(),
            chaos: None,
            engine: None,
            tier_up: None,
        }
    }
}

/// Monotone counters, all relaxed — they are telemetry, not
/// synchronization.
#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    completed: AtomicU64,
    ok_runs: AtomicU64,
    degraded_runs: AtomicU64,
    runtime_errors: AtomicU64,
    compile_errors: AtomicU64,
    panics: AtomicU64,
    checks: AtomicU64,
    probes: AtomicU64,
    shed_overloaded: AtomicU64,
    shed_rate_limited: AtomicU64,
    shed_energy_budget: AtomicU64,
    shed_quarantined: AtomicU64,
    shed_fallback: AtomicU64,
    bad_requests: AtomicU64,
    // Drained by each controller tick.
    tick_completions: AtomicU64,
    tick_failures: AtomicU64,
    tick_faults: AtomicU64,
}

/// A queued job.
struct Job {
    seq: u64,
    request: Request,
    fingerprint: u64,
    is_probe: bool,
    now_ms: u64,
    reply_tx: Sender<Reply>,
}

/// Mutable control state under one lock: the queue and the three
/// controllers move together, so a submission sees one consistent
/// admission decision.
struct State {
    queue: VecDeque<Job>,
    modes: ModeController,
    admission: Admission,
    quarantine: Quarantine,
}

struct Inner {
    cfg: ServerConfig,
    state: Mutex<State>,
    available: Condvar,
    counters: Counters,
    shutdown: AtomicBool,
    seq: AtomicU64,
}

/// A point-in-time copy of the server's monotone counters. Field names
/// match the `ent-serve-stats/1` document.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Requests that passed every gate and entered the queue.
    pub accepted: u64,
    /// Jobs a worker finished (any outcome).
    pub completed: u64,
    /// Runs that exited 0.
    pub ok_runs: u64,
    /// Runs that completed degraded (exit 4).
    pub degraded_runs: u64,
    /// Runs that stopped with a runtime error (exit 3).
    pub runtime_errors: u64,
    /// Programs that failed to compile.
    pub compile_errors: u64,
    /// Jobs that panicked past their retry budget.
    pub panics: u64,
    /// `check` operations served.
    pub checks: u64,
    /// Quarantine parole probes admitted.
    pub probes: u64,
    /// Sheds: bounded queue full.
    pub shed_overloaded: u64,
    /// Sheds: tenant token bucket empty.
    pub shed_rate_limited: u64,
    /// Sheds: tenant energy budget spent.
    pub shed_energy_budget: u64,
    /// Sheds: program quarantined.
    pub shed_quarantined: u64,
    /// Sheds: `fallback_only` mode refused run work.
    pub shed_fallback: u64,
    /// Lines that failed to parse or validate.
    pub bad_requests: u64,
}

/// What a submission produced.
pub enum Submission {
    /// Decided synchronously (stats, health, every shed, bad requests).
    Immediate(Reply),
    /// Queued; the reply arrives on this channel when a worker finishes.
    Queued(Receiver<Reply>),
}

/// The resident server. Dropping it shuts the worker pool down.
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the worker pool.
    #[must_use]
    pub fn start(cfg: ServerConfig) -> Server {
        let workers_n = cfg.workers.max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                modes: ModeController::new(cfg.modes.clone()),
                admission: Admission::new(cfg.admission.clone()),
                quarantine: Quarantine::new(cfg.quarantine.clone()),
            }),
            cfg,
            available: Condvar::new(),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            seq: AtomicU64::new(0),
        });
        let workers = (0..workers_n)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("ent-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Server { inner, workers }
    }

    /// The queue bound in force under `mode`: degraded halves it,
    /// energy_saver (and the fallback floor) quarters it — load is shed
    /// earlier exactly when the system is least able to absorb it.
    #[must_use]
    pub fn effective_capacity(cfg: &ServerConfig, mode: SystemMode) -> usize {
        let cap = cfg.queue_capacity.max(1);
        match mode.severity() {
            0 => cap,
            1 => (cap / 2).max(1),
            _ => (cap / 4).max(1),
        }
    }

    /// Parses and submits one wire line at `now_ms` virtual time.
    pub fn handle_line(&self, line: &str, now_ms: u64) -> Submission {
        match crate::proto::parse_request(line) {
            Ok(request) => self.submit(request, now_ms),
            Err(message) => {
                self.inner
                    .counters
                    .bad_requests
                    .fetch_add(1, Ordering::Relaxed);
                Submission::Immediate(Reply::error("", ErrorKind::BadRequest, message))
            }
        }
    }

    /// Submits a parsed request at `now_ms` virtual time.
    pub fn submit(&self, request: Request, now_ms: u64) -> Submission {
        let inner = &self.inner;
        match request.op {
            Op::Health => Submission::Immediate(self.health_reply(&request.id)),
            Op::Stats => Submission::Immediate(Reply::Doc {
                id: request.id.clone(),
                payload: self.stats_json(),
            }),
            Op::Run | Op::Check => {
                // The daemon-config engine applies below any per-request
                // choice (requests cannot pick one today, so this is the
                // daemon's engine whenever set).
                let mut request = request;
                if request.options.engine.is_none() {
                    request.options.engine = inner.cfg.engine;
                }
                if request.options.tier_up.is_none() {
                    request.options.tier_up = inner.cfg.tier_up;
                }
                let fingerprint = source_fingerprint(&request.src);
                let mut st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
                let mode = st.modes.mode();
                // Gate 1: mode. The conservative floor sheds run work
                // outright; `check` is a static path and stays served.
                if mode == SystemMode::FallbackOnly && request.op == Op::Run {
                    inner.counters.shed_fallback.fetch_add(1, Ordering::Relaxed);
                    return Submission::Immediate(Reply::error(
                        &request.id,
                        ErrorKind::FallbackOnly,
                        "server is in fallback_only mode; run work is shed",
                    ));
                }
                // Gate 2: quarantine (run only — a quarantined program
                // may still be type-checked).
                let mut is_probe = false;
                if request.op == Op::Run {
                    match st.quarantine.check(fingerprint, now_ms) {
                        Verdict::Admit => {}
                        Verdict::Probe => {
                            is_probe = true;
                            inner.counters.probes.fetch_add(1, Ordering::Relaxed);
                        }
                        Verdict::Reject => {
                            inner
                                .counters
                                .shed_quarantined
                                .fetch_add(1, Ordering::Relaxed);
                            return Submission::Immediate(Reply::error(
                                &request.id,
                                ErrorKind::Quarantined,
                                "program is quarantined after repeated failures; \
                                 periodic parole probes will release it once it runs clean",
                            ));
                        }
                    }
                }
                // Gate 3: the bounded queue (before spending a token, so
                // overload does not also drain the tenant's bucket).
                let capacity = Self::effective_capacity(&inner.cfg, mode);
                if st.queue.len() >= capacity {
                    inner
                        .counters
                        .shed_overloaded
                        .fetch_add(1, Ordering::Relaxed);
                    return Submission::Immediate(Reply::error(
                        &request.id,
                        ErrorKind::Overloaded,
                        format!(
                            "work queue full ({capacity} deep in {} mode)",
                            mode.as_str()
                        ),
                    ));
                }
                // Gate 4: per-tenant tokens and energy budget.
                if let Err(shed) = st.admission.admit(&request.tenant, now_ms, mode) {
                    let (counter, kind, msg) = match shed {
                        AdmissionShed::RateLimited => (
                            &inner.counters.shed_rate_limited,
                            ErrorKind::RateLimited,
                            "tenant request budget exhausted; retry later",
                        ),
                        AdmissionShed::EnergyBudget => (
                            &inner.counters.shed_energy_budget,
                            ErrorKind::EnergyBudget,
                            "tenant energy budget spent",
                        ),
                    };
                    counter.fetch_add(1, Ordering::Relaxed);
                    return Submission::Immediate(Reply::error(&request.id, kind, msg));
                }
                let (reply_tx, reply_rx) = channel();
                st.queue.push_back(Job {
                    seq: inner.seq.fetch_add(1, Ordering::Relaxed),
                    request,
                    fingerprint,
                    is_probe,
                    now_ms,
                    reply_tx,
                });
                inner.counters.accepted.fetch_add(1, Ordering::Relaxed);
                drop(st);
                inner.available.notify_one();
                Submission::Queued(reply_rx)
            }
        }
    }

    /// Runs one mode-controller tick: drains the since-last-tick
    /// counters into an [`Observation`] and lets the controller move.
    /// The TCP front-end calls this on a timer; the soak calls it at
    /// deterministic points.
    pub fn tick(&self) -> SystemMode {
        let c = &self.inner.counters;
        let completions = c.tick_completions.swap(0, Ordering::Relaxed);
        let failures = c.tick_failures.swap(0, Ordering::Relaxed);
        let sensor_faults = c.tick_faults.swap(0, Ordering::Relaxed);
        let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let obs = Observation {
            completions,
            failures,
            sensor_faults,
            queue_depth: st.queue.len() as u64,
            queue_capacity: Self::effective_capacity(&self.inner.cfg, st.modes.mode()) as u64,
        };
        st.modes.observe(&obs)
    }

    /// The current system mode.
    #[must_use]
    pub fn mode(&self) -> SystemMode {
        self.inner
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .modes
            .mode()
    }

    /// The mode-transition log so far.
    #[must_use]
    pub fn transitions(&self) -> Vec<Transition> {
        self.inner
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .modes
            .transitions()
            .to_vec()
    }

    fn health_reply(&self, id: &str) -> Reply {
        let mode = self.mode();
        Reply::Doc {
            id: id.to_string(),
            payload: format!("{{\"ok\": true, \"mode\": \"{}\"}}", mode.as_str()),
        }
    }

    /// Renders the `ent-serve-stats/1` document — the server-side twin
    /// of the batch sidecar, including the shared program cache's
    /// counters and per-shard occupancy.
    #[must_use]
    pub fn stats_json(&self) -> String {
        let c = &self.inner.counters;
        let st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let mode = st.modes.mode();
        let (fail_ewma, queue_ewma, fault_ewma) = st.modes.signals();
        let cache = lowered_cache_stats();
        let shard_entries = lowered_cache_shard_entries()
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let transitions = st
            .modes
            .transitions()
            .iter()
            .map(|(tick, from, to)| {
                format!(
                    "{{\"tick\": {tick}, \"from\": \"{}\", \"to\": \"{}\"}}",
                    from.as_str(),
                    to.as_str()
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        format!(
            "{{\"schema\": \"{STATS_SCHEMA}\", \"mode\": \"{}\", \
             \"signals\": {{\"failure_ewma\": {}, \"queue_ewma\": {}, \"fault_ewma\": {}}}, \
             \"workers\": {}, \"tenants\": {}, \
             \"queue\": {{\"depth\": {}, \"capacity\": {}, \"effective_capacity\": {}}}, \
             \"jobs\": {{\"accepted\": {}, \"completed\": {}, \"ok\": {}, \"degraded\": {}, \
             \"runtime_errors\": {}, \"compile_errors\": {}, \"panics\": {}, \"checks\": {}}}, \
             \"shed\": {{\"overloaded\": {}, \"rate_limited\": {}, \"energy_budget\": {}, \
             \"quarantined\": {}, \"fallback_only\": {}, \"bad_requests\": {}}}, \
             \"quarantine\": {{\"active\": {}, \"paroled\": {}, \"probes\": {}}}, \
             \"cache\": {{\"shards\": {}, \"capacity\": {}, \"entries\": {}, \"hits\": {}, \
             \"misses\": {}, \"evictions\": {}, \"shard_entries\": [{}]}}, \
             \"transitions\": [{}]}}",
            mode.as_str(),
            json_f64(fail_ewma),
            json_f64(queue_ewma),
            json_f64(fault_ewma),
            self.workers.len(),
            st.admission.tenant_count(),
            st.queue.len(),
            self.inner.cfg.queue_capacity,
            Self::effective_capacity(&self.inner.cfg, mode),
            load(&c.accepted),
            load(&c.completed),
            load(&c.ok_runs),
            load(&c.degraded_runs),
            load(&c.runtime_errors),
            load(&c.compile_errors),
            load(&c.panics),
            load(&c.checks),
            load(&c.shed_overloaded),
            load(&c.shed_rate_limited),
            load(&c.shed_energy_budget),
            load(&c.shed_quarantined),
            load(&c.shed_fallback),
            load(&c.bad_requests),
            st.quarantine.active(),
            st.quarantine.paroled(),
            load(&c.probes),
            cache.shards,
            cache.capacity,
            cache.entries,
            cache.hits,
            cache.misses,
            cache.evictions,
            shard_entries,
            transitions,
        )
    }

    /// A point-in-time copy of every monotone counter, for the soak
    /// harness and the bench bin (the stats document renders the same
    /// numbers for wire clients).
    #[must_use]
    pub fn counters(&self) -> CounterSnapshot {
        let c = &self.inner.counters;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        CounterSnapshot {
            accepted: load(&c.accepted),
            completed: load(&c.completed),
            ok_runs: load(&c.ok_runs),
            degraded_runs: load(&c.degraded_runs),
            runtime_errors: load(&c.runtime_errors),
            compile_errors: load(&c.compile_errors),
            panics: load(&c.panics),
            checks: load(&c.checks),
            probes: load(&c.probes),
            shed_overloaded: load(&c.shed_overloaded),
            shed_rate_limited: load(&c.shed_rate_limited),
            shed_energy_budget: load(&c.shed_energy_budget),
            shed_quarantined: load(&c.shed_quarantined),
            shed_fallback: load(&c.shed_fallback),
            bad_requests: load(&c.bad_requests),
        }
    }

    /// `(active, paroled)` quarantine counts.
    #[must_use]
    pub fn quarantine_counts(&self) -> (u64, u64) {
        let st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        (st.quarantine.active(), st.quarantine.paroled())
    }

    /// Stops accepting queue pops and joins the workers. Jobs still in
    /// the queue are drained first (their submitters hold receivers).
    pub fn shutdown(mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let job = {
            let mut st: MutexGuard<State> = inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break job;
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                st = inner.available.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        let reply = process_job(inner, &job);
        // A submitter that gave up and dropped its receiver is fine.
        let _ = job.reply_tx.send(reply);
    }
}

/// Executes one job with full isolation and does the post-completion
/// bookkeeping (counters, quarantine strikes/parole, energy accounting,
/// tick signals).
fn process_job(inner: &Arc<Inner>, job: &Job) -> Reply {
    let c = &inner.counters;
    if job.request.op == Op::Check {
        // A static path: compile + typecheck, no energy spent. Still
        // isolated — a compiler panic must not take a worker down.
        let result = run_job_isolated(&inner.cfg.policy, |_| {
            ent_cli::execute(&job.request.options, &job.request.src)
        });
        c.checks.fetch_add(1, Ordering::Relaxed);
        c.completed.fetch_add(1, Ordering::Relaxed);
        c.tick_completions.fetch_add(1, Ordering::Relaxed);
        return match result {
            Ok((code, output)) => Reply::Done {
                id: job.request.id.clone(),
                code,
                output,
                energy_j: 0.0,
                time_s: 0.0,
                attempts: 1,
            },
            Err(e) => {
                c.panics.fetch_add(1, Ordering::Relaxed);
                c.tick_failures.fetch_add(1, Ordering::Relaxed);
                Reply::error(&job.request.id, ErrorKind::Panic, e.message)
            }
        };
    }

    let chaos = inner.cfg.chaos;
    let fingerprint = job.fingerprint;
    let seq = job.seq;
    let src = &job.request.src;
    let options: &Options = &job.request.options;
    let result = run_job_isolated(&inner.cfg.policy, move |attempt| {
        if let Some(plan) = &chaos {
            if plan.poisons(fingerprint) {
                panic!("chaos: poisoned program {fingerprint:#x}");
            }
            if attempt == 0 && plan.transient(fingerprint, seq) {
                panic!("chaos: transient worker fault on job {seq}");
            }
        }
        // Compile through the shared cache; run through the same
        // rendering path as `ent run` — byte-identity by construction.
        match try_lowered_cached(src) {
            Ok(lowered) => (attempt + 1, Ok(run_prepared(options, &lowered))),
            Err(diagnostic) => (attempt + 1, Err(diagnostic)),
        }
    });

    c.completed.fetch_add(1, Ordering::Relaxed);
    c.tick_completions.fetch_add(1, Ordering::Relaxed);
    match result {
        Ok((attempts, Ok(outcome))) => {
            let failed = outcome.code == EXIT_RUNTIME;
            match outcome.code {
                EXIT_OK => {
                    c.ok_runs.fetch_add(1, Ordering::Relaxed);
                }
                EXIT_DEGRADED => {
                    c.degraded_runs.fetch_add(1, Ordering::Relaxed);
                }
                _ => {
                    c.runtime_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            if failed {
                c.tick_failures.fetch_add(1, Ordering::Relaxed);
            }
            c.tick_faults
                .fetch_add(outcome.sensor_faults, Ordering::Relaxed);
            let mut st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
            st.admission
                .record_energy(&job.request.tenant, outcome.energy_j);
            if failed {
                st.quarantine.note_failure(fingerprint, job.now_ms);
            } else {
                st.quarantine.note_success(fingerprint, job.now_ms);
            }
            drop(st);
            let _ = job.is_probe; // probe outcome feeds parole via note_*
            Reply::done(&job.request.id, &outcome, attempts)
        }
        Ok((_, Err(diagnostic))) => {
            c.compile_errors.fetch_add(1, Ordering::Relaxed);
            c.tick_failures.fetch_add(1, Ordering::Relaxed);
            let mut st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
            st.quarantine.note_failure(fingerprint, job.now_ms);
            drop(st);
            Reply::error(&job.request.id, ErrorKind::CompileError, diagnostic)
        }
        Err(job_error) => {
            c.panics.fetch_add(1, Ordering::Relaxed);
            c.tick_failures.fetch_add(1, Ordering::Relaxed);
            let mut st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
            st.quarantine.note_failure(fingerprint, job.now_ms);
            drop(st);
            Reply::error(
                &job.request.id,
                ErrorKind::Panic,
                format!(
                    "job panicked on all {} attempts: {}",
                    job_error.attempts, job_error.message
                ),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::parse_request;

    const HELLO: &str = "class Main { int main() { IO.print(\"hi\"); return 41 + 1; } }";

    fn run_line(src: &str, tenant: &str, id: &str) -> String {
        format!(
            "{{\"op\": \"run\", \"id\": \"{id}\", \"tenant\": \"{tenant}\", \"src\": \"{}\"}}",
            ent_runtime::json_escape(src)
        )
    }

    fn recv(sub: Submission) -> Reply {
        match sub {
            Submission::Immediate(r) => r,
            Submission::Queued(rx) => rx.recv().expect("worker replies"),
        }
    }

    #[test]
    fn served_run_is_byte_identical_to_one_shot() {
        let server = Server::start(ServerConfig::default());
        let reply = recv(server.handle_line(&run_line(HELLO, "t", "r1"), 0));
        let request = parse_request(&run_line(HELLO, "t", "r1")).unwrap();
        let one_shot = ent_cli::execute(&request.options, HELLO);
        match reply {
            Reply::Done { code, output, .. } => {
                assert_eq!((code, output), one_shot);
            }
            other => panic!("expected Done, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn compile_errors_reply_typed_with_the_cli_diagnostic() {
        let server = Server::start(ServerConfig::default());
        let bad = "class Main { int main() { return x; } }";
        let reply = recv(server.handle_line(&run_line(bad, "t", "r2"), 0));
        let request = parse_request(&run_line(bad, "t", "r2")).unwrap();
        let (code, one_shot) = ent_cli::execute(&request.options, bad);
        assert_eq!(code, ent_cli::EXIT_COMPILE);
        match reply {
            Reply::Error { kind, message, .. } => {
                assert_eq!(kind, ErrorKind::CompileError);
                assert_eq!(format!("error: {message}\n"), one_shot);
            }
            other => panic!("expected Error, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn bad_lines_get_bad_request_replies() {
        let server = Server::start(ServerConfig::default());
        for line in ["junk", "{\"op\": \"fly\"}", "{\"op\": \"run\"}"] {
            match server.handle_line(line, 0) {
                Submission::Immediate(Reply::Error { kind, .. }) => {
                    assert_eq!(kind, ErrorKind::BadRequest);
                }
                _ => panic!("`{line}` should be refused synchronously"),
            }
        }
        server.shutdown();
    }

    #[test]
    fn rate_limits_burst_traffic_per_tenant() {
        let cfg = ServerConfig {
            admission: AdmissionConfig {
                burst: 2.0,
                refill_per_s: 1.0,
                energy_budget_j: f64::INFINITY,
            },
            ..ServerConfig::default()
        };
        let server = Server::start(cfg);
        let mut shed = 0;
        let mut queued = Vec::new();
        for i in 0..5 {
            match server.handle_line(&run_line(HELLO, "bursty", &format!("r{i}")), 0) {
                Submission::Immediate(Reply::Error { kind, .. }) => {
                    assert_eq!(kind, ErrorKind::RateLimited);
                    shed += 1;
                }
                Submission::Queued(rx) => queued.push(rx),
                Submission::Immediate(other) => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(shed, 3, "burst of 2 admits 2 of 5");
        // Another tenant at the same instant is untouched.
        assert!(matches!(
            server.handle_line(&run_line(HELLO, "quiet", "q"), 0),
            Submission::Queued(_)
        ));
        for rx in queued {
            assert!(matches!(rx.recv().unwrap(), Reply::Done { .. }));
        }
        server.shutdown();
    }

    #[test]
    fn stats_document_is_valid_and_carries_cache_shards() {
        let server = Server::start(ServerConfig::default());
        let _ = recv(server.handle_line(&run_line(HELLO, "t", "r"), 0));
        let Submission::Immediate(reply) = server.handle_line("{\"op\": \"stats\"}", 1) else {
            panic!("stats is synchronous")
        };
        let Reply::Doc { payload, .. } = &reply else {
            panic!("stats is a doc")
        };
        assert!(ent_runtime::json_is_valid(payload), "{payload}");
        for needle in [
            "\"schema\": \"ent-serve-stats/1\"",
            "\"mode\": \"normal\"",
            "\"signals\":",
            "\"queue\":",
            "\"jobs\":",
            "\"shed\":",
            "\"quarantine\":",
            "\"cache\":",
            "\"shard_entries\": [",
            "\"transitions\":",
        ] {
            assert!(payload.contains(needle), "missing {needle} in {payload}");
        }
        let line = reply.to_json();
        assert!(ent_runtime::json_is_valid(&line), "{line}");
        server.shutdown();
    }

    #[test]
    fn poisoned_jobs_panic_without_crashing_the_daemon() {
        let cfg = ServerConfig {
            chaos: Some(ChaosPlan {
                seed: 1,
                poison_rate: 1.0,
                transient_rate: 0.0,
            }),
            policy: BatchPolicy {
                retries: 1,
                ..BatchPolicy::default()
            },
            ..ServerConfig::default()
        };
        let server = Server::start(cfg);
        let reply = recv(server.handle_line(&run_line(HELLO, "t", "boom"), 0));
        match reply {
            Reply::Error { kind, message, .. } => {
                assert_eq!(kind, ErrorKind::Panic);
                assert!(message.contains("2 attempts"), "{message}");
                assert!(message.contains("poisoned"), "{message}");
            }
            other => panic!("expected Panic, got {other:?}"),
        }
        // The daemon still serves afterwards.
        let Submission::Immediate(Reply::Doc { payload, .. }) =
            server.handle_line("{\"op\": \"health\"}", 1)
        else {
            panic!("health is synchronous")
        };
        assert!(payload.contains("\"ok\": true"));
        server.shutdown();
    }

    #[test]
    fn transient_panics_are_absorbed_by_one_retry() {
        let cfg = ServerConfig {
            chaos: Some(ChaosPlan {
                seed: 2,
                poison_rate: 0.0,
                transient_rate: 1.0,
            }),
            policy: BatchPolicy {
                retries: 1,
                ..BatchPolicy::default()
            },
            ..ServerConfig::default()
        };
        let server = Server::start(cfg);
        let reply = recv(server.handle_line(&run_line(HELLO, "t", "flaky"), 0));
        match reply {
            Reply::Done { code, attempts, .. } => {
                assert_eq!(code, EXIT_OK);
                assert_eq!(attempts, 2, "first attempt panicked, retry ran");
            }
            other => panic!("expected Done, got {other:?}"),
        }
        server.shutdown();
    }
}
