//! The `ent-serve-proto/1` wire protocol.
//!
//! Newline-delimited JSON, one request per line in, one reply per line
//! out, strictly in order per connection. A request:
//!
//! ```json
//! {"op": "run", "id": "req-1", "tenant": "alice", "src": "class Main {…}",
//!  "platform": "a", "battery": 0.8, "seed": 7,
//!  "faults": "dropout=0.2", "fault_seed": 3, "staleness_bound": 2.5}
//! ```
//!
//! `op` is one of `run`, `check`, `stats`, `health`; `src` is required
//! for `run`/`check`. The optional knobs mirror the `ent run` flags and
//! are validated by the same rules, so a served job is exactly an
//! `ent run` invocation — which is what the byte-identity guarantee is
//! stated over.
//!
//! Every reply carries `"schema": "ent-serve-proto/1"`, the request's
//! `id`, and either `"status": "ok"` with the run's exit `code` and full
//! `output` text, or `"status": "error"` with a typed `error` from the
//! fixed vocabulary in [`ErrorKind`].

use ent_cli::{Command, Options, RunOutcome};
use ent_energy::FaultPlan;
use ent_runtime::{json_escape, json_f64};

use crate::json::{self, Json};

/// The protocol schema stamp.
pub const PROTO_SCHEMA: &str = "ent-serve-proto/1";
/// The stats document schema stamp.
pub const STATS_SCHEMA: &str = "ent-serve-stats/1";

/// Request operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Compile (cache-shared) and run `Main.main()`.
    Run,
    /// Parse and typecheck only.
    Check,
    /// The server stats document (`ent-serve-stats/1`).
    Stats,
    /// Liveness: replies even in `fallback_only`.
    Health,
}

/// A parsed, validated request.
#[derive(Clone, Debug)]
pub struct Request {
    /// The operation.
    pub op: Op,
    /// Caller-chosen correlation id, echoed in the reply.
    pub id: String,
    /// The tenant this request bills to.
    pub tenant: String,
    /// Program source (`run` / `check`).
    pub src: String,
    /// The equivalent one-shot CLI options.
    pub options: Options,
}

/// The typed error vocabulary. Every shed or failed request names one of
/// these — a client can branch on `error` without parsing prose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The bounded work queue is full (back off and retry).
    Overloaded,
    /// The tenant's token bucket is empty.
    RateLimited,
    /// The tenant's energy budget is spent.
    EnergyBudget,
    /// The program is quarantined for repeated failures.
    Quarantined,
    /// The server is in `fallback_only` mode; run work is shed.
    FallbackOnly,
    /// The request line failed to parse or validate.
    BadRequest,
    /// The job panicked past its retry budget (isolated; the daemon is
    /// fine).
    Panic,
    /// The program failed to compile.
    CompileError,
}

impl ErrorKind {
    /// The wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::RateLimited => "rate_limited",
            ErrorKind::EnergyBudget => "energy_budget",
            ErrorKind::Quarantined => "quarantined",
            ErrorKind::FallbackOnly => "fallback_only",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Panic => "panic",
            ErrorKind::CompileError => "compile_error",
        }
    }
}

/// One reply, as the in-process harness sees it; [`Reply::to_json`] is
/// the wire form.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// The job ran; `output` is byte-identical to `ent run`'s report and
    /// `code` is the CLI exit code (0 ok, 3 runtime error, 4 degraded).
    Done {
        /// Echoed request id.
        id: String,
        /// CLI exit code.
        code: i32,
        /// The full `ent run` report.
        output: String,
        /// Simulated joules the run spent.
        energy_j: f64,
        /// Simulated seconds the run took.
        time_s: f64,
        /// Attempts the isolation policy used (1 = first try).
        attempts: u32,
    },
    /// The request was shed or failed with a typed error.
    Error {
        /// Echoed request id.
        id: String,
        /// The typed error.
        kind: ErrorKind,
        /// Human-readable detail (compile diagnostics, panic text, …).
        message: String,
    },
    /// A stats or health document (`payload` is already a JSON object).
    Doc {
        /// Echoed request id.
        id: String,
        /// The rendered document.
        payload: String,
    },
}

impl Reply {
    /// The id this reply answers.
    #[must_use]
    pub fn id(&self) -> &str {
        match self {
            Reply::Done { id, .. } | Reply::Error { id, .. } | Reply::Doc { id, .. } => id,
        }
    }

    /// Renders the single-line wire form.
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            Reply::Done {
                id,
                code,
                output,
                energy_j,
                time_s,
                attempts,
            } => format!(
                "{{\"schema\": \"{PROTO_SCHEMA}\", \"id\": \"{}\", \"status\": \"ok\", \
                 \"code\": {code}, \"output\": \"{}\", \"energy_j\": {}, \"time_s\": {}, \
                 \"attempts\": {attempts}}}",
                json_escape(id),
                json_escape(output),
                json_f64(*energy_j),
                json_f64(*time_s),
            ),
            Reply::Error { id, kind, message } => format!(
                "{{\"schema\": \"{PROTO_SCHEMA}\", \"id\": \"{}\", \"status\": \"error\", \
                 \"error\": \"{}\", \"message\": \"{}\"}}",
                json_escape(id),
                kind.as_str(),
                json_escape(message),
            ),
            Reply::Doc { id, payload } => format!(
                "{{\"schema\": \"{PROTO_SCHEMA}\", \"id\": \"{}\", \"status\": \"ok\", \
                 \"doc\": {payload}}}",
                json_escape(id),
            ),
        }
    }

    /// Builds the `Done` reply for a finished run.
    #[must_use]
    pub fn done(id: &str, outcome: &RunOutcome, attempts: u32) -> Reply {
        Reply::Done {
            id: id.to_string(),
            code: outcome.code,
            output: outcome.output.clone(),
            energy_j: outcome.energy_j,
            time_s: outcome.time_s,
            attempts,
        }
    }

    /// Builds a typed error reply.
    #[must_use]
    pub fn error(id: &str, kind: ErrorKind, message: impl Into<String>) -> Reply {
        Reply::Error {
            id: id.to_string(),
            kind,
            message: message.into(),
        }
    }
}

/// Default one-shot options for a served job; request knobs override
/// individual fields. Everything not exposed over the wire keeps its CLI
/// default, so the served run equals `ent run <file> [flags]` exactly.
fn base_options() -> Options {
    Options {
        command: Command::Run,
        path: String::new(),
        platform: "a".to_string(),
        battery: 1.0,
        seed: 0,
        silent: false,
        trace: false,
        events: false,
        events_limit: None,
        profile: Some(ent_runtime::ProfileMode::Off),
        sample_period: None,
        sample_seed: None,
        metrics_json: None,
        energy_types: false,
        stack_size: None,
        faults: None,
        fault_seed: 0,
        staleness_bound: None,
        engine: None,
        tier_up: None,
        enforce: None,
        adapt: None,
        chunk: None,
    }
}

/// Parses and validates one request line.
///
/// # Errors
///
/// A one-line message destined for a `bad_request` reply.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = json::parse(line)?;
    if !matches!(doc, Json::Obj(_)) {
        return Err("request must be a JSON object".to_string());
    }
    let op = match doc.get("op").and_then(Json::as_str) {
        Some("run") => Op::Run,
        Some("check") => Op::Check,
        Some("stats") => Op::Stats,
        Some("health") => Op::Health,
        Some(other) => {
            return Err(format!(
                "unknown op `{other}` (expected run, check, stats, or health)"
            ))
        }
        None => return Err("missing `op`".to_string()),
    };
    let id = match doc.get("id") {
        None => String::new(),
        Some(Json::Str(s)) => s.clone(),
        Some(_) => return Err("`id` must be a string".to_string()),
    };
    let tenant = match doc.get("tenant") {
        None => "anonymous".to_string(),
        Some(Json::Str(s)) if !s.is_empty() => s.clone(),
        Some(_) => return Err("`tenant` must be a non-empty string".to_string()),
    };
    let src = match doc.get("src") {
        None if matches!(op, Op::Run | Op::Check) => {
            return Err("missing `src` for run/check".to_string())
        }
        None => String::new(),
        Some(Json::Str(s)) => s.clone(),
        Some(_) => return Err("`src` must be a string".to_string()),
    };

    let mut options = base_options();
    if matches!(op, Op::Check) {
        options.command = Command::Check;
    }
    if let Some(v) = doc.get("platform") {
        match v.as_str() {
            Some(p @ ("a" | "b" | "c")) => options.platform = p.to_string(),
            _ => return Err("`platform` must be \"a\", \"b\", or \"c\"".to_string()),
        }
    }
    if let Some(v) = doc.get("battery") {
        match v.as_f64() {
            Some(b) if (0.0..=1.0).contains(&b) => options.battery = b,
            _ => return Err("`battery` must be a number in [0, 1]".to_string()),
        }
    }
    if let Some(v) = doc.get("seed") {
        options.seed = v.as_u64().ok_or("`seed` must be a non-negative integer")?;
    }
    if let Some(v) = doc.get("silent") {
        options.silent = v.as_bool().ok_or("`silent` must be a boolean")?;
    }
    if let Some(v) = doc.get("faults") {
        let spec = v.as_str().ok_or("`faults` must be a spec string")?;
        let plan = FaultPlan::parse(spec).map_err(|e| format!("invalid `faults` spec: {e}"))?;
        options.faults = (!plan.is_noop()).then_some(plan);
    }
    if let Some(v) = doc.get("fault_seed") {
        options.fault_seed = v
            .as_u64()
            .ok_or("`fault_seed` must be a non-negative integer")?;
    }
    if let Some(v) = doc.get("staleness_bound") {
        match v.as_f64() {
            Some(b) if b.is_finite() && b > 0.0 => options.staleness_bound = Some(b),
            _ => return Err("`staleness_bound` must be a positive number of seconds".to_string()),
        }
    }
    Ok(Request {
        op,
        id,
        tenant,
        src,
        options,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_run_request_with_knobs() {
        let r = parse_request(
            r#"{"op": "run", "id": "r1", "tenant": "alice", "src": "class Main {}",
                "platform": "b", "battery": 0.5, "seed": 9,
                "faults": "dropout=0.5", "fault_seed": 2, "staleness_bound": 1.5}"#,
        )
        .unwrap();
        assert_eq!(r.op, Op::Run);
        assert_eq!(r.id, "r1");
        assert_eq!(r.tenant, "alice");
        assert_eq!(r.options.platform, "b");
        assert_eq!(r.options.battery, 0.5);
        assert_eq!(r.options.seed, 9);
        assert!(r.options.faults.is_some());
        assert_eq!(r.options.staleness_bound, Some(1.5));
    }

    #[test]
    fn defaults_match_the_cli() {
        let r = parse_request(r#"{"op": "run", "src": "class Main {}"}"#).unwrap();
        assert_eq!(r.tenant, "anonymous");
        assert_eq!(r.options.platform, "a");
        assert_eq!(r.options.battery, 1.0);
        assert_eq!(r.options.seed, 0);
        assert!(!r.options.silent);
        assert!(r.options.faults.is_none());
    }

    #[test]
    fn stats_and_health_need_no_src() {
        assert_eq!(parse_request(r#"{"op": "stats"}"#).unwrap().op, Op::Stats);
        assert_eq!(parse_request(r#"{"op": "health"}"#).unwrap().op, Op::Health);
    }

    #[test]
    fn rejects_malformed_requests_with_reasons() {
        for (line, needle) in [
            ("not json", "malformed literal"),
            (r#"{"op": "fly"}"#, "unknown op"),
            (r#"{"src": "x"}"#, "missing `op`"),
            (r#"{"op": "run"}"#, "missing `src`"),
            (r#"{"op": "run", "src": "x", "battery": 7}"#, "battery"),
            (r#"{"op": "run", "src": "x", "platform": "z"}"#, "platform"),
            (
                r#"{"op": "run", "src": "x", "staleness_bound": 0}"#,
                "staleness_bound",
            ),
            (r#"{"op": "run", "src": "x", "seed": -1}"#, "seed"),
            (r#"{"op": "run", "src": "x", "tenant": ""}"#, "tenant"),
            (
                r#"{"op": "run", "src": "x", "faults": "dropout=never"}"#,
                "faults",
            ),
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(err.contains(needle), "`{line}` gave `{err}`");
        }
    }

    #[test]
    fn replies_render_valid_single_line_json() {
        let replies = [
            Reply::Done {
                id: "a\"b".to_string(),
                code: 0,
                output: "result: 42\nenergy: 1.00 J\n".to_string(),
                energy_j: 1.0,
                time_s: 0.5,
                attempts: 2,
            },
            Reply::error("r2", ErrorKind::Overloaded, "queue full (16 deep)"),
            Reply::Doc {
                id: String::new(),
                payload: "{\"mode\": \"normal\"}".to_string(),
            },
        ];
        for reply in &replies {
            let line = reply.to_json();
            assert!(ent_runtime::json_is_valid(&line), "{line}");
            assert!(!line.contains('\n'), "wire form is one line: {line}");
            assert!(line.contains(PROTO_SCHEMA));
        }
        // The typed error vocabulary is stable.
        assert_eq!(ErrorKind::Quarantined.as_str(), "quarantined");
        assert_eq!(ErrorKind::FallbackOnly.as_str(), "fallback_only");
        // Round-trip: the output bytes survive escape + parse exactly.
        let Reply::Done { output, .. } = &replies[0] else {
            unreachable!()
        };
        let parsed = crate::json::parse(&replies[0].to_json()).unwrap();
        assert_eq!(
            parsed.get("output").and_then(crate::json::Json::as_str),
            Some(output.as_str())
        );
    }
}
