//! `ent-serve`: a multi-tenant resident daemon for the ENT language.
//!
//! Every entry point before this crate was a one-shot CLI or batch run.
//! The ROADMAP's north star — a production-scale service — needs a
//! server that stays correct and responsive while sensors fail, tenants
//! misbehave, and load spikes. This crate is that server, and its design
//! lifts the paper's core idea (proactively adapt program behavior to
//! energy state) to the service level:
//!
//! * **Wire protocol** ([`proto`]): newline-delimited JSON
//!   (`ent-serve-proto/1`) over `std::net::TcpListener` ([`tcp`]) — no
//!   dependencies, one request line in, one reply line out.
//! * **Admission control** ([`admission`]): per-tenant token buckets and
//!   energy budgets; a tenant over budget gets a typed reply, not a slow
//!   server.
//! * **System modes** ([`modes`]): a four-state controller
//!   (`normal < degraded < energy_saver < fallback_only`) driven by
//!   failure-rate, queue-depth, and sensor-fault EWMAs, with hysteresis:
//!   fast to degrade, slow (one level per clean streak) to recover —
//!   modeled on the GMU `ENFORCE_ADAPTIVE_GUARD` TLA+ spec.
//! * **Quarantine** ([`quarantine`]): repeatedly-failing programs (keyed
//!   by source fingerprint) are shed, with decay-based strikes and
//!   parole probes for release.
//! * **Isolation** ([`server`]): a bounded work queue with backpressure,
//!   and workers that reuse the batch engine's `catch_unwind` / retry /
//!   backoff machinery and its compile-once sharded program cache.
//! * **Soak harness** ([`soak`]): a deterministic in-process chaos soak
//!   (faults + panics + overload) that asserts zero daemon crashes,
//!   byte-identical replies vs. one-shot `ent run`, and the hysteresis
//!   invariants — and feeds `BENCH_serve.json`.
//!
//! Modes and admission only ever decide *whether* a job runs, never
//! *how*: an admitted job's `RuntimeConfig` is exactly its one-shot
//! equivalent's, which is why byte-identity holds at any worker count by
//! construction.

pub mod admission;
pub mod json;
pub mod modes;
pub mod proto;
pub mod quarantine;
pub mod server;
pub mod soak;
pub mod tcp;

pub use admission::{Admission, AdmissionConfig, AdmissionShed};
pub use modes::{check_hysteresis, ModeConfig, ModeController, Observation, SystemMode};
pub use proto::{parse_request, ErrorKind, Op, Reply, Request, PROTO_SCHEMA, STATS_SCHEMA};
pub use quarantine::{Quarantine, QuarantineConfig, Verdict};
pub use server::{ChaosPlan, CounterSnapshot, Server, ServerConfig, Submission};
pub use soak::{run_soak, SoakConfig, SoakReport};
