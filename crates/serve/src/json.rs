//! A minimal JSON value parser for the wire protocol.
//!
//! The workspace emits JSON by hand everywhere (no serde), but the server
//! is the first component that has to *read* tenant-supplied JSON. This
//! is a strict recursive-descent parser over the grammar the protocol
//! uses — objects, arrays, strings with the standard escapes, numbers,
//! booleans, null — with a depth bound so a hostile request cannot blow
//! the parser's stack.

/// A parsed JSON value. Object fields keep arrival order; duplicate keys
/// keep the last value, like every mainstream parser.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON has only doubles).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a field of an object (`None` for other value kinds).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if it is one exactly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Nesting depth bound: a request this deep is hostile, not expressive.
const MAX_DEPTH: usize = 64;

/// Parses one JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// Returns a one-line description of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte `{}` at {}", *c as char, *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("malformed literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad utf-8 in number")?;
    let n: f64 = text
        .parse()
        .map_err(|_| format!("malformed number `{text}` at byte {start}"))?;
    if !n.is_finite() {
        return Err(format!("non-finite number `{text}` at byte {start}"));
    }
    Ok(Json::Num(n))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        // Surrogate pairs: a high surrogate must be
                        // followed by an escaped low surrogate.
                        let ch = if (0xD800..0xDC00).contains(&code) {
                            if bytes.get(*pos + 1) == Some(&b'\\')
                                && bytes.get(*pos + 2) == Some(&b'u')
                            {
                                let low = parse_hex4(bytes, *pos + 3)?;
                                *pos += 6;
                                if (0xDC00..0xE000).contains(&low) {
                                    char::from_u32(0x10000 + ((code - 0xD800) << 10) + low - 0xDC00)
                                } else {
                                    None
                                }
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(code)
                        };
                        out.push(ch.ok_or_else(|| format!("bad unicode escape at {}", *pos))?);
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => {
                return Err(format!("raw control byte 0x{c:02x} in string"));
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // encoding is already valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "bad utf-8")?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let slice = bytes
        .get(at..at + 4)
        .ok_or_else(|| "truncated \\u escape".to_string())?;
    let text = std::str::from_utf8(slice).map_err(|_| "bad utf-8 in \\u escape")?;
    u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape `{text}`"))
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // consume `{`
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // consume `[`
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = parse(r#"{"op": "run", "tenant": "t1", "battery": 0.75, "seed": 3}"#).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("run"));
        assert_eq!(v.get("battery").and_then(Json::as_f64), Some(0.75));
        assert_eq!(v.get("seed").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn unescapes_strings() {
        let v = parse(r#"{"src": "class Main \u0041\n\"x\" \\"}"#).unwrap();
        assert_eq!(
            v.get("src").and_then(Json::as_str),
            Some("class Main A\n\"x\" \\")
        );
        // A surrogate pair round-trips.
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn roundtrips_runtime_escaper() {
        // Whatever `ent_runtime::json_escape` emits, this parser reads
        // back verbatim — the two halves of the wire protocol agree.
        let nasty = "line1\nline2\t\"quoted\" \\slash\u{1} 😀";
        let doc = format!("\"{}\"", ent_runtime::json_escape(nasty));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "[1, 2",
            "\"unterminated",
            "{\"a\": 1} trailing",
            "nul",
            "01a",
            "1e999",
            "\"bad \\q escape\"",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn bounds_nesting_depth() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let fine = "[".repeat(32) + &"]".repeat(32);
        assert!(parse(&fine).is_ok());
    }

    #[test]
    fn duplicate_keys_keep_the_last_value() {
        let v = parse(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(2.0));
    }
}
