//! The four-state system-mode controller.
//!
//! The paper's thesis — proactively adapt program behavior to energy
//! state — lifts to the service level: the server itself carries an
//! explicit mode, and every admission decision consults it. The mode
//! lattice is ordered by severity:
//!
//! ```text
//! normal  <  degraded  <  energy_saver  <  fallback_only
//! ```
//!
//! and transitions are **monotone-conservative**, modeled on the GMU
//! `ENFORCE_ADAPTIVE_GUARD` TLA+ spec (SNIPPETS.md Snippet 3):
//!
//! * **Fast to degrade**: when the observed signals call for a more
//!   severe mode, the controller jumps there directly, possibly skipping
//!   levels. A failing system must never linger in a generous mode.
//! * **Slow to recover**: stepping back toward `normal` happens one
//!   level at a time, and only after [`ModeConfig::recovery_ticks`]
//!   consecutive clean observations. In particular `fallback_only →
//!   normal` in one transition is impossible by construction.
//!
//! The controller is a **pure function of its observation sequence**: it
//! reads no clocks and no globals, so the same ticks produce the same
//! transition log on any machine with any worker count — which is what
//! lets the chaos soak assert hysteresis invariants exactly.

/// The system mode lattice, least to most severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SystemMode {
    /// Full service.
    Normal,
    /// Elevated failure or queue pressure: admission tightens (halved
    /// queue and refill), everything still runs.
    Degraded,
    /// Sustained pressure: admission tightens further and per-tenant
    /// energy budgets halve — spend joules only on work that matters.
    EnergySaver,
    /// The conservative floor: `run` work is shed with a typed reply;
    /// only cheap static paths (`check`, `stats`, `health`) are served.
    FallbackOnly,
}

impl SystemMode {
    /// Severity rank, `0` = normal.
    #[must_use]
    pub fn severity(self) -> u8 {
        match self {
            SystemMode::Normal => 0,
            SystemMode::Degraded => 1,
            SystemMode::EnergySaver => 2,
            SystemMode::FallbackOnly => 3,
        }
    }

    fn from_severity(rank: u8) -> SystemMode {
        match rank {
            0 => SystemMode::Normal,
            1 => SystemMode::Degraded,
            2 => SystemMode::EnergySaver,
            _ => SystemMode::FallbackOnly,
        }
    }

    /// The wire name (`ent-serve-proto/1` fixed vocabulary).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SystemMode::Normal => "normal",
            SystemMode::Degraded => "degraded",
            SystemMode::EnergySaver => "energy_saver",
            SystemMode::FallbackOnly => "fallback_only",
        }
    }
}

/// One controller tick's worth of drained counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct Observation {
    /// Jobs that completed since the last tick (any exit code).
    pub completions: u64,
    /// Of those, jobs that failed: panics, runtime errors, compile
    /// errors.
    pub failures: u64,
    /// Sensor faults the injector served during those jobs — the PR 4
    /// `FaultInjector` signal, forwarded from run telemetry.
    pub sensor_faults: u64,
    /// Queue depth at tick time.
    pub queue_depth: u64,
    /// Queue capacity in force at tick time.
    pub queue_capacity: u64,
}

/// Controller thresholds. The defaults suit the soak and the daemon; the
/// invariants hold for any values.
#[derive(Clone, Debug)]
pub struct ModeConfig {
    /// EWMA smoothing factor in `(0, 1]` — the weight of the newest tick.
    pub alpha: f64,
    /// Failure-rate EWMA at or above this demands `degraded`.
    pub fail_degraded: f64,
    /// … `energy_saver`.
    pub fail_energy_saver: f64,
    /// … `fallback_only`.
    pub fail_fallback: f64,
    /// Queue-fullness EWMA at or above this demands `degraded`.
    pub queue_degraded: f64,
    /// … `energy_saver`.
    pub queue_energy_saver: f64,
    /// Sensor-faults-per-completion EWMA at or above this demands
    /// `degraded` (a faulting sensor fleet is an energy-state warning,
    /// not yet a failure).
    pub faults_degraded: f64,
    /// Consecutive clean ticks required before recovering ONE level.
    pub recovery_ticks: u32,
}

impl Default for ModeConfig {
    fn default() -> Self {
        ModeConfig {
            alpha: 0.35,
            fail_degraded: 0.10,
            fail_energy_saver: 0.30,
            fail_fallback: 0.55,
            queue_degraded: 0.60,
            queue_energy_saver: 0.90,
            faults_degraded: 1.0,
            recovery_ticks: 3,
        }
    }
}

/// One recorded transition: `(tick, from, to)`.
pub type Transition = (u64, SystemMode, SystemMode);

/// The mode controller. Feed it one [`Observation`] per tick; read the
/// mode back between ticks.
#[derive(Clone, Debug)]
pub struct ModeController {
    config: ModeConfig,
    mode: SystemMode,
    tick: u64,
    fail_ewma: f64,
    queue_ewma: f64,
    fault_ewma: f64,
    clean_ticks: u32,
    transitions: Vec<Transition>,
}

impl ModeController {
    /// A controller starting in `normal` with zeroed signal estimates.
    #[must_use]
    pub fn new(config: ModeConfig) -> Self {
        ModeController {
            config,
            mode: SystemMode::Normal,
            tick: 0,
            fail_ewma: 0.0,
            queue_ewma: 0.0,
            fault_ewma: 0.0,
            clean_ticks: 0,
            transitions: Vec::new(),
        }
    }

    /// The current mode.
    #[must_use]
    pub fn mode(&self) -> SystemMode {
        self.mode
    }

    /// Every transition so far, in tick order.
    #[must_use]
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// The smoothed `(failure-rate, queue-fullness, faults-per-job)`
    /// estimates, for the stats endpoint.
    #[must_use]
    pub fn signals(&self) -> (f64, f64, f64) {
        (self.fail_ewma, self.queue_ewma, self.fault_ewma)
    }

    /// Applies one tick's observation and returns the (possibly new)
    /// mode.
    pub fn observe(&mut self, obs: &Observation) -> SystemMode {
        self.tick += 1;
        let a = self.config.alpha;
        // Ticks with no completions carry no new failure evidence: decay
        // the estimate toward zero rather than holding it frozen, so an
        // idle system can eventually recover.
        let fail_rate = if obs.completions > 0 {
            obs.failures as f64 / obs.completions as f64
        } else {
            0.0
        };
        let fault_rate = if obs.completions > 0 {
            obs.sensor_faults as f64 / obs.completions as f64
        } else {
            0.0
        };
        let fullness = if obs.queue_capacity > 0 {
            (obs.queue_depth as f64 / obs.queue_capacity as f64).min(1.0)
        } else {
            0.0
        };
        self.fail_ewma = a * fail_rate + (1.0 - a) * self.fail_ewma;
        self.queue_ewma = a * fullness + (1.0 - a) * self.queue_ewma;
        self.fault_ewma = a * fault_rate + (1.0 - a) * self.fault_ewma;

        let demanded = self.demanded_severity();
        let current = self.mode.severity();
        if demanded > current {
            // Fast to degrade: jump straight to the demanded mode.
            self.transition(SystemMode::from_severity(demanded));
            self.clean_ticks = 0;
        } else if demanded < current {
            // Slow to recover: one level per `recovery_ticks` clean run.
            self.clean_ticks += 1;
            if self.clean_ticks >= self.config.recovery_ticks {
                self.transition(SystemMode::from_severity(current - 1));
                self.clean_ticks = 0;
            }
        } else {
            self.clean_ticks = 0;
        }
        self.mode
    }

    /// The most severe mode any single signal demands right now.
    fn demanded_severity(&self) -> u8 {
        let c = &self.config;
        let mut rank = 0u8;
        if self.fail_ewma >= c.fail_fallback {
            rank = rank.max(3);
        } else if self.fail_ewma >= c.fail_energy_saver {
            rank = rank.max(2);
        } else if self.fail_ewma >= c.fail_degraded {
            rank = rank.max(1);
        }
        if self.queue_ewma >= c.queue_energy_saver {
            rank = rank.max(2);
        } else if self.queue_ewma >= c.queue_degraded {
            rank = rank.max(1);
        }
        if self.fault_ewma >= c.faults_degraded {
            rank = rank.max(1);
        }
        rank
    }

    fn transition(&mut self, to: SystemMode) {
        let from = self.mode;
        if from != to {
            self.transitions.push((self.tick, from, to));
            self.mode = to;
        }
    }
}

/// Checks a transition log against the hysteresis invariants; returns a
/// description of the first violation, if any. Shared by the soak
/// harness, the bench bin, and the test suite so "the log respects
/// hysteresis" means one thing everywhere.
///
/// # Errors
///
/// Returns which transition broke which invariant.
pub fn check_hysteresis(transitions: &[Transition]) -> Result<(), String> {
    let mut last_tick = 0;
    for &(tick, from, to) in transitions {
        if tick < last_tick {
            return Err(format!("transition log out of order at tick {tick}"));
        }
        last_tick = tick;
        if from == to {
            return Err(format!("self-transition recorded at tick {tick}"));
        }
        if to.severity() < from.severity() && from.severity() - to.severity() > 1 {
            return Err(format!(
                "recovery skipped levels at tick {tick}: {} -> {}",
                from.as_str(),
                to.as_str()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(completions: u64, failures: u64, depth: u64, cap: u64) -> Observation {
        Observation {
            completions,
            failures,
            sensor_faults: 0,
            queue_depth: depth,
            queue_capacity: cap,
        }
    }

    #[test]
    fn starts_normal_and_stays_there_on_clean_traffic() {
        let mut c = ModeController::new(ModeConfig::default());
        for _ in 0..50 {
            assert_eq!(c.observe(&obs(10, 0, 1, 64)), SystemMode::Normal);
        }
        assert!(c.transitions().is_empty());
    }

    #[test]
    fn degrades_fast_and_recovers_one_level_at_a_time() {
        let mut c = ModeController::new(ModeConfig::default());
        // Total failure: the controller dives to the floor quickly.
        let mut worst = SystemMode::Normal;
        for _ in 0..10 {
            worst = worst.max(c.observe(&obs(10, 10, 0, 64)));
        }
        assert_eq!(worst, SystemMode::FallbackOnly);
        // Clean traffic: recovery must pass through every level.
        let mut seen = vec![c.mode()];
        for _ in 0..40 {
            let m = c.observe(&obs(10, 0, 0, 64));
            if *seen.last().unwrap() != m {
                seen.push(m);
            }
        }
        assert_eq!(
            seen,
            vec![
                SystemMode::FallbackOnly,
                SystemMode::EnergySaver,
                SystemMode::Degraded,
                SystemMode::Normal
            ]
        );
        check_hysteresis(c.transitions()).unwrap();
    }

    #[test]
    fn queue_pressure_alone_caps_at_energy_saver() {
        let mut c = ModeController::new(ModeConfig::default());
        for _ in 0..20 {
            c.observe(&obs(10, 0, 64, 64));
        }
        assert_eq!(c.mode(), SystemMode::EnergySaver);
    }

    #[test]
    fn idle_ticks_decay_toward_recovery() {
        let mut c = ModeController::new(ModeConfig::default());
        for _ in 0..10 {
            c.observe(&obs(10, 10, 0, 64));
        }
        assert_eq!(c.mode(), SystemMode::FallbackOnly);
        // No completions at all — the estimate decays, recovery begins.
        for _ in 0..60 {
            c.observe(&obs(0, 0, 0, 64));
        }
        assert_eq!(c.mode(), SystemMode::Normal);
        check_hysteresis(c.transitions()).unwrap();
    }

    #[test]
    fn hysteresis_checker_rejects_level_skips() {
        let bad = [(5, SystemMode::FallbackOnly, SystemMode::Normal)];
        assert!(check_hysteresis(&bad).is_err());
        let fine = [
            (1, SystemMode::Normal, SystemMode::FallbackOnly),
            (9, SystemMode::FallbackOnly, SystemMode::EnergySaver),
        ];
        check_hysteresis(&fine).unwrap();
    }
}
