//! Per-tenant admission control: token-bucket request gas plus an energy
//! budget.
//!
//! Each tenant owns a token bucket (capacity = burst allowance, refill =
//! sustained rate) and a running account of simulated joules its jobs
//! have spent. Admission asks both: a tenant out of tokens is
//! `rate_limited`, a tenant past its energy budget is `energy_budget` —
//! the service-level analogue of the paper's energy bounds on snapshot
//! windows.
//!
//! The system mode scales both knobs conservatively: `degraded` halves
//! the refill rate, `energy_saver` quarters it and halves the energy
//! budget. Time is **caller-supplied virtual milliseconds**, so the soak
//! harness replays admission decisions exactly; the TCP front-end feeds
//! wall-clock.

use std::collections::HashMap;

use crate::modes::SystemMode;

/// Admission policy knobs (per tenant; every tenant gets the same
/// policy in this reproduction).
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Token bucket capacity: how many requests a tenant may burst.
    pub burst: f64,
    /// Tokens refilled per virtual second under `normal` mode.
    pub refill_per_s: f64,
    /// Simulated joules a tenant may spend before being shed
    /// (`f64::INFINITY` disables the budget).
    pub energy_budget_j: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            burst: 16.0,
            refill_per_s: 50.0,
            energy_budget_j: f64::INFINITY,
        }
    }
}

/// Why admission shed a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionShed {
    /// The tenant's token bucket is empty.
    RateLimited,
    /// The tenant has spent its energy budget.
    EnergyBudget,
}

#[derive(Clone, Debug)]
struct Tenant {
    tokens: f64,
    last_refill_ms: u64,
    energy_spent_j: f64,
}

/// The admission controller: one bucket + energy account per tenant.
#[derive(Clone, Debug)]
pub struct Admission {
    config: AdmissionConfig,
    tenants: HashMap<String, Tenant>,
}

impl Admission {
    /// A controller with no tenants yet; tenants materialize on first
    /// contact with a full bucket.
    #[must_use]
    pub fn new(config: AdmissionConfig) -> Self {
        Admission {
            config,
            tenants: HashMap::new(),
        }
    }

    /// Mode-scaled refill rate (tokens per virtual second).
    fn refill_rate(&self, mode: SystemMode) -> f64 {
        let scale = match mode {
            SystemMode::Normal => 1.0,
            SystemMode::Degraded => 0.5,
            // `fallback_only` sheds run work before admission is even
            // consulted; the floor scale covers static ops.
            SystemMode::EnergySaver | SystemMode::FallbackOnly => 0.25,
        };
        self.config.refill_per_s * scale
    }

    /// Mode-scaled energy budget in joules.
    fn energy_budget(&self, mode: SystemMode) -> f64 {
        match mode {
            SystemMode::Normal | SystemMode::Degraded => self.config.energy_budget_j,
            SystemMode::EnergySaver | SystemMode::FallbackOnly => self.config.energy_budget_j * 0.5,
        }
    }

    /// Decides one request from `tenant` at `now_ms` under `mode`,
    /// consuming a token on admission.
    ///
    /// # Errors
    ///
    /// The typed shed reason when the request must be refused.
    pub fn admit(
        &mut self,
        tenant: &str,
        now_ms: u64,
        mode: SystemMode,
    ) -> Result<(), AdmissionShed> {
        let rate = self.refill_rate(mode);
        let budget = self.energy_budget(mode);
        let burst = self.config.burst;
        let t = self
            .tenants
            .entry(tenant.to_string())
            .or_insert_with(|| Tenant {
                tokens: burst,
                last_refill_ms: now_ms,
                energy_spent_j: 0.0,
            });
        if now_ms > t.last_refill_ms {
            let elapsed_s = (now_ms - t.last_refill_ms) as f64 / 1000.0;
            t.tokens = (t.tokens + elapsed_s * rate).min(burst);
        }
        t.last_refill_ms = t.last_refill_ms.max(now_ms);
        if t.energy_spent_j >= budget {
            return Err(AdmissionShed::EnergyBudget);
        }
        if t.tokens < 1.0 {
            return Err(AdmissionShed::RateLimited);
        }
        t.tokens -= 1.0;
        Ok(())
    }

    /// Charges a completed job's simulated energy to its tenant.
    pub fn record_energy(&mut self, tenant: &str, joules: f64) {
        if let Some(t) = self.tenants.get_mut(tenant) {
            t.energy_spent_j += joules;
        }
    }

    /// Total simulated joules charged to `tenant` so far.
    #[must_use]
    pub fn energy_spent(&self, tenant: &str) -> f64 {
        self.tenants.get(tenant).map_or(0.0, |t| t.energy_spent_j)
    }

    /// Tenants seen so far.
    #[must_use]
    pub fn tenant_count(&self) -> u64 {
        self.tenants.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(burst: f64, refill: f64, budget: f64) -> Admission {
        Admission::new(AdmissionConfig {
            burst,
            refill_per_s: refill,
            energy_budget_j: budget,
        })
    }

    #[test]
    fn burst_then_rate_limit_then_refill() {
        let mut a = controller(4.0, 10.0, f64::INFINITY);
        // The burst admits exactly `burst` requests at one instant.
        for i in 0..4 {
            assert!(a.admit("t", 0, SystemMode::Normal).is_ok(), "req {i}");
        }
        assert_eq!(
            a.admit("t", 0, SystemMode::Normal),
            Err(AdmissionShed::RateLimited)
        );
        // 100 virtual ms at 10 tokens/s = 1 token.
        assert!(a.admit("t", 100, SystemMode::Normal).is_ok());
        assert_eq!(
            a.admit("t", 100, SystemMode::Normal),
            Err(AdmissionShed::RateLimited)
        );
    }

    #[test]
    fn tenants_are_isolated() {
        let mut a = controller(1.0, 1.0, f64::INFINITY);
        assert!(a.admit("alice", 0, SystemMode::Normal).is_ok());
        assert_eq!(
            a.admit("alice", 0, SystemMode::Normal),
            Err(AdmissionShed::RateLimited)
        );
        // A noisy neighbor does not spend bob's tokens.
        assert!(a.admit("bob", 0, SystemMode::Normal).is_ok());
        assert_eq!(a.tenant_count(), 2);
    }

    #[test]
    fn degraded_modes_slow_the_refill() {
        let mut normal = controller(1.0, 10.0, f64::INFINITY);
        let mut saver = controller(1.0, 10.0, f64::INFINITY);
        assert!(normal.admit("t", 0, SystemMode::Normal).is_ok());
        assert!(saver.admit("t", 0, SystemMode::EnergySaver).is_ok());
        // 100 ms refills one token at full rate, only a quarter token
        // under energy_saver.
        assert!(normal.admit("t", 100, SystemMode::Normal).is_ok());
        assert_eq!(
            saver.admit("t", 100, SystemMode::EnergySaver),
            Err(AdmissionShed::RateLimited)
        );
        assert!(saver.admit("t", 400, SystemMode::EnergySaver).is_ok());
    }

    #[test]
    fn energy_budget_sheds_and_halves_under_energy_saver() {
        let mut a = controller(10.0, 0.0, 100.0);
        assert!(a.admit("t", 0, SystemMode::Normal).is_ok());
        a.record_energy("t", 60.0);
        // 60 J spent: fine normally, over the halved saver budget.
        assert!(a.admit("t", 1, SystemMode::Normal).is_ok());
        assert_eq!(
            a.admit("t", 2, SystemMode::EnergySaver),
            Err(AdmissionShed::EnergyBudget)
        );
        a.record_energy("t", 50.0);
        assert_eq!(
            a.admit("t", 3, SystemMode::Normal),
            Err(AdmissionShed::EnergyBudget)
        );
        assert_eq!(a.energy_spent("t"), 110.0);
    }

    #[test]
    fn clock_regressions_are_harmless() {
        let mut a = controller(2.0, 10.0, f64::INFINITY);
        assert!(a.admit("t", 1000, SystemMode::Normal).is_ok());
        // A request stamped earlier than the last must not mint tokens
        // or panic.
        assert!(a.admit("t", 500, SystemMode::Normal).is_ok());
        assert_eq!(
            a.admit("t", 500, SystemMode::Normal),
            Err(AdmissionShed::RateLimited)
        );
    }
}
