//! The deterministic in-process chaos soak.
//!
//! The harness drives a [`Server`] through a scripted storm — sensor
//! faults, runtime errors, poisoned (always-panicking) programs, compile
//! errors, an admission burst, an energy-budget blowout, an overload
//! flood, and a quarantine parole cycle — on a **virtual clock**, and
//! records what the daemon did.
//!
//! Determinism is by construction, not by luck:
//!
//! * Work arrives in **waves**, and every wave is fully drained (all
//!   queued replies received, hence all completion bookkeeping done —
//!   workers record strikes and tick signals *before* replying) before
//!   the controller ticks. A tick therefore observes an exact function
//!   of the wave's composition, independent of worker count and OS
//!   scheduling.
//! * Chaos panics are a pure function of `(seed, fingerprint, seq)`
//!   ([`ChaosPlan`]), and submission order fixes `seq`.
//! * Admission and quarantine run on harness-supplied virtual
//!   milliseconds.
//!
//! The only timing-dependent numbers are the overload flood's shed/accept
//! split and the wall-clock throughput/latency figures; everything in
//! [`SoakReport::determinism_log`] and the transition log is exact, and
//! the integration tests replay the soak to prove it.

use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};

use ent_cli::EXIT_COMPILE;
use ent_runtime::{json_escape, json_f64};
use ent_workloads::source_fingerprint;

use crate::admission::AdmissionConfig;
use crate::modes::{check_hysteresis, SystemMode, Transition};
use crate::proto::{parse_request, ErrorKind, Reply};
use crate::server::{ChaosPlan, CounterSnapshot, Server, ServerConfig, Submission};

/// Soak parameters. Everything that affects the deterministic record is
/// here; the defaults are what `BENCH_serve.json` is generated with.
#[derive(Clone, Debug)]
pub struct SoakConfig {
    /// Chaos seed (panic injection plan).
    pub seed: u64,
    /// Worker threads — the determinism log must not depend on this.
    pub workers: usize,
    /// Jobs hurled at the bounded queue in the overload wave.
    pub flood_jobs: usize,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            seed: 42,
            workers: 4,
            flood_jobs: 300,
        }
    }
}

/// What the soak observed.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// The configuration that produced this report.
    pub seed: u64,
    /// Worker threads used.
    pub workers: usize,
    /// Total request lines submitted (including shed and bad ones).
    pub submitted: u64,
    /// Final server counters.
    pub counters: CounterSnapshot,
    /// The full mode-transition log.
    pub transitions: Vec<Transition>,
    /// Did the transition log pass [`check_hysteresis`]?
    pub hysteresis_ok: bool,
    /// Was every accepted job byte-identical to its one-shot `ent run`?
    pub byte_identical: bool,
    /// Request ids of any byte-identity mismatches.
    pub mismatches: Vec<String>,
    /// Programs quarantined when the soak ended.
    pub quarantine_active: u64,
    /// Programs released on parole during the soak.
    pub quarantine_paroled: u64,
    /// Reply channels that died or timed out — a worker crash would show
    /// here. The acceptance bar is zero.
    pub daemon_errors: u64,
    /// Completed jobs per wall-clock second (informational).
    pub req_per_s: f64,
    /// 99th-percentile submit-to-reply latency of queued jobs in
    /// milliseconds (informational).
    pub p99_ms: f64,
    /// Wall-clock duration of the whole soak in milliseconds.
    pub wall_ms: u64,
    /// Mode when the soak ended.
    pub final_mode: SystemMode,
    /// The exact per-wave record: every line must be identical across
    /// runs and across worker counts.
    pub determinism_log: Vec<String>,
}

impl SoakReport {
    /// The replay-invariant part of the report as one string — two soaks
    /// with the same seed must produce equal signatures regardless of
    /// worker count or machine.
    #[must_use]
    pub fn deterministic_signature(&self) -> String {
        let transitions = self
            .transitions
            .iter()
            .map(|(tick, from, to)| format!("tick {tick}: {} -> {}", from.as_str(), to.as_str()))
            .collect::<Vec<_>>()
            .join("\n");
        format!("{}\n--\n{}", self.determinism_log.join("\n"), transitions)
    }

    /// Renders the report as the `BENCH_serve.json` document body.
    #[must_use]
    pub fn to_json(&self) -> String {
        let c = &self.counters;
        let transitions = self
            .transitions
            .iter()
            .map(|(tick, from, to)| {
                format!(
                    "{{\"tick\": {tick}, \"from\": \"{}\", \"to\": \"{}\"}}",
                    from.as_str(),
                    to.as_str()
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let log = self
            .determinism_log
            .iter()
            .map(|l| format!("\"{}\"", json_escape(l)))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"schema\": \"ent-serve-soak/1\", \"seed\": {}, \"workers\": {}, \
             \"submitted\": {}, \"accepted\": {}, \"completed\": {}, \
             \"ok_runs\": {}, \"degraded_runs\": {}, \"runtime_errors\": {}, \
             \"compile_errors\": {}, \"panics\": {}, \"checks\": {}, \"probes\": {}, \
             \"shed\": {{\"overloaded\": {}, \"rate_limited\": {}, \"energy_budget\": {}, \
             \"quarantined\": {}, \"fallback_only\": {}, \"bad_requests\": {}}}, \
             \"quarantine\": {{\"active\": {}, \"paroled\": {}}}, \
             \"byte_identical\": {}, \"mismatches\": {}, \"daemon_errors\": {}, \
             \"hysteresis_ok\": {}, \"final_mode\": \"{}\", \
             \"req_per_s\": {}, \"p99_ms\": {}, \"wall_ms\": {}, \
             \"transitions\": [{}], \"determinism_log\": [{}]}}",
            self.seed,
            self.workers,
            self.submitted,
            c.accepted,
            c.completed,
            c.ok_runs,
            c.degraded_runs,
            c.runtime_errors,
            c.compile_errors,
            c.panics,
            c.checks,
            c.probes,
            c.shed_overloaded,
            c.shed_rate_limited,
            c.shed_energy_budget,
            c.shed_quarantined,
            c.shed_fallback,
            c.bad_requests,
            self.quarantine_active,
            self.quarantine_paroled,
            self.byte_identical,
            self.mismatches.len(),
            self.daemon_errors,
            self.hysteresis_ok,
            self.final_mode.as_str(),
            json_f64(self.req_per_s),
            json_f64(self.p99_ms),
            self.wall_ms,
            transitions,
            log,
        )
    }
}

/// A program whose snapshot decision needs the battery sensor: under a
/// total dropout plan every decision degrades (exit 4) and each of the
/// three snapshots reports one sensor fault — fault-rate 3.0 per job,
/// which pushes the controller's fault EWMA past its `degraded` line in
/// one wave.
const THREE_FAULT: &str = "modes { low <= high; }
class App@mode<? <= X> {
  attributor {
    if (Ext.battery() >= 0.5) { return high; } else { return low; }
  }
  int effort() { return mcase{ low: 1; high: 9; } <| X; }
}
class Main {
  int main() {
    let d1 = new App();
    let App a1 = snapshot d1 [low, high];
    let d2 = new App();
    let App a2 = snapshot d2 [low, high];
    let d3 = new App();
    let App a3 = snapshot d3 [low, high];
    return a1.effort() + a2.effort() + a3.effort();
  }
}";

/// The parole program: a bounded snapshot (`[high, high]`) throws
/// `EnergyException` whenever the attributor reads a low battery — so
/// the *same bytes* fail at `battery: 0.3` (three strikes, quarantine)
/// and run clean at `battery: 0.9` (parole probes succeed, release).
const PAROLE: &str = "modes { low <= high; }
class App@mode<? <= X> {
  attributor {
    if (Ext.battery() >= 0.5) { return high; } else { return low; }
  }
  int effort() { return mcase{ low: 1; high: 9; } <| X; }
}
class Main {
  int main() {
    let dapp = new App();
    let App a = snapshot dapp [high, high];
    return a.effort();
  }
}";

/// Spends ~39.5 simulated joules per run (10 virtual seconds of idle
/// power) in microseconds of wall time — the energy-budget blowout.
const EXPENSIVE: &str = "class Main {
  int main() {
    Sim.sleepMs(10000);
    return 1;
  }
}";

/// Thousands of interpreter steps per run: enough wall-clock weight that
/// a rapid flood outruns the worker pool and hits the queue bound.
const SPIN: &str = "class W {
  int spin(int n) {
    if (n <= 0) { return 0; }
    return this.spin(n - 1);
  }
}
class Main {
  int main() {
    let w = new W();
    return w.spin(8000);
  }
}";

/// Fails in the front half of the pipeline: a compile-error repeat
/// offender for the quarantine table.
const BAD_SYNTAX: &str = "class Main { int main() { return nonsense; } }";

/// Appends spaces until the program's fingerprint escapes the chaos
/// plan's poison set — the scripted waves must not have their fixed
/// programs randomly poisoned out from under them, for any seed.
fn de_poison(plan: &ChaosPlan, src: &str) -> String {
    let mut out = src.to_string();
    for _ in 0..256 {
        if !plan.poisons(source_fingerprint(&out)) {
            return out;
        }
        out.push(' ');
    }
    panic!("no de-poisoned variant found within 256 paddings");
}

/// Deterministically scans trivial programs for `n` that the plan
/// poisons (`want_poisoned`) or leaves alone.
fn program_pool(plan: &ChaosPlan, n: usize, want_poisoned: bool) -> Vec<String> {
    let mut out = Vec::with_capacity(n);
    for i in 0..100_000u64 {
        let src = format!("class Main {{ int main() {{ return {i}; }} }}");
        if plan.poisons(source_fingerprint(&src)) == want_poisoned {
            out.push(src);
            if out.len() == n {
                return out;
            }
        }
    }
    panic!("program pool scan exhausted");
}

/// A job waiting on its worker reply, with everything needed to replay
/// it one-shot for the byte-identity check.
struct PendingJob {
    id: String,
    line: String,
    rx: Receiver<Reply>,
    t0: Instant,
}

struct Harness {
    server: Server,
    now_ms: u64,
    submitted: u64,
    latencies_ms: Vec<f64>,
    mismatches: Vec<String>,
    daemon_errors: u64,
    log: Vec<String>,
}

/// What one submission produced, from the driver's point of view.
enum Served {
    Done(Reply),
    Shed(ErrorKind),
}

impl Harness {
    fn advance(&mut self, ms: u64) {
        self.now_ms += ms;
    }

    fn line(id: &str, tenant: &str, src: &str, extras: &str) -> String {
        let extras = if extras.is_empty() {
            String::new()
        } else {
            format!(", {extras}")
        };
        format!(
            "{{\"op\": \"run\", \"id\": \"{id}\", \"tenant\": \"{tenant}\", \
             \"src\": \"{}\"{extras}}}",
            json_escape(src)
        )
    }

    /// Submits one line; queued work becomes a [`PendingJob`].
    fn submit(&mut self, line: &str) -> Result<PendingJob, Reply> {
        self.submitted += 1;
        let id = parse_request(line).map_or(String::new(), |r| r.id);
        match self.server.handle_line(line, self.now_ms) {
            Submission::Immediate(reply) => Err(reply),
            Submission::Queued(rx) => Ok(PendingJob {
                id,
                line: line.to_string(),
                rx,
                t0: Instant::now(),
            }),
        }
    }

    /// Receives a pending job's reply and replays it one-shot to verify
    /// byte identity. Chaos-injected panics have no one-shot analogue
    /// and are skipped.
    fn drain(&mut self, job: PendingJob) -> Option<Reply> {
        match job.rx.recv_timeout(Duration::from_secs(120)) {
            Err(_) => {
                self.daemon_errors += 1;
                None
            }
            Ok(reply) => {
                self.latencies_ms
                    .push(job.t0.elapsed().as_secs_f64() * 1000.0);
                let request = parse_request(&job.line).expect("pending jobs parsed once already");
                match &reply {
                    Reply::Done { code, output, .. } => {
                        let one_shot = ent_cli::execute(&request.options, &request.src);
                        if one_shot != (*code, output.clone()) {
                            self.mismatches.push(job.id);
                        }
                    }
                    Reply::Error {
                        kind: ErrorKind::CompileError,
                        message,
                        ..
                    } => {
                        let (code, output) = ent_cli::execute(&request.options, &request.src);
                        if code != EXIT_COMPILE || output != format!("error: {message}\n") {
                            self.mismatches.push(job.id);
                        }
                    }
                    _ => {}
                }
                Some(reply)
            }
        }
    }

    /// Submit-and-wait: the sequential path for waves whose bookkeeping
    /// order matters (parole probes, energy accounting).
    fn submit_and_wait(&mut self, line: &str) -> Served {
        match self.submit(line) {
            Err(Reply::Error { kind, .. }) => Served::Shed(kind),
            Err(reply) => Served::Done(reply),
            Ok(job) => match self.drain(job) {
                Some(reply) => Served::Done(reply),
                None => Served::Shed(ErrorKind::Panic),
            },
        }
    }

    /// Submits a whole wave, drains every reply, then ticks — the drain
    /// barrier that makes the tick observation exact.
    fn wave_and_tick(&mut self, lines: &[String]) -> (Vec<Reply>, SystemMode) {
        let mut pending = Vec::new();
        let mut replies = Vec::new();
        for line in lines {
            match self.submit(line) {
                Ok(job) => pending.push(job),
                Err(reply) => replies.push(reply),
            }
        }
        for job in pending {
            if let Some(reply) = self.drain(job) {
                replies.push(reply);
            }
        }
        let mode = self.server.tick();
        (replies, mode)
    }

    fn log(&mut self, line: String) {
        self.log.push(line);
    }
}

fn count_done(replies: &[Reply], want_code: i32) -> usize {
    replies
        .iter()
        .filter(|r| matches!(r, Reply::Done { code, .. } if *code == want_code))
        .count()
}

fn count_errors(replies: &[Reply], want: ErrorKind) -> usize {
    replies
        .iter()
        .filter(|r| matches!(r, Reply::Error { kind, .. } if *kind == want))
        .count()
}

/// Runs the full scripted soak and returns the report. Panics only on
/// harness bugs (malformed scripted requests); every daemon-side failure
/// is recorded, not thrown.
#[must_use]
pub fn run_soak(cfg: &SoakConfig) -> SoakReport {
    let chaos = ChaosPlan {
        seed: cfg.seed,
        poison_rate: 0.04,
        transient_rate: 0.12,
    };
    let server = Server::start(ServerConfig {
        workers: cfg.workers,
        queue_capacity: 64,
        admission: AdmissionConfig {
            burst: 16.0,
            refill_per_s: 50.0,
            energy_budget_j: 60.0,
        },
        chaos: Some(chaos),
        ..ServerConfig::default()
    });
    let started = Instant::now();
    let mut h = Harness {
        server,
        now_ms: 0,
        submitted: 0,
        latencies_ms: Vec::new(),
        mismatches: Vec::new(),
        daemon_errors: 0,
        log: Vec::new(),
    };

    let parole = de_poison(&chaos, PAROLE);
    let three_fault = de_poison(&chaos, THREE_FAULT);
    let expensive = de_poison(&chaos, EXPENSIVE);
    let spin = de_poison(&chaos, SPIN);
    let bad_syntax = de_poison(&chaos, BAD_SYNTAX);
    let clean = program_pool(&chaos, 8, false);
    let poisoned = program_pool(&chaos, 2, true);

    // Wave 1 — warmup: multi-tenant clean traffic, shared-cache fill.
    let lines: Vec<String> = (0..8)
        .map(|i| {
            let tenant = ["alice", "bob", "carol", "dave"][i % 4];
            Harness::line(&format!("warm-{i}"), tenant, &clean[i], "")
        })
        .collect();
    let (replies, mode) = h.wave_and_tick(&lines);
    h.log(format!(
        "warmup: ok {} of 8, mode {}",
        count_done(&replies, 0),
        mode.as_str()
    ));

    // Wave 2 — sensor-fault pressure: every job completes degraded with
    // three faults, so the fault EWMA alone demands `degraded`.
    h.advance(1000);
    let extras = "\"battery\": 0.9, \"faults\": \"dropout=1.0\", \"fault_seed\": 1";
    let lines: Vec<String> = (0..4)
        .map(|i| Harness::line(&format!("fault-{i}"), "chaos", &three_fault, extras))
        .collect();
    let (replies, mode) = h.wave_and_tick(&lines);
    h.log(format!(
        "faults: degraded {} of 4, mode {}",
        count_done(&replies, ent_cli::EXIT_DEGRADED),
        mode.as_str()
    ));

    // Wave 3 — half the wave fails: three low-battery runs of the parole
    // program (its three strikes quarantine it here) plus one poisoned
    // job, against four clean jobs.
    h.advance(1000);
    let mut lines: Vec<String> = (0..3)
        .map(|i| Harness::line(&format!("strike-{i}"), "chaos", &parole, "\"battery\": 0.3"))
        .collect();
    lines.push(Harness::line("poison-0", "chaos", &poisoned[0], ""));
    for (i, src) in clean.iter().take(4).enumerate() {
        lines.push(Harness::line(&format!("mid-{i}"), "chaos", src, ""));
    }
    let (replies, mode) = h.wave_and_tick(&lines);
    let (active, _) = h.server.quarantine_counts();
    h.log(format!(
        "half-fail: runtime_errors {}, panics {}, quarantined {active}, mode {}",
        count_done(&replies, ent_cli::EXIT_RUNTIME),
        count_errors(&replies, ErrorKind::Panic),
        mode.as_str()
    ));

    // Wave 4 — total failure: poisoned panics and compile errors only.
    h.advance(1000);
    let lines = vec![
        Harness::line("poison-1a", "chaos", &poisoned[1], ""),
        Harness::line("poison-1b", "chaos", &poisoned[1], ""),
        Harness::line("bad-0", "chaos", &bad_syntax, ""),
        Harness::line("bad-1", "chaos", &bad_syntax, ""),
    ];
    let (replies, mode) = h.wave_and_tick(&lines);
    h.log(format!(
        "all-fail-1: panics {}, compile_errors {}, mode {}",
        count_errors(&replies, ErrorKind::Panic),
        count_errors(&replies, ErrorKind::CompileError),
        mode.as_str()
    ));

    // Wave 5 — total failure again: the failure EWMA crosses the
    // fallback line, and the repeat offenders cross three strikes (their
    // wave-4 strikes have decayed slightly, so one more each is not
    // enough — two more each is).
    h.advance(1000);
    let lines = vec![
        Harness::line("poison-1c", "chaos", &poisoned[1], ""),
        Harness::line("poison-1d", "chaos", &poisoned[1], ""),
        Harness::line("bad-2", "chaos", &bad_syntax, ""),
        Harness::line("bad-3", "chaos", &bad_syntax, ""),
    ];
    let (_, mode) = h.wave_and_tick(&lines);
    let (active, _) = h.server.quarantine_counts();
    h.log(format!(
        "all-fail-2: quarantined {active}, mode {}",
        mode.as_str()
    ));

    // Wave 6 — the conservative floor: run work is shed with a typed
    // reply; static paths (check, health, stats) and malformed-line
    // handling stay up.
    h.advance(1000);
    let mut fallback_sheds = 0;
    for i in 0..2 {
        if let Served::Shed(kind) = h.submit_and_wait(&Harness::line(
            &format!("floor-{i}"),
            "alice",
            &clean[0],
            "",
        )) {
            assert_eq!(kind, ErrorKind::FallbackOnly, "floor sheds are typed");
            fallback_sheds += 1;
        }
    }
    let check_line = format!(
        "{{\"op\": \"check\", \"id\": \"floor-check\", \"tenant\": \"alice\", \"src\": \"{}\"}}",
        json_escape(&clean[0])
    );
    let check_ok = matches!(
        h.submit_and_wait(&check_line),
        Served::Done(Reply::Done { code: 0, .. })
    );
    let health_up = matches!(
        h.server.handle_line("{\"op\": \"health\"}", h.now_ms),
        Submission::Immediate(Reply::Doc { payload, .. }) if payload.contains("fallback_only")
    );
    let bad_typed = matches!(
        h.server.handle_line("definitely not json", h.now_ms),
        Submission::Immediate(Reply::Error {
            kind: ErrorKind::BadRequest,
            ..
        })
    );
    h.submitted += 2; // the health and junk lines above
    let mode = h.server.tick();
    h.log(format!(
        "floor: run sheds {fallback_sheds}, check ok {check_ok}, health up {health_up}, \
         bad line typed {bad_typed}, mode {}",
        mode.as_str()
    ));

    // Wave 7 — recovery: idle ticks decay the failure estimate; the
    // controller must walk home one level at a time.
    let mut idle_ticks = 0;
    let mut mode = h.server.mode();
    while mode != SystemMode::Normal && idle_ticks < 40 {
        h.advance(1000);
        mode = h.server.tick();
        idle_ticks += 1;
    }
    h.log(format!(
        "recovery: {idle_ticks} idle ticks to {}",
        mode.as_str()
    ));

    // Wave 8 — admission burst: 40 requests at one virtual instant
    // against a 16-token bucket. The queue (64 deep again) never trips,
    // so the split is exactly 16 accepted / 24 rate-limited.
    h.advance(1000);
    let lines: Vec<String> = (0..40)
        .map(|i| Harness::line(&format!("burst-{i}"), "bursty", &clean[i % 8], ""))
        .collect();
    let (replies, mode) = h.wave_and_tick(&lines);
    h.log(format!(
        "burst: accepted {}, rate_limited {}, mode {}",
        count_done(&replies, 0),
        count_errors(&replies, ErrorKind::RateLimited),
        mode.as_str()
    ));

    // Wave 9 — energy budget: each run of the expensive program spends
    // ~39.5 simulated joules against a 60 J budget, sequentially so the
    // account is strictly ordered: two runs fit, the third is shed.
    h.advance(1000);
    let mut energy_record = Vec::new();
    for i in 0..3 {
        h.advance(100);
        match h.submit_and_wait(&Harness::line(
            &format!("joule-{i}"),
            "greedy",
            &expensive,
            "",
        )) {
            Served::Done(Reply::Done { code, .. }) => energy_record.push(format!("ran({code})")),
            Served::Shed(kind) => energy_record.push(format!("shed({})", kind.as_str())),
            _ => energy_record.push("other".to_string()),
        }
    }
    let mode = h.server.tick();
    h.log(format!(
        "energy: [{}], mode {}",
        energy_record.join(", "),
        mode.as_str()
    ));

    // Wave 10 — overload flood: rapid heavy jobs outrun the worker pool
    // and hit the queue bound. The shed/accept split is timing-dependent
    // (excluded from the log); the tick is clean either way, because the
    // wave drains before it and every accepted job succeeds.
    h.advance(1000);
    let mut pending = Vec::new();
    for i in 0..cfg.flood_jobs {
        h.advance(20);
        if let Ok(job) = h.submit(&Harness::line(&format!("flood-{i}"), "flood", &spin, "")) {
            pending.push(job);
        }
    }
    for job in pending {
        let _ = h.drain(job);
    }
    let mode = h.server.tick();
    h.log(format!("flood: drained, mode {}", mode.as_str()));

    // Wave 11 — parole: the quarantined parole program resubmitted at a
    // healthy battery. Every 8th submission runs as a probe; two clean
    // probes in a row release it, after which it is served normally.
    h.advance(1000);
    let mut parole_record = Vec::new();
    for i in 0..16 {
        h.advance(100);
        match h.submit_and_wait(&Harness::line(
            &format!("parole-{i}"),
            "chaos",
            &parole,
            "\"battery\": 0.9",
        )) {
            Served::Shed(ErrorKind::Quarantined) => parole_record.push("shed"),
            Served::Done(Reply::Done { code: 0, .. }) => parole_record.push("probe-ok"),
            _ => parole_record.push("other"),
        }
    }
    h.advance(100);
    let released_run = matches!(
        h.submit_and_wait(&Harness::line(
            "parole-free",
            "chaos",
            &parole,
            "\"battery\": 0.9"
        )),
        Served::Done(Reply::Done { code: 0, .. })
    );
    let (active, paroled) = h.server.quarantine_counts();
    let mode = h.server.tick();
    h.log(format!(
        "parole: sheds {}, clean probes {}, released {released_run}, \
         active {active}, paroled {paroled}, mode {}",
        parole_record.iter().filter(|s| **s == "shed").count(),
        parole_record.iter().filter(|s| **s == "probe-ok").count(),
        mode.as_str()
    ));

    // Wave 12 — service restored: clean traffic at normal admission.
    h.advance(1000);
    let lines: Vec<String> = (0..4)
        .map(|i| Harness::line(&format!("post-{i}"), "alice", &clean[i], ""))
        .collect();
    let (replies, mode) = h.wave_and_tick(&lines);
    h.log(format!(
        "restored: ok {} of 4, mode {}",
        count_done(&replies, 0),
        mode.as_str()
    ));

    // Assemble the report.
    let wall = started.elapsed();
    let counters = h.server.counters();
    let transitions = h.server.transitions();
    let (quarantine_active, quarantine_paroled) = h.server.quarantine_counts();
    let final_mode = h.server.mode();
    let mut sorted = h.latencies_ms.clone();
    sorted.sort_by(f64::total_cmp);
    let p99_ms = if sorted.is_empty() {
        0.0
    } else {
        sorted[((sorted.len() as f64 * 0.99).ceil() as usize).clamp(1, sorted.len()) - 1]
    };
    let wall_s = wall.as_secs_f64().max(1e-9);
    let report = SoakReport {
        seed: cfg.seed,
        workers: cfg.workers,
        submitted: h.submitted,
        counters,
        hysteresis_ok: check_hysteresis(&transitions).is_ok(),
        transitions,
        byte_identical: h.mismatches.is_empty(),
        mismatches: h.mismatches,
        quarantine_active,
        quarantine_paroled,
        daemon_errors: h.daemon_errors,
        req_per_s: counters.completed as f64 / wall_s,
        p99_ms,
        wall_ms: wall.as_millis() as u64,
        final_mode,
        determinism_log: h.log,
    };
    h.server.shutdown();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_survives_and_exercises_every_subsystem() {
        let report = run_soak(&SoakConfig {
            flood_jobs: 60,
            ..SoakConfig::default()
        });
        assert_eq!(report.daemon_errors, 0, "no worker crash, no lost reply");
        assert!(report.byte_identical, "mismatches: {:?}", report.mismatches);
        assert!(report.hysteresis_ok);
        assert_eq!(report.final_mode, SystemMode::Normal);
        // The scripted storm reaches the floor and walks home.
        assert!(report
            .transitions
            .iter()
            .any(|(_, _, to)| *to == SystemMode::FallbackOnly));
        // Every shed class fires except (possibly) overload, whose count
        // is timing-dependent.
        let c = &report.counters;
        assert!(c.shed_rate_limited >= 24, "{c:?}");
        assert!(c.shed_energy_budget >= 1, "{c:?}");
        assert!(c.shed_quarantined >= 1, "{c:?}");
        assert!(c.shed_fallback >= 1, "{c:?}");
        assert!(c.panics >= 1 && c.compile_errors >= 1, "{c:?}");
        assert_eq!(report.quarantine_paroled, 1, "{:?}", report.determinism_log);
        // The log pins the deterministic wave facts verbatim.
        let log = report.determinism_log.join("\n");
        assert!(log.contains("burst: accepted 16, rate_limited 24"), "{log}");
        assert!(
            log.contains("energy: [ran(0), ran(0), shed(energy_budget)]"),
            "{log}"
        );
        assert!(
            log.contains("parole: sheds 14, clean probes 2, released true"),
            "{log}"
        );
    }
}
