//! Statistical agreement of the sampled profiler with the exact ground
//! truth over the Figure-6 E2 suite, plus batch determinism: the same
//! seed/period must produce byte-identical telemetry at every worker
//! count and on both engines.
//!
//! Everything here is driven by the virtual clock and the seeded jitter
//! stream, so the assertions are deterministic — the thresholds are
//! contracts, not flaky tolerances.

use ent_energy::PlatformKind;
use ent_runtime::{
    default_stack_size, run_lowered, with_interp_stack, Engine, ProfileMode, RuntimeConfig,
};
use ent_workloads::{all_benchmarks, prepare_e2, run_batch};

/// Finer than the default period so even the smallest E2 program
/// (~1.2k steps) takes enough samples to rank methods.
const AGREEMENT_PERIOD: u64 = 16;

fn config(engine: Engine, profile: ProfileMode) -> RuntimeConfig {
    RuntimeConfig {
        engine,
        battery_level: 0.75,
        seed: 42,
        profile,
        ..RuntimeConfig::default()
    }
}

/// Upper bound of the 95% Wilson interval at zero hits, as a proportion:
/// the CI a method the sampler never saw implicitly carries.
fn wilson_zero_hi(n: u64) -> f64 {
    const Z: f64 = 1.959963984540054;
    let z2 = Z * Z;
    z2 / (n as f64 + z2)
}

#[test]
fn sampled_estimates_agree_with_exact_on_fig6() {
    let (overlaps, coverages) = with_interp_stack(default_stack_size(), || {
        let mut overlaps = Vec::new();
        let mut coverages = Vec::new();
        for spec in all_benchmarks() {
            let prepared = prepare_e2(&spec, PlatformKind::SystemA, 1);
            let exact_run = run_lowered(
                &prepared.lowered,
                prepared.platform.clone(),
                config(Engine::Tree, ProfileMode::Exact),
            );
            let sampled_run = run_lowered(
                &prepared.lowered,
                prepared.platform.clone(),
                config(
                    Engine::Tree,
                    ProfileMode::Sampled {
                        period: AGREEMENT_PERIOD,
                        seed: ProfileMode::DEFAULT_SAMPLE_SEED,
                    },
                ),
            );
            let exact = exact_run.profile.as_ref().unwrap().as_exact().unwrap();
            let sampled = sampled_run.profile.as_ref().unwrap().as_sampled().unwrap();
            assert!(sampled.samples > 0, "{}: no samples taken", spec.name);

            // Top-5 methods by exclusive steps, both sides.
            let mut exact_rank: Vec<(&str, u64)> = exact
                .methods
                .iter()
                .map(|m| (m.name.as_str(), m.exclusive.steps))
                .collect();
            exact_rank.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
            let mut sampled_rank: Vec<(&str, f64)> = sampled
                .methods
                .iter()
                .map(|m| (m.name.as_str(), m.est_steps_excl))
                .collect();
            sampled_rank.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(b.0)));
            let depth = 5.min(exact_rank.len()).min(sampled_rank.len());
            if depth > 0 {
                let top: Vec<&str> = exact_rank[..depth].iter().map(|(n, _)| *n).collect();
                let hits = sampled_rank[..depth]
                    .iter()
                    .filter(|(n, _)| top.contains(n))
                    .count();
                overlaps.push(hits as f64 / depth as f64);
            }

            // CI coverage of the exact exclusive steps, every exact method.
            let total = sampled.total_steps as f64;
            let zero_hi = wilson_zero_hi(sampled.samples) * total;
            let mut covered = 0usize;
            for m in &exact.methods {
                let truth = m.exclusive.steps as f64;
                let (lo, hi) = sampled
                    .methods
                    .iter()
                    .find(|s| s.name == m.name)
                    .map(|s| s.ci_steps_excl)
                    .unwrap_or((0.0, zero_hi));
                if lo <= truth && truth <= hi {
                    covered += 1;
                }
            }
            coverages.push(covered as f64 / exact.methods.len() as f64);
        }
        (overlaps, coverages)
    });

    let overlap_mean = overlaps.iter().sum::<f64>() / overlaps.len() as f64;
    let coverage_mean = coverages.iter().sum::<f64>() / coverages.len() as f64;
    assert!(
        overlap_mean >= 0.6,
        "top-5 rank overlap degraded: mean {overlap_mean:.3} from {overlaps:?}"
    );
    assert!(
        coverage_mean >= 0.9,
        "CI coverage degraded: mean {coverage_mean:.3} from {coverages:?}"
    );
}

#[test]
fn sampled_telemetry_is_byte_identical_across_jobs_and_engines() {
    let specs = all_benchmarks();
    let telemetry = |jobs: usize, engine: Engine| -> Vec<String> {
        run_batch(jobs, &specs, |spec| {
            let prepared = prepare_e2(spec, PlatformKind::SystemA, 1);
            run_lowered(
                &prepared.lowered,
                prepared.platform.clone(),
                config(engine, ProfileMode::sampled_default()),
            )
            .to_json()
        })
    };
    let serial = telemetry(1, Engine::Tree);
    let parallel = telemetry(8, Engine::Tree);
    let vm = telemetry(8, Engine::Bytecode);
    assert!(!serial.is_empty());
    for (i, spec) in specs.iter().enumerate() {
        assert_eq!(
            serial[i], parallel[i],
            "{}: telemetry diverged between --jobs 1 and --jobs 8",
            spec.name
        );
        assert_eq!(
            serial[i], vm[i],
            "{}: telemetry diverged between engines",
            spec.name
        );
        assert!(serial[i].contains("\"mode\": \"sampled\""), "{}", spec.name);
    }
}
