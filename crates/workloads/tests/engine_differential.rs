//! Differential fuzzing between the tree-walking evaluator and the
//! register-bytecode VM.
//!
//! Every seeded program from [`ent_workloads::fuzzgen`] is run under both
//! engines across a small grid of battery levels, fault regimes, and
//! **enforcement strategies**, and the complete observable surface —
//! result value (or error), pretty value, printed output, run
//! statistics, energy/time bit patterns, and the rendered event stream —
//! must match byte for byte. Guarded and transient check different
//! things, but each strategy's checks are engine-independent: under
//! guarded the engines agree bit-for-bit as always, and under transient
//! they agree on the full surface too (which subsumes the accept/reject
//! verdict, the transient check/failure counters, and the blame string).
//!
//! Iteration count defaults to 40 seeds and can be raised via the
//! `ENT_FUZZ_ITERS` environment variable (the `engine_fuzz` bench binary
//! exposes the same knob as `--fuzz-iters`).

use ent_core::compile;
use ent_energy::{FaultPlan, Platform};
use ent_runtime::{
    lower_program, render_event, Enforcement, Engine, LoweredProgram, RunResult, RuntimeConfig,
};
use ent_workloads::fuzzgen;

fn fuzz_iters() -> u64 {
    std::env::var("ENT_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(40)
}

/// Everything a run observably produces, in one comparable string.
fn observe(prog: &LoweredProgram, r: &RunResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let value = match &r.value {
        Ok(v) => format!("ok:{v:?}"),
        Err(e) => format!("err:{e}"),
    };
    let s = &r.stats;
    let _ = writeln!(out, "value={value}");
    let _ = writeln!(out, "pretty={:?}", r.value_pretty);
    let _ = writeln!(out, "stats={s:?}");
    let _ = writeln!(
        out,
        "energy={:016x} time={:016x} peak_temp={:016x}",
        r.measurement.energy_j.to_bits(),
        r.measurement.time_s.to_bits(),
        r.measurement.peak_temp_c.to_bits(),
    );
    for line in &r.output {
        let _ = writeln!(out, "out|{line}");
    }
    let _ = writeln!(out, "events_dropped={}", r.events.dropped());
    for ev in r.events.iter() {
        let _ = writeln!(out, "ev|{}", render_event(prog, ev));
    }
    out
}

fn config(
    engine: Engine,
    enforcement: Enforcement,
    battery: f64,
    faults: Option<FaultPlan>,
) -> RuntimeConfig {
    RuntimeConfig {
        engine,
        enforcement,
        battery_level: battery,
        seed: 7,
        record_events: true,
        faults,
        fault_seed: 11,
        ..RuntimeConfig::default()
    }
}

#[test]
fn engines_agree_on_generated_programs() {
    let iters = fuzz_iters();
    let mut error_runs = 0u64;
    for seed in 0..iters {
        let src = fuzzgen::program(seed);
        let compiled = compile(&src)
            .unwrap_or_else(|e| panic!("seed {seed}: generated program rejected: {e}\n{src}"));
        let lowered = lower_program(&compiled);
        for battery in [0.15, 0.55, 0.95] {
            for faults in [None, Some(FaultPlan::chaos())] {
                for enforcement in [Enforcement::Guarded, Enforcement::Transient] {
                    let tree = ent_runtime::run_lowered(
                        &lowered,
                        Platform::system_a(),
                        config(Engine::Tree, enforcement, battery, faults.clone()),
                    );
                    let vm = ent_runtime::run_lowered(
                        &lowered,
                        Platform::system_a(),
                        config(Engine::Bytecode, enforcement, battery, faults.clone()),
                    );
                    if tree.value.is_err() {
                        error_runs += 1;
                    }
                    let (a, b) = (observe(&lowered, &tree), observe(&lowered, &vm));
                    assert_eq!(
                        a,
                        b,
                        "engine divergence at seed {seed} battery {battery} faults {} \
                         enforce {}\nprogram:\n{src}",
                        faults.is_some(),
                        enforcement.name(),
                    );
                }
            }
        }
    }
    // The generator injects out-of-bounds reads and uncaught energy
    // exceptions at a low rate; with the default iteration count the
    // error paths must actually be exercised, not just the happy path.
    if iters >= 40 {
        assert!(
            error_runs > 0,
            "fuzz corpus never exercised an error path — generator drifted"
        );
    }
}

/// Satellite 4: the per-method attribution profiler must see the same
/// call tree (same folded stacks, same costs) regardless of engine.
#[test]
fn profiler_parity_on_recursive_workload() {
    // Seeded generator programs always contain a recursive scenario;
    // use a handful so the check is not hostage to one shape.
    for seed in [0u64, 3, 9] {
        let src = fuzzgen::program(seed);
        let compiled = compile(&src).expect("generated program compiles");
        let lowered = lower_program(&compiled);
        let run = |engine| {
            ent_runtime::run_lowered(
                &lowered,
                Platform::system_a(),
                RuntimeConfig {
                    engine,
                    battery_level: 0.6,
                    seed: 5,
                    profile: ent_runtime::ProfileMode::Exact,
                    ..RuntimeConfig::default()
                },
            )
        };
        let tree = run(Engine::Tree);
        let vm = run(Engine::Bytecode);
        let tree_folded = tree.profile.expect("tree profile").folded_stacks();
        let vm_folded = vm.profile.expect("vm profile").folded_stacks();
        assert_eq!(
            tree_folded, vm_folded,
            "folded stacks diverge between engines at seed {seed}"
        );
        assert!(
            tree_folded.contains("Main.main"),
            "profile must attribute to the call tree root"
        );
    }
}
