//! Differential testing between the **guarded** and **transient**
//! enforcement strategies.
//!
//! The contract (DESIGN.md §14): the strategies agree on values *and*
//! energy exactly where guarded's deep machinery has nothing to do —
//! zero physical copies, zero failed checks. The migration lattice's
//! fully-typed corner satisfies that trivially (no boundaries at all);
//! a fully-untyped program satisfies it too as long as every dynamic
//! object crosses a boundary once (guarded's lazy copy tags in place on
//! first snapshot). Interior lattice points *re*-snapshot live objects,
//! so guarded pays copies that transient refuses on principle: values
//! still agree, energy legitimately does not. And on an adversarial
//! seeded corpus, any disagreement must be confined to the verdict —
//! which strategy rejects, and with what blame — never to the value a
//! program computes when both strategies accept it.

use ent_core::compile;
use ent_energy::{Platform, PlatformKind};
use ent_runtime::{lower_program, Enforcement, LoweredProgram, RunResult, RuntimeConfig};
use ent_workloads::{benchmark, fuzzgen, lattice_program, platform_for};

fn run_with(
    lowered: &LoweredProgram,
    platform: &Platform,
    enforcement: Enforcement,
    battery: f64,
) -> RunResult {
    ent_runtime::run_lowered(
        lowered,
        platform.clone(),
        RuntimeConfig {
            enforcement,
            battery_level: battery,
            seed: 13,
            ..RuntimeConfig::default()
        },
    )
}

/// The semantic surface the two strategies must share when the
/// equivalence precondition holds: value, pretty value, printed output,
/// and the exact energy/time bit patterns.
fn semantics(r: &RunResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "value={:?}", r.value);
    let _ = writeln!(out, "pretty={:?}", r.value_pretty);
    let _ = writeln!(
        out,
        "energy={:016x} time={:016x}",
        r.measurement.energy_j.to_bits(),
        r.measurement.time_s.to_bits()
    );
    for line in &r.output {
        let _ = writeln!(out, "out|{line}");
    }
    out
}

/// Each strategy's counters stay in their own lane: guarded never
/// performs transient checks, transient never reports guarded blame.
fn assert_counter_lanes(guarded: &RunResult, transient: &RunResult, ctx: &str) {
    assert_eq!(
        guarded.stats.transient_checks, 0,
        "{ctx}: guarded run performed transient checks"
    );
    assert_eq!(
        guarded.stats.transient_failures, 0,
        "{ctx}: guarded run reported transient failures"
    );
    assert_eq!(
        transient.stats.dfall_failures, 0,
        "{ctx}: transient run reported guarded dfall blame"
    );
    assert_eq!(
        transient.stats.snapshot_failures, 0,
        "{ctx}: transient run reported guarded boundary blame"
    );
    assert_eq!(
        transient.stats.copies, 0,
        "{ctx}: transient run physically copied an object"
    );
}

/// The fully-typed lattice corner: no boundaries, so guarded has zero
/// copies and the strategies are bit-identical in value and energy.
#[test]
fn fully_typed_corner_is_bit_identical() {
    for name in ["crypto", "sunflow", "batik"] {
        let spec = benchmark(name).expect("lattice benchmark exists");
        let platform = platform_for(&spec, PlatformKind::SystemA);
        let components = 3;
        let src = lattice_program(&spec, &platform, (1 << components) - 1, components);
        let compiled = compile(&src).expect("fully-typed corner compiles");
        let lowered = lower_program(&compiled);
        let guarded = run_with(&lowered, &platform, Enforcement::Guarded, 0.95);
        let transient = run_with(&lowered, &platform, Enforcement::Transient, 0.95);
        assert!(guarded.value.is_ok(), "{name}: guarded rejected the corner");
        assert_eq!(
            guarded.stats.copies, 0,
            "{name}: typed corner must not copy (precondition of the equivalence)"
        );
        assert_eq!(
            semantics(&guarded),
            semantics(&transient),
            "{name}: strategies diverge on the fully-typed corner"
        );
        assert_counter_lanes(&guarded, &transient, name);
        // Transient still checks every send; "nothing to enforce" must
        // not degrade into "nothing checked".
        assert!(
            transient.stats.transient_checks > 0,
            "{name}: transient performed no checks on the typed corner"
        );
    }
}

/// A fully-untyped program whose dynamic objects each cross the boundary
/// exactly once: guarded's lazy copy tags in place (zero copies), so the
/// equivalence precondition holds at the opposite corner too.
#[test]
fn fully_untyped_fresh_boundary_corner_is_bit_identical() {
    let src = r#"modes { energy_saver <= managed; managed <= full_throttle; }
class Worker@mode<? <= W> {
  double units;
  attributor {
    if (Ext.battery() >= 0.9) { return full_throttle; }
    else if (Ext.battery() >= 0.7) { return managed; }
    else { return energy_saver; }
  }
  double chunk() { Sim.work("cpu", this.units); return this.units; }
}
class App@mode<? <= X> {
  attributor {
    if (Ext.battery() >= 0.9) { return full_throttle; }
    else if (Ext.battery() >= 0.7) { return managed; }
    else { return energy_saver; }
  }
  unit step(int remaining) {
    if (remaining <= 0) { return {}; }
    let dw = new Worker(40.0);
    let Worker w = snapshot dw [_, X];
    w.chunk();
    return this.step(remaining - 1);
  }
  unit run() { this.step(24); return {}; }
}
class Main {
  unit main() {
    let dapp = new App();
    let App a = snapshot dapp [_, _];
    a.run();
    return {};
  }
}"#;
    let compiled = compile(src).expect("fresh-boundary program compiles");
    let lowered = lower_program(&compiled);
    let platform = Platform::system_a();
    for battery in [0.15, 0.55, 0.95] {
        let guarded = run_with(&lowered, &platform, Enforcement::Guarded, battery);
        let transient = run_with(&lowered, &platform, Enforcement::Transient, battery);
        assert!(guarded.value.is_ok(), "guarded rejected at {battery}");
        assert_eq!(
            guarded.stats.copies, 0,
            "fresh-per-crossing objects must tag in place, not copy"
        );
        assert!(guarded.stats.snapshots > 24, "boundary was not exercised");
        assert_eq!(
            semantics(&guarded),
            semantics(&transient),
            "strategies diverge on the fresh-boundary untyped corner at battery {battery}"
        );
        assert_counter_lanes(&guarded, &transient, "untyped corner");
    }
}

/// Interior lattice points re-snapshot a live Worker every chunk:
/// guarded pays physical copies (and their energy), transient re-tags in
/// place. Values agree; the energy gap is exactly the strategies' point.
#[test]
fn interior_points_agree_on_values_guarded_pays_copies() {
    let spec = benchmark("batik").expect("batik exists");
    let platform = platform_for(&spec, PlatformKind::SystemA);
    let components = 3;
    for mask in 1..(1u32 << components) - 1 {
        let src = lattice_program(&spec, &platform, mask, components);
        let compiled = compile(&src).expect("interior point compiles");
        let lowered = lower_program(&compiled);
        let guarded = run_with(&lowered, &platform, Enforcement::Guarded, 0.95);
        let transient = run_with(&lowered, &platform, Enforcement::Transient, 0.95);
        assert!(guarded.value.is_ok() && transient.value.is_ok());
        assert_eq!(
            guarded.value_pretty, transient.value_pretty,
            "mask {mask}: values diverge"
        );
        assert_eq!(
            guarded.output, transient.output,
            "mask {mask}: output diverges"
        );
        assert!(
            guarded.stats.copies > 0,
            "mask {mask}: interior point must force guarded copies"
        );
        assert!(
            guarded.measurement.energy_j > transient.measurement.energy_j,
            "mask {mask}: guarded copies must cost energy that transient does not pay"
        );
        assert_counter_lanes(&guarded, &transient, "interior");
    }
}

/// Adversarial seeded corpus: across fuzz programs and battery levels,
/// the strategies may disagree on the verdict (who rejects, with what
/// blame) but never on the value when both accept.
#[test]
fn seeded_grid_disagreements_are_verdict_only() {
    let mut both_ok = 0u64;
    let mut verdict_splits = 0u64;
    for seed in 0..40 {
        let src = fuzzgen::program(seed);
        let compiled = compile(&src)
            .unwrap_or_else(|e| panic!("seed {seed}: generated program rejected: {e}"));
        let lowered = lower_program(&compiled);
        let platform = Platform::system_a();
        for battery in [0.15, 0.55, 0.95] {
            let guarded = run_with(&lowered, &platform, Enforcement::Guarded, battery);
            let transient = run_with(&lowered, &platform, Enforcement::Transient, battery);
            assert_counter_lanes(&guarded, &transient, &format!("seed {seed}"));
            match (&guarded.value, &transient.value) {
                (Ok(_), Ok(_)) => {
                    both_ok += 1;
                    assert_eq!(
                        guarded.value_pretty, transient.value_pretty,
                        "seed {seed} battery {battery}: both strategies accepted \
                         but computed different values\n{src}"
                    );
                    assert_eq!(
                        guarded.output, transient.output,
                        "seed {seed} battery {battery}: both strategies accepted \
                         but printed different output\n{src}"
                    );
                }
                (Ok(_), Err(_)) | (Err(_), Ok(_)) => verdict_splits += 1,
                (Err(_), Err(_)) => {}
            }
        }
    }
    assert!(both_ok > 0, "corpus never exercised the agreement path");
    // Divergent verdicts are allowed, not required; print for the curious.
    eprintln!("agreement runs: {both_ok}, verdict splits: {verdict_splits}");
}
