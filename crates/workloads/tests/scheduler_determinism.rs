//! Adversarial determinism tests for the work-stealing batch scheduler:
//! skewed job mixes (sleep-heavy and gas-heavy cells side by side) must
//! produce byte-identical outcome vectors — values, error messages,
//! attempt counts, ordering — at every worker count, with stealing forced
//! by a chunk-1 pin.
//!
//! These tests pin the scheduler chunk via `adapt::pin_chunk`, which is
//! process-wide; each test restores the previous pin before returning so
//! the suite stays order-independent.

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use ent_energy::PlatformKind;
use ent_runtime::adapt;
use ent_workloads::{
    benchmark, prepare_e1, run_batch_outcomes, run_batch_outcomes_with_telemetry, run_e1_prepared,
    BatchPolicy, JobError,
};

/// FNV-1a over an outcome vector: values by exact bit pattern, errors by
/// message and attempt count, all in slot order.
fn fingerprint(outcomes: &[Result<Vec<u8>, JobError>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for o in outcomes {
        match o {
            Ok(bytes) => {
                eat(b"ok");
                eat(bytes);
            }
            Err(e) => {
                eat(b"err");
                eat(e.message.as_bytes());
                eat(&e.attempts.to_le_bytes());
            }
        }
    }
    h
}

/// Runs `f` with the scheduler chunk pinned to `chunk`, restoring the
/// previous pin afterwards (even on panic, so a failing assertion in one
/// test cannot poison the others). The pin is process-wide state, so
/// tests using it serialize on a suite-local mutex — the test harness
/// runs tests on parallel threads by default.
fn with_pinned_chunk<R>(chunk: u32, f: impl FnOnce() -> R) -> R {
    static PIN_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _serialize = PIN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    struct Restore(u32);
    impl Drop for Restore {
        fn drop(&mut self) {
            adapt::pin_chunk(self.0);
        }
    }
    let _restore = Restore(adapt::snapshot().1.chunk);
    adapt::pin_chunk(chunk);
    f()
}

#[test]
fn skewed_interpreter_batches_are_byte_identical_across_worker_counts() {
    // A deliberately unbalanced mix: the front of the range is gas-heavy
    // (full_throttle workload cells) *and* sleep-padded, so with chunk 1
    // the workers that drew light cells drain their ranges and steal the
    // heavy tail. Every job's behavior — benchmark, config, seed, even
    // its sleep — derives from its index, never from execution order.
    let heavy = prepare_e1(&benchmark("sunflow").unwrap(), PlatformKind::SystemA, 2);
    let light = prepare_e1(&benchmark("jspider").unwrap(), PlatformKind::SystemA, 0);
    let work: Vec<usize> = (0..36).collect();
    let run = |jobs: usize| {
        with_pinned_chunk(1, || {
            run_batch_outcomes(jobs, &work, &BatchPolicy::default(), |&i, _| {
                if i < 6 {
                    std::thread::sleep(Duration::from_millis(5));
                }
                let prog = if i % 3 == 0 { &heavy } else { &light };
                let out = run_e1_prepared(prog, i % 3, i % 2 == 0, 1000 + i as u64 * 17);
                let mut bytes = out.energy_j.to_bits().to_le_bytes().to_vec();
                bytes.extend(out.time_s.to_bits().to_le_bytes());
                bytes.push(out.exception as u8);
                bytes.extend(out.snapshot_failures.to_le_bytes());
                bytes.extend(out.dfall_failures.to_le_bytes());
                bytes
            })
        })
    };
    let baseline = run(1);
    let fp = fingerprint(&baseline);
    for jobs in [2, 8] {
        let outcomes = run(jobs);
        assert_eq!(
            fingerprint(&outcomes),
            fp,
            "jobs={jobs} diverged from the sequential baseline"
        );
        assert_eq!(outcomes.len(), baseline.len());
    }
}

#[test]
fn stealing_actually_happens_in_the_skewed_mix() {
    // The companion to the test above: prove the byte-equality is not
    // vacuous — at 8 workers with chunk 1, the skewed mix steals.
    let work: Vec<usize> = (0..64).collect();
    let (_, telemetry) = with_pinned_chunk(1, || {
        run_batch_outcomes_with_telemetry(8, &work, &BatchPolicy::default(), |&i, _| {
            if i < 8 {
                std::thread::sleep(Duration::from_millis(10));
            }
            i
        })
    });
    assert!(
        telemetry.steals > 0,
        "expected steals in a skewed chunk-1 batch: {telemetry:?}"
    );
    assert!(telemetry.stolen_jobs >= telemetry.steals);
}

#[test]
fn failures_attempts_and_messages_are_identical_under_stealing() {
    // Jobs 5, 13, and 21 fail deterministically on every attempt; job 30
    // fails on its first attempt only. With one retry, the permanent
    // failures must report attempts == 2 with identical messages at every
    // worker count, and the flaky job must succeed everywhere.
    let work: Vec<usize> = (0..40).collect();
    let policy = BatchPolicy {
        retries: 1,
        ..BatchPolicy::default()
    };
    let run = |jobs: usize| {
        with_pinned_chunk(1, || {
            run_batch_outcomes(jobs, &work, &policy, |&i, attempt| {
                if i == 5 || i == 13 || i == 21 {
                    panic!("job {i} is permanently broken");
                }
                if i == 30 && attempt == 0 {
                    panic!("job {i} is flaky on its first attempt");
                }
                if i < 4 {
                    std::thread::sleep(Duration::from_millis(5));
                }
                vec![i as u8, attempt as u8]
            })
        })
    };
    let baseline = run(1);
    assert_eq!(
        baseline[30],
        Ok(vec![30, 1]),
        "flaky job recovers via retry"
    );
    let err = baseline[13].as_ref().unwrap_err();
    assert_eq!(err.attempts, 2);
    assert!(err.message.contains("permanently broken"));
    let fp = fingerprint(&baseline);
    for jobs in [2, 8] {
        assert_eq!(
            fingerprint(&run(jobs)),
            fp,
            "jobs={jobs}: failure shape diverged under stealing"
        );
    }
}

#[test]
fn chunk_pins_do_not_change_results_only_schedules() {
    // The same batch under wildly different chunk pins (1, 7, 4096) must
    // return identical outcomes; only the telemetry may differ.
    let work: Vec<usize> = (0..50).collect();
    let run = |chunk: u32| {
        with_pinned_chunk(chunk, || {
            run_batch_outcomes_with_telemetry(4, &work, &BatchPolicy::default(), |&i, _| {
                vec![(i * 31 % 251) as u8]
            })
        })
    };
    let (base, t1) = run(1);
    let fp = fingerprint(&base);
    let (mid, t7) = run(7);
    let (coarse, tmax) = run(4096);
    assert_eq!(fingerprint(&mid), fp);
    assert_eq!(fingerprint(&coarse), fp);
    assert_eq!(t1.chunk, 1);
    assert_eq!(t7.chunk, 7);
    assert_eq!(tmax.chunk, 4096);
    // Coarse chunks mean fewer owner grabs than chunk-1's one-per-job.
    assert!(tmax.chunks_claimed <= t1.chunks_claimed);
}

#[test]
fn attempt_counter_is_per_job_not_per_worker() {
    // A stolen job's retry happens on whichever worker holds it; the
    // attempt index passed to the closure must still be per-job. Count
    // total invocations: 22 passing jobs run once, the two failing jobs
    // run twice (first attempt + one retry).
    let calls = AtomicU32::new(0);
    let work: Vec<usize> = (0..24).collect();
    let policy = BatchPolicy {
        retries: 1,
        ..BatchPolicy::default()
    };
    let outcomes = with_pinned_chunk(1, || {
        run_batch_outcomes(8, &work, &policy, |&i, attempt| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert!(attempt <= 1, "attempts never exceed retries + 1");
            if i == 2 || i == 17 {
                panic!("always fails");
            }
            i
        })
    });
    assert_eq!(calls.load(Ordering::Relaxed), 22 + 2 * 2);
    assert_eq!(outcomes.iter().filter(|o| o.is_err()).count(), 2);
    for (i, o) in outcomes.iter().enumerate() {
        if i == 2 || i == 17 {
            assert_eq!(o.as_ref().unwrap_err().attempts, 2);
        } else {
            assert_eq!(o.as_ref().unwrap(), &i);
        }
    }
}
