//! The paper's benchmark suite: Figure 6's application list and Figure 7's
//! workload-attribution and QoS settings, encoded as data.

use ent_energy::PlatformKind;

/// How a benchmark consumes time: batch workloads finish when the work is
/// done; time-fixed workloads (continuous monitoring, media, Apps) run for
/// a fixed duration and vary *power* via their duty cycle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Shape {
    /// Batch: total work = items × QoS factor; energy differences come
    /// from runtime.
    Batch {
        /// Target virtual runtime in seconds for the `managed` workload at
        /// default QoS on the benchmark's primary platform (used to
        /// calibrate work units).
        managed_seconds: f64,
    },
    /// Time-fixed: runs for a per-workload duration at a per-boot-mode
    /// duty cycle; energy differences come from power.
    TimeFixed {
        /// Run duration in seconds, per workload mode.
        durations_s: [f64; 3],
        /// CPU duty cycle per boot mode (energy_saver, managed,
        /// full_throttle).
        duty: [f64; 3],
    },
}

/// One benchmark: Figure 6's description plus Figure 7's settings.
#[derive(Clone, Debug)]
pub struct BenchmarkSpec {
    /// Benchmark name as in the paper.
    pub name: &'static str,
    /// The platforms the paper evaluated it on.
    pub systems: &'static [PlatformKind],
    /// One-line description (Figure 6).
    pub description: &'static str,
    /// CLOC of the original Java code base (Figure 6; context only).
    pub cloc: u32,
    /// Lines changed to port to ENT (Figure 6; context only).
    pub ent_changes: u32,
    /// What the workload attributor inspects (Figure 7, column 2).
    pub workload_attr: &'static str,
    /// The three workload labels (energy_saver, managed, full_throttle).
    pub workload_labels: [&'static str; 3],
    /// Workload sizes in abstract items (resources, classes, nodes, …).
    pub workload_items: [f64; 3],
    /// The QoS knob adjusted per boot mode (Figure 7, column 6).
    pub qos_knob: &'static str,
    /// The three QoS labels (energy_saver, default, full_throttle).
    pub qos_labels: [&'static str; 3],
    /// Work multiplier per boot mode relative to the default setting.
    pub qos_factors: [f64; 3],
    /// The dominant kind of work (`Sim.work`'s first argument).
    pub work_kind: &'static str,
    /// Batch or time-fixed execution shape.
    pub shape: Shape,
}

impl BenchmarkSpec {
    /// Whether this benchmark runs on a given platform.
    pub fn runs_on(&self, platform: PlatformKind) -> bool {
        self.systems.contains(&platform)
    }

    /// The primary platform: the first listed.
    pub fn primary_platform(&self) -> PlatformKind {
        self.systems[0]
    }

    /// Whether the benchmark is time-fixed.
    pub fn is_time_fixed(&self) -> bool {
        matches!(self.shape, Shape::TimeFixed { .. })
    }

    /// Workload-mode attribution thresholds: midpoints between the three
    /// item counts, so an attributor can classify a workload size.
    pub fn thresholds(&self) -> (f64, f64) {
        let w = &self.workload_items;
        ((w[0] + w[1]) / 2.0, (w[1] + w[2]) / 2.0)
    }
}

/// The boot-mode battery levels of §6.1: energy_saver at 40 %, managed at
/// 70 %, full_throttle at 90 %. The levels returned sit safely inside each
/// band (thresholds are ≥ 0.7 / ≥ 0.9).
pub fn battery_for_boot(boot: usize) -> f64 {
    [0.45, 0.78, 0.96][boot.min(2)]
}

/// Names of the three modes, in lattice order.
pub const MODE_NAMES: [&str; 3] = ["energy_saver", "managed", "full_throttle"];

/// All fifteen benchmarks of Figure 6/7.
pub fn all_benchmarks() -> Vec<BenchmarkSpec> {
    use PlatformKind::*;
    vec![
        BenchmarkSpec {
            name: "crypto",
            systems: &[SystemA, SystemB],
            description: "RSA encryption",
            cloc: 381,
            ent_changes: 46,
            workload_attr: "file size",
            workload_labels: ["1MB", "2MB", "4MB"],
            workload_items: [1.0, 2.0, 4.0],
            qos_knob: "encryption key strength",
            qos_labels: ["768", "1024", "1280"],
            qos_factors: [0.5, 1.0, 1.7],
            work_kind: "crypto",
            shape: Shape::Batch {
                managed_seconds: 0.35,
            },
        },
        BenchmarkSpec {
            name: "findbugs",
            systems: &[SystemA],
            description: "static analyzer",
            cloc: 147_896,
            ent_changes: 55,
            workload_attr: "code base (classes)",
            workload_labels: ["drjava(5363)", "JavaRT(20136)", "jBoss(56704)"],
            workload_items: [5363.0, 20136.0, 56704.0],
            qos_knob: "analysis effort",
            qos_labels: ["min", "default", "max"],
            qos_factors: [0.55, 1.0, 1.6],
            work_kind: "cpu",
            shape: Shape::Batch {
                managed_seconds: 25.0,
            },
        },
        BenchmarkSpec {
            name: "jspider",
            systems: &[SystemA],
            description: "web crawler",
            cloc: 9194,
            ent_changes: 49,
            workload_attr: "site resources",
            workload_labels: ["89", "1058", "1967"],
            workload_items: [89.0, 1058.0, 1967.0],
            qos_knob: "spidering depth",
            qos_labels: ["3", "4", "5"],
            qos_factors: [0.6, 1.0, 1.55],
            work_kind: "net",
            shape: Shape::Batch {
                managed_seconds: 22.0,
            },
        },
        BenchmarkSpec {
            name: "jython",
            systems: &[SystemA],
            description: "compiler",
            cloc: 215_749,
            ent_changes: 33,
            workload_attr: "script size",
            workload_labels: ["small", "default", "large"],
            workload_items: [200.0, 800.0, 2000.0],
            qos_knob: "optimization level",
            qos_labels: ["0", "1", "2"],
            qos_factors: [0.7, 1.0, 1.35],
            work_kind: "cpu",
            shape: Shape::Batch {
                managed_seconds: 30.0,
            },
        },
        BenchmarkSpec {
            name: "pagerank",
            systems: &[SystemA],
            description: "graph vertex ranking",
            cloc: 157,
            ent_changes: 49,
            workload_attr: "graph (number nodes)",
            workload_labels: [
                "cnr-2000(325557)",
                "eswiki-2013(972933)",
                "frwiki-2013(1352053)",
            ],
            workload_items: [325_557.0, 972_933.0, 1_352_053.0],
            qos_knob: "minimum change",
            qos_labels: ["0.01", "0.001", "0.0001"],
            qos_factors: [0.55, 1.0, 1.45],
            work_kind: "cpu",
            shape: Shape::Batch {
                managed_seconds: 70.0,
            },
        },
        BenchmarkSpec {
            name: "sunflow",
            systems: &[SystemA, SystemB],
            description: "renderer",
            cloc: 21_946,
            ent_changes: 76,
            workload_attr: "scene instances",
            workload_labels: ["3", "6", "8"],
            workload_items: [3.0, 6.0, 8.0],
            qos_knob: "anti-aliasing samples",
            qos_labels: ["1/4", "1/4 - 4", "1/4 - 16"],
            qos_factors: [0.45, 1.0, 1.3],
            work_kind: "render",
            shape: Shape::Batch {
                managed_seconds: 14.0,
            },
        },
        BenchmarkSpec {
            name: "xalan",
            systems: &[SystemA],
            description: "transformer",
            cloc: 169_927,
            ent_changes: 33,
            workload_attr: "XML files",
            workload_labels: ["small", "default", "large"],
            workload_items: [40.0, 120.0, 300.0],
            qos_knob: "validation depth",
            qos_labels: ["none", "default", "strict"],
            qos_factors: [0.65, 1.0, 1.4],
            work_kind: "io",
            shape: Shape::Batch {
                managed_seconds: 18.0,
            },
        },
        BenchmarkSpec {
            name: "camera",
            systems: &[SystemB],
            description: "picture timelapse",
            cloc: 143,
            ent_changes: 40,
            workload_attr: "picture resolution",
            workload_labels: ["720x480", "1280x720", "1920x1080"],
            workload_items: [0.35, 0.92, 2.07],
            qos_knob: "timelapse interval",
            qos_labels: ["1500ms", "1000ms", "500ms"],
            qos_factors: [0.67, 1.0, 2.0],
            work_kind: "encode",
            shape: Shape::TimeFixed {
                durations_s: [120.0, 120.0, 120.0],
                duty: [0.50, 0.56, 0.64],
            },
        },
        BenchmarkSpec {
            name: "video",
            systems: &[SystemB],
            description: "video recording",
            cloc: 115,
            ent_changes: 40,
            workload_attr: "video resolution",
            workload_labels: ["480p", "720p", "1080p"],
            workload_items: [0.41, 0.92, 2.07],
            qos_knob: "frames per second",
            qos_labels: ["10", "20", "30"],
            qos_factors: [0.33, 0.67, 1.0],
            work_kind: "encode",
            shape: Shape::TimeFixed {
                durations_s: [120.0, 120.0, 120.0],
                duty: [0.5, 0.65, 0.8],
            },
        },
        BenchmarkSpec {
            name: "javaboy",
            systems: &[SystemB],
            description: "emulation",
            cloc: 6492,
            ent_changes: 38,
            workload_attr: "ROM size",
            workload_labels: ["64KB", "512KB", "1MB"],
            workload_items: [64.0, 512.0, 1024.0],
            qos_knob: "screen magnification",
            qos_labels: ["2x", "4x", "6x"],
            qos_factors: [0.5, 1.0, 1.5],
            work_kind: "cpu",
            shape: Shape::TimeFixed {
                durations_s: [120.0, 120.0, 120.0],
                duty: [0.60, 0.63, 0.66],
            },
        },
        BenchmarkSpec {
            name: "batik",
            systems: &[SystemA],
            description: "rasterizer",
            cloc: 179_284,
            ent_changes: 225,
            workload_attr: "file size",
            workload_labels: ["16KB", "261KB", "2MB"],
            workload_items: [16.0, 261.0, 2048.0],
            qos_knob: "image resolution",
            qos_labels: ["512x512", "1024x1024", "2048x2048"],
            qos_factors: [0.4, 1.0, 1.8],
            work_kind: "render",
            shape: Shape::Batch {
                managed_seconds: 40.0,
            },
        },
        BenchmarkSpec {
            name: "newpipe",
            systems: &[SystemC],
            description: "YouTube streaming",
            cloc: 8424,
            ent_changes: 51,
            workload_attr: "video length",
            workload_labels: ["2.5 min", "6.5 min", "16 min"],
            workload_items: [2.5, 6.5, 16.0],
            qos_knob: "stream resolution",
            qos_labels: ["144p", "240p", "360p"],
            qos_factors: [0.5, 1.0, 1.6],
            work_kind: "net",
            shape: Shape::TimeFixed {
                durations_s: [150.0, 390.0, 960.0],
                duty: [0.30, 0.52, 0.74],
            },
        },
        BenchmarkSpec {
            name: "duckduckgo",
            systems: &[SystemC],
            description: "web browser",
            cloc: 13_802,
            ent_changes: 78,
            workload_attr: "search queries",
            workload_labels: ["8", "16", "24"],
            workload_items: [8.0, 16.0, 24.0],
            qos_knob: "search quality",
            qos_labels: ["none", "javascript", "autosearch / javascript"],
            qos_factors: [0.55, 1.0, 1.45],
            work_kind: "net",
            shape: Shape::TimeFixed {
                durations_s: [60.0, 120.0, 180.0],
                duty: [0.35, 0.55, 0.72],
            },
        },
        BenchmarkSpec {
            name: "soundrecorder",
            systems: &[SystemC],
            description: "sound encoding",
            cloc: 1090,
            ent_changes: 118,
            workload_attr: "recording length",
            workload_labels: ["3 min", "4 min", "5 min"],
            workload_items: [3.0, 4.0, 5.0],
            qos_knob: "sample rate (kHz)",
            qos_labels: ["8", "24", "48"],
            qos_factors: [0.17, 0.5, 1.0],
            work_kind: "encode",
            shape: Shape::TimeFixed {
                durations_s: [180.0, 240.0, 300.0],
                duty: [0.25, 0.45, 0.70],
            },
        },
        BenchmarkSpec {
            name: "materiallife",
            systems: &[SystemC],
            description: "simulation rendering",
            cloc: 1705,
            ent_changes: 63,
            workload_attr: "simulation population",
            workload_labels: ["1000", "2000", "5000"],
            workload_items: [1000.0, 2000.0, 5000.0],
            qos_knob: "frame rate",
            qos_labels: ["5", "10", "15"],
            qos_factors: [0.33, 0.67, 1.0],
            work_kind: "render",
            shape: Shape::TimeFixed {
                durations_s: [120.0, 120.0, 120.0],
                duty: [0.30, 0.55, 0.82],
            },
        },
    ]
}

/// Looks a benchmark up by name.
pub fn benchmark(name: &str) -> Option<BenchmarkSpec> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

/// The five benchmarks of the temperature-casing (E3) experiment
/// (Figure 11): name, number of work units, and the full-speed seconds one
/// unit takes. sunflow's units are the largest — which is what makes it
/// the paper's exception that hovers near the overheating threshold while
/// the others hover near the hot threshold.
pub fn e3_benchmarks() -> Vec<(&'static str, usize, f64)> {
    vec![
        ("sunflow", 45, 1.3),
        ("jython", 220, 0.18),
        ("xalan", 260, 0.18),
        ("findbugs", 220, 0.18),
        ("pagerank", 200, 0.18),
    ]
}

/// The E3 temperature thresholds of §6.1: `safe` below 60 °C, `hot` in
/// 60–65 °C, `overheating` above 65 °C; and the sleep intervals of §6.2:
/// 0 / 250 / 1000 ms.
pub struct E3Settings {
    /// `hot` threshold in °C.
    pub hot_c: f64,
    /// `overheating` threshold in °C.
    pub overheating_c: f64,
    /// Sleep per mode (safe, hot, overheating), in milliseconds.
    pub sleep_ms: [i64; 3],
}

impl Default for E3Settings {
    fn default() -> Self {
        E3Settings {
            hot_c: 60.0,
            overheating_c: 65.0,
            sleep_ms: [0, 250, 1000],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_fifteen_benchmarks() {
        assert_eq!(all_benchmarks().len(), 15);
    }

    #[test]
    fn names_are_unique_and_lookup_works() {
        let all = all_benchmarks();
        for b in &all {
            assert_eq!(
                all.iter().filter(|x| x.name == b.name).count(),
                1,
                "duplicate {}",
                b.name
            );
            assert_eq!(benchmark(b.name).unwrap().name, b.name);
        }
        assert!(benchmark("nope").is_none());
    }

    #[test]
    fn workload_sizes_and_qos_are_monotone() {
        for b in all_benchmarks() {
            assert!(b.workload_items[0] < b.workload_items[1]);
            assert!(b.workload_items[1] < b.workload_items[2]);
            assert!(b.qos_factors[0] < b.qos_factors[2], "{}", b.name);
            if let Shape::TimeFixed { duty, durations_s } = b.shape {
                assert!(duty[0] < duty[2], "{}", b.name);
                assert!(duty.iter().all(|d| *d > 0.0 && *d <= 1.0));
                assert!(durations_s.iter().all(|d| *d > 0.0));
            }
        }
    }

    #[test]
    fn platform_coverage_matches_figure_6() {
        use PlatformKind::*;
        let on = |p| {
            all_benchmarks()
                .into_iter()
                .filter(move |b| b.runs_on(p))
                .count()
        };
        assert_eq!(on(SystemA), 8); // crypto, findbugs, jspider, jython, pagerank, sunflow, xalan, batik
        assert_eq!(on(SystemB), 5); // crypto, sunflow, camera, video, javaboy
        assert_eq!(on(SystemC), 4); // newpipe, duckduckgo, soundrecorder, materiallife
    }

    #[test]
    fn thresholds_sit_between_sizes() {
        for b in all_benchmarks() {
            let (t1, t2) = b.thresholds();
            assert!(b.workload_items[0] < t1 && t1 < b.workload_items[1]);
            assert!(b.workload_items[1] < t2 && t2 < b.workload_items[2]);
        }
    }

    #[test]
    fn battery_levels_map_to_boot_modes() {
        assert!(battery_for_boot(0) < 0.7);
        assert!(battery_for_boot(1) >= 0.7 && battery_for_boot(1) < 0.9);
        assert!(battery_for_boot(2) >= 0.9);
    }

    #[test]
    fn e3_settings_defaults_match_the_paper() {
        let s = E3Settings::default();
        assert_eq!(s.hot_c, 60.0);
        assert_eq!(s.overheating_c, 65.0);
        assert_eq!(s.sleep_ms, [0, 250, 1000]);
        assert_eq!(e3_benchmarks().len(), 5);
        assert!(e3_benchmarks().iter().all(|(_, n, s)| *n > 0 && *s > 0.0));
    }
}
