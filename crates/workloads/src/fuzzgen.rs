//! A seeded generator of well-typed ENT programs for differential engine
//! testing.
//!
//! The bytecode VM (DESIGN.md §11) must be bit-identical to the tree
//! walker in every observable. The golden suite pins that on hand-written
//! programs; this module generates *random* ones so the differential
//! harness (`tests/engine_differential.rs`, the `engine_fuzz` binary) can
//! sweep program shapes nobody thought to write: deep expression trees,
//! odd fusion patterns, mode-case arms feeding arithmetic, snapshots
//! whose bounds sometimes fail, out-of-bounds indexing, uncaught energy
//! exceptions.
//!
//! Programs are well-typed by construction — every generator tracks the
//! static type of what it emits — so a differential failure always means
//! an engine bug, never a generator bug. Some seeds intentionally produce
//! programs whose *run* fails (array out of bounds, uncaught
//! `EnergyException`): both engines must fail with byte-identical errors.
//!
//! Everything is driven by one splitmix64 stream per seed: the same seed
//! always yields the same source text, on every platform.

use std::fmt::Write as _;

/// Deterministic splitmix64 stream (no external RNG dependencies).
pub struct Rng(u64);

impl Rng {
    /// Creates a stream. The seed goes through the splitmix64 finalizer
    /// first: seeding with `seed * gamma` alone would make seed `k`'s
    /// stream equal seed `0`'s stream shifted by `k` positions, so
    /// consecutive seeds would explore almost identical programs.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Rng(z ^ (z >> 31))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `lo..hi` (half-open; `hi > lo`).
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo) as u64) as i64
    }

    /// True with probability `pct`/100.
    fn chance(&mut self, pct: u64) -> bool {
        self.next() % 100 < pct
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next() % items.len() as u64) as usize]
    }
}

const MODES: [&str; 3] = ["energy_saver", "managed", "full_throttle"];
const WORK_KINDS: [&str; 4] = ["cpu", "net", "io", "crypto"];
const WORDS: [&str; 8] = [
    "alpha", "beam", "core", "delta", "ember", "flux", "grid", "helix",
];

/// One generated scenario method: its source text and the call `main`
/// makes to it. Most scenarios live on `App`; snapshot scenarios with
/// constant mode bounds live on `Main`, whose (top) mode makes any bound
/// waterfall-provable.
struct Scenario {
    body: String,
    call: String,
    /// Statements inlined into `main` that must define `t{I}` (the
    /// literal `{I}` is replaced with the scenario index) instead of a
    /// method call. Only `Main.main` itself boots under the top mode, so
    /// constant-bound snapshots cannot live in helper methods.
    main_inline: Option<String>,
}

/// Generates one well-typed ENT program from `seed`. Larger `size` grows
/// the scenario count (the differential test uses the default 1).
#[must_use]
pub fn program(seed: u64) -> String {
    let mut rng = Rng::new(seed);
    let n_fields = rng.range(1, 4) as usize;
    let fields: Vec<String> = (0..n_fields).map(|i| format!("q{i}")).collect();

    let mut scenarios: Vec<Scenario> = Vec::new();
    let n_rec = rng.range(1, 3);
    for i in 0..n_rec {
        scenarios.push(recursive_scenario(&mut rng, i, &fields));
    }
    scenarios.push(array_scenario(&mut rng, &fields));
    scenarios.push(string_scenario(&mut rng, &fields));
    scenarios.push(snapshot_scenario(&mut rng));
    scenarios.push(main_snapshot_scenario(&mut rng));
    scenarios.push(mcase_scenario(&mut rng, &fields));
    if rng.chance(60) {
        scenarios.push(math_scenario(&mut rng));
    }

    let mut app_body = String::new();
    // Randomized battery attributor: thresholds descend, so the class mode
    // tracks the configured battery level.
    let hi = rng.range(60, 95);
    let lo = rng.range(20, hi - 10);
    let _ = write!(
        app_body,
        "  attributor {{
    if (Ext.battery() >= 0.{hi}) {{ return full_throttle; }}
    else if (Ext.battery() >= 0.{lo}) {{ return managed; }}
    else {{ return energy_saver; }}
  }}\n"
    );
    for f in &fields {
        // Mode case literals must cover every declared mode.
        let _ = writeln!(
            app_body,
            "  mcase<int> {f} = mcase{{ energy_saver: {}; managed: {}; full_throttle: {}; }};",
            rng.range(0, 50),
            rng.range(0, 50),
            rng.range(0, 50)
        );
    }
    for s in &scenarios {
        app_body.push_str(&s.body);
    }

    let t2 = rng.range(20, 50);
    let t1 = rng.range(5, t2 - 5);
    let sum = scenarios
        .iter()
        .enumerate()
        .map(|(i, _)| format!("t{i}"))
        .collect::<Vec<_>>()
        .join(" + ");
    let mut main_body = String::new();
    for (i, s) in scenarios.iter().enumerate() {
        match &s.main_inline {
            Some(stmts) => main_body.push_str(&stmts.replace("{I}", &i.to_string())),
            None => {
                let _ = writeln!(main_body, "    let t{i} = a.{};", s.call);
            }
        }
    }

    format!(
        "modes {{ energy_saver <= managed; managed <= full_throttle; }}
class Workload@mode<? <= W> {{
  double items;
  attributor {{
    if (this.items >= {t2}.0) {{ return full_throttle; }}
    else if (this.items >= {t1}.0) {{ return managed; }}
    else {{ return energy_saver; }}
  }}
  double size() {{ return this.items; }}
}}
class App@mode<? <= X> {{
{app_body}}}
class Main {{
  int main() {{
    let dapp = new App();
    let App a = snapshot dapp [_, _];
{main_body}    let total = {sum};
    IO.print(\"total=\" + Str.ofInt(total));
    return total;
  }}
}}
"
    )
}

/// An int expression over the in-scope int variables (and mcase fields),
/// depth-bounded. Division and remainder keep literal divisors, so the
/// only runtime errors a generated program can hit are the ones a
/// scenario opts into deliberately.
fn int_expr(rng: &mut Rng, depth: u32, vars: &[&str], fields: &[String]) -> String {
    if depth == 0 || rng.chance(30) {
        return match rng.range(0, 4) {
            0 if !vars.is_empty() => (*rng.pick(vars)).to_string(),
            1 if !fields.is_empty() => {
                format!("(this.{} <| {})", rng.pick(fields), rng.pick(&MODES))
            }
            _ => rng.range(0, 20).to_string(),
        };
    }
    let a = int_expr(rng, depth - 1, vars, fields);
    let b = int_expr(rng, depth - 1, vars, fields);
    match rng.range(0, 7) {
        0 => format!("({a} + {b})"),
        1 => format!("({a} - {b})"),
        2 => format!("({a} * {b})"),
        3 => format!("({a} / {})", rng.range(2, 8)),
        4 => format!("({a} % {})", rng.range(2, 8)),
        5 => format!("Math.min({a}, {b})"),
        _ => format!("Math.max({a}, {b})"),
    }
}

/// A bool expression (comparisons over int expressions, connectives).
fn bool_expr(rng: &mut Rng, depth: u32, vars: &[&str], fields: &[String]) -> String {
    if depth == 0 || rng.chance(50) {
        let a = int_expr(rng, 1, vars, fields);
        let b = int_expr(rng, 1, vars, fields);
        let cmp = rng.pick(&["<", "<=", ">", ">=", "==", "!="]);
        return format!("({a} {cmp} {b})");
    }
    let a = bool_expr(rng, depth - 1, vars, fields);
    let b = bool_expr(rng, depth - 1, vars, fields);
    match rng.range(0, 3) {
        0 => format!("({a} && {b})"),
        1 => format!("({a} || {b})"),
        _ => format!("!{a}"),
    }
}

/// A recursion-driven loop: the workhorse shape (ENT iterates by
/// recursion), with optional simulated work and a branch in the step.
fn recursive_scenario(rng: &mut Rng, i: i64, fields: &[String]) -> Scenario {
    let vars = ["n", "acc"];
    let step = int_expr(rng, 2, &vars, fields);
    let cond = bool_expr(rng, 1, &vars, fields);
    let then_e = int_expr(rng, 1, &vars, fields);
    let work = if rng.chance(50) {
        format!(
            "    Sim.work(\"{}\", {}.0);\n",
            rng.pick(&WORK_KINDS),
            rng.range(1000, 200_000)
        )
    } else {
        String::new()
    };
    let body = format!(
        "  int rec{i}(int n, int acc) {{
    if (n <= 0) {{ return acc; }}
{work}    if ({cond}) {{ return this.rec{i}(n - 1, {then_e}); }}
    return this.rec{i}(n - 1, acc + {step});
  }}\n"
    );
    let call = format!("rec{i}({}, {})", rng.range(4, 30), rng.range(0, 5));
    Scenario {
        body,
        call,
        main_inline: None,
    }
}

/// Arrays end to end: range/push/concat/sub/make construction, a
/// recursive indexed sum, and (on some seeds) a deliberate out-of-bounds
/// read both engines must fail identically on.
fn array_scenario(rng: &mut Rng, fields: &[String]) -> Scenario {
    let lo = rng.range(0, 5);
    let hi = lo + rng.range(5, 15);
    let oob = rng.chance(10);
    let index = if oob {
        "Arr.len(zs) + 1".to_string()
    } else {
        "Arr.len(zs) - 1".to_string()
    };
    let weight = rng.range(1, 4);
    let vars = ["i", "acc"];
    let extra = int_expr(rng, 1, &vars, fields);
    let body = format!(
        "  int sumArr(int[] xs, int i, int acc) {{
    if (i >= Arr.len(xs)) {{ return acc; }}
    return this.sumArr(xs, i + 1, acc + Arr.get(xs, i) * {weight} + {extra});
  }}
  int arrays0() {{
    let xs = Arr.range({lo}, {hi});
    let ys = Arr.push(Arr.push(xs, {}), {});
    let zs = Arr.concat(Arr.sub(ys, 1, 6), Arr.make({}, {}));
    return this.sumArr(zs, 0, 0) + Arr.get(zs, {index});
  }}\n",
        rng.range(0, 99),
        rng.range(0, 99),
        rng.range(1, 5),
        rng.range(0, 9),
    );
    Scenario {
        body,
        call: "arrays0()".to_string(),
        main_inline: None,
    }
}

/// Strings: literals, `Str.ofInt`/`ofDouble`, concatenation both ways,
/// `sub`, `len`, and printing (exercises the output stream).
fn string_scenario(rng: &mut Rng, fields: &[String]) -> Scenario {
    let w1 = rng.pick(&WORDS);
    let w2 = rng.pick(&WORDS);
    let n = int_expr(rng, 1, &[], fields);
    let d = format!("{}.{}", rng.range(0, 30), rng.range(0, 10));
    let a = rng.range(0, 3);
    let b = a + rng.range(1, 4);
    let body = format!(
        "  int strings0() {{
    let s = \"{w1}\" + Str.ofInt({n});
    let t = s + \"-{w2}-\" + Str.ofDouble({d});
    IO.print(Str.sub(t, {a}, {b}));
    return Str.len(s) * 10 + Str.len(Str.sub(t, 0, 4));
  }}\n"
    );
    Scenario {
        body,
        call: "strings0()".to_string(),
        main_inline: None,
    }
}

/// A bounded snapshot inside `App`: the upper bound is App's own mode
/// variable `X` (the only statically waterfall-provable bound from inside
/// the class), so the check fails exactly when the workload's attributed
/// mode exceeds the battery-derived mode — the paper's E1 shape.
fn snapshot_scenario(rng: &mut Rng) -> Scenario {
    let items = rng.range(1, 60);
    let body = format!(
        "  int snaps0() {{
    let d = new Workload({items}.0);
    try {{
      let Workload w = snapshot d [_, X];
      return Math.floor(w.size());
    }} catch {{
      return 0 - 1;
    }}
  }}\n"
    );
    Scenario {
        body,
        call: "snaps0()".to_string(),
        main_inline: None,
    }
}

/// A bounded snapshot inlined into `main` (the only method booted under
/// the top mode, where any constant bound is waterfall-provable): most
/// seeds catch the potential `EnergyException`, a few let it escape so
/// error runs are compared too.
fn main_snapshot_scenario(rng: &mut Rng) -> Scenario {
    let items = rng.range(1, 60);
    let bound = rng.pick(&["_", "energy_saver", "managed", "full_throttle"]);
    let caught = rng.chance(85);
    let stmts = if caught {
        format!(
            "    let d{{I}} = new Workload({items}.0);
    let t{{I}} = try {{
      let Workload w{{I}} = snapshot d{{I}} [_, {bound}];
      Math.floor(w{{I}}.size())
    }} catch {{
      0 - 1
    }};\n"
        )
    } else {
        format!(
            "    let d{{I}} = new Workload({items}.0);
    let Workload w{{I}} = snapshot d{{I}} [_, {bound}];
    let t{{I}} = Math.floor(w{{I}}.size());\n"
        )
    };
    Scenario {
        body: String::new(),
        call: String::new(),
        main_inline: Some(stmts),
    }
}

/// Mode cases as first-class data: a local mcase literal plus field
/// eliminations at every target, combined arithmetically.
fn mcase_scenario(rng: &mut Rng, fields: &[String]) -> Scenario {
    let local = format!(
        "mcase{{ energy_saver: {}; managed: {}; full_throttle: {}; }}",
        rng.range(0, 9),
        rng.range(0, 9),
        rng.range(0, 9)
    );
    let e1 = int_expr(rng, 2, &[], fields);
    let target = rng.pick(&MODES);
    let body = format!(
        "  int cases0() {{
    let mcase<int> c = {local};
    let p = (c <| {target}) * 100 + (c <| energy_saver);
    return p + {e1};
  }}\n"
    );
    Scenario {
        body,
        call: "cases0()".to_string(),
        main_inline: None,
    }
}

/// Double arithmetic through the math namespace, floored back to int.
fn math_scenario(rng: &mut Rng) -> Scenario {
    let x = format!("{}.{}", rng.range(1, 40), rng.range(0, 10));
    let y = format!("{}.{}", rng.range(1, 40), rng.range(0, 10));
    let body = format!(
        "  int maths0() {{
    let x = Math.fmax({x} * Ext.battery(), {y});
    let z = Math.sqrt(x) + Math.pow(x, 0.5) + Math.toDouble(Math.floor(x));
    return Math.floor(z * 10.0) + Math.abs(Math.floor({y} - x));
  }}\n"
    );
    Scenario {
        body,
        call: "maths0()".to_string(),
        main_inline: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(program(7), program(7));
        assert_ne!(program(7), program(8));
    }

    #[test]
    fn generated_programs_compile() {
        for seed in 0..50 {
            let src = program(seed);
            if let Err(e) = ent_core::compile(&src) {
                panic!(
                    "seed {seed} generated a non-compiling program:\n{}\n{src}",
                    e.render(&src)
                );
            }
        }
    }
}
