//! Showcase applications: fully written-out ENT programs for a
//! representative subset of the benchmark suite, with the class structure
//! the paper describes for each application (as opposed to the uniform
//! generated harness programs in [`crate::e1_program`] /
//! [`crate::e2_program`], which the figures use).
//!
//! Each program is battery-aware end to end and parameterized only by the
//! simulator's battery level; the accompanying tests run them on their
//! paper platform and check their adaptive behavior.

/// The jspider crawler with the paper's full object structure: `Agent`,
/// `Site`, `Resource`, filtering `Rule`s, and the discover–check–crawl
/// loop of Listing 1 over an array of seed sites.
pub fn jspider() -> &'static str {
    r#"
modes { energy_saver <= managed; managed <= full_throttle; }

class Rule {
  int maxResources;
  bool pass(int resources) { return resources <= this.maxResources; }
}

class Resource@mode<E> {
  int links;
  int process(int depth) {
    Sim.work("net", Math.toDouble(this.links * depth) * 400000.0);
    return this.links * depth;
  }
}

class Site@mode<? <= S> {
  int resources;
  attributor {
    if (this.resources > 200) { return full_throttle; }
    else if (this.resources > 50) { return managed; }
    else { return energy_saver; }
  }
  int size() { return this.resources; }
  int crawl(int depth) {
    // Crawl the site's resources in chunks of 10.
    return this.crawlChunk(this.resources / 10 + 1, depth, 0);
  }
  int crawlChunk(int remaining, int depth, int acc) {
    if (remaining <= 0) { return acc; }
    let r = new Resource@mode<S>(10);
    return this.crawlChunk(remaining - 1, depth, acc + r.process(depth));
  }
}

class Agent@mode<? <= X> {
  Rule rule;
  mcase<int> depth = mcase{ energy_saver: 3; managed: 4; full_throttle: 5; };

  attributor {
    if (Ext.battery() >= 0.75) { return full_throttle; }
    else if (Ext.battery() >= 0.50) { return managed; }
    else { return energy_saver; }
  }

  int work(int resources) {
    if (!this.rule.pass(resources)) {
      IO.print("rule filtered a site of " + Str.ofInt(resources));
      return 0;
    }
    let ds = new Site(resources);
    return try {
      let Site s = snapshot ds [_, X];
      s.crawl(this.depth <| X)
    } catch {
      IO.print("EnergyException: skipped a site of " + Str.ofInt(resources));
      0
    };
  }

  int crawlAll(int[] seeds, int i, int acc) {
    if (i >= Arr.len(seeds)) { return acc; }
    return this.crawlAll(seeds, i + 1, acc + this.work(Arr.get(seeds, i)));
  }
}

class Main {
  int main() {
    let da = new Agent(new Rule(5000));
    let Agent a = snapshot da [_, _];
    return a.crawlAll([89, 240, 1058, 30, 1967], 0, 0);
  }
}
"#
}

/// pagerank: iterative rank propagation over a synthetic graph, with the
/// convergence threshold ("minimum change") selected per boot mode.
pub fn pagerank() -> &'static str {
    r#"
modes { energy_saver <= managed; managed <= full_throttle; }

class Graph@mode<? <= G> {
  int nodes;
  attributor {
    if (this.nodes > 1000000) { return full_throttle; }
    else if (this.nodes > 500000) { return managed; }
    else { return energy_saver; }
  }
  unit sweeps(int remaining) {
    if (remaining <= 0) { return {}; }
    Sim.work("cpu", Math.toDouble(this.nodes) * 60.0);
    return this.sweeps(remaining - 1);
  }
  int size() { return this.nodes; }
}

class Ranker@mode<? <= X> {
  mcase<int> iterations = mcase{ energy_saver: 12; managed: 22; full_throttle: 32; };

  attributor {
    if (Ext.battery() >= 0.75) { return full_throttle; }
    else if (Ext.battery() >= 0.50) { return managed; }
    else { return energy_saver; }
  }

  int rank(int nodes) {
    let dg = new Graph(nodes);
    return try {
      let Graph g = snapshot dg [_, X];
      g.sweeps(this.iterations <| X);
      this.iterations <| X
    } catch {
      IO.print("EnergyException: graph too large for the current mode");
      0
    };
  }
}

class Main {
  int main() {
    let dr = new Ranker();
    let Ranker r = snapshot dr [_, _];
    return r.rank(325557);
  }
}
"#
}

/// crypto: RSA-style block encryption, with the key strength (cost per
/// block) selected by the boot mode through mode co-adaptation — the
/// `Cipher` is created at the agent's internal mode and its key-strength
/// mode case eliminates there.
pub fn crypto() -> &'static str {
    r#"
modes { energy_saver <= managed; managed <= full_throttle; }

class Cipher@mode<C> {
  mcase<int> keyBits = mcase{ energy_saver: 768; managed: 1024; full_throttle: 1280; };
  unit encryptBlock() {
    let bits = Math.toDouble(this.keyBits <| C);
    Sim.work("crypto", bits * bits * bits / 3000.0);
    return {};
  }
}

class Encryptor@mode<? <= X> {
  attributor {
    if (Ext.battery() >= 0.75) { return full_throttle; }
    else if (Ext.battery() >= 0.50) { return managed; }
    else { return energy_saver; }
  }
  int encryptFile(int blocks) {
    let c = new Cipher@mode<X>();
    this.loop(c, blocks);
    return blocks;
  }
  unit loop(Cipher@mode<X> c, int remaining) {
    if (remaining <= 0) { return {}; }
    c.encryptBlock();
    return this.loop(c, remaining - 1);
  }
}

class Main {
  int main() {
    let de = new Encryptor();
    let Encryptor e = snapshot de [_, _];
    return e.encryptFile(64);
  }
}
"#
}

/// camera: the Pi time-lapse monitor — a time-fixed workload whose
/// interval and resolution co-adapt to the battery.
pub fn camera() -> &'static str {
    r#"
modes { energy_saver <= managed; managed <= full_throttle; }

class Encoder@mode<E> {
  mcase<double> frameOps = mcase{
    energy_saver: 35000000.0;
    managed: 90000000.0;
    full_throttle: 200000000.0;
  };
  unit encode() {
    Sim.work("encode", this.frameOps <| E);
    return {};
  }
}

class Camera@mode<? <= C> {
  mcase<int> intervalMs = mcase{ energy_saver: 1500; managed: 1000; full_throttle: 500; };

  attributor {
    if (Ext.battery() >= 0.75) { return full_throttle; }
    else if (Ext.battery() >= 0.50) { return managed; }
    else { return energy_saver; }
  }

  unit monitor(int shots) {
    let enc = new Encoder@mode<C>();
    this.shoot(enc, shots);
    return {};
  }
  unit shoot(Encoder@mode<C> enc, int remaining) {
    if (remaining <= 0) { return {}; }
    enc.encode();
    Sim.sleepMs(this.intervalMs <| C);
    return this.shoot(enc, remaining - 1);
  }
}

class Main {
  unit main() {
    let dc = new Camera();
    let Camera c = snapshot dc [_, _];
    c.monitor(90);
    return {};
  }
}
"#
}

/// newpipe: the Android streaming App — buffered network reads at a
/// per-mode stream resolution, decoded frame by frame for the clip's
/// duration.
pub fn newpipe() -> &'static str {
    r#"
modes { energy_saver <= managed; managed <= full_throttle; }

class Stream@mode<S> {
  mcase<double> bytesPerSec = mcase{
    energy_saver: 40000000.0;
    managed: 90000000.0;
    full_throttle: 160000000.0;
  };
  unit bufferSecond() {
    Sim.work("net", this.bytesPerSec <| S);
    return {};
  }
}

class Player@mode<? <= P> {
  attributor {
    if (Ext.battery() >= 0.75) { return full_throttle; }
    else if (Ext.battery() >= 0.50) { return managed; }
    else { return energy_saver; }
  }

  unit play(int seconds) {
    let s = new Stream@mode<P>();
    this.tick(s, seconds);
    return {};
  }
  unit tick(Stream@mode<P> s, int remaining) {
    if (remaining <= 0) { return {}; }
    s.bufferSecond();
    Sim.sleepMs(700);
    return this.tick(s, remaining - 1);
  }
}

class Main {
  unit main() {
    let dp = new Player();
    let Player p = snapshot dp [_, _];
    p.play(150);
    return {};
  }
}
"#
}

/// xalan: XML transformation with the E3 temperature-casing structure — a
/// snapshotted `Sleep` object cools the CPU between file transforms
/// (Figure 11's unit-of-work pattern).
pub fn xalan() -> &'static str {
    r#"
modes { safe <= hot; hot <= overheating; }

class Sleep@mode<? <= S> {
  attributor {
    if (Ext.temperature() >= 65.0) { return overheating; }
    else if (Ext.temperature() >= 60.0) { return hot; }
    else { return safe; }
  }
  mcase<int> interval = mcase{ safe: 0; hot: 250; overheating: 1000; };
  unit rest() {
    Sim.sleepMs(this.interval <| S);
    return {};
  }
}

class Transformer@mode<overheating> {
  unit transformAll(int files) {
    if (files <= 0) { return {}; }
    // One XML file: parse + transform + serialize.
    Sim.work("io", 120000000.0);
    Sim.work("cpu", 240000000.0);
    let dsl = new Sleep();
    let Sleep sl = snapshot dsl [_, overheating];
    sl.rest();
    return this.transformAll(files - 1);
  }
}

class Main {
  unit main() {
    let t = new Transformer();
    t.transformAll(120);
    return {};
  }
}
"#
}

/// jython: script compilation in phases (parse, compile, optimize), the
/// optimization level selected per boot mode.
pub fn jython() -> &'static str {
    r#"
modes { energy_saver <= managed; managed <= full_throttle; }

class Phase@mode<P> {
  double opsPerLine;
  unit run(int lines) {
    Sim.work("cpu", Math.toDouble(lines) * this.opsPerLine);
    return {};
  }
}

class Compiler@mode<? <= X> {
  mcase<int> optLevel = mcase{ energy_saver: 0; managed: 1; full_throttle: 2; };

  attributor {
    if (Ext.battery() >= 0.75) { return full_throttle; }
    else if (Ext.battery() >= 0.50) { return managed; }
    else { return energy_saver; }
  }

  int compile(int lines) {
    let parse = new Phase@mode<X>(40000.0);
    let codegen = new Phase@mode<X>(90000.0);
    parse.run(lines);
    codegen.run(lines);
    // Each optimization level is another pass.
    this.optimize(lines, this.optLevel <| X);
    return this.optLevel <| X;
  }
  unit optimize(int lines, int level) {
    if (level <= 0) { return {}; }
    let opt = new Phase@mode<X>(150000.0);
    opt.run(lines);
    return this.optimize(lines, level - 1);
  }
}

class Main {
  int main() {
    let dc = new Compiler();
    let Compiler c = snapshot dc [_, _];
    return c.compile(8000);
  }
}
"#
}

/// sunflow: scene rendering with per-mode anti-aliasing sampled per tile
/// (the paper's "scene instances" workload).
pub fn sunflow() -> &'static str {
    r#"
modes { energy_saver <= managed; managed <= full_throttle; }

class Tile@mode<T> {
  mcase<double> aaSamples = mcase{ energy_saver: 0.25; managed: 1.0; full_throttle: 4.0; };
  unit render() {
    Sim.work("render", 80000000.0 * (this.aaSamples <| T));
    return {};
  }
}

class Renderer@mode<? <= R> {
  attributor {
    if (Ext.battery() >= 0.75) { return full_throttle; }
    else if (Ext.battery() >= 0.50) { return managed; }
    else { return energy_saver; }
  }
  int renderScene(int tiles) {
    let t = new Tile@mode<R>();
    this.loop(t, tiles);
    return tiles;
  }
  unit loop(Tile@mode<R> t, int remaining) {
    if (remaining <= 0) { return {}; }
    t.render();
    return this.loop(t, remaining - 1);
  }
}

class Main {
  int main() {
    let dr = new Renderer();
    let Renderer r = snapshot dr [_, _];
    return r.renderScene(48);
  }
}
"#
}

/// findbugs: static analysis over a code base, the analysis effort chosen
/// per boot mode, the code-base size classifying the workload mode.
pub fn findbugs() -> &'static str {
    r#"
modes { energy_saver <= managed; managed <= full_throttle; }

class CodeBase@mode<? <= C> {
  int classes;
  attributor {
    if (this.classes > 40000) { return full_throttle; }
    else if (this.classes > 12000) { return managed; }
    else { return energy_saver; }
  }
  unit analyze(double effort) {
    Sim.work("cpu", Math.toDouble(this.classes) * effort * 40000.0);
    return {};
  }
}

class Analyzer@mode<? <= X> {
  mcase<double> effort = mcase{ energy_saver: 0.55; managed: 1.0; full_throttle: 1.6; };
  attributor {
    if (Ext.battery() >= 0.75) { return full_throttle; }
    else if (Ext.battery() >= 0.50) { return managed; }
    else { return energy_saver; }
  }
  int scan(int classes) {
    let dcb = new CodeBase(classes);
    return try {
      let CodeBase cb = snapshot dcb [_, X];
      cb.analyze(this.effort <| X);
      classes
    } catch {
      IO.print("EnergyException: code base too large for the current mode");
      0
    };
  }
}

class Main {
  int main() {
    let da = new Analyzer();
    let Analyzer a = snapshot da [_, _];
    return a.scan(5363);
  }
}
"#
}

/// batik: SVG rasterization — the output resolution (a quadratic cost
/// knob) selected per boot mode.
pub fn batik() -> &'static str {
    r#"
modes { energy_saver <= managed; managed <= full_throttle; }

class Raster@mode<R> {
  mcase<int> resolution = mcase{ energy_saver: 512; managed: 1024; full_throttle: 2048; };
  unit rasterize(double kb) {
    let res = Math.toDouble(this.resolution <| R);
    Sim.work("render", kb * res * res / 18.0);
    return {};
  }
}

class Rasterizer@mode<? <= X> {
  attributor {
    if (Ext.battery() >= 0.75) { return full_throttle; }
    else if (Ext.battery() >= 0.50) { return managed; }
    else { return energy_saver; }
  }
  unit renderFile(double kb) {
    let r = new Raster@mode<X>();
    r.rasterize(kb);
    return {};
  }
}

class Main {
  unit main() {
    let dr = new Rasterizer();
    let Rasterizer r = snapshot dr [_, _];
    r.renderFile(261.0);
    return {};
  }
}
"#
}

/// video: continuous recording on the Pi — resolution and frame rate
/// co-adapt; the session length is fixed.
pub fn video() -> &'static str {
    r#"
modes { energy_saver <= managed; managed <= full_throttle; }

class Recorder@mode<? <= V> {
  mcase<int> fps = mcase{ energy_saver: 10; managed: 20; full_throttle: 30; };
  mcase<double> frameOps = mcase{
    energy_saver: 6000000.0;
    managed: 9000000.0;
    full_throttle: 12000000.0;
  };
  attributor {
    if (Ext.battery() >= 0.75) { return full_throttle; }
    else if (Ext.battery() >= 0.50) { return managed; }
    else { return energy_saver; }
  }
  unit record(int seconds) {
    if (seconds <= 0) { return {}; }
    this.second(this.fps <| V);
    return this.record(seconds - 1);
  }
  unit second(int frames) {
    if (frames <= 0) { Sim.sleepMs(5); return {}; }
    Sim.work("encode", this.frameOps <| V);
    Sim.sleepMs(1000 / (this.fps <| V) - 20);
    return this.second(frames - 1);
  }
}

class Main {
  unit main() {
    let dr = new Recorder();
    let Recorder r = snapshot dr [_, _];
    r.record(120);
    return {};
  }
}
"#
}

/// javaboy: Game Boy emulation on the Pi — the screen magnification
/// scales the per-frame blit cost; emulation itself is fixed-rate.
pub fn javaboy() -> &'static str {
    r#"
modes { energy_saver <= managed; managed <= full_throttle; }

class Emulator@mode<? <= E> {
  mcase<int> magnification = mcase{ energy_saver: 2; managed: 4; full_throttle: 6; };
  attributor {
    if (Ext.battery() >= 0.75) { return full_throttle; }
    else if (Ext.battery() >= 0.50) { return managed; }
    else { return energy_saver; }
  }
  unit play(int frames) {
    if (frames <= 0) { return {}; }
    // Fixed emulation work plus magnification-scaled blitting.
    Sim.work("cpu", 2200000.0);
    let mag = Math.toDouble(this.magnification <| E);
    Sim.work("render", 350000.0 * mag * mag);
    Sim.sleepMs(12);
    return this.play(frames - 1);
  }
}

class Main {
  unit main() {
    let de = new Emulator();
    let Emulator e = snapshot de [_, _];
    e.play(1200);
    return {};
  }
}
"#
}

/// duckduckgo: the Android browser — each query's result quality
/// (JavaScript, autocomplete) selected per boot mode.
pub fn duckduckgo() -> &'static str {
    r#"
modes { energy_saver <= managed; managed <= full_throttle; }

class Query@mode<Q> {
  mcase<double> quality = mcase{ energy_saver: 0.55; managed: 1.0; full_throttle: 1.45; };
  unit search() {
    Sim.work("net", 250000000.0 * (this.quality <| Q));
    Sim.work("cpu", 120000000.0 * (this.quality <| Q));
    return {};
  }
}

class Browser@mode<? <= B> {
  attributor {
    if (Ext.battery() >= 0.75) { return full_throttle; }
    else if (Ext.battery() >= 0.50) { return managed; }
    else { return energy_saver; }
  }
  int session(int queries) {
    let q = new Query@mode<B>();
    this.loop(q, queries);
    return queries;
  }
  unit loop(Query@mode<B> q, int remaining) {
    if (remaining <= 0) { return {}; }
    q.search();
    Sim.sleepMs(4000);
    return this.loop(q, remaining - 1);
  }
}

class Main {
  int main() {
    let db = new Browser();
    let Browser b = snapshot db [_, _];
    return b.session(16);
  }
}
"#
}

/// soundrecorder: audio capture and encoding — the sample rate selected
/// per boot mode, recording length fixed.
pub fn soundrecorder() -> &'static str {
    r#"
modes { energy_saver <= managed; managed <= full_throttle; }

class Codec@mode<C> {
  mcase<int> sampleKhz = mcase{ energy_saver: 8; managed: 24; full_throttle: 48; };
  unit encodeSecond() {
    Sim.work("encode", Math.toDouble(this.sampleKhz <| C) * 5000000.0);
    return {};
  }
}

class RecorderApp@mode<? <= R> {
  attributor {
    if (Ext.battery() >= 0.75) { return full_throttle; }
    else if (Ext.battery() >= 0.50) { return managed; }
    else { return energy_saver; }
  }
  unit record(int seconds) {
    let c = new Codec@mode<R>();
    this.tick(c, seconds);
    return {};
  }
  unit tick(Codec@mode<R> c, int remaining) {
    if (remaining <= 0) { return {}; }
    c.encodeSecond();
    Sim.sleepMs(550);
    return this.tick(c, remaining - 1);
  }
}

class Main {
  unit main() {
    let dr = new RecorderApp();
    let RecorderApp r = snapshot dr [_, _];
    r.record(180);
    return {};
  }
}
"#
}

/// materiallife: the animated Game of Life — frame rate per boot mode,
/// population per workload.
pub fn materiallife() -> &'static str {
    r#"
modes { energy_saver <= managed; managed <= full_throttle; }

class Board@mode<? <= B> {
  int population;
  attributor {
    if (this.population > 3500) { return full_throttle; }
    else if (this.population > 1500) { return managed; }
    else { return energy_saver; }
  }
  unit steps(int remaining) {
    if (remaining <= 0) { return {}; }
    Sim.work("render", Math.toDouble(this.population) * 120000.0);
    Sim.sleepMs(40);
    return this.steps(remaining - 1);
  }
}

class Simulation@mode<? <= S> {
  mcase<int> frameRate = mcase{ energy_saver: 5; managed: 10; full_throttle: 15; };
  attributor {
    if (Ext.battery() >= 0.75) { return full_throttle; }
    else if (Ext.battery() >= 0.50) { return managed; }
    else { return energy_saver; }
  }
  int animate(int population, int seconds) {
    let db = new Board(population);
    return try {
      let Board b = snapshot db [_, S];
      b.steps(seconds * (this.frameRate <| S));
      seconds * (this.frameRate <| S)
    } catch {
      IO.print("EnergyException: population too large for the current mode");
      0
    };
  }
}

class Main {
  int main() {
    let ds = new Simulation();
    let Simulation s = snapshot ds [_, _];
    return s.animate(1000, 60);
  }
}
"#
}

/// All showcase programs with the paper system they model.
pub fn showcase_apps() -> Vec<(&'static str, ent_energy::PlatformKind, &'static str)> {
    use ent_energy::PlatformKind::*;
    vec![
        ("jspider", SystemA, jspider()),
        ("pagerank", SystemA, pagerank()),
        ("crypto", SystemA, crypto()),
        ("camera", SystemB, camera()),
        ("newpipe", SystemC, newpipe()),
        ("xalan", SystemA, xalan()),
        ("jython", SystemA, jython()),
        ("sunflow", SystemA, sunflow()),
        ("findbugs", SystemA, findbugs()),
        ("batik", SystemA, batik()),
        ("video", SystemB, video()),
        ("javaboy", SystemB, javaboy()),
        ("duckduckgo", SystemC, duckduckgo()),
        ("soundrecorder", SystemC, soundrecorder()),
        ("materiallife", SystemC, materiallife()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::platform_of;
    use ent_core::compile;
    use ent_runtime::{run, RuntimeConfig};

    #[test]
    fn formatter_is_idempotent_on_every_showcase_app() {
        use ent_syntax::{parse_program, print_program};
        for (name, _, src) in showcase_apps() {
            let once = print_program(&parse_program(src).unwrap());
            let twice = print_program(&parse_program(&once).unwrap());
            assert_eq!(once, twice, "{name}: fmt must be a fixpoint");
        }
    }

    #[test]
    fn every_showcase_app_compiles_and_runs_on_its_platform() {
        for (name, system, src) in showcase_apps() {
            let compiled =
                compile(src).unwrap_or_else(|e| panic!("{name} failed:\n{}", e.render(src)));
            for battery in [0.95, 0.6, 0.3] {
                let r = run(
                    &compiled,
                    platform_of(system),
                    RuntimeConfig {
                        battery_level: battery,
                        ..RuntimeConfig::default()
                    },
                );
                assert!(r.value.is_ok(), "{name} at {battery}: {:?}", r.value);
            }
        }
    }

    #[test]
    fn xalan_regulates_temperature() {
        let compiled = compile(xalan()).unwrap();
        let r = run(
            &compiled,
            platform_of(ent_energy::PlatformKind::SystemA),
            RuntimeConfig {
                trace_interval_s: Some(1.0),
                ..RuntimeConfig::default()
            },
        );
        assert!(r.value.is_ok());
        assert!(
            r.measurement.peak_temp_c < 67.0,
            "regulated run stays near the thresholds: {}",
            r.measurement.peak_temp_c
        );
        assert!(r.stats.snapshots >= 100, "one Sleep snapshot per file");
    }

    #[test]
    fn jython_optimization_passes_scale_with_battery() {
        let compiled = compile(jython()).unwrap();
        let at = |battery: f64| {
            run(
                &compiled,
                platform_of(ent_energy::PlatformKind::SystemA),
                RuntimeConfig {
                    battery_level: battery,
                    seed: 3,
                    ..RuntimeConfig::default()
                },
            )
        };
        let high = at(0.95);
        let low = at(0.3);
        assert_eq!(high.value.unwrap(), ent_runtime::Value::Int(2));
        assert_eq!(low.value.unwrap(), ent_runtime::Value::Int(0));
        assert!(high.measurement.energy_j > low.measurement.energy_j);
    }

    #[test]
    fn jspider_filters_and_skips_adaptively() {
        let compiled = compile(jspider()).unwrap();
        // Low battery: the two big sites raise exceptions and are skipped.
        let low = run(
            &compiled,
            platform_of(ent_energy::PlatformKind::SystemA),
            RuntimeConfig {
                battery_level: 0.3,
                ..RuntimeConfig::default()
            },
        );
        // Sites of 89, 240, 1058 and 1967 resources all exceed the
        // energy_saver mode; only the 30-resource site is crawled.
        assert_eq!(low.stats.energy_exceptions, 4, "{:?}", low.output);
        // Full battery: nothing skipped, far more pages crawled.
        let high = run(
            &compiled,
            platform_of(ent_energy::PlatformKind::SystemA),
            RuntimeConfig {
                battery_level: 0.95,
                ..RuntimeConfig::default()
            },
        );
        assert_eq!(high.stats.energy_exceptions, 0);
        assert!(high.measurement.energy_j > low.measurement.energy_j);
    }

    #[test]
    fn pagerank_iterations_scale_with_battery() {
        let compiled = compile(pagerank()).unwrap();
        let at = |battery: f64| {
            run(
                &compiled,
                platform_of(ent_energy::PlatformKind::SystemA),
                RuntimeConfig {
                    battery_level: battery,
                    ..RuntimeConfig::default()
                },
            )
        };
        let high = at(0.95);
        let low = at(0.3);
        assert_eq!(high.value.unwrap(), ent_runtime::Value::Int(32));
        assert_eq!(low.value.unwrap(), ent_runtime::Value::Int(12));
        assert!(high.measurement.energy_j > low.measurement.energy_j);
    }

    #[test]
    fn crypto_key_strength_co_adapts() {
        let compiled = compile(crypto()).unwrap();
        let energy = |battery: f64| {
            run(
                &compiled,
                platform_of(ent_energy::PlatformKind::SystemA),
                RuntimeConfig {
                    battery_level: battery,
                    seed: 2,
                    ..RuntimeConfig::default()
                },
            )
            .measurement
            .energy_j
        };
        // 768³ : 1024³ : 1280³ cost ratios.
        let (lo, mid, hi) = (energy(0.3), energy(0.6), energy(0.95));
        assert!(lo < mid && mid < hi, "{lo} {mid} {hi}");
        let ratio = hi / lo;
        let expected = (1280.0f64 / 768.0).powi(3);
        assert!(
            (ratio - expected).abs() / expected < 0.15,
            "key-strength scaling: {ratio} vs {expected}"
        );
    }

    #[test]
    fn camera_power_drops_with_battery_at_fixed_shot_count() {
        let compiled = compile(camera()).unwrap();
        let at = |battery: f64| {
            let r = run(
                &compiled,
                platform_of(ent_energy::PlatformKind::SystemB),
                RuntimeConfig {
                    battery_level: battery,
                    seed: 6,
                    ..RuntimeConfig::default()
                },
            );
            let m = r.measurement;
            (m.energy_j / m.time_s, m.time_s)
        };
        let (p_high, _) = at(0.95);
        let (p_low, t_low) = at(0.3);
        assert!(p_low < p_high, "avg power should drop: {p_low} vs {p_high}");
        assert!(t_low > 90.0, "time-lapse runs for minutes: {t_low}");
    }
}
