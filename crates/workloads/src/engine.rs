//! The ENT execution engine: a compile-once program cache plus a
//! deterministic parallel batch runner.
//!
//! The paper's evaluation (§6) is a measurement lattice — benchmark ×
//! system × boot mode × workload mode × silent × trial — of hundreds of
//! interpreter runs over a few dozen distinct programs. This module gives
//! the figure generators two things:
//!
//! * **A program cache** ([`lowered_cached`]): programs are compiled and
//!   lowered once per distinct source and shared as
//!   `Arc<LoweredProgram>` across every run, thread, and figure that
//!   needs them (`LoweredProgram` is `Send + Sync`, asserted at compile
//!   time in `ent-runtime`).
//! * **A batch executor** ([`run_batch`]): enumerates jobs up front, fans
//!   them out across `jobs` reusable big-stack workers, and returns
//!   results in job order.
//!
//! # Determinism contract
//!
//! Parallel output is **bit-identical** to sequential output. The
//! contract has two halves:
//!
//! * the engine's half: results come back in job order, each worker wraps
//!   one [`ent_runtime::with_interp_stack`] frame around its whole job
//!   loop (so scheduling never perturbs a run), and nothing about a run
//!   depends on which worker picks it up;
//! * the caller's half: each job's behavior — in particular its RNG seed —
//!   must derive from the job's *identity* (its position in the
//!   enumerated grid), never from execution order or shared mutable
//!   state. The figure generators' seed formulas (`seed * 17 + 1` and
//!   friends, keyed on the trial index) satisfy this by construction.
//!
//! Under that contract `run_batch(n, jobs, f)` returns the same bytes for
//! every `n`, which the `fig*` binaries' `--jobs` flag and the CI
//! byte-equality check rely on.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use ent_core::compile;
use ent_runtime::{default_stack_size, with_interp_stack, LoweredProgram};

/// Compiles and lowers `src` once, returning the shared lowered program.
/// Subsequent calls with the same source (from any thread) hit the cache.
///
/// The cache key is the source text itself, so "benchmark identity" is
/// exact: two benchmark cells share a program if and only if they generate
/// the same ENT source. `name` labels compile errors only.
///
/// # Panics
///
/// Panics if `src` does not compile — benchmark programs are generated,
/// so a compile error is a harness bug, not a measurement.
pub fn lowered_cached(name: &str, src: &str) -> Arc<LoweredProgram> {
    static CACHE: OnceLock<Mutex<HashMap<String, Arc<LoweredProgram>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(Mutex::default);
    let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(found) = map.get(src) {
        return Arc::clone(found);
    }
    let compiled = compile(src)
        .unwrap_or_else(|e| panic!("benchmark `{name}` failed to compile:\n{}", e.render(src)));
    let lowered = Arc::new(ent_runtime::lower_program(&compiled));
    map.insert(src.to_string(), Arc::clone(&lowered));
    lowered
}

/// The default worker count for batch runs: the `ENT_JOBS` environment
/// variable when set and positive, else 1 (sequential, the reproducible
/// default for published artifacts).
#[must_use]
pub fn default_jobs() -> usize {
    std::env::var("ENT_JOBS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Resolves a `--jobs` request: `0` means "one worker per available CPU".
#[must_use]
pub fn resolve_jobs(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Runs `f` over every job, fanning out across `jobs` big-stack workers,
/// and returns the results **in job order** regardless of which worker
/// finished what when.
///
/// Workers pull job indices from a shared counter, so a slow job never
/// convoys the whole batch behind it. Each worker executes inside a
/// single [`with_interp_stack`] frame, so every `run_lowered` a job makes
/// runs directly on the worker's (already big) stack — the pool reuses
/// one spawned worker per thread, not one per run. With `jobs == 1` the
/// batch runs sequentially on one such worker; under the module-level
/// determinism contract the results are bit-identical either way.
///
/// # Panics
///
/// A panicking job panics the batch: worker panics are re-raised on the
/// calling thread after the scope unwinds.
pub fn run_batch<J, R, F>(jobs: usize, work: &[J], f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    let stack_size = default_stack_size();
    let workers = resolve_jobs(jobs).max(1).min(work.len().max(1));
    if workers == 1 {
        return with_interp_stack(stack_size, || work.iter().map(&f).collect());
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    with_interp_stack(stack_size, || {
                        let mut mine = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(job) = work.get(i) else { break };
                            mine.push((i, f(job)));
                        }
                        mine
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(part) => part,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });
    indexed.sort_unstable_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_results_come_back_in_job_order() {
        let work: Vec<usize> = (0..100).collect();
        let seq = run_batch(1, &work, |&n| n * n);
        let par = run_batch(8, &work, |&n| n * n);
        assert_eq!(seq, par);
        assert_eq!(seq[17], 289);
    }

    #[test]
    fn batch_handles_empty_and_single_job_lists() {
        let none: Vec<u32> = Vec::new();
        assert!(run_batch(4, &none, |&n| n).is_empty());
        assert_eq!(run_batch(4, &[7u32], |&n| n + 1), vec![8]);
    }

    #[test]
    fn cache_returns_the_same_program_for_the_same_source() {
        let src = "class Main { int main() { return 6 * 7; } }";
        let a = lowered_cached("unit-test", src);
        let b = lowered_cached("unit-test", src);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn resolve_jobs_expands_zero() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
    }
}
