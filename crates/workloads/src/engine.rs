//! The ENT execution engine: a compile-once program cache plus a
//! deterministic parallel batch runner.
//!
//! The paper's evaluation (§6) is a measurement lattice — benchmark ×
//! system × boot mode × workload mode × silent × trial — of hundreds of
//! interpreter runs over a few dozen distinct programs. This module gives
//! the figure generators two things:
//!
//! * **A program cache** ([`lowered_cached`]): programs are compiled and
//!   lowered once per distinct source and shared as
//!   `Arc<LoweredProgram>` across every run, thread, and figure that
//!   needs them (`LoweredProgram` is `Send + Sync`, asserted at compile
//!   time in `ent-runtime`). The cache is bounded ([`LOWERED_CACHE_CAP`])
//!   with insertion-order eviction, so long-lived processes sweeping many
//!   generated programs cannot grow it without limit.
//! * **A batch executor** ([`run_batch_outcomes`] and the infallible
//!   wrapper [`run_batch`]): enumerates jobs up front, fans them out
//!   across `jobs` reusable big-stack workers, and returns per-job
//!   outcomes in job order. A panicking job is caught at the job
//!   boundary, optionally retried ([`BatchPolicy::retries`]), and
//!   recorded as a [`JobError`] — the rest of the batch always completes.
//!
//! # Determinism contract
//!
//! Parallel output is **bit-identical** to sequential output. The
//! contract has two halves:
//!
//! * the engine's half: results come back in job order, each worker wraps
//!   one [`ent_runtime::with_interp_stack`] frame around its whole job
//!   loop (so scheduling never perturbs a run), and nothing about a run
//!   depends on which worker picks it up;
//! * the caller's half: each job's behavior — in particular its RNG seed —
//!   must derive from the job's *identity* (its position in the
//!   enumerated grid), never from execution order or shared mutable
//!   state. The figure generators' seed formulas (`seed * 17 + 1` and
//!   friends, keyed on the trial index) satisfy this by construction.
//!
//! Under that contract `run_batch(n, jobs, f)` returns the same bytes for
//! every `n`, which the `fig*` binaries' `--jobs` flag and the CI
//! byte-equality check rely on. Wall-clock deadlines
//! ([`BatchPolicy::deadline`]) are the one escape hatch: they depend on
//! host timing, so the published-artifact configurations leave them off.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use ent_core::compile;
use ent_runtime::{default_stack_size, with_interp_stack, Engine, LoweredProgram};

/// The most distinct programs [`lowered_cached`] retains at once. Past the
/// cap the oldest entry is evicted (insertion order); the figure suite
/// uses a few dozen programs, so eviction only fires for adversarial or
/// very-long-lived callers.
pub const LOWERED_CACHE_CAP: usize = 256;

struct LoweredCache {
    map: HashMap<String, Arc<LoweredProgram>>,
    /// Keys in insertion order, oldest first.
    order: VecDeque<String>,
}

/// Compiles and lowers `src` once, returning the shared lowered program.
/// Subsequent calls with the same source (from any thread) hit the cache.
///
/// The cache key is the source text itself, so "benchmark identity" is
/// exact: two benchmark cells share a program if and only if they generate
/// the same ENT source. `name` labels compile errors only. Entries past
/// [`LOWERED_CACHE_CAP`] evict the oldest cached program; outstanding
/// `Arc`s keep evicted programs alive, so eviction is invisible to
/// callers except as a recompile on a later repeat.
///
/// # Panics
///
/// Panics if `src` does not compile — benchmark programs are generated,
/// so a compile error is a harness bug, not a measurement.
pub fn lowered_cached(name: &str, src: &str) -> Arc<LoweredProgram> {
    static CACHE: OnceLock<Mutex<LoweredCache>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| {
        Mutex::new(LoweredCache {
            map: HashMap::new(),
            order: VecDeque::new(),
        })
    });
    let mut c = cache.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(found) = c.map.get(src) {
        return Arc::clone(found);
    }
    let compiled = compile(src)
        .unwrap_or_else(|e| panic!("benchmark `{name}` failed to compile:\n{}", e.render(src)));
    let lowered = Arc::new(ent_runtime::lower_program(&compiled));
    while c.map.len() >= LOWERED_CACHE_CAP {
        let Some(oldest) = c.order.pop_front() else {
            break;
        };
        c.map.remove(&oldest);
    }
    c.map.insert(src.to_string(), Arc::clone(&lowered));
    c.order.push_back(src.to_string());
    lowered
}

/// Process-wide engine override: 0 = unset, 1 = tree, 2 = bytecode.
static ENGINE_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Selects the evaluation engine every subsequently-prepared program runs
/// on (harness binaries call this from their `--engine` flag before any
/// grid work starts). Programs already prepared keep the engine they were
/// prepared with.
pub fn set_default_engine(engine: Engine) {
    let tag = match engine {
        Engine::Tree => 1,
        Engine::Bytecode => 2,
    };
    ENGINE_OVERRIDE.store(tag, Ordering::Relaxed);
}

/// The engine newly-prepared programs run on: the [`set_default_engine`]
/// override when one was installed, else the `ENT_ENGINE` environment
/// variable (`tree` or `bytecode`), else the runtime default (bytecode).
/// Bytecode compiled for a cached program is part of the shared
/// `LoweredProgram`, so switching engines never recompiles anything.
#[must_use]
pub fn default_engine() -> Engine {
    match ENGINE_OVERRIDE.load(Ordering::Relaxed) {
        1 => Engine::Tree,
        2 => Engine::Bytecode,
        _ => std::env::var("ENT_ENGINE")
            .ok()
            .and_then(|v| Engine::parse(v.trim()))
            .unwrap_or_default(),
    }
}

/// The default worker count for batch runs: the `ENT_JOBS` environment
/// variable when set and positive, else 1 (sequential, the reproducible
/// default for published artifacts).
#[must_use]
pub fn default_jobs() -> usize {
    std::env::var("ENT_JOBS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Resolves a `--jobs` request: `0` means "one worker per available CPU".
#[must_use]
pub fn resolve_jobs(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Per-job failure policy for [`run_batch_outcomes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchPolicy {
    /// How many times a panicking job is re-run before its failure is
    /// recorded. `0` (the default) means one attempt, no retries.
    pub retries: u32,
    /// Wall-clock budget per job attempt. An attempt that completes but
    /// overran the budget is recorded as a failure (post-hoc: the engine
    /// never kills a running interpreter mid-step, it judges the attempt
    /// after it returns). `None` (the default) disables the check, which
    /// published-artifact runs rely on for host-independence.
    pub deadline: Option<Duration>,
}

/// Why a job in a batch produced no result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobError {
    /// The panic payload (or deadline report) of the final attempt.
    pub message: String,
    /// How many attempts were made (always ≥ 1).
    pub attempts: u32,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (after {} attempts)", self.message, self.attempts)
    }
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked with a non-string payload".to_string()
    }
}

/// Runs one job under the policy: catch panics at the job boundary, retry
/// up to `policy.retries` times, apply the post-hoc deadline check.
fn run_job<J, R>(
    job: &J,
    policy: &BatchPolicy,
    f: &(impl Fn(&J, u32) -> R + Sync),
) -> Result<R, JobError> {
    let mut last = None;
    for attempt in 0..=policy.retries {
        let started = Instant::now();
        match catch_unwind(AssertUnwindSafe(|| f(job, attempt))) {
            Ok(r) => match policy.deadline {
                Some(deadline) if started.elapsed() > deadline => {
                    last = Some(format!(
                        "job exceeded its {:?} deadline (took {:?})",
                        deadline,
                        started.elapsed()
                    ));
                }
                _ => return Ok(r),
            },
            Err(panic) => last = Some(panic_message(panic)),
        }
    }
    Err(JobError {
        message: last.unwrap_or_else(|| "job failed".to_string()),
        attempts: policy.retries + 1,
    })
}

/// Runs `f` over every job, fanning out across `jobs` big-stack workers,
/// and returns per-job outcomes **in job order** regardless of which
/// worker finished what when.
///
/// Each attempt runs inside `catch_unwind` at the job boundary: a
/// panicking or deadline-blown job becomes `Err(JobError)` for that slot
/// and every other job still runs to completion. `f` receives the attempt
/// index (0 for the first try) so retry-aware jobs can vary their
/// behavior; deterministic callers ignore it.
///
/// Workers pull job indices from a shared counter, so a slow job never
/// convoys the whole batch behind it. Each worker executes inside a
/// single [`with_interp_stack`] frame, so every `run_lowered` a job makes
/// runs directly on the worker's (already big) stack — the pool reuses
/// one spawned worker per thread, not one per run. With `jobs == 1` the
/// batch runs sequentially on one such worker; under the module-level
/// determinism contract the results are bit-identical either way.
pub fn run_batch_outcomes<J, R, F>(
    jobs: usize,
    work: &[J],
    policy: &BatchPolicy,
    f: F,
) -> Vec<Result<R, JobError>>
where
    J: Sync,
    R: Send,
    F: Fn(&J, u32) -> R + Sync,
{
    let stack_size = default_stack_size();
    let workers = resolve_jobs(jobs).max(1).min(work.len().max(1));
    if workers == 1 {
        return with_interp_stack(stack_size, || {
            work.iter().map(|job| run_job(job, policy, &f)).collect()
        });
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, Result<R, JobError>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    with_interp_stack(stack_size, || {
                        let mut mine = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(job) = work.get(i) else { break };
                            mine.push((i, run_job(job, policy, &f)));
                        }
                        mine
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| {
                // Job panics are caught inside `run_job`; a worker can only
                // die from a harness bug outside any job.
                h.join().expect("batch worker died outside a job boundary")
            })
            .collect()
    });
    indexed.sort_unstable_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Infallible wrapper over [`run_batch_outcomes`] for callers whose jobs
/// are not supposed to fail (the figure generators).
///
/// # Panics
///
/// If any job failed, panics **after the whole batch has completed** with
/// an aggregate message naming the first failure — failures surface as
/// one harness error instead of a half-finished batch.
pub fn run_batch<J, R, F>(jobs: usize, work: &[J], f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    let outcomes = run_batch_outcomes(jobs, work, &BatchPolicy::default(), |job, _| f(job));
    let total = outcomes.len();
    let mut failed = 0usize;
    let mut first: Option<(usize, JobError)> = None;
    let mut results = Vec::with_capacity(total);
    for (i, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok(r) => results.push(r),
            Err(e) => {
                failed += 1;
                if first.is_none() {
                    first = Some((i, e));
                }
            }
        }
    }
    if let Some((i, e)) = first {
        panic!("{failed} of {total} batch jobs failed; first failure (job {i}): {e}");
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_results_come_back_in_job_order() {
        let work: Vec<usize> = (0..100).collect();
        let seq = run_batch(1, &work, |&n| n * n);
        let par = run_batch(8, &work, |&n| n * n);
        assert_eq!(seq, par);
        assert_eq!(seq[17], 289);
    }

    #[test]
    fn batch_handles_empty_and_single_job_lists() {
        let none: Vec<u32> = Vec::new();
        assert!(run_batch(4, &none, |&n| n).is_empty());
        assert_eq!(run_batch(4, &[7u32], |&n| n + 1), vec![8]);
    }

    #[test]
    fn a_panicking_job_fails_alone_and_the_batch_completes() {
        let work: Vec<usize> = (0..32).collect();
        for jobs in [1, 8] {
            let outcomes = run_batch_outcomes(jobs, &work, &BatchPolicy::default(), |&n, _| {
                assert!(n != 13, "unlucky job");
                n * 2
            });
            assert_eq!(outcomes.len(), work.len());
            for (i, outcome) in outcomes.iter().enumerate() {
                if i == 13 {
                    let err = outcome.as_ref().unwrap_err();
                    assert!(err.message.contains("unlucky job"), "{err}");
                    assert_eq!(err.attempts, 1);
                } else {
                    assert_eq!(outcome.as_ref().unwrap(), &(i * 2));
                }
            }
        }
    }

    #[test]
    fn retries_rerun_the_job_and_record_the_attempt_count() {
        use std::sync::atomic::AtomicU32;
        // A job that fails on its first two attempts and succeeds on the
        // third; with one retry it still fails, with two it recovers.
        let tries = AtomicU32::new(0);
        let policy = BatchPolicy {
            retries: 1,
            ..BatchPolicy::default()
        };
        let outcomes = run_batch_outcomes(1, &[()], &policy, |_, _| {
            let t = tries.fetch_add(1, Ordering::Relaxed);
            assert!(t >= 2, "flaky");
            t
        });
        let err = outcomes[0].as_ref().unwrap_err();
        assert_eq!(err.attempts, 2);
        assert!(err.message.contains("flaky"));

        tries.store(0, Ordering::Relaxed);
        let policy = BatchPolicy {
            retries: 2,
            ..BatchPolicy::default()
        };
        let outcomes = run_batch_outcomes(1, &[()], &policy, |_, attempt| {
            let t = tries.fetch_add(1, Ordering::Relaxed);
            assert!(t >= 2, "flaky");
            attempt
        });
        assert_eq!(outcomes[0], Ok(2), "succeeds on the third attempt");
    }

    #[test]
    fn a_blown_deadline_is_recorded_as_a_failure() {
        let policy = BatchPolicy {
            deadline: Some(Duration::ZERO),
            ..BatchPolicy::default()
        };
        let outcomes = run_batch_outcomes(1, &[()], &policy, |_, _| {
            std::thread::sleep(Duration::from_millis(2));
        });
        let err = outcomes[0].as_ref().unwrap_err();
        assert!(err.message.contains("deadline"), "{err}");

        // A generous deadline passes.
        let policy = BatchPolicy {
            deadline: Some(Duration::from_secs(3600)),
            ..BatchPolicy::default()
        };
        let outcomes = run_batch_outcomes(1, &[()], &policy, |_, _| 5);
        assert_eq!(outcomes[0], Ok(5));
    }

    #[test]
    #[should_panic(expected = "1 of 3 batch jobs failed")]
    fn run_batch_aggregates_failures_after_finishing() {
        use std::sync::atomic::AtomicUsize;
        static COMPLETED: AtomicUsize = AtomicUsize::new(0);
        let work = [0usize, 1, 2];
        let _ = std::panic::catch_unwind(|| {
            run_batch(1, &work, |&n| {
                assert!(n != 1, "boom");
                COMPLETED.fetch_add(1, Ordering::Relaxed);
                n
            })
        })
        .map_err(|p| {
            // Every non-failing job ran even though job 1 panicked.
            assert_eq!(COMPLETED.load(Ordering::Relaxed), 2);
            std::panic::resume_unwind(p)
        });
    }

    #[test]
    fn cache_returns_the_same_program_for_the_same_source() {
        let src = "class Main { int main() { return 6 * 7; } }";
        let a = lowered_cached("unit-test", src);
        let b = lowered_cached("unit-test", src);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn cache_evicts_oldest_entries_past_the_cap() {
        // Distinct trivial programs: fill the cache past the cap, then
        // confirm the earliest entry was evicted (a repeat lookup compiles
        // a fresh Arc) while a recent one is still shared.
        let src_for = |n: usize| format!("class Main {{ int main() {{ return {n}; }} }}");
        let first_src = src_for(9_000_000);
        let first = lowered_cached("evict-test", &first_src);
        for n in 0..LOWERED_CACHE_CAP {
            let _ = lowered_cached("evict-test", &src_for(9_100_000 + n));
        }
        let last_src = src_for(9_100_000 + LOWERED_CACHE_CAP - 1);
        let last = lowered_cached("evict-test", &last_src);
        let last_again = lowered_cached("evict-test", &last_src);
        assert!(Arc::ptr_eq(&last, &last_again), "recent entry still cached");
        let first_again = lowered_cached("evict-test", &first_src);
        assert!(
            !Arc::ptr_eq(&first, &first_again),
            "oldest entry should have been evicted"
        );
    }

    #[test]
    fn resolve_jobs_expands_zero() {
        assert!(resolve_jobs(3) == 3);
        assert!(resolve_jobs(0) >= 1);
    }
}
