//! The ENT execution engine: a compile-once program cache plus a
//! deterministic parallel batch runner.
//!
//! The paper's evaluation (§6) is a measurement lattice — benchmark ×
//! system × boot mode × workload mode × silent × trial — of hundreds of
//! interpreter runs over a few dozen distinct programs. This module gives
//! the figure generators two things:
//!
//! * **A program cache** ([`lowered_cached`]): programs are compiled and
//!   lowered once per distinct source and shared as
//!   `Arc<LoweredProgram>` across every run, thread, and figure that
//!   needs them (`LoweredProgram` is `Send + Sync`, asserted at compile
//!   time in `ent-runtime`). The cache is lock-striped into
//!   [`LOWERED_CACHE_SHARDS`] shards keyed by a hash of the source, so
//!   concurrent workers preparing different programs never contend on one
//!   global mutex; each shard keeps bounded insertion-order (FIFO)
//!   eviction, so long-lived processes sweeping many generated programs
//!   cannot grow it without limit.
//! * **A batch executor** ([`run_batch_outcomes`] and the infallible
//!   wrapper [`run_batch`]): enumerates jobs up front, fans them out
//!   across `jobs` reusable big-stack workers under a **work-stealing
//!   scheduler**, and returns per-job outcomes in job order. A panicking
//!   job is caught at the job boundary, optionally retried
//!   ([`BatchPolicy::retries`]), and recorded as a [`JobError`] — the
//!   rest of the batch always completes.
//!
//! # The work-stealing scheduler
//!
//! Jobs are known up front, so there is no shared injector queue to keep
//! hot: the scheduler partitions `0..n` into one contiguous
//! [`StealRange`] per worker (a single atomic word packing `(lo, hi)`).
//! An **owner** claims [`chunk`-sized](ent_runtime::adapt::AdaptConfig)
//! blocks from the front of its own range with a CAS; a **thief** whose
//! range has drained takes the *back half* of a victim's remainder with a
//! CAS on the same word, adopts the stolen block as its new range, and
//! goes back to owner-side claiming — so stolen work is itself stealable,
//! and a skewed job mix diffuses across workers instead of convoying
//! behind the slowest range. Steals, stolen jobs, and owner grabs are
//! counted ([`BatchTelemetry`]) and fed to the adaptive tuner
//! ([`ent_runtime::adapt`]) which refines the chunk size between batches
//! when `--adapt on`.
//!
//! # Determinism contract
//!
//! Parallel output is **bit-identical** to sequential output at any
//! worker count, under any steal schedule. The contract has two halves:
//!
//! * the engine's half: every job index is claimed by exactly one worker
//!   (front-claims and back-steals CAS the same range word, so the blocks
//!   they remove are disjoint), results are tagged with their job index
//!   and assembled in job order after the batch, each worker wraps one
//!   [`ent_runtime::with_interp_stack`] frame around its whole loop, and
//!   nothing about a run depends on which worker picks it up;
//! * the caller's half: each job's behavior — in particular its RNG seed —
//!   must derive from the job's *identity* (its position in the
//!   enumerated grid), never from execution order or shared mutable
//!   state. The figure generators' seed formulas (`seed * 17 + 1` and
//!   friends, keyed on the trial index) satisfy this by construction.
//!
//! Under that contract `run_batch(n, jobs, f)` returns the same bytes for
//! every `n`, which the `fig*` binaries' `--jobs` flag and the CI
//! byte-equality check rely on. Wall-clock deadlines
//! ([`BatchPolicy::deadline`]) are the one escape hatch: they depend on
//! host timing, so the published-artifact configurations leave them off.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use ent_core::compile;
use ent_runtime::adapt;
use ent_runtime::{
    default_stack_size, with_interp_stack, Enforcement, Engine, LoweredProgram, TierUp,
};

/// Lock stripes in the lowered-program cache. Sized for the workloads the
/// harness actually runs: enough stripes that an 8-worker batch preparing
/// distinct programs rarely collides, few enough that per-shard FIFO
/// bounds stay meaningful.
pub const LOWERED_CACHE_SHARDS: usize = 8;

/// The most distinct programs the cache retains at once across all
/// shards, by default (the adaptive tuner may raise it up to 4× under
/// `--adapt on`; see [`ent_runtime::adapt::observe_cache`]). Past the
/// per-shard bound the oldest entry in that shard is evicted (insertion
/// order); the figure suite uses a few dozen programs, so eviction only
/// fires for adversarial or very-long-lived callers.
pub const LOWERED_CACHE_CAP: usize = 256;

struct Shard {
    map: HashMap<String, Arc<LoweredProgram>>,
    /// Keys in insertion order, oldest first.
    order: VecDeque<String>,
}

fn shards() -> &'static [Mutex<Shard>] {
    static SHARDS: OnceLock<Vec<Mutex<Shard>>> = OnceLock::new();
    SHARDS.get_or_init(|| {
        (0..LOWERED_CACHE_SHARDS)
            .map(|_| {
                Mutex::new(Shard {
                    map: HashMap::new(),
                    order: VecDeque::new(),
                })
            })
            .collect()
    })
}

/// FNV-1a over the source text; the shard key.
fn source_hash(src: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in src.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The shard a source string lives in (public for tests that need to
/// construct same-shard or cross-shard key sets deliberately).
#[must_use]
pub fn cache_shard_of(src: &str) -> usize {
    (source_hash(src) % LOWERED_CACHE_SHARDS as u64) as usize
}

/// A stable 64-bit fingerprint of a program source — the cache key hash,
/// also used by the server's quarantine table to identify repeat
/// offenders without retaining tenant source text.
#[must_use]
pub fn source_fingerprint(src: &str) -> u64 {
    source_hash(src)
}

static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static CACHE_EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// Point-in-time counters for the sharded lowered-program cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lock stripes ([`LOWERED_CACHE_SHARDS`]).
    pub shards: u64,
    /// Total capacity currently in force (default or adaptively raised).
    pub capacity: u64,
    /// Programs resident across all shards right now.
    pub entries: u64,
    /// Lookups served from a shard.
    pub hits: u64,
    /// Lookups that compiled fresh.
    pub misses: u64,
    /// Entries evicted to keep a shard under its bound.
    pub evictions: u64,
}

/// Reads the cache counters (monotone since process start, except
/// `entries`, which is the live resident count).
#[must_use]
pub fn lowered_cache_stats() -> CacheStats {
    CacheStats {
        shards: LOWERED_CACHE_SHARDS as u64,
        capacity: cache_capacity() as u64,
        entries: lowered_cache_shard_entries().iter().sum(),
        hits: CACHE_HITS.load(Ordering::Relaxed),
        misses: CACHE_MISSES.load(Ordering::Relaxed),
        evictions: CACHE_EVICTIONS.load(Ordering::Relaxed),
    }
}

/// Resident program count per shard, in shard order — the occupancy view
/// behind [`CacheStats::entries`]. Until this existed, per-shard state was
/// internal-only; the batch-telemetry sidecar and the server stats
/// endpoint both render it so operators can spot skewed stripes.
#[must_use]
pub fn lowered_cache_shard_entries() -> Vec<u64> {
    shards()
        .iter()
        .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).map.len() as u64)
        .collect()
}

/// The total cache capacity in force: the adaptive config's when it set
/// one, else [`LOWERED_CACHE_CAP`].
fn cache_capacity() -> usize {
    match adapt::snapshot().1.cache_capacity {
        0 => LOWERED_CACHE_CAP,
        n => n as usize,
    }
}

/// Compiles and lowers `src` once, returning the shared lowered program.
/// Subsequent calls with the same source (from any thread) hit the cache.
///
/// The cache key is the source text itself, so "benchmark identity" is
/// exact: two benchmark cells share a program if and only if they generate
/// the same ENT source. `name` labels compile errors only. The map is
/// lock-striped by source hash; compilation happens *outside* the shard
/// lock, so a worker compiling a large program never blocks other workers'
/// lookups in the same shard (two threads racing to compile the same new
/// source may both compile it; the first insert wins and both share its
/// `Arc` from then on). Entries past the per-shard bound evict that
/// shard's oldest program; outstanding `Arc`s keep evicted programs
/// alive, so eviction is invisible to callers except as a recompile on a
/// later repeat.
///
/// # Panics
///
/// Panics if `src` does not compile — benchmark programs are generated,
/// so a compile error is a harness bug, not a measurement. Servers
/// compiling tenant-submitted source use [`try_lowered_cached`], where a
/// compile error is a recorded reply instead.
pub fn lowered_cached(name: &str, src: &str) -> Arc<LoweredProgram> {
    try_lowered_cached(src).unwrap_or_else(|e| panic!("benchmark `{name}` failed to compile:\n{e}"))
}

/// The fallible twin of [`lowered_cached`]: compiles and lowers `src` once
/// (shared cache, same striping and eviction), returning the rendered
/// compile error instead of panicking. Failed compiles are never cached —
/// the sources a server sees repeatedly are the ones worth keeping, and a
/// repeat offender is the quarantine table's job, not the cache's.
///
/// # Errors
///
/// Returns the diagnostic rendered against `src` (the same text the CLI's
/// `error:` line carries) when the program fails to parse or typecheck.
pub fn try_lowered_cached(src: &str) -> Result<Arc<LoweredProgram>, String> {
    let shard = &shards()[cache_shard_of(src)];
    {
        let s = shard.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(found) = s.map.get(src) {
            CACHE_HITS.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(found));
        }
    }
    CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
    let compiled = compile(src).map_err(|e| e.render(src))?;
    let lowered = Arc::new(ent_runtime::lower_program(&compiled));
    let per_shard = (cache_capacity() / LOWERED_CACHE_SHARDS).max(1);
    let mut s = shard.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(raced) = s.map.get(src) {
        // Another worker compiled and inserted while we were compiling.
        return Ok(Arc::clone(raced));
    }
    while s.map.len() >= per_shard {
        let Some(oldest) = s.order.pop_front() else {
            break;
        };
        s.map.remove(&oldest);
        CACHE_EVICTIONS.fetch_add(1, Ordering::Relaxed);
    }
    s.map.insert(src.to_string(), Arc::clone(&lowered));
    s.order.push_back(src.to_string());
    Ok(lowered)
}

/// Process-wide engine override: 0 = unset, 1 = tree, 2 = bytecode,
/// 3 = threaded.
static ENGINE_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Selects the evaluation engine every subsequently-prepared program runs
/// on (harness binaries call this from their `--engine` flag before any
/// grid work starts). Programs already prepared keep the engine they were
/// prepared with.
pub fn set_default_engine(engine: Engine) {
    let tag = match engine {
        Engine::Tree => 1,
        Engine::Bytecode => 2,
        Engine::Threaded => 3,
    };
    ENGINE_OVERRIDE.store(tag, Ordering::Relaxed);
}

/// The engine newly-prepared programs run on: the [`set_default_engine`]
/// override when one was installed, else the `ENT_ENGINE` environment
/// variable (`tree`, `bytecode`, or `threaded`), else — under `--adapt
/// on` — the adaptive tuner's preference when it has one, else the
/// runtime default (bytecode). Engine choice is value-neutral (the
/// differential harness proves all engines bit-identical), so the
/// adaptive rung can only change timing. Bytecode compiled for a cached
/// program is part of the shared `LoweredProgram`, so switching engines
/// never recompiles anything.
#[must_use]
pub fn default_engine() -> Engine {
    match ENGINE_OVERRIDE.load(Ordering::Relaxed) {
        1 => Engine::Tree,
        2 => Engine::Bytecode,
        3 => Engine::Threaded,
        _ => std::env::var("ENT_ENGINE")
            .ok()
            .and_then(|v| Engine::parse(v.trim()))
            .or_else(adapt::preferred_engine)
            .unwrap_or_default(),
    }
}

/// The engine a specific program should run on: the same
/// override → env → tuner → default waterfall as [`default_engine`],
/// except the tuner rung consults the per-program table first
/// ([`adapt::preferred_engine_for`], keyed by the program's source
/// fingerprint) before falling back to the global hint. Prepared
/// programs pass the fingerprint they cache under.
#[must_use]
pub fn default_engine_for(fingerprint: u64) -> Engine {
    match ENGINE_OVERRIDE.load(Ordering::Relaxed) {
        1 => Engine::Tree,
        2 => Engine::Bytecode,
        3 => Engine::Threaded,
        _ => std::env::var("ENT_ENGINE")
            .ok()
            .and_then(|v| Engine::parse(v.trim()))
            .or_else(|| adapt::preferred_engine_for(fingerprint))
            .unwrap_or_default(),
    }
}

/// Process-wide tier-up override: `u32::MAX as usize + 1` = unset, else
/// the packed [`TierUp`] (0 = always, `u32::MAX` = never, else the
/// threshold).
static TIER_UP_OVERRIDE: AtomicUsize = AtomicUsize::new(TIER_UP_UNSET);
const TIER_UP_UNSET: usize = u32::MAX as usize + 1;

fn pack_tier_up(t: TierUp) -> usize {
    match t {
        TierUp::Always => 0,
        TierUp::Never => u32::MAX as usize,
        TierUp::After(n) => n as usize,
    }
}

fn unpack_tier_up(v: usize) -> TierUp {
    match v {
        0 => TierUp::Always,
        v if v == u32::MAX as usize => TierUp::Never,
        v => TierUp::After(v as u32),
    }
}

/// Selects the tier-up threshold every subsequently-prepared program runs
/// with (harness binaries call this from their `--tier-up` flag before
/// any grid work starts). Only the threaded engine reads it.
pub fn set_default_tier_up(tier_up: TierUp) {
    TIER_UP_OVERRIDE.store(pack_tier_up(tier_up), Ordering::Relaxed);
}

/// The tier-up threshold newly-prepared programs run with: the
/// [`set_default_tier_up`] override when one was installed, else the
/// `ENT_TIER_UP` environment variable (`0` = always, `off` = never, else
/// a hit count), else the runtime default.
#[must_use]
pub fn default_tier_up() -> TierUp {
    match TIER_UP_OVERRIDE.load(Ordering::Relaxed) {
        TIER_UP_UNSET => TierUp::from_env(),
        v => unpack_tier_up(v),
    }
}

/// Process-wide enforcement override: 0 = unset, 1 = guarded,
/// 2 = transient.
static ENFORCE_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Selects the enforcement strategy every subsequently-prepared program
/// runs under (harness binaries call this from their `--enforce` flag
/// before any grid work starts). Programs already prepared keep the
/// strategy they were prepared with.
pub fn set_default_enforcement(enforcement: Enforcement) {
    let tag = match enforcement {
        Enforcement::Guarded => 1,
        Enforcement::Transient => 2,
    };
    ENFORCE_OVERRIDE.store(tag, Ordering::Relaxed);
}

/// The enforcement strategy newly-prepared programs run under: the
/// [`set_default_enforcement`] override when one was installed, else the
/// `ENT_ENFORCE` environment variable (`guarded` or `transient`), else
/// the runtime default (guarded). Like `ENT_ENGINE`, the env var is read
/// only at this harness layer — it never leaks into
/// [`RuntimeConfig::default`](ent_runtime::RuntimeConfig).
#[must_use]
pub fn default_enforcement() -> Enforcement {
    match ENFORCE_OVERRIDE.load(Ordering::Relaxed) {
        1 => Enforcement::Guarded,
        2 => Enforcement::Transient,
        _ => Enforcement::from_env(),
    }
}

/// The default worker count for batch runs: the `ENT_JOBS` environment
/// variable when set and positive, else 1 (sequential, the reproducible
/// default for published artifacts).
#[must_use]
pub fn default_jobs() -> usize {
    std::env::var("ENT_JOBS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Resolves a `--jobs` request: `0` means "one worker per available CPU".
#[must_use]
pub fn resolve_jobs(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Per-job failure policy for [`run_batch_outcomes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchPolicy {
    /// How many times a panicking job is re-run before its failure is
    /// recorded. `0` (the default) means one attempt, no retries.
    pub retries: u32,
    /// Wall-clock budget per job attempt. An attempt that completes but
    /// overran the budget is recorded as a failure (post-hoc: the engine
    /// never kills a running interpreter mid-step, it judges the attempt
    /// after it returns). `None` (the default) disables the check, which
    /// published-artifact runs rely on for host-independence.
    pub deadline: Option<Duration>,
    /// Base delay of the jittered exponential backoff between retry
    /// attempts. `None` (the default) retries immediately — the historical
    /// behavior, and the right one for deterministic harness runs where a
    /// retry exists only to absorb a panic. A server retrying against
    /// transient contention sets a base; attempt `k` (1-based) then sleeps
    /// `base * 2^(k-1)`, scaled by a seeded jitter factor in `[0.5, 1.0]`
    /// — see [`retry_backoff`], which pins the schedule as a pure
    /// function.
    pub backoff_base: Option<Duration>,
    /// Seed for the backoff jitter. The same `(seed, attempt)` pair always
    /// produces the same delay, so retry schedules replay exactly.
    pub backoff_seed: u64,
}

/// splitmix64 — the same stateless mixer the fault injector uses for
/// window hashing; here it decorrelates backoff jitter across attempts.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The delay a policy imposes before retry attempt `attempt` (1-based; the
/// first attempt is 0 and never waits). Pure in `(policy, attempt)`:
/// exponential doubling from `backoff_base`, capped at 16 doublings, times
/// a jitter factor in `[0.5, 1.0]` drawn from `splitmix64(backoff_seed ^
/// attempt)`. `None` when the policy has no base or `attempt` is 0.
#[must_use]
pub fn retry_backoff(policy: &BatchPolicy, attempt: u32) -> Option<Duration> {
    let base = policy.backoff_base?;
    if attempt == 0 {
        return None;
    }
    let doublings = (attempt - 1).min(16);
    let h = splitmix64(policy.backoff_seed ^ u64::from(attempt));
    // Top 53 bits → a uniform fraction in [0, 1); jitter in [0.5, 1.0].
    let fraction = (h >> 11) as f64 / (1u64 << 53) as f64;
    let jitter = 0.5 + fraction / 2.0;
    let nanos = base.as_nanos().saturating_mul(1u128 << doublings);
    let nanos = u64::try_from(nanos).unwrap_or(u64::MAX);
    Some(Duration::from_nanos((nanos as f64 * jitter) as u64))
}

/// Why a job in a batch produced no result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobError {
    /// The panic payload (or deadline report) of the final attempt.
    pub message: String,
    /// How many attempts were made (always ≥ 1).
    pub attempts: u32,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (after {} attempts)", self.message, self.attempts)
    }
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked with a non-string payload".to_string()
    }
}

/// Runs one job under the policy: catch panics at the job boundary, retry
/// up to `policy.retries` times, apply the post-hoc deadline check.
fn run_job<J, R>(
    job: &J,
    policy: &BatchPolicy,
    f: &(impl Fn(&J, u32) -> R + Sync),
) -> Result<R, JobError> {
    let mut last = None;
    for attempt in 0..=policy.retries {
        if let Some(delay) = retry_backoff(policy, attempt) {
            std::thread::sleep(delay);
        }
        let started = Instant::now();
        match catch_unwind(AssertUnwindSafe(|| f(job, attempt))) {
            Ok(r) => match policy.deadline {
                Some(deadline) if started.elapsed() > deadline => {
                    last = Some(format!(
                        "job exceeded its {:?} deadline (took {:?})",
                        deadline,
                        started.elapsed()
                    ));
                }
                _ => return Ok(r),
            },
            Err(panic) => last = Some(panic_message(panic)),
        }
    }
    Err(JobError {
        message: last.unwrap_or_else(|| "job failed".to_string()),
        attempts: policy.retries + 1,
    })
}

/// Runs one closure under a [`BatchPolicy`] — the same catch_unwind /
/// retry / backoff / post-hoc-deadline machinery the batch scheduler
/// applies per job, exposed for callers (like the resident server) that
/// manage their own queues but want identical isolation semantics. The
/// closure receives the 0-based attempt number.
pub fn run_job_isolated<R>(
    policy: &BatchPolicy,
    f: impl Fn(u32) -> R + Sync,
) -> Result<R, JobError> {
    run_job(&(), policy, &|_: &(), attempt| f(attempt))
}

/// A contiguous block of pending job indices, packed `(lo << 32) | hi`
/// into one atomic word so owner front-claims and thief back-steals
/// contend on a single CAS — a claim and a steal can never hand the same
/// index to two workers, because both must succeed their CAS against the
/// same observed value.
struct StealRange(AtomicU64);

fn pack(lo: u32, hi: u32) -> u64 {
    ((lo as u64) << 32) | hi as u64
}

fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

impl StealRange {
    fn new(lo: u32, hi: u32) -> Self {
        StealRange(AtomicU64::new(pack(lo, hi)))
    }

    /// Owner side: claims up to `n` jobs from the front, returning the
    /// half-open claimed block.
    fn claim_front(&self, n: u32) -> Option<(u32, u32)> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            let take = n.max(1).min(hi - lo);
            match self.0.compare_exchange_weak(
                cur,
                pack(lo + take, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((lo, lo + take)),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Thief side: steals the back half of the remainder (at least
    /// `min_take`, never more than the remainder), returning the stolen
    /// half-open block.
    fn steal_back(&self, min_take: u32) -> Option<(u32, u32)> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(cur);
            let rem = hi.saturating_sub(lo);
            if rem == 0 {
                return None;
            }
            let take = (rem - rem / 2).max(min_take.max(1)).min(rem);
            match self.0.compare_exchange_weak(
                cur,
                pack(lo, hi - take),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((hi - take, hi)),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Owner side only, and only when the owner's range is empty: adopt a
    /// stolen block as the new range. Sound because owners are the only
    /// writers that *grow* a range, and the owner just observed its own
    /// range empty (thieves only shrink).
    fn adopt(&self, lo: u32, hi: u32) {
        self.0.store(pack(lo, hi), Ordering::Release);
    }
}

/// What the scheduler did for one batch (and, summed process-wide, for
/// [`sched_totals`]). Counter semantics: a **steal** is one successful
/// back-half transfer between workers; **stolen_jobs** is how many job
/// indices those transfers moved; **chunks_claimed** is owner-side front
/// grabs (including grabs from adopted stolen blocks).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchTelemetry {
    /// Jobs in the batch.
    pub jobs: u64,
    /// Workers the batch actually ran on (after clamping to batch size).
    pub workers: u64,
    /// The owner-side chunk size in force.
    pub chunk: u64,
    /// The thief-side minimum steal granularity in force.
    pub steal_min: u64,
    /// Successful steals.
    pub steals: u64,
    /// Job indices moved by steals.
    pub stolen_jobs: u64,
    /// Owner-side chunk grabs.
    pub chunks_claimed: u64,
    /// The adaptive-config generation the batch was scheduled under.
    pub adapt_generation: u64,
}

#[derive(Default)]
struct SchedCounters {
    steals: AtomicU64,
    stolen_jobs: AtomicU64,
    chunks_claimed: AtomicU64,
}

/// Process-lifetime scheduler totals (every batch summed), plus the cache
/// counters — what the fig harnesses dump as `results/<stem>_sched.json`.
#[derive(Clone, Copy, Debug, Default)]
pub struct SchedTotals {
    /// Batches executed.
    pub batches: u64,
    /// Jobs across all batches.
    pub jobs: u64,
    /// Widest worker pool any batch used.
    pub max_workers: u64,
    /// Successful steals across all batches.
    pub steals: u64,
    /// Job indices moved by steals.
    pub stolen_jobs: u64,
    /// Owner-side chunk grabs.
    pub chunks_claimed: u64,
    /// The most recent batch's telemetry.
    pub last: BatchTelemetry,
    /// Cache counters at read time.
    pub cache: CacheStats,
}

static TOTAL_BATCHES: AtomicU64 = AtomicU64::new(0);
static TOTAL_JOBS: AtomicU64 = AtomicU64::new(0);
static TOTAL_MAX_WORKERS: AtomicU64 = AtomicU64::new(0);
static TOTAL_STEALS: AtomicU64 = AtomicU64::new(0);
static TOTAL_STOLEN_JOBS: AtomicU64 = AtomicU64::new(0);
static TOTAL_CHUNKS: AtomicU64 = AtomicU64::new(0);

fn last_batch_cell() -> &'static Mutex<BatchTelemetry> {
    static LAST: OnceLock<Mutex<BatchTelemetry>> = OnceLock::new();
    LAST.get_or_init(|| Mutex::new(BatchTelemetry::default()))
}

fn record_batch(t: &BatchTelemetry) {
    TOTAL_BATCHES.fetch_add(1, Ordering::Relaxed);
    TOTAL_JOBS.fetch_add(t.jobs, Ordering::Relaxed);
    TOTAL_MAX_WORKERS.fetch_max(t.workers, Ordering::Relaxed);
    TOTAL_STEALS.fetch_add(t.steals, Ordering::Relaxed);
    TOTAL_STOLEN_JOBS.fetch_add(t.stolen_jobs, Ordering::Relaxed);
    TOTAL_CHUNKS.fetch_add(t.chunks_claimed, Ordering::Relaxed);
    *last_batch_cell().lock().unwrap_or_else(|e| e.into_inner()) = *t;
}

/// Reads the process-lifetime scheduler totals.
#[must_use]
pub fn sched_totals() -> SchedTotals {
    SchedTotals {
        batches: TOTAL_BATCHES.load(Ordering::Relaxed),
        jobs: TOTAL_JOBS.load(Ordering::Relaxed),
        max_workers: TOTAL_MAX_WORKERS.load(Ordering::Relaxed),
        steals: TOTAL_STEALS.load(Ordering::Relaxed),
        stolen_jobs: TOTAL_STOLEN_JOBS.load(Ordering::Relaxed),
        chunks_claimed: TOTAL_CHUNKS.load(Ordering::Relaxed),
        last: *last_batch_cell().lock().unwrap_or_else(|e| e.into_inner()),
        cache: lowered_cache_stats(),
    }
}

impl SchedTotals {
    /// Renders the totals as one `ent-batch-telemetry/1` JSON document
    /// (hand-emitted; the workspace has no serde). Every field is a
    /// counter or a fixed-vocabulary string, so no escaping is needed.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\": \"ent-batch-telemetry/1\", \
             \"batches\": {}, \"jobs\": {}, \"max_workers\": {}, \
             \"steals\": {}, \"stolen_jobs\": {}, \"chunks_claimed\": {}, \
             \"last\": {{\"jobs\": {}, \"workers\": {}, \"chunk\": {}, \
             \"steal_min\": {}, \"steals\": {}, \"stolen_jobs\": {}, \
             \"chunks_claimed\": {}}}, \
             \"adapt\": {{\"mode\": \"{}\", \"generation\": {}}}, \
             \"cache\": {{\"shards\": {}, \"capacity\": {}, \"hits\": {}, \
             \"misses\": {}, \"evictions\": {}, \"entries\": {}, \
             \"shard_entries\": [{}]}}}}",
            self.batches,
            self.jobs,
            self.max_workers,
            self.steals,
            self.stolen_jobs,
            self.chunks_claimed,
            self.last.jobs,
            self.last.workers,
            self.last.chunk,
            self.last.steal_min,
            self.last.steals,
            self.last.stolen_jobs,
            self.last.chunks_claimed,
            adapt::mode().as_str(),
            adapt::snapshot().0,
            self.cache.shards,
            self.cache.capacity,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.entries,
            lowered_cache_shard_entries()
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", "),
        )
    }
}

/// The owner-side chunk size for a batch: the adaptive config's pin when
/// one is set, else `max(1, jobs / (workers * 8))` clamped to 64 — about
/// eight grabs per worker on a balanced mix, fine enough that a skewed
/// mix leaves blocks worth stealing.
fn effective_chunk(cfg_chunk: u32, jobs: usize, workers: usize) -> u32 {
    if cfg_chunk > 0 {
        return cfg_chunk;
    }
    (jobs / (workers.max(1) * 8)).clamp(1, 64) as u32
}

/// Runs `f` over every job, fanning out across `jobs` big-stack workers
/// under the work-stealing scheduler, and returns per-job outcomes **in
/// job order** regardless of which worker finished what when — plus the
/// batch's scheduler telemetry.
///
/// Each attempt runs inside `catch_unwind` at the job boundary: a
/// panicking or deadline-blown job becomes `Err(JobError)` for that slot
/// and every other job still runs to completion. `f` receives the attempt
/// index (0 for the first try) so retry-aware jobs can vary their
/// behavior; deterministic callers ignore it.
///
/// Each worker executes inside a single [`with_interp_stack`] frame, so
/// every `run_lowered` a job makes runs directly on the worker's (already
/// big) stack — the pool reuses one spawned worker per thread, not one
/// per run. With `jobs == 1` the batch runs sequentially on one such
/// worker; under the module-level determinism contract the results are
/// bit-identical either way.
pub fn run_batch_outcomes_with_telemetry<J, R, F>(
    jobs: usize,
    work: &[J],
    policy: &BatchPolicy,
    f: F,
) -> (Vec<Result<R, JobError>>, BatchTelemetry)
where
    J: Sync,
    R: Send,
    F: Fn(&J, u32) -> R + Sync,
{
    let stack_size = default_stack_size();
    let workers = resolve_jobs(jobs).max(1).min(work.len().max(1));
    let (generation, cfg) = adapt::snapshot();
    let mut telemetry = BatchTelemetry {
        jobs: work.len() as u64,
        workers: workers as u64,
        chunk: u64::from(effective_chunk(cfg.chunk, work.len(), workers)),
        steal_min: u64::from(cfg.steal_min.max(1)),
        adapt_generation: generation,
        ..BatchTelemetry::default()
    };
    if workers == 1 {
        let outcomes = with_interp_stack(stack_size, || {
            work.iter().map(|job| run_job(job, policy, &f)).collect()
        });
        record_batch(&telemetry);
        observe(&telemetry);
        return (outcomes, telemetry);
    }

    let n = u32::try_from(work.len()).expect("batch too large for the range scheduler");
    let chunk = telemetry.chunk as u32;
    let steal_min = telemetry.steal_min as u32;
    // Even contiguous partition: worker w owns [w*n/W, (w+1)*n/W).
    let ranges: Vec<StealRange> = (0..workers)
        .map(|w| {
            let lo = (w as u64 * n as u64 / workers as u64) as u32;
            let hi = ((w as u64 + 1) * n as u64 / workers as u64) as u32;
            StealRange::new(lo, hi)
        })
        .collect();
    let counters = SchedCounters::default();

    let mut indexed: Vec<(usize, Result<R, JobError>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let ranges = &ranges;
                let counters = &counters;
                let f = &f;
                s.spawn(move || {
                    with_interp_stack(stack_size, || {
                        let mut mine = Vec::new();
                        'work: loop {
                            // Owner side: drain our own range chunk by chunk.
                            while let Some((a, b)) = ranges[w].claim_front(chunk) {
                                counters.chunks_claimed.fetch_add(1, Ordering::Relaxed);
                                for i in a..b {
                                    let job = &work[i as usize];
                                    mine.push((i as usize, run_job(job, policy, f)));
                                }
                            }
                            // Thief side: adopt the back half of the first
                            // victim with work left, then go back to
                            // owner-side claiming (the adopted block is
                            // itself stealable by others).
                            for off in 1..workers {
                                let victim = (w + off) % workers;
                                if let Some((a, b)) = ranges[victim].steal_back(steal_min) {
                                    counters.steals.fetch_add(1, Ordering::Relaxed);
                                    counters
                                        .stolen_jobs
                                        .fetch_add(u64::from(b - a), Ordering::Relaxed);
                                    ranges[w].adopt(a, b);
                                    continue 'work;
                                }
                            }
                            // Every range is empty: all indices are claimed
                            // (by us or by workers still finishing theirs).
                            break;
                        }
                        mine
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| {
                // Job panics are caught inside `run_job`; a worker can only
                // die from a harness bug outside any job boundary.
                h.join().expect("batch worker died outside a job boundary")
            })
            .collect()
    });
    indexed.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(indexed.len(), work.len(), "every job claimed exactly once");

    telemetry.steals = counters.steals.load(Ordering::Relaxed);
    telemetry.stolen_jobs = counters.stolen_jobs.load(Ordering::Relaxed);
    telemetry.chunks_claimed = counters.chunks_claimed.load(Ordering::Relaxed);
    record_batch(&telemetry);
    observe(&telemetry);
    (indexed.into_iter().map(|(_, r)| r).collect(), telemetry)
}

/// Feeds one finished batch to the adaptive tuner (no-ops unless
/// `--adapt on`).
fn observe(t: &BatchTelemetry) {
    adapt::observe_batch(&adapt::BatchObservation {
        jobs: t.jobs,
        workers: t.workers,
        chunk: t.chunk,
        steals: t.steals,
        chunks_claimed: t.chunks_claimed,
    });
    let cache = lowered_cache_stats();
    adapt::observe_cache(&adapt::CacheObservation {
        hits: cache.hits,
        misses: cache.misses,
        evictions: cache.evictions,
    });
}

/// [`run_batch_outcomes_with_telemetry`] minus the telemetry — the
/// historical per-job-outcome entry point.
pub fn run_batch_outcomes<J, R, F>(
    jobs: usize,
    work: &[J],
    policy: &BatchPolicy,
    f: F,
) -> Vec<Result<R, JobError>>
where
    J: Sync,
    R: Send,
    F: Fn(&J, u32) -> R + Sync,
{
    run_batch_outcomes_with_telemetry(jobs, work, policy, f).0
}

/// Infallible wrapper over [`run_batch_outcomes`] for callers whose jobs
/// are not supposed to fail (the figure generators).
///
/// # Panics
///
/// If any job failed, panics **after the whole batch has completed** with
/// an aggregate message naming the first failure — failures surface as
/// one harness error instead of a half-finished batch.
pub fn run_batch<J, R, F>(jobs: usize, work: &[J], f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    let outcomes = run_batch_outcomes(jobs, work, &BatchPolicy::default(), |job, _| f(job));
    let total = outcomes.len();
    let mut failed = 0usize;
    let mut first: Option<(usize, JobError)> = None;
    let mut results = Vec::with_capacity(total);
    for (i, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok(r) => results.push(r),
            Err(e) => {
                failed += 1;
                if first.is_none() {
                    first = Some((i, e));
                }
            }
        }
    }
    if let Some((i, e)) = first {
        panic!("{failed} of {total} batch jobs failed; first failure (job {i}): {e}");
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_results_come_back_in_job_order() {
        let work: Vec<usize> = (0..100).collect();
        let seq = run_batch(1, &work, |&n| n * n);
        let par = run_batch(8, &work, |&n| n * n);
        assert_eq!(seq, par);
        assert_eq!(seq[17], 289);
    }

    #[test]
    fn batch_handles_empty_and_single_job_lists() {
        let none: Vec<u32> = Vec::new();
        assert!(run_batch(4, &none, |&n| n).is_empty());
        assert_eq!(run_batch(4, &[7u32], |&n| n + 1), vec![8]);
    }

    #[test]
    fn steal_range_claims_and_steals_disjoint_blocks() {
        let r = StealRange::new(0, 10);
        assert_eq!(r.claim_front(3), Some((0, 3)));
        // Remainder 3..10 (7 jobs); the thief takes the back ceil-half.
        assert_eq!(r.steal_back(1), Some((6, 10)));
        assert_eq!(r.claim_front(5), Some((3, 6)));
        assert_eq!(r.claim_front(1), None);
        assert_eq!(r.steal_back(1), None);

        // min_take covers the whole remainder: the thief drains it.
        let r = StealRange::new(4, 6);
        assert_eq!(r.steal_back(8), Some((4, 6)));
        assert_eq!(r.claim_front(1), None);
    }

    #[test]
    fn skewed_batches_steal_and_stay_in_order() {
        // Worker 0's range starts with slow jobs; with chunk 1 the other
        // workers drain their ranges and then steal the slow tail. The
        // telemetry must show steals, and the output must stay in job
        // order with every index present exactly once.
        let prev = adapt::snapshot().1.chunk;
        adapt::pin_chunk(1);
        let work: Vec<usize> = (0..48).collect();
        let (outcomes, telemetry) =
            run_batch_outcomes_with_telemetry(4, &work, &BatchPolicy::default(), |&n, _| {
                if n < 6 {
                    std::thread::sleep(Duration::from_millis(20));
                }
                n * 3
            });
        adapt::pin_chunk(prev);
        assert_eq!(outcomes.len(), work.len());
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.as_ref().unwrap(), &(i * 3));
        }
        assert_eq!(telemetry.jobs, 48);
        assert_eq!(telemetry.workers, 4);
        assert!(
            telemetry.steals > 0,
            "skewed chunk-1 batch should steal: {telemetry:?}"
        );
        assert!(telemetry.stolen_jobs >= telemetry.steals);
        // With chunk 1 every job is one owner-side grab (stolen blocks are
        // re-claimed chunk by chunk after adoption).
        assert_eq!(telemetry.chunks_claimed, 48);
    }

    #[test]
    fn a_panicking_job_fails_alone_and_the_batch_completes() {
        let work: Vec<usize> = (0..32).collect();
        for jobs in [1, 8] {
            let outcomes = run_batch_outcomes(jobs, &work, &BatchPolicy::default(), |&n, _| {
                assert!(n != 13, "unlucky job");
                n * 2
            });
            assert_eq!(outcomes.len(), work.len());
            for (i, outcome) in outcomes.iter().enumerate() {
                if i == 13 {
                    let err = outcome.as_ref().unwrap_err();
                    assert!(err.message.contains("unlucky job"), "{err}");
                    assert_eq!(err.attempts, 1);
                } else {
                    assert_eq!(outcome.as_ref().unwrap(), &(i * 2));
                }
            }
        }
    }

    #[test]
    fn retries_rerun_the_job_and_record_the_attempt_count() {
        use std::sync::atomic::AtomicU32;
        // A job that fails on its first two attempts and succeeds on the
        // third; with one retry it still fails, with two it recovers.
        let tries = AtomicU32::new(0);
        let policy = BatchPolicy {
            retries: 1,
            ..BatchPolicy::default()
        };
        let outcomes = run_batch_outcomes(1, &[()], &policy, |_, _| {
            let t = tries.fetch_add(1, Ordering::Relaxed);
            assert!(t >= 2, "flaky");
            t
        });
        let err = outcomes[0].as_ref().unwrap_err();
        assert_eq!(err.attempts, 2);
        assert!(err.message.contains("flaky"));

        tries.store(0, Ordering::Relaxed);
        let policy = BatchPolicy {
            retries: 2,
            ..BatchPolicy::default()
        };
        let outcomes = run_batch_outcomes(1, &[()], &policy, |_, attempt| {
            let t = tries.fetch_add(1, Ordering::Relaxed);
            assert!(t >= 2, "flaky");
            attempt
        });
        assert_eq!(outcomes[0], Ok(2), "succeeds on the third attempt");
    }

    #[test]
    fn a_blown_deadline_is_recorded_as_a_failure() {
        let policy = BatchPolicy {
            deadline: Some(Duration::ZERO),
            ..BatchPolicy::default()
        };
        let outcomes = run_batch_outcomes(1, &[()], &policy, |_, _| {
            std::thread::sleep(Duration::from_millis(2));
        });
        let err = outcomes[0].as_ref().unwrap_err();
        assert!(err.message.contains("deadline"), "{err}");

        // A generous deadline passes.
        let policy = BatchPolicy {
            deadline: Some(Duration::from_secs(3600)),
            ..BatchPolicy::default()
        };
        let outcomes = run_batch_outcomes(1, &[()], &policy, |_, _| 5);
        assert_eq!(outcomes[0], Ok(5));
    }

    #[test]
    #[should_panic(expected = "1 of 3 batch jobs failed")]
    fn run_batch_aggregates_failures_after_finishing() {
        use std::sync::atomic::AtomicUsize;
        static COMPLETED: AtomicUsize = AtomicUsize::new(0);
        let work = [0usize, 1, 2];
        let _ = std::panic::catch_unwind(|| {
            run_batch(1, &work, |&n| {
                assert!(n != 1, "boom");
                COMPLETED.fetch_add(1, Ordering::Relaxed);
                n
            })
        })
        .map_err(|p| {
            // Every non-failing job ran even though job 1 panicked.
            assert_eq!(COMPLETED.load(Ordering::Relaxed), 2);
            std::panic::resume_unwind(p)
        });
    }

    #[test]
    fn cache_returns_the_same_program_for_the_same_source() {
        let src = "class Main { int main() { return 6 * 7; } }";
        let before = lowered_cache_stats();
        let a = lowered_cached("unit-test", src);
        let b = lowered_cached("unit-test", src);
        assert!(Arc::ptr_eq(&a, &b));
        let after = lowered_cache_stats();
        assert!(after.hits > before.hits, "{before:?} -> {after:?}");
    }

    #[test]
    fn cache_evicts_oldest_entries_in_shard_past_the_cap() {
        // Fill the *first entry's shard* past its per-shard bound, then
        // confirm the first entry was evicted (a repeat lookup compiles a
        // fresh Arc) while a recent same-shard entry is still shared.
        // Cross-shard entries never evict each other.
        let src_for = |n: usize| format!("class Main {{ int main() {{ return {n}; }} }}");
        let first_src = src_for(9_000_000);
        let shard = cache_shard_of(&first_src);
        let first = lowered_cached("evict-test", &first_src);
        let per_shard = (LOWERED_CACHE_CAP / LOWERED_CACHE_SHARDS).max(1);
        let mut same_shard = Vec::new();
        let mut n = 9_100_000;
        while same_shard.len() < per_shard {
            let src = src_for(n);
            if cache_shard_of(&src) == shard {
                same_shard.push(src);
            }
            n += 1;
        }
        for src in &same_shard {
            let _ = lowered_cached("evict-test", src);
        }
        let last_src = same_shard.last().unwrap();
        let last = lowered_cached("evict-test", last_src);
        let last_again = lowered_cached("evict-test", last_src);
        assert!(Arc::ptr_eq(&last, &last_again), "recent entry still cached");
        let first_again = lowered_cached("evict-test", &first_src);
        assert!(
            !Arc::ptr_eq(&first, &first_again),
            "oldest same-shard entry should have been evicted"
        );
        assert!(lowered_cache_stats().evictions > 0);
    }

    #[test]
    fn sched_totals_render_valid_telemetry_json() {
        let work: Vec<usize> = (0..16).collect();
        let _ = run_batch(2, &work, |&n| n);
        let totals = sched_totals();
        assert!(totals.batches > 0);
        assert!(totals.jobs >= 16);
        let json = totals.to_json();
        assert!(ent_runtime::json_is_valid(&json), "{json}");
        for needle in [
            "\"schema\": \"ent-batch-telemetry/1\"",
            "\"steals\"",
            "\"chunks_claimed\"",
            "\"adapt\"",
            "\"cache\"",
            "\"shards\"",
            "\"entries\"",
            "\"shard_entries\": [",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn try_lowered_cached_shares_and_reports_errors() {
        let src = "class Main { int main() { return 7; } }";
        let a = try_lowered_cached(src).expect("valid program compiles");
        let b = try_lowered_cached(src).expect("second lookup hits");
        assert!(Arc::ptr_eq(&a, &b), "cache shares the lowered program");

        let before = lowered_cache_stats();
        let err = try_lowered_cached("class Main { int main() { return x; } }")
            .expect_err("unbound variable should fail to compile");
        assert!(!err.is_empty(), "error is a rendered diagnostic");
        let after = lowered_cache_stats();
        assert_eq!(
            before.entries, after.entries,
            "failed compiles are never cached"
        );
    }

    #[test]
    fn retry_backoff_schedule_is_pinned() {
        // No base → immediate retries, the historical behavior.
        let immediate = BatchPolicy {
            retries: 3,
            ..BatchPolicy::default()
        };
        assert_eq!(retry_backoff(&immediate, 1), None);

        let policy = BatchPolicy {
            retries: 4,
            backoff_base: Some(Duration::from_millis(10)),
            backoff_seed: 42,
            ..BatchPolicy::default()
        };
        // Attempt 0 is the first try — never waits.
        assert_eq!(retry_backoff(&policy, 0), None);
        // The schedule is a pure function of (policy, attempt): pin it.
        let schedule: Vec<u64> = (1..=4)
            .map(|a| retry_backoff(&policy, a).unwrap().as_nanos() as u64)
            .collect();
        assert_eq!(
            schedule,
            vec![8_640_893, 12_133_587, 21_371_617, 69_207_970],
            "jittered exponential schedule changed"
        );
        // Exponential envelope with jitter in [0.5, 1.0]: each delay sits
        // inside [base * 2^(k-1) / 2, base * 2^(k-1)].
        for (i, &nanos) in schedule.iter().enumerate() {
            let ceiling = 10_000_000u64 << i;
            assert!(nanos >= ceiling / 2 && nanos <= ceiling, "attempt {i}");
        }
        // Same seed → same schedule; different seed → different jitter.
        let replay: Vec<u64> = (1..=4)
            .map(|a| retry_backoff(&policy, a).unwrap().as_nanos() as u64)
            .collect();
        assert_eq!(schedule, replay);
        let other = BatchPolicy {
            backoff_seed: 43,
            ..policy.clone()
        };
        assert_ne!(
            retry_backoff(&other, 1),
            retry_backoff(&policy, 1),
            "seed participates in the jitter"
        );
    }

    #[test]
    fn run_job_isolated_traps_panics_and_retries() {
        let calls = AtomicU64::new(0);
        let policy = BatchPolicy {
            retries: 2,
            ..BatchPolicy::default()
        };
        let out = run_job_isolated(&policy, |attempt| {
            calls.fetch_add(1, Ordering::Relaxed);
            if attempt < 2 {
                panic!("transient failure on attempt {attempt}");
            }
            attempt
        });
        assert_eq!(out.unwrap(), 2, "third attempt succeeds");
        assert_eq!(calls.load(Ordering::Relaxed), 3);

        let err = run_job_isolated(&policy, |_| -> u32 { panic!("always") })
            .expect_err("exhausted retries surface the panic");
        assert_eq!(err.attempts, 3);
        assert!(err.message.contains("always"));
    }

    #[test]
    fn effective_chunk_pins_and_scales() {
        assert_eq!(effective_chunk(17, 1000, 4), 17);
        assert_eq!(effective_chunk(0, 8, 8), 1);
        assert_eq!(effective_chunk(0, 64, 4), 2);
        assert_eq!(effective_chunk(0, 1_000_000, 2), 64);
    }

    #[test]
    fn resolve_jobs_expands_zero() {
        assert!(resolve_jobs(3) == 3);
        assert!(resolve_jobs(0) >= 1);
    }
}
