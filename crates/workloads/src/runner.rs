//! Executes benchmark programs under the experiment configurations of §6.
//!
//! Each experiment shape comes in two layers:
//!
//! * `prepare_e*` builds (or fetches from the engine's compile-once
//!   cache) the benchmark's [`PreparedProgram`] — the lowered program
//!   plus the platform it runs on;
//! * `run_e*_prepared` executes one configuration against a prepared
//!   program. These are what the batch engine's workers call: a run
//!   costs zero compiles and zero thread spawns (workers already sit on
//!   big interpreter stacks).
//!
//! The `run_e*` convenience wrappers (prepare + run in one call) remain
//! for one-off runs and tests.

use std::sync::Arc;

use ent_energy::{FaultPlan, Platform, PlatformKind};
use ent_runtime::adapt;
use ent_runtime::{
    run_lowered, AdaptMode, Enforcement, Engine, LoweredProgram, RunResult, RuntimeConfig, TierUp,
};

use crate::engine::{
    default_enforcement, default_engine_for, default_tier_up, lowered_cached, source_fingerprint,
};
use crate::programs::{e1_program, e2_program, e3_program};
use crate::settings::{battery_for_boot, BenchmarkSpec, E3Settings};

/// Instantiates the simulator platform for a paper system.
pub fn platform_of(kind: PlatformKind) -> Platform {
    match kind {
        PlatformKind::SystemA => Platform::system_a(),
        PlatformKind::SystemB => Platform::system_b(),
        PlatformKind::SystemC => Platform::system_c(),
    }
}

/// The platform a benchmark actually runs on. On System C the paper
/// attributes the higher (and benchmark-dependent) deviation to external
/// factors — internet response, touch replay — so each App gets its own
/// noise level, spread around the platform base.
pub fn platform_for(spec: &BenchmarkSpec, kind: PlatformKind) -> Platform {
    let mut platform = platform_of(kind);
    if kind == PlatformKind::SystemC {
        let hash = spec
            .name
            .bytes()
            .fold(0u64, |h, b| h.wrapping_mul(167).wrapping_add(b as u64));
        let factor = 0.55 + (hash % 10) as f64 * 0.17; // 0.55 … 2.08
        platform.noise_rsd *= factor;
    }
    platform
}

/// A benchmark program compiled and lowered once, ready to run any number
/// of configurations — concurrently, if the caller likes (the lowered
/// program is `Send + Sync` and shared by `Arc`).
#[derive(Clone, Debug)]
pub struct PreparedProgram {
    /// Benchmark name (for panic messages).
    pub name: &'static str,
    /// The platform this program was generated against and runs on.
    pub platform: Platform,
    /// The shared lowered program.
    pub lowered: Arc<LoweredProgram>,
    /// The evaluation engine every run of this program uses (captured
    /// from [`crate::default_engine_for`] at prepare time, so under
    /// `--adapt on` each program gets the tuner's *per-program* engine
    /// preference). Bytecode lives in the shared `LoweredProgram`,
    /// compiled at most once per method no matter how many runs,
    /// threads, or engines touch the program.
    pub engine: Engine,
    /// The tier-up threshold every run of this program uses (captured
    /// from [`crate::default_tier_up`] at prepare time). Only the
    /// threaded engine reads it.
    pub tier_up: TierUp,
    /// The program's source fingerprint — the sharded program-cache key,
    /// also the key runs report per-program engine timing under.
    pub fingerprint: u64,
    /// The enforcement strategy every run of this program uses (captured
    /// from [`crate::default_enforcement`] at prepare time).
    pub enforcement: Enforcement,
}

impl PreparedProgram {
    /// Runs one configuration on the prepared program's own platform.
    pub fn run(&self, config: RuntimeConfig) -> RunResult {
        self.run_on(self.platform.clone(), config)
    }

    /// Runs one configuration on an explicit platform (the Figure 6
    /// overhead pair runs the tagged leg on the base platform). The
    /// prepared engine overrides whatever the config carries, so every
    /// `run_e*_prepared` entry point honors the harness `--engine` flag.
    ///
    /// Under `--adapt on`, each run's wall time and step count feed the
    /// tuner's per-engine timing model, keyed by this program's source
    /// fingerprint ([`adapt::observe_engine_for`]) — value-neutral
    /// telemetry that can steer the engine choice of *future* prepares,
    /// never the result of this run.
    pub fn run_on(&self, platform: Platform, config: RuntimeConfig) -> RunResult {
        let config = RuntimeConfig {
            engine: self.engine,
            enforcement: self.enforcement,
            tier_up: self.tier_up,
            ..config
        };
        if adapt::mode() == AdaptMode::On {
            let started = std::time::Instant::now();
            let result = run_lowered(&self.lowered, platform, config);
            let wall = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            adapt::observe_engine_for(self.fingerprint, self.engine, result.stats.steps, wall);
            result
        } else {
            run_lowered(&self.lowered, platform, config)
        }
    }

    /// Returns the same prepared program pinned to an explicit engine
    /// (the differential harness runs one program under both).
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Returns the same prepared program pinned to an explicit enforcement
    /// strategy (the differential harnesses sweep one program across the
    /// strategy × engine grid).
    #[must_use]
    pub fn with_enforcement(mut self, enforcement: Enforcement) -> Self {
        self.enforcement = enforcement;
        self
    }
}

/// The outcome of one experiment run.
#[derive(Clone, Debug, PartialEq)]
pub struct Outcome {
    /// Energy consumed, in joules (with measurement noise).
    pub energy_j: f64,
    /// Virtual runtime in seconds.
    pub time_s: f64,
    /// Whether an `EnergyException` was raised during the run (for silent
    /// runs: whether one *would* have been raised).
    pub exception: bool,
    /// Snapshot checks whose produced mode fell outside the declared
    /// bounds (counted even when running silent).
    pub snapshot_failures: u64,
    /// Dynamic waterfall checks that failed at a message send (the other
    /// cause of `EnergyException`s).
    pub dfall_failures: u64,
    /// Shallow checks that failed under the transient enforcement
    /// strategy (the counterpart of the two guarded counters above;
    /// always 0 under guarded).
    pub transient_failures: u64,
}

fn to_outcome(name: &str, result: RunResult) -> Outcome {
    if let Err(e) = &result.value {
        panic!("benchmark `{name}` failed at runtime: {e}");
    }
    Outcome {
        energy_j: result.measurement.energy_j,
        time_s: result.measurement.time_s,
        exception: result.stats.energy_exceptions > 0,
        snapshot_failures: result.stats.snapshot_failures,
        dfall_failures: result.stats.dfall_failures,
        transient_failures: result.stats.transient_failures,
    }
}

/// Prepares a benchmark's E1 "battery-exception" program for a system and
/// workload mode (compile-once cached).
pub fn prepare_e1(spec: &BenchmarkSpec, system: PlatformKind, workload: usize) -> PreparedProgram {
    let platform = platform_for(spec, system);
    let src = e1_program(spec, &platform, workload);
    let fingerprint = source_fingerprint(&src);
    PreparedProgram {
        name: spec.name,
        lowered: lowered_cached(spec.name, &src),
        platform,
        engine: default_engine_for(fingerprint),
        tier_up: default_tier_up(),
        enforcement: default_enforcement(),
        fingerprint,
    }
}

/// Runs one E1 configuration against a prepared program: a boot mode
/// (0–2), with or without the runtime type system ("silent").
///
/// # Panics
///
/// Panics if the run stops with a runtime error — a harness bug, not a
/// measurement.
pub fn run_e1_prepared(prog: &PreparedProgram, boot: usize, silent: bool, seed: u64) -> Outcome {
    let config = RuntimeConfig {
        silent,
        battery_level: battery_for_boot(boot),
        seed,
        ..RuntimeConfig::default()
    };
    to_outcome(prog.name, prog.run(config))
}

/// The outcome of one fault-injected experiment run. Unlike [`Outcome`],
/// a runtime error is a *recorded result*, not a harness panic — degraded
/// programs may legitimately fail, and chaos sweeps chart those failures.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosOutcome {
    /// The regular measurement, or the runtime error message.
    pub result: Result<Outcome, String>,
    /// Sensor reads the injector faulted.
    pub sensor_faults: u64,
    /// Faulted reads served from last-known-good within the staleness
    /// bound.
    pub stale_reads: u64,
    /// Mode decisions forced to the conservative bound because no
    /// fresh-enough reading existed.
    pub degraded_decisions: u64,
}

fn to_chaos_outcome(result: RunResult) -> ChaosOutcome {
    ChaosOutcome {
        result: match &result.value {
            Ok(_) => Ok(Outcome {
                energy_j: result.measurement.energy_j,
                time_s: result.measurement.time_s,
                exception: result.stats.energy_exceptions > 0,
                snapshot_failures: result.stats.snapshot_failures,
                dfall_failures: result.stats.dfall_failures,
                transient_failures: result.stats.transient_failures,
            }),
            Err(e) => Err(e.to_string()),
        },
        sensor_faults: result.stats.sensor_faults,
        stale_reads: result.stats.stale_reads,
        degraded_decisions: result.stats.degraded_decisions,
    }
}

/// Runs one E1 configuration with a fault plan installed. `faults: None`
/// is the control leg: the exact fault-off configuration of
/// [`run_e1_prepared`], differing only in that runtime errors are
/// recorded instead of panicking.
pub fn run_e1_chaos_prepared(
    prog: &PreparedProgram,
    boot: usize,
    silent: bool,
    seed: u64,
    faults: Option<FaultPlan>,
    fault_seed: u64,
) -> ChaosOutcome {
    let config = RuntimeConfig {
        silent,
        battery_level: battery_for_boot(boot),
        seed,
        faults,
        fault_seed,
        ..RuntimeConfig::default()
    };
    to_chaos_outcome(prog.run(config))
}

/// Runs one E1 "battery-exception" configuration: a boot mode (0–2), a
/// workload mode (0–2), with or without the runtime type system
/// ("silent").
///
/// # Panics
///
/// Panics if the generated benchmark program fails to compile or stops
/// with a runtime error — both indicate a bug in the harness, not a
/// measurement.
pub fn run_e1(
    spec: &BenchmarkSpec,
    system: PlatformKind,
    boot: usize,
    workload: usize,
    silent: bool,
    seed: u64,
) -> Outcome {
    run_e1_prepared(&prepare_e1(spec, system, workload), boot, silent, seed)
}

/// Prepares a benchmark's E2 "battery-casing" program for a system and
/// workload mode (compile-once cached).
pub fn prepare_e2(spec: &BenchmarkSpec, system: PlatformKind, workload: usize) -> PreparedProgram {
    let platform = platform_for(spec, system);
    let src = e2_program(spec, &platform, workload);
    let fingerprint = source_fingerprint(&src);
    PreparedProgram {
        name: spec.name,
        lowered: lowered_cached(spec.name, &src),
        platform,
        engine: default_engine_for(fingerprint),
        tier_up: default_tier_up(),
        enforcement: default_enforcement(),
        fingerprint,
    }
}

/// Runs one E2 configuration against a prepared program: the boot mode
/// selects QoS through mode cases.
pub fn run_e2_prepared(prog: &PreparedProgram, boot: usize, seed: u64) -> Outcome {
    let config = RuntimeConfig {
        battery_level: battery_for_boot(boot),
        seed,
        ..RuntimeConfig::default()
    };
    to_outcome(prog.name, prog.run(config))
}

/// Runs one E2 "battery-casing" configuration: the boot mode selects QoS
/// through mode cases; Figure 10 uses the large workload.
pub fn run_e2(
    spec: &BenchmarkSpec,
    system: PlatformKind,
    boot: usize,
    workload: usize,
    seed: u64,
) -> Outcome {
    run_e2_prepared(&prepare_e2(spec, system, workload), boot, seed)
}

/// Prepares a benchmark's E3 "temperature-casing" program on System A.
/// `ent == false` is the plain-Java variant.
pub fn prepare_e3(
    spec: &BenchmarkSpec,
    tasks: usize,
    task_seconds: f64,
    ent: bool,
) -> PreparedProgram {
    let platform = platform_of(PlatformKind::SystemA);
    let settings = E3Settings::default();
    let src = e3_program(spec, &platform, &settings, tasks, task_seconds, ent);
    let fingerprint = source_fingerprint(&src);
    PreparedProgram {
        name: spec.name,
        lowered: lowered_cached(spec.name, &src),
        platform,
        engine: default_engine_for(fingerprint),
        tier_up: default_tier_up(),
        enforcement: default_enforcement(),
        fingerprint,
    }
}

/// Runs a prepared E3 program and returns the sampled `(time, °C)` trace.
pub fn run_e3_prepared(prog: &PreparedProgram, seed: u64) -> Vec<(f64, f64)> {
    let config = RuntimeConfig {
        seed,
        trace_interval_s: Some(1.0),
        ..RuntimeConfig::default()
    };
    let result = prog.run(config);
    if let Err(e) = &result.value {
        panic!("benchmark `{}` E3 failed at runtime: {e}", prog.name);
    }
    result.trace
}

/// Runs one E3 "temperature-casing" configuration on System A and returns
/// the sampled `(time, °C)` trace. `ent == false` is the plain-Java run.
pub fn run_e3(
    spec: &BenchmarkSpec,
    tasks: usize,
    task_seconds: f64,
    ent: bool,
    seed: u64,
) -> Vec<(f64, f64)> {
    run_e3_prepared(&prepare_e3(spec, tasks, task_seconds, ent), seed)
}

/// Runs a prepared E2 program twice — once with runtime tagging modeled
/// (on the base platform), once without (on the benchmark's platform) —
/// and returns `(tagged_energy, baseline_energy)`: the Figure 6 overhead
/// measurement.
pub fn run_overhead_pair_prepared(
    prog: &PreparedProgram,
    system: PlatformKind,
    seed: u64,
) -> (f64, f64) {
    let base = RuntimeConfig {
        battery_level: battery_for_boot(1),
        seed,
        ..RuntimeConfig::default()
    };
    let tagged = prog.run_on(
        platform_of(system),
        RuntimeConfig {
            tagging: true,
            ..base.clone()
        },
    );
    let plain = prog.run(RuntimeConfig {
        tagging: false,
        seed: seed + 1000,
        ..base
    });
    (tagged.measurement.energy_j, plain.measurement.energy_j)
}

/// Runs the benchmark in its E2 shape with the default (managed) workload
/// twice — once with runtime tagging modeled, once without — and returns
/// `(tagged_energy, baseline_energy)`. This is the Figure 6 overhead
/// measurement.
pub fn run_overhead_pair(spec: &BenchmarkSpec, system: PlatformKind, seed: u64) -> (f64, f64) {
    run_overhead_pair_prepared(&prepare_e2(spec, system, 1), system, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::settings::{all_benchmarks, benchmark};
    use ent_energy::PlatformKind::*;

    #[test]
    fn e1_exceptions_fire_exactly_when_workload_exceeds_boot() {
        let spec = benchmark("jspider").unwrap();
        for boot in 0..3 {
            for workload in 0..3 {
                let out = run_e1(&spec, SystemA, boot, workload, false, 7);
                assert_eq!(
                    out.exception,
                    workload > boot,
                    "boot {boot}, workload {workload}"
                );
                // The split counters must agree with the collapsed flag,
                // whichever strategy's counters carry the blame.
                assert_eq!(
                    out.exception,
                    out.snapshot_failures + out.dfall_failures + out.transient_failures > 0,
                    "boot {boot}, workload {workload}: {out:?}"
                );
            }
        }
    }

    #[test]
    fn e1_violations_enter_as_snapshot_failures() {
        // Every E1 violation is first a failed snapshot check. A checked
        // run aborts right there, so the waterfall never fails
        // (Corollary 1). A silent run suppresses the check and carries
        // the over-mode object forward, so later sends may additionally
        // record dfall failures — but the snapshot counter still leads.
        // This is guarded blame by definition, so the strategy is pinned
        // rather than inherited from `ENT_ENFORCE`.
        let spec = benchmark("sunflow").unwrap();
        let prog = prepare_e1(&spec, SystemA, 2).with_enforcement(Enforcement::Guarded);
        let checked = run_e1_prepared(&prog, 0, false, 9);
        assert!(checked.snapshot_failures > 0, "{checked:?}");
        assert_eq!(checked.dfall_failures, 0, "{checked:?}");

        let silent = run_e1_prepared(&prog, 0, true, 9);
        assert!(silent.snapshot_failures > 0, "{silent:?}");
    }

    #[test]
    fn e1_violations_blame_the_check_site_under_transient() {
        // The transient twin: the same violation raises, but blame lands
        // in the transient counter and the guarded split stays empty.
        let spec = benchmark("sunflow").unwrap();
        let prog = prepare_e1(&spec, SystemA, 2).with_enforcement(Enforcement::Transient);
        let checked = run_e1_prepared(&prog, 0, false, 9);
        assert!(checked.exception, "{checked:?}");
        assert!(checked.transient_failures > 0, "{checked:?}");
        assert_eq!(checked.snapshot_failures, 0, "{checked:?}");
        assert_eq!(checked.dfall_failures, 0, "{checked:?}");
    }

    #[test]
    fn e1_ent_saves_energy_versus_silent_on_violations() {
        let spec = benchmark("sunflow").unwrap();
        // energy_saver boot, full_throttle workload: the paper's largest
        // savings case.
        let ent = run_e1(&spec, SystemA, 0, 2, false, 3);
        let silent = run_e1(&spec, SystemA, 0, 2, true, 3);
        assert!(ent.exception && silent.exception);
        assert!(
            silent.energy_j > 1.5 * ent.energy_j,
            "silent {} vs ent {}",
            silent.energy_j,
            ent.energy_j
        );
    }

    #[test]
    fn chaos_control_leg_matches_the_fault_off_runner() {
        let spec = benchmark("jspider").unwrap();
        let prog = prepare_e1(&spec, SystemA, 1);
        let plain = run_e1_prepared(&prog, 1, false, 7);
        let control = run_e1_chaos_prepared(&prog, 1, false, 7, None, 0);
        assert_eq!(control.result, Ok(plain));
        assert_eq!(control.sensor_faults, 0);
        assert_eq!(control.stale_reads, 0);
        assert_eq!(control.degraded_decisions, 0);
    }

    #[test]
    fn chaos_runs_are_deterministic_and_record_faults() {
        let spec = benchmark("jspider").unwrap();
        let prog = prepare_e1(&spec, SystemA, 1);
        let a = run_e1_chaos_prepared(&prog, 1, false, 7, Some(FaultPlan::chaos()), 11);
        let b = run_e1_chaos_prepared(&prog, 1, false, 7, Some(FaultPlan::chaos()), 11);
        assert_eq!(a, b);
        assert!(a.sensor_faults > 0, "{a:?}");
    }

    #[test]
    fn total_dropout_degrades_e1_instead_of_crashing_it() {
        // E1 programs eliminate their mode cases at explicit targets, so
        // even an App degraded to the conservative bound completes.
        let spec = benchmark("jspider").unwrap();
        let prog = prepare_e1(&spec, SystemA, 1);
        let plan = FaultPlan {
            dropout_rate: 1.0,
            ..FaultPlan::default()
        };
        let r = run_e1_chaos_prepared(&prog, 2, false, 7, Some(plan), 3);
        assert!(r.result.is_ok(), "{r:?}");
        assert!(r.degraded_decisions > 0, "{r:?}");
    }

    #[test]
    fn prepared_runs_match_the_convenience_wrappers() {
        let spec = benchmark("crypto").unwrap();
        let prog = prepare_e1(&spec, SystemA, 2);
        let prepared = run_e1_prepared(&prog, 1, false, 13);
        let direct = run_e1(&spec, SystemA, 1, 2, false, 13);
        assert_eq!(prepared, direct);
    }

    #[test]
    fn e2_energy_is_mode_proportional() {
        for name in ["pagerank", "crypto", "video", "newpipe"] {
            let spec = benchmark(name).unwrap();
            let system = spec.primary_platform();
            let prog = prepare_e2(&spec, system, 2);
            let es = run_e2_prepared(&prog, 0, 11).energy_j;
            let mg = run_e2_prepared(&prog, 1, 11).energy_j;
            let ft = run_e2_prepared(&prog, 2, 11).energy_j;
            assert!(es < mg && mg < ft, "{name}: {es} < {mg} < {ft}");
        }
    }

    #[test]
    fn time_fixed_benchmarks_have_fixed_duration_across_boots() {
        let spec = benchmark("video").unwrap();
        let es = run_e2(&spec, SystemB, 0, 2, 5);
        let ft = run_e2(&spec, SystemB, 2, 2, 5);
        let rel = (es.time_s - ft.time_s).abs() / ft.time_s;
        assert!(
            rel < 0.02,
            "durations should match: {} vs {}",
            es.time_s,
            ft.time_s
        );
        assert!(es.energy_j < ft.energy_j);
    }

    #[test]
    fn batch_benchmarks_scale_time_with_mode() {
        let spec = benchmark("pagerank").unwrap();
        let es = run_e2(&spec, SystemA, 0, 2, 5);
        let ft = run_e2(&spec, SystemA, 2, 2, 5);
        assert!(es.time_s < ft.time_s);
    }

    #[test]
    fn e3_ent_hovers_while_java_climbs() {
        let spec = benchmark("xalan").unwrap();
        let ent = run_e3(&spec, 260, 0.18, true, 1);
        let java = run_e3(&spec, 260, 0.18, false, 1);
        let peak = |t: &[(f64, f64)]| t.iter().map(|(_, c)| *c).fold(0.0, f64::max);
        let ent_peak = peak(&ent);
        let java_peak = peak(&java);
        assert!(
            java_peak > 65.0,
            "the Java run should cross the overheating threshold: {java_peak}"
        );
        assert!(
            ent_peak < java_peak - 3.0,
            "ENT should stay cooler: {ent_peak} vs {java_peak}"
        );
        // ENT's late-run temperatures hover around the hot threshold.
        let late: Vec<f64> = ent
            .iter()
            .filter(|(t, _)| *t > ent.last().unwrap().0 * 0.5)
            .map(|(_, c)| *c)
            .collect();
        let avg = late.iter().sum::<f64>() / late.len() as f64;
        assert!(
            (avg - 62.0).abs() < 6.0,
            "ENT should hover near the hot band: average {avg}"
        );
    }

    #[test]
    fn overhead_is_small_for_every_benchmark() {
        for spec in all_benchmarks() {
            let system = spec.primary_platform();
            let (tagged, baseline) = run_overhead_pair(&spec, system, 21);
            let pct = (tagged - baseline) / baseline * 100.0;
            assert!(
                pct.abs() < 8.0,
                "{}: overhead {pct:.2}% (tagged {tagged}, baseline {baseline})",
                spec.name
            );
        }
    }
}
