//! ENT program generators for the benchmark suite.
//!
//! Each benchmark is an ENT *program* (source text) built from its
//! [`BenchmarkSpec`], in the three shapes of §6.1:
//!
//! * **E1 "battery-exception"**: the workload object is snapshotted with an
//!   upper bound of the app's boot mode, so an oversized workload raises an
//!   `EnergyException`, caught by a handler that scales the quality of
//!   service down to the `energy_saver` settings;
//! * **E2 "battery-casing"**: mode cases select per-boot-mode QoS values,
//!   so the program adapts without exceptions;
//! * **E3 "temperature-casing"**: a `Sleep` object is snapshotted after
//!   each unit of work, its attributor reading the CPU temperature, and a
//!   mode case selecting the cooling interval.

use ent_energy::{Platform, WorkKind};

use crate::settings::{BenchmarkSpec, E3Settings, Shape};

/// The standard battery-threshold attributor body of §6.1 (boot modes at
/// 40 / 70 / 90 % battery).
fn battery_attributor() -> &'static str {
    "attributor {
        if (Ext.battery() >= 0.9) { return full_throttle; }
        else if (Ext.battery() >= 0.7) { return managed; }
        else { return energy_saver; }
      }"
}

const MODES_BLOCK: &str = "modes { energy_saver <= managed; managed <= full_throttle; }\n";

/// Work units per item at QoS factor 1.0, calibrated so the `managed`
/// workload at default QoS takes the spec's target seconds on `platform`.
pub fn unit_scale(spec: &BenchmarkSpec, platform: &Platform) -> f64 {
    match spec.shape {
        Shape::Batch { managed_seconds } => {
            let kind = WorkKind::parse(spec.work_kind);
            managed_seconds * platform.ops_per_sec / (spec.workload_items[1] * kind.ops_per_unit())
        }
        Shape::TimeFixed { .. } => 0.0,
    }
}

/// Work units for one full-utilization second of this benchmark's kind.
fn units_per_busy_second(spec: &BenchmarkSpec, platform: &Platform) -> f64 {
    platform.ops_per_sec / WorkKind::parse(spec.work_kind).ops_per_unit()
}

/// The duty-cycle multiplier a workload size applies on time-fixed
/// benchmarks (a 1080p stream keeps the encoder busier than 480p).
pub fn workload_duty_factor(spec: &BenchmarkSpec, workload: usize) -> f64 {
    (spec.workload_items[workload] / spec.workload_items[1]).powf(0.25)
}

/// Generates the E1 "battery-exception" program for a benchmark.
///
/// `workload` selects the workload mode (0 = energy_saver sized, 1 =
/// managed, 2 = full_throttle) per Figure 7.
pub fn e1_program(spec: &BenchmarkSpec, platform: &Platform, workload: usize) -> String {
    let (t1, t2) = spec.thresholds();
    let items = spec.workload_items[workload];
    let kind = spec.work_kind;
    let battery = battery_attributor();
    match spec.shape {
        Shape::Batch { .. } => {
            let scale = unit_scale(spec, platform);
            let q = spec.qos_factors;
            format!(
                "{MODES_BLOCK}
class Workload@mode<? <= W> {{
  double items;
  attributor {{
    if (this.items >= {t2:.4}) {{ return full_throttle; }}
    else if (this.items >= {t1:.4}) {{ return managed; }}
    else {{ return energy_saver; }}
  }}
  double size() {{ return this.items; }}
}}
class App@mode<? <= X> {{
  {battery}
  mcase<double> qos = mcase{{ energy_saver: {q0:.4}; managed: {q1:.4}; full_throttle: {q2:.4}; }};
  unit processChunks(double perChunk, int remaining, double quality) {{
    if (remaining <= 0) {{ return {{}}; }}
    Sim.work(\"{kind}\", perChunk * quality * {scale:.4});
    return this.processChunks(perChunk, remaining - 1, quality);
  }}
  unit process(double items, double quality) {{
    // Work proceeds in 60 chunks, as the real applications iterate over
    // files / classes / resources / scene tiles.
    this.processChunks(items / 60.0, 60, quality);
    return {{}};
  }}
  unit runOn(double items) {{
    let dw = new Workload(items);
    try {{
      let Workload w = snapshot dw [_, X];
      this.process(w.size(), this.qos <| managed);
    }} catch {{
      // Insufficient battery for this workload: scale the quality of
      // service down from the default to the energy_saver settings
      // (Figure 8's caption) and process the workload at that QoS.
      this.process(items, this.qos <| energy_saver);
    }}
    return {{}};
  }}
}}
class Main {{
  unit main() {{
    let dapp = new App();
    let App a = snapshot dapp [_, _];
    a.runOn({items:.4});
    return {{}};
  }}
}}",
                q0 = q[0],
                q1 = q[1],
                q2 = q[2],
            )
        }
        Shape::TimeFixed { durations_s, duty } => {
            let ticks = durations_s[workload] as i64;
            let busy_units = units_per_busy_second(spec, platform);
            let wfactor = workload_duty_factor(spec, workload);
            format!(
                "{MODES_BLOCK}
class Workload@mode<? <= W> {{
  double items;
  attributor {{
    if (this.items >= {t2:.4}) {{ return full_throttle; }}
    else if (this.items >= {t1:.4}) {{ return managed; }}
    else {{ return energy_saver; }}
  }}
  double size() {{ return this.items; }}
}}
class App@mode<? <= X> {{
  {battery}
  mcase<double> duty = mcase{{ energy_saver: {d0:.4}; managed: {d1:.4}; full_throttle: {d2:.4}; }};
  unit tick(double d) {{
    Sim.work(\"{kind}\", d * {busy_units:.4});
    Sim.sleepMs(1000 - Math.floor(d * 1000.0));
    return {{}};
  }}
  unit loop(int remaining, double d) {{
    if (remaining <= 0) {{ return {{}}; }}
    this.tick(d);
    return this.loop(remaining - 1, d);
  }}
  unit runOn(double items) {{
    let dw = new Workload(items);
    let d = try {{
      let Workload w = snapshot dw [_, X];
      Math.fmin(0.95, (this.duty <| managed) * {wfactor:.4})
    }} catch {{
      // Drop to the energy_saver duty cycle for the whole session.
      this.duty <| energy_saver
    }};
    this.loop({ticks}, d);
    return {{}};
  }}
}}
class Main {{
  unit main() {{
    let dapp = new App();
    let App a = snapshot dapp [_, _];
    a.runOn({items:.4});
    return {{}};
  }}
}}",
                d0 = duty[0],
                d1 = duty[1],
                d2 = duty[2],
            )
        }
    }
}

/// Generates the E2 "battery-casing" program: the QoS (or duty cycle) is
/// selected by the boot mode through a mode case; no exception is ever
/// thrown.
pub fn e2_program(spec: &BenchmarkSpec, platform: &Platform, workload: usize) -> String {
    let items = spec.workload_items[workload];
    let kind = spec.work_kind;
    let battery = battery_attributor();
    match spec.shape {
        Shape::Batch { .. } => {
            let scale = unit_scale(spec, platform);
            let q = spec.qos_factors;
            format!(
                "{MODES_BLOCK}
class App@mode<? <= X> {{
  {battery}
  mcase<double> qos = mcase{{ energy_saver: {q0:.4}; managed: {q1:.4}; full_throttle: {q2:.4}; }};
  unit chunks(double perChunk, int remaining, double quality) {{
    if (remaining <= 0) {{ return {{}}; }}
    Sim.work(\"{kind}\", perChunk * quality * {scale:.4});
    return this.chunks(perChunk, remaining - 1, quality);
  }}
  unit runOn(double items) {{
    this.chunks(items / 60.0, 60, this.qos <| X);
    return {{}};
  }}
}}
class Main {{
  unit main() {{
    let dapp = new App();
    let App a = snapshot dapp [_, _];
    a.runOn({items:.4});
    return {{}};
  }}
}}",
                q0 = q[0],
                q1 = q[1],
                q2 = q[2],
            )
        }
        Shape::TimeFixed { durations_s, duty } => {
            let ticks = durations_s[workload] as i64;
            let busy_units = units_per_busy_second(spec, platform);
            let wfactor = workload_duty_factor(spec, workload);
            format!(
                "{MODES_BLOCK}
class App@mode<? <= X> {{
  {battery}
  mcase<double> duty = mcase{{ energy_saver: {d0:.4}; managed: {d1:.4}; full_throttle: {d2:.4}; }};
  unit loop(int remaining, double d) {{
    if (remaining <= 0) {{ return {{}}; }}
    Sim.work(\"{kind}\", d * {busy_units:.4});
    Sim.sleepMs(1000 - Math.floor(d * 1000.0));
    return this.loop(remaining - 1, d);
  }}
  unit run() {{
    let d = Math.fmin(0.95, (this.duty <| X) * {wfactor:.4});
    this.loop({ticks}, d);
    return {{}};
  }}
}}
class Main {{
  unit main() {{
    let dapp = new App();
    let App a = snapshot dapp [_, _];
    a.run();
    return {{}};
  }}
}}",
                d0 = duty[0],
                d1 = duty[1],
                d2 = duty[2],
            )
        }
    }
}

/// Generates the E3 "temperature-casing" program: `tasks` units of work,
/// each followed by snapshotting a `Sleep` object whose attributor reads
/// the CPU temperature and whose mode case selects the cooling interval.
/// With `ent == false` the same workload runs Java-style, without the
/// sleep regulation.
pub fn e3_program(
    spec: &BenchmarkSpec,
    platform: &Platform,
    settings: &E3Settings,
    tasks: usize,
    task_seconds: f64,
    ent: bool,
) -> String {
    let kind = spec.work_kind;
    let units_per_task = task_seconds * units_per_busy_second(spec, platform);
    let rest = if ent {
        "let dsl = new Sleep();
       let Sleep sl = snapshot dsl [_, overheating];
       sl.rest();"
    } else {
        "// Java run: no temperature regulation."
    };
    format!(
        "modes {{ safe <= hot; hot <= overheating; }}
class Sleep@mode<? <= S> {{
  attributor {{
    if (Ext.temperature() >= {over:.1}) {{ return overheating; }}
    else if (Ext.temperature() >= {hot:.1}) {{ return hot; }}
    else {{ return safe; }}
  }}
  mcase<int> interval = mcase{{ safe: {s0}; hot: {s1}; overheating: {s2}; }};
  unit rest() {{
    Sim.sleepMs(this.interval <| S);
    return {{}};
  }}
}}
class App@mode<overheating> {{
  unit work(int remaining) {{
    if (remaining <= 0) {{ return {{}}; }}
    Sim.work(\"{kind}\", {units_per_task:.4});
    {rest}
    return this.work(remaining - 1);
  }}
}}
class Main {{
  unit main() {{
    let app = new App();
    app.work({tasks});
    return {{}};
  }}
}}",
        over = settings.overheating_c,
        hot = settings.hot_c,
        s0 = settings.sleep_ms[0],
        s1 = settings.sleep_ms[1],
        s2 = settings.sleep_ms[2],
    )
}

/// Chunks of work per migration-lattice stage: each untyped stage crosses
/// its dynamic boundary this many times.
pub const LATTICE_CHUNKS: u32 = 24;

/// Generates one point of a batch benchmark's typed/untyped **migration
/// lattice** (à la the gradual-typing performance lattices): the
/// benchmark's work is split across `components` pipeline stages, and bit
/// `i` of `mask` decides whether stage `i` is *typed* — statically moded
/// `this`-sends, no runtime boundary at all — or *untyped* — a dynamic
/// `Worker` re-snapshotted at every one of [`LATTICE_CHUNKS`] chunks, the
/// per-use boundary crossing each enforcement strategy prices
/// differently (guarded re-snapshots physically copy; transient re-tags
/// in place).
///
/// Every lattice point performs the identical work sequence, so points
/// differ only in enforcement cost: per-point overhead against the
/// fully-typed corner (`mask == (1 << components) - 1`) isolates what a
/// strategy charges for the remaining dynamism.
///
/// # Panics
///
/// Panics on a time-fixed benchmark or a component count outside `1..=8`.
pub fn lattice_program(
    spec: &BenchmarkSpec,
    platform: &Platform,
    mask: u32,
    components: u32,
) -> String {
    assert!(
        matches!(spec.shape, Shape::Batch { .. }),
        "migration lattice needs a batch benchmark, got {}",
        spec.name
    );
    assert!(
        (1..=8).contains(&components),
        "components must be in 1..=8, got {components}"
    );
    let kind = spec.work_kind;
    let battery = battery_attributor();
    let scale = unit_scale(spec, platform);
    let items = spec.workload_items[1];
    let units = items * scale / f64::from(components * LATTICE_CHUNKS);
    let mut stages = String::new();
    let mut run_body = String::new();
    for i in 0..components {
        if mask & (1 << i) != 0 {
            // Typed stage: the work is a statically checked this-send
            // chain; no object ever crosses a dynamic boundary.
            stages.push_str(&format!(
                "  unit typedStage{i}(int remaining) {{
    if (remaining <= 0) {{ return {{}}; }}
    Sim.work(\"{kind}\", {units:.4});
    return this.typedStage{i}(remaining - 1);
  }}
"
            ));
            run_body.push_str(&format!("    this.typedStage{i}({LATTICE_CHUNKS});\n"));
        } else {
            // Untyped stage: one dynamic Worker crosses the boundary per
            // chunk — re-snapshotted every iteration.
            stages.push_str(&format!(
                "  unit untypedStage{i}(int remaining, Worker@mode<?> dw) {{
    if (remaining <= 0) {{ return {{}}; }}
    let Worker w = snapshot dw [_, X];
    w.chunk();
    return this.untypedStage{i}(remaining - 1, dw);
  }}
"
            ));
            run_body.push_str(&format!(
                "    let dw{i} = new Worker({units:.4});
    this.untypedStage{i}({LATTICE_CHUNKS}, dw{i});
"
            ));
        }
    }
    format!(
        "{MODES_BLOCK}
class Worker@mode<? <= W> {{
  double units;
  {battery}
  double chunk() {{
    Sim.work(\"{kind}\", this.units);
    return this.units;
  }}
}}
class App@mode<? <= X> {{
  {battery}
{stages}  unit run() {{
{run_body}    return {{}};
  }}
}}
class Main {{
  unit main() {{
    let dapp = new App();
    let App a = snapshot dapp [_, _];
    a.run();
    return {{}};
  }}
}}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::settings::all_benchmarks;
    use ent_core::compile;
    use ent_energy::Platform;

    fn platform_for(spec: &BenchmarkSpec) -> Platform {
        match spec.primary_platform() {
            ent_energy::PlatformKind::SystemA => Platform::system_a(),
            ent_energy::PlatformKind::SystemB => Platform::system_b(),
            ent_energy::PlatformKind::SystemC => Platform::system_c(),
        }
    }

    #[test]
    fn every_e1_program_typechecks() {
        for spec in all_benchmarks() {
            let platform = platform_for(&spec);
            for workload in 0..3 {
                let src = e1_program(&spec, &platform, workload);
                compile(&src).unwrap_or_else(|e| {
                    panic!("{} E1 w{workload} failed:\n{}", spec.name, e.render(&src))
                });
            }
        }
    }

    #[test]
    fn every_e2_program_typechecks() {
        for spec in all_benchmarks() {
            let platform = platform_for(&spec);
            let src = e2_program(&spec, &platform, 2);
            compile(&src)
                .unwrap_or_else(|e| panic!("{} E2 failed:\n{}", spec.name, e.render(&src)));
        }
    }

    #[test]
    fn e3_programs_typecheck_in_both_variants() {
        let spec = crate::settings::benchmark("sunflow").unwrap();
        let platform = Platform::system_a();
        let settings = E3Settings::default();
        for ent in [true, false] {
            let src = e3_program(&spec, &platform, &settings, 10, 1.0, ent);
            compile(&src)
                .unwrap_or_else(|e| panic!("sunflow E3 (ent={ent}) failed:\n{}", e.render(&src)));
        }
    }

    #[test]
    fn every_lattice_point_typechecks() {
        let spec = crate::settings::benchmark("batik").unwrap();
        let platform = platform_for(&spec);
        let components = 3;
        for mask in 0..(1u32 << components) {
            let src = lattice_program(&spec, &platform, mask, components);
            compile(&src).unwrap_or_else(|e| {
                panic!("batik lattice mask={mask:#b} failed:\n{}", e.render(&src))
            });
        }
    }

    #[test]
    fn unit_scale_calibrates_managed_runtime() {
        let spec = crate::settings::benchmark("jspider").unwrap();
        let platform = Platform::system_a();
        let scale = unit_scale(&spec, &platform);
        let kind = WorkKind::parse(spec.work_kind);
        let seconds =
            spec.workload_items[1] * 1.0 * scale * kind.ops_per_unit() / platform.ops_per_sec;
        assert!((seconds - 22.0).abs() < 1e-6);
    }

    #[test]
    fn workload_duty_factor_is_monotone() {
        let spec = crate::settings::benchmark("video").unwrap();
        assert!(workload_duty_factor(&spec, 0) < workload_duty_factor(&spec, 1));
        assert!(workload_duty_factor(&spec, 1) < workload_duty_factor(&spec, 2));
        assert!((workload_duty_factor(&spec, 1) - 1.0).abs() < 1e-9);
    }
}
