//! The ENT benchmark suite: the fifteen applications of the paper's
//! Figure 6, with the workload-attribution and QoS settings of Figure 7,
//! generated as ENT programs and executed on the simulated platforms.
//!
//! Each benchmark comes in the experiment shapes of §6.1:
//!
//! * E1 "battery-exception" — bounded snapshots throw `EnergyException`
//!   when the workload's mode exceeds the boot mode;
//! * E2 "battery-casing" — mode cases adapt the QoS to the boot mode;
//! * E3 "temperature-casing" — a snapshotted `Sleep` object regulates CPU
//!   temperature (the five System A benchmarks of Figure 11).
//!
//! # Example
//!
//! ```
//! use ent_workloads::{benchmark, run_e2};
//! use ent_energy::PlatformKind;
//!
//! let crypto = benchmark("crypto").unwrap();
//! let saver = run_e2(&crypto, PlatformKind::SystemA, 0, 2, 7);
//! let full = run_e2(&crypto, PlatformKind::SystemA, 2, 2, 7);
//! assert!(saver.energy_j < full.energy_j);
//! ```

mod apps;
pub mod engine;
pub mod fuzzgen;
mod programs;
mod runner;
mod settings;

pub use apps::{
    batik, camera, crypto, duckduckgo, findbugs, javaboy, jspider, jython, materiallife, newpipe,
    pagerank, showcase_apps, soundrecorder, sunflow, video, xalan,
};
pub use engine::{
    cache_shard_of, default_enforcement, default_engine, default_engine_for, default_jobs,
    default_tier_up, lowered_cache_shard_entries, lowered_cache_stats, lowered_cached,
    resolve_jobs, retry_backoff, run_batch, run_batch_outcomes, run_batch_outcomes_with_telemetry,
    run_job_isolated, sched_totals, set_default_enforcement, set_default_engine,
    set_default_tier_up, source_fingerprint, try_lowered_cached, BatchPolicy, BatchTelemetry,
    CacheStats, JobError, SchedTotals, LOWERED_CACHE_CAP, LOWERED_CACHE_SHARDS,
};
pub use programs::{
    e1_program, e2_program, e3_program, lattice_program, unit_scale, workload_duty_factor,
    LATTICE_CHUNKS,
};
pub use runner::{
    platform_for, platform_of, prepare_e1, prepare_e2, prepare_e3, run_e1, run_e1_chaos_prepared,
    run_e1_prepared, run_e2, run_e2_prepared, run_e3, run_e3_prepared, run_overhead_pair,
    run_overhead_pair_prepared, ChaosOutcome, Outcome, PreparedProgram,
};
pub use settings::{
    all_benchmarks, battery_for_boot, benchmark, e3_benchmarks, BenchmarkSpec, E3Settings, Shape,
    MODE_NAMES,
};
