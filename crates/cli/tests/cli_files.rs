//! Drives the CLI against the on-disk `.ent` example programs.

use ent_cli::{execute, parse_args};

fn example(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/ent/");
    std::fs::read_to_string(format!("{path}{name}"))
        .unwrap_or_else(|e| panic!("missing example {name}: {e}"))
}

fn cli(args: &[&str], src: &str) -> (i32, String) {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let options = parse_args(&args).expect("valid arguments");
    execute(&options, src)
}

#[test]
fn crawler_checks_and_runs_at_every_battery_level() {
    let src = example("crawler.ent");
    let (code, out) = cli(&["check", "crawler.ent"], &src);
    assert_eq!(code, 0, "{out}");

    // Full battery: everything crawled.
    let (code, out) = cli(&["run", "crawler.ent", "--battery", "0.95"], &src);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("crawled"));
    assert!(out.contains("0 EnergyExceptions"), "{out}");

    // Low battery: exceptions fire and are caught.
    let (code, out) = cli(&["run", "crawler.ent", "--battery", "0.3"], &src);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("EnergyException"), "{out}");
}

#[test]
fn co_adaptation_adapts_output_to_battery() {
    let src = example("co_adaptation.ent");
    let run_at = |battery: &str| {
        let (code, out) = cli(&["run", "x.ent", "--battery", battery], &src);
        assert_eq!(code, 0, "{out}");
        out.lines()
            .find(|l| l.starts_with("result:"))
            .unwrap()
            .to_string()
    };
    let high = run_at("0.95");
    let low = run_at("0.2");
    assert_ne!(high, low, "modes must change the co-adapted result");
}

#[test]
fn media_agent_runs_and_its_waterfall_variant_fails_to_check() {
    let src = example("media_agent.ent");
    let (code, _) = cli(&["check", "x.ent"], &src);
    assert_eq!(code, 0);

    // The paper's Listing 3 error: a managed agent calling the
    // full_throttle-annotated mediaCrawl.
    let broken = src
        .replace(
            "class Agent@mode<full_throttle>",
            "class Agent@mode<managed>",
        )
        .replace("new Site@mode<full_throttle>", "new Site@mode<managed>")
        .replace("new Saver@mode<full_throttle>", "new Saver@mode<managed>");
    let (code, out) = cli(&["check", "x.ent"], &broken);
    assert_eq!(code, ent_cli::EXIT_COMPILE, "{out}");
    assert!(out.contains("waterfall"), "{out}");
}

#[test]
fn fmt_canonicalizes_all_examples() {
    for name in ["crawler.ent", "co_adaptation.ent", "media_agent.ent"] {
        let src = example(name);
        let (code, formatted) = cli(&["fmt", name], &src);
        assert_eq!(code, 0, "{name}: {formatted}");
        // Formatting is idempotent.
        let (code2, again) = cli(&["fmt", name], &formatted);
        assert_eq!(code2, 0);
        assert_eq!(formatted, again, "{name}: fmt must be idempotent");
    }
}

#[test]
fn silent_flag_changes_the_low_battery_outcome() {
    let src = example("crawler.ent");
    let (_, strict) = cli(&["run", "x.ent", "--battery", "0.3"], &src);
    let (_, silent) = cli(&["run", "x.ent", "--battery", "0.3", "--silent"], &src);
    // The silent run crawls everything (no skips), so it reports more
    // pages and more energy.
    let pages = |out: &str| -> i64 {
        out.lines()
            .find(|l| l.starts_with("result:"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    assert!(
        pages(&silent) > pages(&strict),
        "silent {silent} vs strict {strict}"
    );
}

#[test]
fn platform_flag_selects_the_simulator() {
    let src = example("crawler.ent");
    let energy = |platform: &str| {
        let (_, out) = cli(&["run", "x.ent", "--platform", platform], &src);
        out.lines()
            .find(|l| l.starts_with("energy:"))
            .unwrap()
            .to_string()
    };
    // The Pi draws far less power than the laptop for the same program.
    let a = energy("a");
    let b = energy("b");
    assert_ne!(a, b);
}
