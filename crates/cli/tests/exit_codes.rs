//! The CLI's exit-code contract: each failure class gets a distinct,
//! documented code, and the degraded-completion code is reachable only
//! through `--faults`.

use ent_cli::{
    execute, parse_args, EXIT_COMPILE, EXIT_DEGRADED, EXIT_OK, EXIT_REQUIRES_ENT, EXIT_RUNTIME,
    EXIT_USAGE,
};

fn cli(args: &[&str], src: &str) -> (i32, String) {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let options = parse_args(&args).expect("valid arguments");
    execute(&options, src)
}

const OK_PROGRAM: &str = "class Main { int main() { return 42; } }";

/// An adaptive program whose snapshot decision depends on a battery read:
/// under total sensor dropout every decision degrades to `low`.
const ADAPTIVE: &str = "modes { low <= high; }
    class App@mode<? <= X> {
      attributor {
        if (Ext.battery() >= 0.5) { return high; } else { return low; }
      }
      int effort() { return mcase{ low: 1; high: 9; } <| X; }
    }
    class Main {
      int main() {
        let dapp = new App();
        let App a = snapshot dapp [low, high];
        return a.effort();
      }
    }";

#[test]
fn success_is_zero() {
    let (code, out) = cli(&["run", "x.ent"], OK_PROGRAM);
    assert_eq!(code, EXIT_OK, "{out}");
}

#[test]
fn malformed_numeric_flags_exit_one_with_a_clear_message() {
    // The full process contract: a zero or non-numeric value for a
    // numeric knob exits 1 (usage) with a message naming the problem —
    // never a panic, never a silent default.
    let ent = env!("CARGO_BIN_EXE_ent");
    for (flag, value, named) in [
        ("--staleness-bound", "0", "staleness bound"),
        ("--staleness-bound", "soon", "staleness bound"),
        ("--chunk", "0", "chunk size"),
        ("--chunk", "many", "chunk size"),
        ("--sample-period", "0", "sample period"),
        ("--sample-period", "often", "sample period"),
    ] {
        let out = std::process::Command::new(ent)
            .args(["run", "x.ent", flag, value])
            .output()
            .expect("spawn ent");
        assert_eq!(
            out.status.code(),
            Some(EXIT_USAGE),
            "`{flag} {value}` should exit {EXIT_USAGE}"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(named),
            "`{flag} {value}` message should mention `{named}`, got: {stderr}"
        );
    }
}

#[test]
fn compile_errors_are_distinct_from_runtime_errors() {
    let (code, out) = cli(
        &["run", "x.ent"],
        "class Main { int main() { return true; } }",
    );
    assert_eq!(code, EXIT_COMPILE, "{out}");

    let crash = "class Main { int main() { return Arr.get([1], 5); } }";
    let (code, out) = cli(&["run", "x.ent"], crash);
    assert_eq!(code, EXIT_RUNTIME, "{out}");
    assert!(out.contains("runtime error"), "{out}");
}

#[test]
fn check_uses_the_compile_code_and_energy_types_its_own() {
    let (code, _) = cli(
        &["check", "x.ent"],
        "class Main { int main() { return true; } }",
    );
    assert_eq!(code, EXIT_COMPILE);

    let dynamic = "modes { low <= high; }
        class D@mode<?> { attributor { return low; } }
        class Main { unit main() { let d = new D(); return {}; } }";
    let (code, out) = cli(&["check", "x.ent", "--energy-types"], dynamic);
    assert_eq!(code, EXIT_REQUIRES_ENT, "{out}");
}

#[test]
fn fault_exhausted_degradation_gets_its_own_code() {
    // Fault-off: clean success.
    let (code, out) = cli(&["run", "x.ent", "--battery", "0.9"], ADAPTIVE);
    assert_eq!(code, EXIT_OK, "{out}");
    assert!(out.contains("result: 9"), "{out}");

    // Total dropout: the snapshot can never read the battery, degrades to
    // the conservative `low`, and the run completes with the degraded code.
    let (code, out) = cli(
        &[
            "run",
            "x.ent",
            "--battery",
            "0.9",
            "--faults",
            "dropout=1.0",
            "--fault-seed",
            "1",
        ],
        ADAPTIVE,
    );
    assert_eq!(code, EXIT_DEGRADED, "{out}");
    assert!(out.contains("result: 1"), "{out}");
    assert!(out.contains("degraded decisions"), "{out}");
}

#[test]
fn fault_runs_replay_exactly_per_fault_seed() {
    let run = |fault_seed: &str| {
        cli(
            &[
                "run",
                "x.ent",
                "--battery",
                "0.9",
                "--faults",
                "chaos",
                "--fault-seed",
                fault_seed,
            ],
            ADAPTIVE,
        )
    };
    let (code_a, out_a) = run("7");
    let (code_b, out_b) = run("7");
    assert_eq!((code_a, &out_a), (code_b, &out_b), "same seed, same bytes");
}

#[test]
fn staleness_bound_flag_reaches_the_runtime() {
    // An infinite staleness bound can never degrade (the first read in
    // this program is also the only one, so with dropout it degrades by
    // default but serves nothing stale — use a spike-free intermittent
    // plan where a clean read precedes a faulted one).
    let src = "modes { low <= high; }
        class App@mode<? <= X> {
          attributor {
            if (Ext.battery() >= 0.5) { return high; } else { return low; }
          }
          int effort() { return mcase{ low: 1; high: 9; } <| X; }
          int twice() {
            let d = new App();
            Sim.sleepMs(2000);
            let App a = snapshot d [low, X];
            return a.effort();
          }
        }
        class Main {
          int main() {
            let dapp = new App();
            let App a = snapshot dapp [low, high];
            return a.twice();
          }
        }";
    // Find a fault seed where the second read (at t≈2s) drops while the
    // first (t=0) stays clean. Under a strict 0.5s bound the 2s-old
    // last-known-good is too stale, so the decision degrades.
    for seed in 0..64 {
        let fs = seed.to_string();
        let base = [
            "run",
            "x.ent",
            "--battery",
            "0.9",
            "--faults",
            "dropout=0.5,window=1",
            "--fault-seed",
            &fs,
            "--staleness-bound",
            "0.5",
        ];
        let (code_default, out) = cli(&base, src);
        if !out.contains("1 sensor faults") || code_default != EXIT_DEGRADED {
            continue;
        }
        // Same realization, but an infinite bound serves last-known-good
        // instead of degrading.
        let mut relaxed = base.to_vec();
        relaxed.extend(["--staleness-bound", "1e18"]);
        let (code_relaxed, out_relaxed) = cli(&relaxed, src);
        assert_eq!(code_relaxed, EXIT_OK, "{out_relaxed}");
        assert!(out_relaxed.contains("1 served stale"), "{out_relaxed}");
        return;
    }
    panic!("no fault seed dropped exactly the second read");
}
