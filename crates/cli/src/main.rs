//! The `ent` command-line driver. See [`ent_cli`] for the implementation.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match ent_cli::parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };
    // `eval` takes the expression text itself; the other commands read a
    // file.
    let src = if options.command == ent_cli::Command::Eval {
        options.path.clone()
    } else {
        match std::fs::read_to_string(&options.path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read `{}`: {e}", options.path);
                return ExitCode::from(1);
            }
        }
    };
    let (code, output) = ent_cli::execute(&options, &src);
    print!("{output}");
    ExitCode::from(code as u8)
}
