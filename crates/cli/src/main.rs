//! The `ent` command-line driver. See [`ent_cli`] for the implementation.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `ent serve ...` is a thin shim over the `ent-serve` binary built
    // beside this one — the daemon stays its own process so a crashing
    // tenant can never take the CLI contract down with it.
    if args.first().map(String::as_str) == Some("serve") {
        return serve_shim(&args[1..]);
    }
    let options = match ent_cli::parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };
    // `eval` takes the expression text itself; the other commands read a
    // file.
    let src = if options.command == ent_cli::Command::Eval {
        options.path.clone()
    } else {
        match std::fs::read_to_string(&options.path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read `{}`: {e}", options.path);
                return ExitCode::from(1);
            }
        }
    };
    let (code, output) = ent_cli::execute(&options, &src);
    print!("{output}");
    ExitCode::from(code as u8)
}

/// Re-execs `ent-serve` (expected next to the current executable, as
/// cargo lays workspace binaries out) with the remaining arguments.
fn serve_shim(rest: &[String]) -> ExitCode {
    let sibling = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("ent-serve")));
    let program = match sibling {
        Some(p) if p.exists() => p,
        _ => std::path::PathBuf::from("ent-serve"),
    };
    match std::process::Command::new(&program).args(rest).status() {
        Ok(status) => ExitCode::from(status.code().unwrap_or(1) as u8),
        Err(e) => {
            eprintln!(
                "error: cannot launch `{}`: {e} (build it with `cargo build -p ent-serve`)",
                program.display()
            );
            ExitCode::from(1)
        }
    }
}
