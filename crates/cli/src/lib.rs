//! Implementation of the `ent` command-line driver.
//!
//! Subcommands:
//!
//! * `ent check <file.ent>` — parse and typecheck; print diagnostics with
//!   source locations. With `--energy-types`, additionally reject the
//!   dynamic features the static predecessor system cannot express.
//! * `ent run <file.ent>` — compile and run `Main.main()` on a simulated
//!   platform, printing the program output, the result, and the energy
//!   measurement. Options: `--platform a|b|c`, `--battery <0..1>`,
//!   `--seed <n>`, `--silent`, `--trace`, `--events`, `--events-limit <n>`,
//!   `--profile [exact|sampled|off]`, `--sample-period <n>`,
//!   `--sample-seed <n>`, `--metrics-json <path>`, `--faults <spec>`,
//!   `--fault-seed <n>`, `--staleness-bound <s>`.
//!
//! Exit codes distinguish failure classes (see [`USAGE`]): 1 usage,
//! 2 compile, 3 runtime, 4 completed-but-degraded under `--faults`,
//! 5 requires-ENT under `check --energy-types`.
//! * `ent fmt <file.ent>` — parse and pretty-print to canonical form.
//!
//! The library half exists so integration tests can drive the CLI without
//! spawning processes.

use std::fmt::Write as _;

use ent_baselines::{check_energy_types, EnergyTypesResult};
use ent_core::compile;
use ent_energy::{FaultPlan, Platform};
use ent_runtime::{
    lower_program, render_event, run, run_lowered, Enforcement, Engine, ProfileMode, RuntimeConfig,
    TierUp,
};
use ent_syntax::{parse_program, print_program};

/// Exit code: success.
pub const EXIT_OK: i32 = 0;
/// Exit code: bad invocation (unknown flag, unreadable file, bad spec).
pub const EXIT_USAGE: i32 = 1;
/// Exit code: the program failed to parse or typecheck.
pub const EXIT_COMPILE: i32 = 2;
/// Exit code: the program compiled but stopped with a runtime error.
pub const EXIT_RUNTIME: i32 = 3;
/// Exit code: the run completed, but only by degrading mode decisions to
/// their conservative bound after sensor faults exhausted the
/// last-known-good window (only reachable with `--faults`).
pub const EXIT_DEGRADED: i32 = 4;
/// Exit code: `check --energy-types` found a well-typed program that
/// needs ENT's dynamic features (mixed typechecking's "requires ENT").
pub const EXIT_REQUIRES_ENT: i32 = 5;

/// Parsed command-line options.
#[derive(Clone, Debug, PartialEq)]
pub struct Options {
    /// The subcommand.
    pub command: Command,
    /// The `.ent` source path.
    pub path: String,
    /// Platform: "a", "b", or "c".
    pub platform: String,
    /// Initial battery level.
    pub battery: f64,
    /// RNG seed.
    pub seed: u64,
    /// Run silent (suppress ENT runtime errors).
    pub silent: bool,
    /// Print a temperature trace after the run.
    pub trace: bool,
    /// Print the structured energy-event log after the run (§6.3's
    /// debugging view).
    pub events: bool,
    /// Ring-buffer capacity for event recording (`None` = the runtime
    /// default).
    pub events_limit: Option<usize>,
    /// Profiling mode from `--profile [exact|sampled|off]` (`None` =
    /// the `ENT_PROFILE` env default, else off). A bare `--profile` is a
    /// deprecated alias for `--profile exact`.
    pub profile: Option<ProfileMode>,
    /// Mean steps between stack samples, from `--sample-period`
    /// (sampled mode only; `None` = the mode default, 256).
    pub sample_period: Option<u64>,
    /// Jitter seed for the sample schedule, from `--sample-seed`
    /// (sampled mode only; `None` = 0).
    pub sample_seed: Option<u64>,
    /// Write the machine-readable run telemetry JSON to this path.
    pub metrics_json: Option<String>,
    /// Apply the Energy Types (static-only) restriction in `check`.
    pub energy_types: bool,
    /// Interpreter stack size in bytes (`None` = the runtime default,
    /// 512 MiB or `ENT_STACK_SIZE`).
    pub stack_size: Option<usize>,
    /// Fault plan from `--faults` ("off", "chaos", or key=value pairs);
    /// `None` when absent or a no-op.
    pub faults: Option<FaultPlan>,
    /// Seed for the fault injector's deterministic schedule.
    pub fault_seed: u64,
    /// How long a last-known-good sensor reading may be served after a
    /// fault before decisions degrade (`None` = the runtime default).
    pub staleness_bound: Option<f64>,
    /// Engine from `--engine` (`None` = the runtime default: bytecode,
    /// overridable via the `ENT_ENGINE` environment variable).
    pub engine: Option<Engine>,
    /// Tier-up threshold from `--tier-up` (`None` = the runtime default:
    /// 8 hot hits, overridable via the `ENT_TIER_UP` environment
    /// variable). Only the threaded engine reads it.
    pub tier_up: Option<TierUp>,
    /// Enforcement strategy from `--enforce` (`None` = the runtime
    /// default: guarded, overridable via the `ENT_ENFORCE` environment
    /// variable).
    pub enforce: Option<Enforcement>,
    /// Adaptation mode from `--adapt` (`None` = the runtime default: off,
    /// overridable via the `ENT_ADAPT` environment variable).
    pub adapt: Option<ent_runtime::AdaptMode>,
    /// Scheduler chunk pin from `--chunk` (`None` = derived per batch).
    pub chunk: Option<u32>,
}

/// The CLI subcommands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Command {
    /// Parse + typecheck.
    Check,
    /// Compile + run.
    Run,
    /// Pretty-print.
    Fmt,
    /// Evaluate a single expression (the argument is the expression, not
    /// a path).
    Eval,
}

/// Usage text.
pub const USAGE: &str = "\
usage: ent <command> <file.ent> [options]

commands:
  check    parse and typecheck the program
  run      compile and run Main.main() on a simulated platform
  fmt      parse and pretty-print to canonical form
  eval     evaluate one expression, e.g. ent eval '1 + 2 * 3'

options:
  --platform <a|b|c>   simulated platform (default: a, the Intel laptop)
  --battery <0..1>     initial battery level (default: 1.0)
  --seed <n>           simulator seed (default: 0)
  --silent             suppress ENT runtime errors (the paper's silent mode)
  --trace              print a temperature trace after the run
  --events             print the energy-event log (snapshots, modes, failures)
  --events-limit <n>   retain only the newest <n> events (ring buffer size)
  --profile [mode]     collect and print per-method energy attribution:
                       exact (the shadow-call-tree ground truth), sampled
                       (periodic stack sampling, ~zero overhead, estimates
                       with 95% confidence intervals), or off; a bare
                       --profile is a deprecated alias for --profile exact
                       (ENT_PROFILE env default)
  --sample-period <n>  sampled profile: mean steps between stack samples,
                       at least 1 (default: 256; requires sampled mode)
  --sample-seed <n>    sampled profile: seed for the jittered sample
                       schedule; the same seed and period replay the
                       identical samples (default: 0; requires sampled mode)
  --metrics-json <p>   write machine-readable run telemetry JSON to <p>
  --stack-size <n>     interpreter stack size in bytes, or with a k/m/g
                       suffix (default: 512m, or the ENT_STACK_SIZE env var)
  --energy-types       (check) also enforce the static-only Energy Types subset
  --faults <spec>      inject deterministic sensor faults: off, chaos, or
                       key=value pairs (dropout=0.2,stale=0.1,spike=0.1,
                       spike_mag=0.5,brownouts=2,brownout_drop=0.05,bursts=1,
                       burst_temp=30,burst_width=5,stall=0.1,window=1,horizon=60)
  --fault-seed <n>     seed for the fault schedule (default: 0); the same
                       seed replays the identical fault realization
  --staleness-bound <s> seconds a last-known-good sensor reading may be served
                       after a fault before decisions degrade; must be a
                       positive number (default: 5)
  --engine <e>         method-body execution engine: bytecode (the register
                       VM, default), tree (the recursive evaluator), or
                       threaded (closure-threaded tier over the VM, with
                       profile-guided tier-up and deopt back to bytecode);
                       all produce bit-identical results (ENT_ENGINE env
                       default)
  --tier-up <n>        hot-body threshold before the threaded engine compiles
                       a method body: 0 = compile immediately, off = never
                       tier up, else the call count (default: 8; ENT_TIER_UP
                       env default); ignored by the other engines
  --enforce <s>        mode-check enforcement strategy: guarded (deep snapshot
                       boundaries + dynamic waterfall, the paper's semantics,
                       default) or transient (shallow first-order checks at
                       boundaries, call sites, and field reads; never copies;
                       failures blame the check site) (ENT_ENFORCE env default)
  --adapt <m>          online adaptive tuning: off (default), on (tune the
                       scheduler/cache/engine from run telemetry; changes
                       timing only, never values), or frozen (pin the current
                       config generation for byte-stable telemetry stamps)
                       (ENT_ADAPT env default)
  --chunk <n>          pin the batch scheduler's owner-side chunk size (jobs
                       claimed per grab); at least 1, or omit the flag to
                       derive it per batch

exit codes:
  0  success
  1  bad invocation (unknown flag, unreadable file, malformed spec)
  2  the program failed to parse or typecheck
  3  the program stopped with a runtime error
  4  the run completed only by degrading mode decisions to their
     conservative bound (sensor faults outlived the staleness bound)
  5  check --energy-types: well-typed, but requires ENT's dynamic features
";

/// Parses command-line arguments (excluding the program name).
///
/// # Errors
///
/// Returns a usage-style message for unknown commands or malformed
/// options.
pub fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut it = args.iter().peekable();
    let command = match it.next().map(String::as_str) {
        Some("check") => Command::Check,
        Some("run") => Command::Run,
        Some("fmt") => Command::Fmt,
        Some("eval") => Command::Eval,
        Some(other) => return Err(format!("unknown command `{other}`\n\n{USAGE}")),
        None => return Err(USAGE.to_string()),
    };
    let Some(path) = it.next() else {
        return Err(format!("missing <file.ent>\n\n{USAGE}"));
    };
    let mut options = Options {
        command,
        path: path.clone(),
        platform: "a".to_string(),
        battery: 1.0,
        seed: 0,
        silent: false,
        trace: false,
        events: false,
        events_limit: None,
        profile: None,
        sample_period: None,
        sample_seed: None,
        metrics_json: None,
        energy_types: false,
        stack_size: None,
        faults: None,
        fault_seed: 0,
        staleness_bound: None,
        engine: None,
        tier_up: None,
        enforce: None,
        adapt: None,
        chunk: None,
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--platform" => {
                let v = it.next().ok_or("--platform needs a value")?;
                if !matches!(v.as_str(), "a" | "b" | "c") {
                    return Err(format!("unknown platform `{v}` (expected a, b, or c)"));
                }
                options.platform = v.clone();
            }
            "--battery" => {
                let v = it.next().ok_or("--battery needs a value")?;
                options.battery = v
                    .parse()
                    .map_err(|_| format!("malformed battery level `{v}`"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                options.seed = v.parse().map_err(|_| format!("malformed seed `{v}`"))?;
            }
            "--silent" => options.silent = true,
            "--trace" => options.trace = true,
            "--events" => options.events = true,
            "--events-limit" => {
                let v = it.next().ok_or("--events-limit needs a value")?;
                options.events_limit = Some(
                    v.parse()
                        .map_err(|_| format!("malformed events limit `{v}`"))?,
                );
            }
            "--profile" => {
                // Optional mode operand; a bare `--profile` (next token
                // absent or another flag) is the deprecated exact alias.
                options.profile = Some(match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let m = ProfileMode::parse(v).ok_or_else(|| {
                            format!("unknown profile mode `{v}` (expected exact, sampled, or off)")
                        })?;
                        it.next();
                        m
                    }
                    _ => ProfileMode::Exact,
                });
            }
            "--sample-period" => {
                let v = it.next().ok_or("--sample-period needs a value in steps")?;
                let period: u64 = v
                    .parse()
                    .map_err(|_| format!("malformed sample period `{v}`"))?;
                if period == 0 {
                    return Err("sample period must be at least 1 step".to_string());
                }
                options.sample_period = Some(period);
            }
            "--sample-seed" => {
                let v = it.next().ok_or("--sample-seed needs a value")?;
                options.sample_seed = Some(
                    v.parse()
                        .map_err(|_| format!("malformed sample seed `{v}`"))?,
                );
            }
            "--metrics-json" => {
                let v = it.next().ok_or("--metrics-json needs a path")?;
                options.metrics_json = Some(v.clone());
            }
            "--stack-size" => {
                let v = it.next().ok_or("--stack-size needs a value")?;
                options.stack_size = Some(
                    ent_runtime::parse_stack_size(v)
                        .ok_or_else(|| format!("malformed stack size `{v}` (try 512m or 1g)"))?,
                );
            }
            "--energy-types" => options.energy_types = true,
            "--faults" => {
                let v = it
                    .next()
                    .ok_or("--faults needs a spec (off, chaos, or key=value pairs)")?;
                let plan =
                    FaultPlan::parse(v).map_err(|e| format!("invalid --faults spec: {e}"))?;
                options.faults = (!plan.is_noop()).then_some(plan);
            }
            "--fault-seed" => {
                let v = it.next().ok_or("--fault-seed needs a value")?;
                options.fault_seed = v
                    .parse()
                    .map_err(|_| format!("malformed fault seed `{v}`"))?;
            }
            "--staleness-bound" => {
                let v = it
                    .next()
                    .ok_or("--staleness-bound needs a value in seconds")?;
                let bound: f64 = v
                    .parse()
                    .map_err(|_| format!("malformed staleness bound `{v}`"))?;
                if !bound.is_finite() || bound <= 0.0 {
                    return Err(format!(
                        "staleness bound must be a positive number of seconds, got `{v}`"
                    ));
                }
                options.staleness_bound = Some(bound);
            }
            "--engine" => {
                let v = it
                    .next()
                    .ok_or("--engine needs a value (tree, bytecode, or threaded)")?;
                options.engine = Some(Engine::parse(v).ok_or_else(|| {
                    format!("unknown engine `{v}` (expected tree, bytecode, or threaded)")
                })?);
            }
            "--tier-up" => {
                let v = it
                    .next()
                    .ok_or("--tier-up needs a value (0, off, or a count)")?;
                options.tier_up = Some(TierUp::parse(v).ok_or_else(|| {
                    format!("malformed tier-up threshold `{v}` (expected 0, off, or a count)")
                })?);
            }
            "--enforce" => {
                let v = it
                    .next()
                    .ok_or("--enforce needs a value (guarded or transient)")?;
                options.enforce = Some(Enforcement::parse(v).ok_or_else(|| {
                    format!("unknown enforcement `{v}` (expected guarded or transient)")
                })?);
            }
            "--adapt" => {
                let v = it
                    .next()
                    .ok_or("--adapt needs a value (on, off, or frozen)")?;
                options.adapt = Some(ent_runtime::AdaptMode::parse(v).ok_or_else(|| {
                    format!("unknown adapt mode `{v}` (expected on, off, or frozen)")
                })?);
            }
            "--chunk" => {
                let v = it.next().ok_or("--chunk needs a value")?;
                let chunk: u32 = v
                    .parse()
                    .map_err(|_| format!("malformed chunk size `{v}`"))?;
                if chunk == 0 {
                    return Err(
                        "chunk size must be at least 1 (omit --chunk to derive it per batch)"
                            .to_string(),
                    );
                }
                options.chunk = Some(chunk);
            }
            other => return Err(format!("unknown option `{other}`\n\n{USAGE}")),
        }
    }
    // The sampling knobs only mean something when a sampled profile is in
    // force (the flag, or the ENT_PROFILE default).
    if (options.sample_period.is_some() || options.sample_seed.is_some())
        && !matches!(options.profile_mode(), ProfileMode::Sampled { .. })
    {
        return Err(
            "--sample-period and --sample-seed require sampled profiling (--profile sampled)"
                .to_string(),
        );
    }
    Ok(options)
}

impl Options {
    /// The profiling mode in force: the `--profile` flag if given, else
    /// the `ENT_PROFILE` environment default, with `--sample-period` /
    /// `--sample-seed` folded into sampled mode.
    pub fn profile_mode(&self) -> ProfileMode {
        match self.profile.unwrap_or_else(ProfileMode::from_env) {
            ProfileMode::Sampled { period, seed } => ProfileMode::Sampled {
                period: self.sample_period.unwrap_or(period),
                seed: self.sample_seed.unwrap_or(seed),
            },
            other => other,
        }
    }
}

/// Runs the CLI against already-loaded source text, returning
/// `(exit_code, output)`.
pub fn execute(options: &Options, src: &str) -> (i32, String) {
    // Install the adaptation knobs process-wide before any run: the run's
    // telemetry stamps the mode and config generation it observed.
    if let Some(mode) = options.adapt {
        ent_runtime::adapt::set_mode(mode);
    }
    if let Some(chunk) = options.chunk {
        ent_runtime::adapt::pin_chunk(chunk);
    }
    let mut out = String::new();
    match options.command {
        Command::Eval => {
            // Wrap the expression in a scratch program; string
            // concatenation renders any value kind.
            let program = format!(
                "class Main {{ unit main() {{ IO.print(\"\" + ({src})); return {{}}; }} }}"
            );
            let compiled = match compile(&program) {
                Ok(c) => c,
                Err(e) => {
                    let _ = writeln!(out, "error: {e}");
                    return (EXIT_COMPILE, out);
                }
            };
            let config = RuntimeConfig {
                battery_level: options.battery,
                seed: options.seed,
                engine: options.engine.unwrap_or_default(),
                tier_up: options.tier_up.unwrap_or_else(TierUp::from_env),
                ..RuntimeConfig::default()
            };
            let result = run(&compiled, Platform::system_a(), config);
            match &result.value {
                Ok(_) => {
                    for line in &result.output {
                        let _ = writeln!(out, "{line}");
                    }
                    (EXIT_OK, out)
                }
                Err(e) => {
                    let _ = writeln!(out, "runtime error: {e}");
                    (EXIT_RUNTIME, out)
                }
            }
        }
        Command::Fmt => match parse_program(src) {
            Ok(program) => {
                out.push_str(&print_program(&program));
                (EXIT_OK, out)
            }
            Err(e) => {
                let _ = writeln!(out, "error: {}", e.render(src));
                (EXIT_COMPILE, out)
            }
        },
        Command::Check => {
            if options.energy_types {
                match check_energy_types(src) {
                    EnergyTypesResult::Static(_) => {
                        let _ = writeln!(out, "ok: well-typed under Energy Types (fully static)");
                        (EXIT_OK, out)
                    }
                    EnergyTypesResult::RequiresEnt(features) => {
                        let _ = writeln!(
                            out,
                            "requires ENT: the program is well-typed but uses dynamic features:"
                        );
                        for f in features {
                            let _ = writeln!(out, "  - {f}");
                        }
                        (EXIT_REQUIRES_ENT, out)
                    }
                    EnergyTypesResult::Rejected(e) => {
                        let _ = writeln!(out, "error: {}", e.render(src));
                        (EXIT_COMPILE, out)
                    }
                }
            } else {
                match compile(src) {
                    Ok(compiled) => {
                        let _ = writeln!(
                            out,
                            "ok: {} classes, {} modes, {} runtime obligations",
                            compiled.program.classes.len(),
                            compiled.program.mode_table.modes().len(),
                            compiled.obligations.len()
                        );
                        (EXIT_OK, out)
                    }
                    Err(e) => {
                        let _ = writeln!(out, "error: {}", e.render(src));
                        (EXIT_COMPILE, out)
                    }
                }
            }
        }
        Command::Run => {
            let compiled = match compile(src) {
                Ok(c) => c,
                Err(e) => {
                    let _ = writeln!(out, "error: {}", e.render(src));
                    return (EXIT_COMPILE, out);
                }
            };
            // Lower explicitly: rendering events and profiles resolves
            // interned ids through the lowered program.
            let lowered = lower_program(&compiled);
            let outcome = run_prepared(options, &lowered);
            (outcome.code, outcome.output)
        }
    }
}

/// The rendered outcome of one program run: the exit code and the exact
/// bytes `ent run` would print, plus the headline numbers a resident
/// server feeds into its admission and mode controllers without reparsing
/// the text.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOutcome {
    /// Exit code under the CLI contract (`EXIT_OK` / `EXIT_RUNTIME` /
    /// `EXIT_DEGRADED`, or `EXIT_USAGE` for a failed `--metrics-json`
    /// write).
    pub code: i32,
    /// The full human-readable report, byte-identical to `ent run`.
    pub output: String,
    /// Simulated energy spent by the run, in joules.
    pub energy_j: f64,
    /// Simulated wall time of the run, in seconds.
    pub time_s: f64,
    /// Sensor faults the injector served during the run.
    pub sensor_faults: u64,
    /// Mode decisions that fell back to the conservative bound.
    pub degraded_decisions: u64,
}

/// Runs an already-lowered program under `options` and renders the full
/// `ent run` report. This is the single rendering path: the CLI `run`
/// subcommand calls it after compiling, and the `ent-serve` workers call
/// it against cache-shared programs — which is what makes a served reply
/// byte-identical to its one-shot equivalent by construction.
pub fn run_prepared(options: &Options, lowered: &ent_runtime::LoweredProgram) -> RunOutcome {
    let mut out = String::new();
    let platform = match options.platform.as_str() {
        "b" => Platform::system_b(),
        "c" => Platform::system_c(),
        _ => Platform::system_a(),
    };
    let mut config = RuntimeConfig {
        silent: options.silent,
        battery_level: options.battery,
        seed: options.seed,
        trace_interval_s: options.trace.then_some(1.0),
        record_events: options.events || options.metrics_json.is_some(),
        profile: options.profile_mode(),
        faults: options.faults.clone(),
        fault_seed: options.fault_seed,
        engine: options.engine.unwrap_or_default(),
        tier_up: options.tier_up.unwrap_or_else(TierUp::from_env),
        enforcement: options.enforce.unwrap_or_else(Enforcement::from_env),
        ..RuntimeConfig::default()
    };
    if let Some(limit) = options.events_limit {
        config.events_capacity = limit;
    }
    if let Some(stack) = options.stack_size {
        config.stack_size = stack;
    }
    if let Some(bound) = options.staleness_bound {
        config.staleness_bound_s = bound;
    }
    let result = run_lowered(lowered, platform, config);
    for line in &result.output {
        let _ = writeln!(out, "{line}");
    }
    let mut code = match &result.value {
        Ok(v) => {
            let pretty = result.value_pretty.clone().unwrap_or_else(|| v.to_string());
            let _ = writeln!(out, "result: {pretty}");
            if result.stats.degraded_decisions > 0 {
                // Only reachable with --faults: the run finished, but
                // some decisions fell back to the conservative bound.
                EXIT_DEGRADED
            } else {
                EXIT_OK
            }
        }
        Err(e) => {
            let _ = writeln!(out, "runtime error: {e}");
            EXIT_RUNTIME
        }
    };
    let m = &result.measurement;
    let _ = writeln!(
        out,
        "energy: {:.2} J over {:.2} s (peak {:.1} °C, battery {:.0}%)",
        m.energy_j,
        m.time_s,
        m.peak_temp_c,
        m.battery_level * 100.0
    );
    let _ = writeln!(
        out,
        "runtime: {} snapshots, {} copies, {} EnergyExceptions, {} dynamic allocations",
        result.stats.snapshots,
        result.stats.copies,
        result.stats.energy_exceptions,
        result.stats.dynamic_allocs
    );
    if options.faults.is_some() {
        let _ = writeln!(
            out,
            "faults: {} sensor faults, {} served stale, {} degraded decisions",
            result.stats.sensor_faults, result.stats.stale_reads, result.stats.degraded_decisions
        );
    }
    if options.events {
        let _ = writeln!(out, "events:");
        if result.events.dropped() > 0 {
            let _ = writeln!(
                out,
                "  ({} older events dropped; raise --events-limit to keep more)",
                result.events.dropped()
            );
        }
        for event in &result.events {
            let _ = writeln!(out, "  {}", render_event(lowered, event));
        }
    }
    if let Some(profile) = &result.profile {
        let _ = writeln!(out, "profile:");
        for line in profile.render_table().lines() {
            let _ = writeln!(out, "  {line}");
        }
    }
    if let Some(path) = &options.metrics_json {
        match std::fs::write(path, result.to_json()) {
            Ok(()) => {
                let _ = writeln!(out, "metrics: wrote {path}");
            }
            Err(e) => {
                let _ = writeln!(out, "metrics: failed to write {path}: {e}");
                code = EXIT_USAGE;
            }
        }
    }
    if code != EXIT_USAGE && options.trace && !result.trace.is_empty() {
        let temps: Vec<f64> = result.trace.iter().map(|(_, c)| *c).collect();
        let _ = writeln!(out, "trace (°C): {}", summarize_trace(&temps));
    }
    RunOutcome {
        code,
        output: out,
        energy_j: m.energy_j,
        time_s: m.time_s,
        sensor_faults: result.stats.sensor_faults,
        degraded_decisions: result.stats.degraded_decisions,
    }
}

fn summarize_trace(temps: &[f64]) -> String {
    let chunked: Vec<String> = temps
        .chunks((temps.len() / 20).max(1))
        .map(|c| format!("{:.0}", c.iter().sum::<f64>() / c.len() as f64))
        .collect();
    chunked.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_args_defaults() {
        let o = parse_args(&args(&["run", "x.ent"])).unwrap();
        assert_eq!(o.command, Command::Run);
        assert_eq!(o.platform, "a");
        assert_eq!(o.battery, 1.0);
        assert!(!o.silent);
    }

    #[test]
    fn parse_args_options() {
        let o = parse_args(&args(&[
            "run",
            "x.ent",
            "--platform",
            "b",
            "--battery",
            "0.4",
            "--seed",
            "9",
            "--silent",
            "--trace",
        ]))
        .unwrap();
        assert_eq!(o.platform, "b");
        assert_eq!(o.battery, 0.4);
        assert_eq!(o.seed, 9);
        assert!(o.silent && o.trace);
    }

    #[test]
    fn parse_args_observability_flags() {
        let o = parse_args(&args(&[
            "run",
            "x.ent",
            "--events",
            "--events-limit",
            "64",
            "--profile",
            "--metrics-json",
            "m.json",
        ]))
        .unwrap();
        assert!(o.events);
        // Bare `--profile` is the deprecated alias for exact profiling.
        assert_eq!(o.profile, Some(ProfileMode::Exact));
        assert_eq!(o.profile_mode(), ProfileMode::Exact);
        assert_eq!(o.events_limit, Some(64));
        assert_eq!(o.metrics_json.as_deref(), Some("m.json"));
        assert!(parse_args(&args(&["run", "x.ent", "--events-limit", "x"])).is_err());
        assert!(parse_args(&args(&["run", "x.ent", "--metrics-json"])).is_err());
    }

    #[test]
    fn parse_args_profile_modes() {
        let o = parse_args(&args(&["run", "x.ent", "--profile", "exact"])).unwrap();
        assert_eq!(o.profile, Some(ProfileMode::Exact));
        let o = parse_args(&args(&["run", "x.ent", "--profile", "off"])).unwrap();
        assert_eq!(o.profile, Some(ProfileMode::Off));
        assert_eq!(o.profile_mode(), ProfileMode::Off);
        let o = parse_args(&args(&["run", "x.ent", "--profile", "sampled"])).unwrap();
        assert_eq!(o.profile, Some(ProfileMode::sampled_default()));
        // Period and seed knobs fold into the resolved mode.
        let o = parse_args(&args(&[
            "run",
            "x.ent",
            "--profile",
            "sampled",
            "--sample-period",
            "64",
            "--sample-seed",
            "7",
        ]))
        .unwrap();
        assert_eq!(
            o.profile_mode(),
            ProfileMode::Sampled {
                period: 64,
                seed: 7
            }
        );
        // A bare `--profile` followed by another flag still means exact.
        let o = parse_args(&args(&["run", "x.ent", "--profile", "--events"])).unwrap();
        assert_eq!(o.profile, Some(ProfileMode::Exact));
        assert!(o.events);
        // Invalid combinations are usage errors (exit code 1 in main).
        assert!(parse_args(&args(&["run", "x.ent", "--profile", "fast"])).is_err());
        assert!(parse_args(&args(&["run", "x.ent", "--sample-period", "0"])).is_err());
        assert!(parse_args(&args(&["run", "x.ent", "--sample-period", "64"])).is_err());
        assert!(parse_args(&args(&[
            "run",
            "x.ent",
            "--profile",
            "exact",
            "--sample-seed",
            "3"
        ]))
        .is_err());
    }

    #[test]
    fn help_mentions_profile_deprecation() {
        assert!(USAGE.contains("deprecated alias"));
        assert!(USAGE.contains("--sample-period"));
    }

    #[test]
    fn run_with_profile_and_metrics_json() {
        let path = std::env::temp_dir().join("ent_cli_metrics_test.json");
        let o = parse_args(&args(&[
            "run",
            "x.ent",
            "--profile",
            "--metrics-json",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let (code, out) = execute(&o, HELLO);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("profile:"));
        assert!(out.contains("Main.main"));
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(ent_runtime::json_is_valid(&json));
        assert!(json.contains("\"profile\""));
        assert!(json.contains("\"stats\""));
        assert!(json.contains("\"measurement\""));
    }

    #[test]
    fn parse_args_stack_size() {
        let o = parse_args(&args(&["run", "x.ent", "--stack-size", "64m"])).unwrap();
        assert_eq!(o.stack_size, Some(64 * 1024 * 1024));
        let o = parse_args(&args(&["run", "x.ent"])).unwrap();
        assert_eq!(o.stack_size, None);
        assert!(parse_args(&args(&["run", "x.ent", "--stack-size", "huge"])).is_err());
        assert!(parse_args(&args(&["run", "x.ent", "--stack-size"])).is_err());

        // A run with a small explicit stack still completes (the depth
        // guard fires before the stack is exhausted on simple programs).
        let o = parse_args(&args(&["run", "x.ent", "--stack-size", "8m"])).unwrap();
        let (code, out) = execute(&o, HELLO);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("result: 42"));
    }

    #[test]
    fn parse_args_rejects_unknowns() {
        assert!(parse_args(&args(&["frobnicate", "x.ent"])).is_err());
        assert!(parse_args(&args(&["run"])).is_err());
        assert!(parse_args(&args(&["run", "x.ent", "--wat"])).is_err());
        assert!(parse_args(&args(&["run", "x.ent", "--platform", "z"])).is_err());
    }

    const HELLO: &str = "class Main { int main() { IO.print(\"hi\"); return 41 + 1; } }";

    #[test]
    fn check_reports_ok() {
        let o = parse_args(&args(&["check", "x.ent"])).unwrap();
        let (code, out) = execute(&o, HELLO);
        assert_eq!(code, 0);
        assert!(out.contains("ok:"));
    }

    #[test]
    fn check_reports_errors_with_locations() {
        let o = parse_args(&args(&["check", "x.ent"])).unwrap();
        let (code, out) = execute(&o, "class Main { int main() { return true; } }");
        assert_eq!(code, EXIT_COMPILE);
        assert!(out.contains("1:"));
    }

    #[test]
    fn run_prints_output_result_and_measurement() {
        let o = parse_args(&args(&["run", "x.ent"])).unwrap();
        let (code, out) = execute(&o, HELLO);
        assert_eq!(code, 0);
        assert!(out.contains("hi"));
        assert!(out.contains("result: 42"));
        assert!(out.contains("energy:"));
    }

    #[test]
    fn fmt_roundtrips() {
        let o = parse_args(&args(&["fmt", "x.ent"])).unwrap();
        let (code, out) = execute(&o, HELLO);
        assert_eq!(code, 0);
        // The formatted output must parse again.
        assert!(parse_program(&out).is_ok());
    }

    #[test]
    fn eval_evaluates_expressions() {
        let o = parse_args(&args(&["eval", "1 + 2 * 3"])).unwrap();
        let (code, out) = execute(&o, "1 + 2 * 3");
        assert_eq!(code, 0);
        assert_eq!(out.trim(), "7");

        let (code, out) = execute(&o, "Str.sub(\"snapshot\", 0, 4)");
        assert_eq!(code, 0, "{out}");
        assert_eq!(out.trim(), "snap");

        let (code, out) = execute(&o, "1 +");
        assert_eq!(code, EXIT_COMPILE);
        assert!(out.contains("error"));
    }

    #[test]
    fn energy_types_check_distinguishes_static_from_dynamic() {
        let o = parse_args(&args(&["check", "x.ent", "--energy-types"])).unwrap();
        let (code, _) = execute(&o, HELLO);
        assert_eq!(code, 0);

        let dynamic = "modes { low <= high; }
            class D@mode<?> { attributor { return low; } }
            class Main { unit main() { let d = new D(); return {}; } }";
        let (code, out) = execute(&o, dynamic);
        assert_eq!(code, EXIT_REQUIRES_ENT);
        assert!(out.contains("requires ENT"));
    }

    #[test]
    fn parse_args_fault_flags() {
        let o = parse_args(&args(&[
            "run",
            "x.ent",
            "--faults",
            "dropout=0.5,window=0.5",
            "--fault-seed",
            "9",
            "--staleness-bound",
            "2.5",
        ]))
        .unwrap();
        let plan = o.faults.expect("plan parsed");
        assert_eq!(plan.dropout_rate, 0.5);
        assert_eq!(o.fault_seed, 9);
        assert_eq!(o.staleness_bound, Some(2.5));

        // "off" and a no-op spec both leave faults unset.
        let o = parse_args(&args(&["run", "x.ent", "--faults", "off"])).unwrap();
        assert!(o.faults.is_none());

        assert!(parse_args(&args(&["run", "x.ent", "--faults", "dropout=nope"])).is_err());
        assert!(parse_args(&args(&["run", "x.ent", "--staleness-bound", "-1"])).is_err());
        assert!(parse_args(&args(&["run", "x.ent", "--fault-seed"])).is_err());
    }

    #[test]
    fn parse_args_rejects_zero_and_junk_numeric_flags() {
        // Zero is meaningless for these knobs — every rejection is a
        // usage error (exit 1 in main) with a message naming the flag.
        for bad in [
            ["--staleness-bound", "0"],
            ["--staleness-bound", "0.0"],
            ["--staleness-bound", "inf"],
            ["--staleness-bound", "NaN"],
            ["--staleness-bound", "soon"],
            ["--chunk", "0"],
            ["--chunk", "-4"],
            ["--chunk", "many"],
            ["--sample-period", "0"],
        ] {
            let err = parse_args(&args(&["run", "x.ent", bad[0], bad[1]]))
                .expect_err(&format!("{} {} must be rejected", bad[0], bad[1]));
            assert!(!err.is_empty());
        }
        // The open boundary values stay accepted.
        assert!(parse_args(&args(&["run", "x.ent", "--staleness-bound", "0.001"])).is_ok());
        assert!(parse_args(&args(&["run", "x.ent", "--chunk", "1"])).is_ok());
    }

    #[test]
    fn parse_args_engine_flag_and_runs_agree() {
        let o = parse_args(&args(&["run", "x.ent", "--engine", "tree"])).unwrap();
        assert_eq!(o.engine, Some(Engine::Tree));
        let o = parse_args(&args(&["run", "x.ent", "--engine", "bytecode"])).unwrap();
        assert_eq!(o.engine, Some(Engine::Bytecode));
        let o = parse_args(&args(&["run", "x.ent", "--engine", "threaded"])).unwrap();
        assert_eq!(o.engine, Some(Engine::Threaded));
        assert!(parse_args(&args(&["run", "x.ent", "--engine", "jit"])).is_err());
        assert!(parse_args(&args(&["run", "x.ent", "--engine"])).is_err());

        // The flag must not change a single output byte — including the
        // threaded tier forced to compile every body (`--tier-up 0`).
        let tree = parse_args(&args(&["run", "x.ent", "--engine", "tree"])).unwrap();
        let vm = parse_args(&args(&["run", "x.ent", "--engine", "bytecode"])).unwrap();
        let th = parse_args(&args(&[
            "run",
            "x.ent",
            "--engine",
            "threaded",
            "--tier-up",
            "0",
        ]))
        .unwrap();
        assert_eq!(execute(&tree, HELLO), execute(&vm, HELLO));
        assert_eq!(execute(&vm, HELLO), execute(&th, HELLO));
    }

    #[test]
    fn parse_args_enforce_flag_and_guarded_matches_default() {
        let o = parse_args(&args(&["run", "x.ent"])).unwrap();
        assert_eq!(o.enforce, None);
        let o = parse_args(&args(&["run", "x.ent", "--enforce", "guarded"])).unwrap();
        assert_eq!(o.enforce, Some(Enforcement::Guarded));
        let o = parse_args(&args(&["run", "x.ent", "--enforce", "transient"])).unwrap();
        assert_eq!(o.enforce, Some(Enforcement::Transient));
        assert!(parse_args(&args(&["run", "x.ent", "--enforce", "eager"])).is_err());
        assert!(parse_args(&args(&["run", "x.ent", "--enforce"])).is_err());

        // Explicit `--enforce guarded` is the default: byte-identical.
        let default = parse_args(&args(&["run", "x.ent"])).unwrap();
        let guarded = parse_args(&args(&["run", "x.ent", "--enforce", "guarded"])).unwrap();
        assert_eq!(execute(&default, HELLO), execute(&guarded, HELLO));

        // A program a transient run accepts agrees with guarded on output.
        let transient = parse_args(&args(&["run", "x.ent", "--enforce", "transient"])).unwrap();
        assert_eq!(execute(&transient, HELLO), execute(&guarded, HELLO));
    }

    #[test]
    fn check_reports_runtime_obligations() {
        let o = parse_args(&args(&["check", "x.ent"])).unwrap();
        let (code, out) = execute(&o, HELLO);
        assert_eq!(code, EXIT_OK);
        assert!(out.contains("runtime obligations"), "output: {out}");
    }

    #[test]
    fn usage_documents_the_exit_codes_and_fault_flags() {
        assert!(USAGE.contains("exit codes:"));
        assert!(USAGE.contains("--faults"));
        assert!(USAGE.contains("--fault-seed"));
        assert!(USAGE.contains("--staleness-bound"));
        assert!(USAGE.contains("--enforce"));
        assert!(USAGE.contains("--adapt"));
        assert!(USAGE.contains("--chunk"));
        for needle in [
            "0  success",
            "2  the program failed to parse",
            "5  check --energy-types",
        ] {
            assert!(USAGE.contains(needle), "usage missing: {needle}");
        }
    }

    #[test]
    fn parse_args_adapt_and_chunk_flags() {
        use ent_runtime::AdaptMode;
        let o = parse_args(&args(&["run", "x.ent"])).unwrap();
        assert_eq!(o.adapt, None);
        assert_eq!(o.chunk, None);
        let o = parse_args(&args(&[
            "run", "x.ent", "--adapt", "frozen", "--chunk", "16",
        ]))
        .unwrap();
        assert_eq!(o.adapt, Some(AdaptMode::Frozen));
        assert_eq!(o.chunk, Some(16));
        for mode in ["on", "off"] {
            assert!(parse_args(&args(&["run", "x.ent", "--adapt", mode])).is_ok());
        }
        assert!(parse_args(&args(&["run", "x.ent", "--adapt", "warm"])).is_err());
        assert!(parse_args(&args(&["run", "x.ent", "--adapt"])).is_err());
        assert!(parse_args(&args(&["run", "x.ent", "--chunk", "lots"])).is_err());
        assert!(parse_args(&args(&["run", "x.ent", "--chunk"])).is_err());
    }

    #[test]
    fn adapt_frozen_runs_are_byte_identical_and_stamp_telemetry() {
        // `--adapt frozen` pins the config generation; two identical runs
        // must agree byte for byte, and the telemetry must carry the
        // adapt stamp. (No `--adapt on` leg here: mode is process-wide
        // state and `on` would leak into parallel tests' telemetry.)
        let o = parse_args(&args(&["run", "x.ent", "--adapt", "frozen"])).unwrap();
        let a = execute(&o, HELLO);
        let b = execute(&o, HELLO);
        assert_eq!(a, b);
        assert_eq!(a.0, EXIT_OK);
    }
}
