//! Differential fuzzing driver: the `cargo test` harness in
//! `crates/workloads/tests/engine_differential.rs` bounded to a CI-sized
//! corpus, exposed as a binary so long campaigns don't need a test
//! timeout.
//!
//! Usage:
//!   cargo run -p ent-bench --release --bin engine_fuzz -- [--fuzz-iters N] [--jobs N]
//!
//! Every seeded program from `ent_workloads::fuzzgen` is executed under
//! all three engines (tree walker, bytecode VM, and the closure-threaded
//! tier at `--tier-up 0`, so every body actually tiers) across a grid of
//! battery levels, fault regimes, and enforcement strategies; any
//! observable divergence between any pair — value, output, stats,
//! energy/time bits, or the rendered event stream — aborts with the
//! offending seed and program source.
//! Under transient the full-surface comparison subsumes the
//! accept/reject verdict and the check counters. Exit status 0 means
//! the corpus agreed everywhere.

use std::fmt::Write as _;
use std::time::Instant;

use ent_core::compile;
use ent_energy::{FaultPlan, Platform};
use ent_runtime::{
    lower_program, render_event, run_lowered, Enforcement, Engine, LoweredProgram, RunResult,
    RuntimeConfig, TierUp,
};
use ent_workloads::{fuzzgen, run_batch};

const BATTERIES: [f64; 3] = [0.15, 0.55, 0.95];

fn observe(prog: &LoweredProgram, r: &RunResult) -> String {
    let mut out = String::new();
    let value = match &r.value {
        Ok(v) => format!("ok:{v:?}"),
        Err(e) => format!("err:{e}"),
    };
    let _ = writeln!(out, "value={value}");
    let _ = writeln!(out, "pretty={:?}", r.value_pretty);
    let _ = writeln!(out, "stats={:?}", r.stats);
    let _ = writeln!(
        out,
        "energy={:016x} time={:016x}",
        r.measurement.energy_j.to_bits(),
        r.measurement.time_s.to_bits(),
    );
    for line in &r.output {
        let _ = writeln!(out, "out|{line}");
    }
    for ev in r.events.iter() {
        let _ = writeln!(out, "ev|{}", render_event(prog, ev));
    }
    out
}

struct SeedReport {
    runs: u64,
    errors: u64,
    divergence: Option<String>,
}

fn fuzz_seed(seed: u64) -> SeedReport {
    let src = fuzzgen::program(seed);
    let compiled = match compile(&src) {
        Ok(c) => c,
        Err(e) => {
            return SeedReport {
                runs: 0,
                errors: 0,
                divergence: Some(format!(
                    "seed {seed}: generator emitted ill-typed program: {e}"
                )),
            }
        }
    };
    let lowered = lower_program(&compiled);
    let mut report = SeedReport {
        runs: 0,
        errors: 0,
        divergence: None,
    };
    for battery in BATTERIES {
        for faults in [None, Some(FaultPlan::chaos())] {
            for enforcement in [Enforcement::Guarded, Enforcement::Transient] {
                let config = |engine| RuntimeConfig {
                    engine,
                    enforcement,
                    battery_level: battery,
                    seed: 7,
                    record_events: true,
                    faults: faults.clone(),
                    fault_seed: 11,
                    // Tier every body immediately so the threaded leg
                    // exercises compiled code, not its bytecode warm-up.
                    tier_up: TierUp::Always,
                    ..RuntimeConfig::default()
                };
                let tree = run_lowered(&lowered, Platform::system_a(), config(Engine::Tree));
                let vm = run_lowered(&lowered, Platform::system_a(), config(Engine::Bytecode));
                let th = run_lowered(&lowered, Platform::system_a(), config(Engine::Threaded));
                report.runs += 1;
                if tree.value.is_err() {
                    report.errors += 1;
                }
                let a = observe(&lowered, &tree);
                for (name, r) in [("bytecode", &vm), ("threaded", &th)] {
                    let b = observe(&lowered, r);
                    if a != b {
                        report.divergence = Some(format!(
                            "seed {seed} battery {battery} faults {} enforce {}:\n--- tree\n{a}\n--- {name}\n{b}\n--- program\n{src}",
                            faults.is_some(),
                            enforcement.name()
                        ));
                        return report;
                    }
                }
            }
        }
    }
    report
}

fn main() {
    let mut iters: u64 = 200;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--fuzz-iters" {
            if let Some(n) = it.next().and_then(|v| v.parse().ok()) {
                iters = n;
            }
        } else if let Some(n) = a.strip_prefix("--fuzz-iters=").and_then(|v| v.parse().ok()) {
            iters = n;
        }
    }
    let jobs = ent_bench::parse_grid_args(0).jobs;

    eprintln!("fuzzing {iters} seeds under all three engines ({jobs} jobs)...");
    let start = Instant::now();
    let seeds: Vec<u64> = (0..iters).collect();
    let reports = run_batch(jobs, &seeds, |&seed| fuzz_seed(seed));

    let mut runs = 0u64;
    let mut errors = 0u64;
    for r in &reports {
        runs += r.runs;
        errors += r.errors;
        if let Some(d) = &r.divergence {
            eprintln!("ENGINE DIVERGENCE\n{d}");
            std::process::exit(1);
        }
    }
    eprintln!(
        "ok: {iters} seeds, {runs} run triples agreed ({errors} error runs exercised) in {:.1}s",
        start.elapsed().as_secs_f64()
    );
    if iters >= 100 && errors == 0 {
        eprintln!("warning: corpus exercised no error paths — generator may have drifted");
        std::process::exit(1);
    }
}
