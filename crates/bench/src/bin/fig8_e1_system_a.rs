//! Regenerates Figure 8: the System A battery-exception (E1) grid — all
//! nine boot × workload combinations per benchmark, with silent
//! counterparts.
//!
//! `--faults <spec> [--fault-seed N]` runs the fault-injected variant of
//! the grid instead: one run per cell under the given fault plan, with
//! the resilience counters (faulted reads, stale serves, degraded
//! decisions) in the table and `results/fig8_chaos.json`. The fault-off
//! invocation is untouched by the flag machinery — its output and
//! `results/fig8_e1_system_a.json` stay bit-identical.

use ent_bench::{fig8, metrics, mode_name, parse_grid_args, render_table};

fn main() {
    let args = parse_grid_args(5);
    if let Some(plan) = &args.faults {
        run_chaos(plan, args.fault_seed, args.jobs);
        return;
    }
    let repeats = args.value as usize;
    println!("Figure 8: System A battery-exception (E1) runs ({repeats} runs averaged)\n");
    let rows = fig8::rows(repeats, args.jobs);
    let metric_rows = fig8::metric_rows(&rows);
    let mut current = "";
    let mut table: Vec<Vec<String>> = Vec::new();
    for r in &rows {
        if r.benchmark != current && !table.is_empty() {
            print_benchmark(current, &table);
            table.clear();
        }
        current = r.benchmark;
        table.push(vec![
            mode_name(r.workload).to_string(),
            mode_name(r.boot).to_string(),
            if r.silent { "silent" } else { "ent" }.to_string(),
            format!("{:.1}", r.energy_j),
            if r.exception { "EnergyException" } else { "-" }.to_string(),
        ]);
    }
    if !table.is_empty() {
        print_benchmark(current, &table);
    }
    match metrics::write("fig8_e1_system_a", "fig8_e1_system_a", &metric_rows) {
        Ok(path) => eprintln!("metrics written to {}", path.display()),
        Err(e) => eprintln!("could not write metrics json: {e}"),
    }
    match metrics::write_sched("fig8_e1_system_a") {
        Ok(path) => eprintln!("scheduler telemetry written to {}", path.display()),
        Err(e) => eprintln!("could not write scheduler telemetry: {e}"),
    }
}

fn run_chaos(plan: &ent_energy::FaultPlan, fault_seed: u64, jobs: usize) {
    println!("Figure 8 (fault-injected): System A E1 grid, fault seed {fault_seed}\n");
    let rows = fig8::chaos_rows(jobs, plan, fault_seed);
    let metric_rows = fig8::chaos_metric_rows(&rows);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.to_string(),
                mode_name(r.workload).to_string(),
                mode_name(r.boot).to_string(),
                if r.silent { "silent" } else { "ent" }.to_string(),
                match r.energy_j {
                    Some(e) => format!("{e:.1}"),
                    None => "failed".to_string(),
                },
                format!(
                    "{}/{}/{}",
                    r.sensor_faults, r.stale_reads, r.degraded_decisions
                ),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "workload",
                "boot",
                "runtime",
                "energy (J)",
                "faults/stale/degraded",
            ],
            &table,
        )
    );
    let failed = rows.iter().filter(|r| r.error.is_some()).count();
    println!("cells failed: {failed} of {}", rows.len());
    match metrics::write("fig8_chaos", "fig8_chaos", &metric_rows) {
        Ok(path) => eprintln!("metrics written to {}", path.display()),
        Err(e) => eprintln!("could not write metrics json: {e}"),
    }
    match metrics::write_sched("fig8_chaos") {
        Ok(path) => eprintln!("scheduler telemetry written to {}", path.display()),
        Err(e) => eprintln!("could not write scheduler telemetry: {e}"),
    }
}

fn print_benchmark(name: &str, table: &[Vec<String>]) {
    println!("== {name} ==");
    println!(
        "{}",
        render_table(
            &[
                "workload mode",
                "boot mode",
                "runtime",
                "energy (J)",
                "violation"
            ],
            table,
        )
    );
}
