//! Regenerates Figure 8: the System A battery-exception (E1) grid — all
//! nine boot × workload combinations per benchmark, with silent
//! counterparts.

use ent_bench::{fig8, metrics, mode_name, parse_grid_args, render_table};

fn main() {
    let args = parse_grid_args(5);
    let repeats = args.value as usize;
    println!("Figure 8: System A battery-exception (E1) runs ({repeats} runs averaged)\n");
    let rows = fig8::rows(repeats, args.jobs);
    let metric_rows: Vec<metrics::Row> = rows
        .iter()
        .map(|r| {
            metrics::Row::new(format!(
                "{}/{}/{}/{}",
                r.benchmark,
                mode_name(r.workload),
                mode_name(r.boot),
                if r.silent { "silent" } else { "ent" }
            ))
            .with("energy_j", r.energy_j)
            .with("exception", if r.exception { 1.0 } else { 0.0 })
            .with("snapshot_failures", r.snapshot_failures as f64)
            .with("dfall_failures", r.dfall_failures as f64)
        })
        .collect();
    let mut current = "";
    let mut table: Vec<Vec<String>> = Vec::new();
    for r in &rows {
        if r.benchmark != current && !table.is_empty() {
            print_benchmark(current, &table);
            table.clear();
        }
        current = r.benchmark;
        table.push(vec![
            mode_name(r.workload).to_string(),
            mode_name(r.boot).to_string(),
            if r.silent { "silent" } else { "ent" }.to_string(),
            format!("{:.1}", r.energy_j),
            if r.exception { "EnergyException" } else { "-" }.to_string(),
        ]);
    }
    if !table.is_empty() {
        print_benchmark(current, &table);
    }
    match metrics::write("fig8_e1_system_a", "fig8_e1_system_a", &metric_rows) {
        Ok(path) => eprintln!("metrics written to {}", path.display()),
        Err(e) => eprintln!("could not write metrics json: {e}"),
    }
}

fn print_benchmark(name: &str, table: &[Vec<String>]) {
    println!("== {name} ==");
    println!(
        "{}",
        render_table(
            &[
                "workload mode",
                "boot mode",
                "runtime",
                "energy (J)",
                "violation"
            ],
            table,
        )
    );
}
