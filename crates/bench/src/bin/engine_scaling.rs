//! Scaling benchmark for the batch engine: the Figure-9 measurement grid
//! (system × benchmark × violating combo, ENT + silent + reference runs)
//! executed sequentially and then with a parallel worker pool, with a
//! determinism fingerprint proving the two passes computed bit-for-bit
//! the same rows.
//!
//! Usage:
//!   cargo run -p ent-bench --release --bin engine_scaling [repeats] [--jobs N]
//!
//! Defaults: 3 repeats, 4 workers for the parallel pass. Writes
//! `BENCH_engine.json` at the workspace root and exits nonzero if the
//! parallel rows diverge from the sequential ones. The speedup is bounded
//! by the host's core count (reported as `host_parallelism`); on a
//! single-core container the interesting number is the fingerprint, not
//! the ratio.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use ent_bench::{fig9, parse_grid_args};
use ent_workloads::resolve_jobs;

/// FNV-1a over every row field, f64s by bit pattern, in job order.
fn fingerprint(rows: &[fig9::Row]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for r in rows {
        eat(r.benchmark.as_bytes());
        eat(&(r.system as u64).to_le_bytes());
        eat(&(r.boot as u64).to_le_bytes());
        eat(&(r.workload as u64).to_le_bytes());
        for v in [
            r.ent_j,
            r.silent_j,
            r.ent_normalized,
            r.silent_normalized,
            r.savings_pct,
        ] {
            eat(&v.to_bits().to_le_bytes());
        }
        eat(&r.snapshot_failures.to_le_bytes());
        eat(&r.dfall_failures.to_le_bytes());
    }
    h
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn main() {
    let args = parse_grid_args(3);
    let repeats = args.value as usize;
    // Unlike the figure binaries (reproducibility-first, jobs default 1),
    // this benchmark exists to exercise the pool: default to 4 workers.
    let jobs_given = std::env::args().any(|a| a == "--jobs" || a.starts_with("--jobs="));
    let jobs = resolve_jobs(if jobs_given { args.jobs } else { 4 });
    let host = std::thread::available_parallelism().map_or(1, usize::from);

    eprintln!(
        "engine scaling: Figure-9 grid, {repeats} repeats, 1 vs {jobs} workers \
         (host parallelism {host})"
    );

    // Pre-warm the compile cache so both timed passes measure pure
    // interpretation, as a long harness session would see.
    let warm = fig9::rows(1, jobs);
    let cells = warm.len();

    let start = Instant::now();
    let seq = fig9::rows(repeats, 1);
    let sequential_s = start.elapsed().as_secs_f64();
    let fp_seq = fingerprint(&seq);

    let start = Instant::now();
    let par = fig9::rows(repeats, jobs);
    let parallel_s = start.elapsed().as_secs_f64();
    let fp_par = fingerprint(&par);

    let deterministic = fp_seq == fp_par;
    let speedup = sequential_s / parallel_s;

    let mut json = String::from("{\n  \"suite\": \"fig9_e1_all\",\n");
    let _ = writeln!(json, "  \"repeats\": {repeats},");
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"host_parallelism\": {host},");
    let _ = writeln!(json, "  \"grid_cells\": {cells},");
    let _ = writeln!(json, "  \"sequential_s\": {sequential_s:.4},");
    let _ = writeln!(json, "  \"parallel_s\": {parallel_s:.4},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.3},");
    let _ = writeln!(json, "  \"fingerprint_sequential\": \"{fp_seq:016x}\",");
    let _ = writeln!(json, "  \"fingerprint_parallel\": \"{fp_par:016x}\",");
    let _ = writeln!(json, "  \"deterministic\": {deterministic},");
    let _ = writeln!(
        json,
        "  \"note\": \"Speedup is bounded by host_parallelism; the determinism \
         fingerprint must match on every host.\""
    );
    json.push_str("}\n");

    let path = repo_root().join("BENCH_engine.json");
    std::fs::write(&path, &json).unwrap();
    eprintln!("wrote {}", path.display());
    eprintln!(
        "sequential {sequential_s:.2}s, parallel ({jobs} workers) {parallel_s:.2}s \
         -> {speedup:.2}x; fingerprint {fp_seq:016x} {}",
        if deterministic {
            "== parallel (deterministic)"
        } else {
            "!= parallel"
        }
    );
    if !deterministic {
        eprintln!("DETERMINISM VIOLATION: parallel rows differ from sequential rows");
        std::process::exit(1);
    }
}
