//! Scaling benchmark for the work-stealing batch engine: the Figure-9
//! measurement grid (system × benchmark × violating combo, ENT + silent +
//! reference runs) swept over worker counts, with determinism
//! fingerprints — faults off *and* on — proving every point computed
//! bit-for-bit the same rows.
//!
//! Usage:
//!   cargo run -p ent-bench --release --bin engine_scaling [repeats] [--jobs N]
//!
//! Defaults: 3 repeats, sweeping jobs ∈ {1, 2, 4, 8}; `--jobs N` replaces
//! the sweep with {1, N}. Writes `BENCH_engine.json` at the workspace
//! root and exits nonzero if any point's rows diverge from the
//! sequential ones. Each data point records the host's core count and its
//! scheduler counters (steals, stolen jobs, owner-side chunk grabs);
//! speedups are reported against the jobs=1 pass **only when the host can
//! actually run workers in parallel** — on a single-core host the ratio
//! measures scheduling overhead, not scaling, so the point carries
//! `"speedup": null` and a note instead of a misleading number.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use ent_bench::{fig8, fig9, parse_grid_args};
use ent_energy::FaultPlan;
use ent_workloads::{resolve_jobs, sched_totals};

/// FNV-1a accumulator over raw bytes.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Fingerprint of the fault-off grid: every row field, f64s by bit
/// pattern, in job order.
fn fingerprint(rows: &[fig9::Row]) -> u64 {
    let mut h = Fnv::new();
    for r in rows {
        h.eat(r.benchmark.as_bytes());
        h.eat(&(r.system as u64).to_le_bytes());
        h.eat(&(r.boot as u64).to_le_bytes());
        h.eat(&(r.workload as u64).to_le_bytes());
        for v in [
            r.ent_j,
            r.silent_j,
            r.ent_normalized,
            r.silent_normalized,
            r.savings_pct,
        ] {
            h.eat(&v.to_bits().to_le_bytes());
        }
        h.eat(&r.snapshot_failures.to_le_bytes());
        h.eat(&r.dfall_failures.to_le_bytes());
    }
    h.0
}

/// Fingerprint of the fault-injected grid, including the resilience
/// counters and any per-cell error strings.
fn fingerprint_chaos(rows: &[fig8::ChaosRow]) -> u64 {
    let mut h = Fnv::new();
    for r in rows {
        h.eat(r.benchmark.as_bytes());
        h.eat(&(r.workload as u64).to_le_bytes());
        h.eat(&(r.boot as u64).to_le_bytes());
        h.eat(&[r.silent as u8]);
        match r.energy_j {
            Some(e) => h.eat(&e.to_bits().to_le_bytes()),
            None => h.eat(b"failed"),
        }
        h.eat(&[r.exception as u8]);
        h.eat(&r.sensor_faults.to_le_bytes());
        h.eat(&r.stale_reads.to_le_bytes());
        h.eat(&r.degraded_decisions.to_le_bytes());
        if let Some(e) = &r.error {
            h.eat(e.as_bytes());
        }
    }
    h.0
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

struct Point {
    jobs: usize,
    elapsed_s: f64,
    fp: u64,
    fp_faults: u64,
    steals: u64,
    stolen_jobs: u64,
    chunks_claimed: u64,
}

/// Scheduler-counter deltas around one timed pass.
fn run_point(repeats: usize, jobs: usize, fault_seed: u64) -> Point {
    let before = sched_totals();
    let start = Instant::now();
    let rows = fig9::rows(repeats, jobs);
    let elapsed_s = start.elapsed().as_secs_f64();
    let chaos = fig8::chaos_rows(jobs, &FaultPlan::chaos(), fault_seed);
    let after = sched_totals();
    Point {
        jobs,
        elapsed_s,
        fp: fingerprint(&rows),
        fp_faults: fingerprint_chaos(&chaos),
        steals: after.steals - before.steals,
        stolen_jobs: after.stolen_jobs - before.stolen_jobs,
        chunks_claimed: after.chunks_claimed - before.chunks_claimed,
    }
}

fn main() {
    let args = parse_grid_args(3);
    let repeats = args.value as usize;
    let host = std::thread::available_parallelism().map_or(1, usize::from);
    // Unlike the figure binaries (reproducibility-first, jobs default 1),
    // this benchmark exists to exercise the pool: sweep worker counts.
    let jobs_given = std::env::args().any(|a| a == "--jobs" || a.starts_with("--jobs="));
    let sweep: Vec<usize> = if jobs_given {
        let n = resolve_jobs(args.jobs);
        if n == 1 {
            vec![1]
        } else {
            vec![1, n]
        }
    } else {
        vec![1, 2, 4, 8]
    };
    let fault_seed = 11;

    eprintln!(
        "engine scaling: Figure-9 grid, {repeats} repeats, jobs sweep {sweep:?} \
         (host parallelism {host})"
    );

    // Pre-warm the compile cache so every timed pass measures pure
    // interpretation, as a long harness session would see.
    let warm = fig9::rows(1, *sweep.last().unwrap());
    let cells = warm.len();

    let points: Vec<Point> = sweep
        .iter()
        .map(|&jobs| run_point(repeats, jobs, fault_seed))
        .collect();
    let base = &points[0];
    let deterministic = points
        .iter()
        .all(|p| p.fp == base.fp && p.fp_faults == base.fp_faults);

    let mut json = String::from("{\n  \"suite\": \"engine_scaling\",\n");
    let _ = writeln!(json, "  \"grid\": \"fig9_e1_all + fig8_chaos\",");
    let _ = writeln!(json, "  \"repeats\": {repeats},");
    let _ = writeln!(json, "  \"host_parallelism\": {host},");
    let _ = writeln!(json, "  \"grid_cells\": {cells},");
    let _ = writeln!(json, "  \"fault_seed\": {fault_seed},");
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"jobs\": {}, \"host_parallelism\": {host}, \"elapsed_s\": {:.4}, ",
            p.jobs, p.elapsed_s
        );
        if p.jobs == 1 {
            json.push_str("\"speedup\": null, \"note\": \"baseline\", ");
        } else if host == 1 {
            json.push_str(
                "\"speedup\": null, \"note\": \"host_parallelism is 1: workers time-slice \
                 one core, so the ratio measures scheduling overhead, not scaling\", ",
            );
        } else {
            let _ = write!(
                json,
                "\"speedup\": {:.3}, \"note\": \"vs the jobs=1 pass\", ",
                base.elapsed_s / p.elapsed_s
            );
        }
        let _ = write!(
            json,
            "\"steals\": {}, \"stolen_jobs\": {}, \"chunks_claimed\": {}, ",
            p.steals, p.stolen_jobs, p.chunks_claimed
        );
        let _ = write!(
            json,
            "\"fingerprint\": \"{:016x}\", \"fingerprint_faults\": \"{:016x}\"}}",
            p.fp, p.fp_faults
        );
        json.push_str(if i + 1 == points.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"fingerprint_sequential\": \"{:016x}\",", base.fp);
    let _ = writeln!(json, "  \"deterministic\": {deterministic},");
    let _ = writeln!(
        json,
        "  \"note\": \"Every point's fingerprints (faults off and on) must equal the \
         jobs=1 baseline on every host; speedups are only meaningful when \
         host_parallelism exceeds 1.\""
    );
    json.push_str("}\n");

    let path = repo_root().join("BENCH_engine.json");
    std::fs::write(&path, &json).unwrap();
    eprintln!("wrote {}", path.display());
    for p in &points {
        eprintln!(
            "jobs {:>2}: {:.2}s, {} steals ({} jobs moved), {} chunk grabs, \
             fingerprint {:016x}/{:016x}",
            p.jobs, p.elapsed_s, p.steals, p.stolen_jobs, p.chunks_claimed, p.fp, p.fp_faults
        );
    }
    if !deterministic {
        eprintln!("DETERMINISM VIOLATION: some point's rows differ from the jobs=1 baseline");
        std::process::exit(1);
    }
    eprintln!(
        "all {} points byte-identical (faults off and on)",
        points.len()
    );
}
