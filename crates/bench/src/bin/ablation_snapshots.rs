//! Ablation study for the snapshot design choices DESIGN.md calls out:
//!
//! * **lazy vs. eager copying** — the paper's compiler tags an object in
//!   place on its first snapshot and only copies on re-snapshots; the
//!   eager ablation copies every time;
//! * **shallow vs. deep copying** — §6.3 argues shallow copies suffice
//!   because tightly-coupled all-dynamic aggregates are rare; the deep
//!   ablation clones the reachable object graph.
//!
//! The workload snapshots one dynamic object holding a chain of plain
//! objects, `N` times, and reports copies made and modeled energy.

use ent_core::compile;
use ent_energy::Platform;
use ent_runtime::{run, RuntimeConfig};

fn workload(snapshots: usize, chain: usize) -> String {
    let mut nested = "new Leaf()".to_string();
    for _ in 0..chain {
        nested = format!("new Node({nested})");
    }
    let snaps: String = (0..snapshots)
        .map(|i| format!("let Holder s{i} = snapshot dh [_, _];\n"))
        .collect();
    format!(
        "modes {{ low <= high; }}
class Leaf {{ }}
class Node {{ Object child; }}
class Holder@mode<? <= H> {{
  Node graph;
  attributor {{ return low; }}
}}
class Main {{
  unit main() {{
    let dh = new Holder({nested});
    {snaps}
    return {{}};
  }}
}}"
    )
}

fn main() {
    let snapshots = 50;
    let chain = 8;
    let src = workload(snapshots, chain);
    let compiled = compile(&src).expect("ablation workload typechecks");

    println!("Snapshot ablation: {snapshots} snapshots of one dynamic object holding an {chain}-object chain\n");
    println!(
        "{:<28} {:>8} {:>10} {:>12}",
        "configuration", "copies", "energy (J)", "vs lazy"
    );
    println!("{}", "-".repeat(62));

    let mut baseline = None;
    for (label, eager, deep) in [
        ("lazy shallow (paper)", false, false),
        ("eager shallow", true, false),
        ("lazy deep", false, true),
        ("eager deep", true, true),
    ] {
        let config = RuntimeConfig {
            eager_copy: eager,
            deep_copy: deep,
            ..RuntimeConfig::default()
        };
        let result = run(&compiled, Platform::system_a(), config);
        result.value.as_ref().expect("ablation run completes");
        let energy = result.measurement.energy_j;
        let base = *baseline.get_or_insert(energy);
        println!(
            "{label:<28} {:>8} {:>10.4} {:>11.2}x",
            result.stats.copies,
            energy,
            energy / base
        );
    }
    println!("\nThe paper's lazy-shallow strategy performs the fewest copies; the");
    println!("deep ablation scales with the aggregate size, which is what motivates");
    println!("the shallow default of §6.3.");
}
