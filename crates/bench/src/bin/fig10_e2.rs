//! Regenerates Figure 10: battery-casing (E2) runs — normalized energy of
//! each boot mode against the full_throttle boot, large workload, all
//! systems.

use ent_bench::{fig10, metrics, mode_name, parse_grid_args, render_table, system_label};

fn main() {
    let args = parse_grid_args(5);
    let repeats = args.value as usize;
    println!("Figure 10: battery-casing (E2) runs ({repeats} runs averaged)\n");
    let data = fig10::rows(repeats, args.jobs);
    let metric_rows: Vec<metrics::Row> = data
        .iter()
        .map(|r| {
            metrics::Row::new(format!(
                "{}/{}/{}",
                system_label(r.system),
                r.benchmark,
                mode_name(r.boot)
            ))
            .with("energy_j", r.energy_j)
            .with("normalized", r.normalized)
            .with("savings_pct", r.savings_pct)
        })
        .collect();
    let rows: Vec<Vec<String>> = data
        .into_iter()
        .map(|r| {
            vec![
                system_label(r.system).to_string(),
                r.benchmark.to_string(),
                mode_name(r.boot).to_string(),
                format!("{:.1}", r.energy_j),
                format!("{:.3}", r.normalized),
                format!("{:.2}%", r.savings_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Sys",
                "benchmark",
                "boot mode",
                "energy (J)",
                "normalized",
                "% saved vs full"
            ],
            &rows,
        )
    );
    match metrics::write("fig10_e2", "fig10_e2", &metric_rows) {
        Ok(path) => eprintln!("metrics written to {}", path.display()),
        Err(e) => eprintln!("could not write metrics json: {e}"),
    }
    match metrics::write_sched("fig10_e2") {
        Ok(path) => eprintln!("scheduler telemetry written to {}", path.display()),
        Err(e) => eprintln!("could not write scheduler telemetry: {e}"),
    }
}
