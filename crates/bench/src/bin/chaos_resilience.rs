//! Chaos-resilience bench: proves the fault-injection layer's three
//! contracts on the Figure-8 E1 suite and writes `BENCH_chaos.json` at
//! the workspace root.
//!
//! 1. **Zero overhead when off**: a run with an installed-but-empty fault
//!    plan is bit-identical to a fault-off run (fingerprint compare).
//! 2. **Determinism**: the full chaos grid run twice with the same fault
//!    seed produces identical rows; a different fault seed diverges.
//! 3. **Isolation**: a batch with one deliberately panicking job
//!    completes, that job alone fails, and every other outcome matches
//!    the panic-free batch.
//!
//! Exits 1 if any contract is violated.
//!
//! Usage:
//!   cargo run -p ent-bench --release --bin chaos_resilience

use std::fmt::Write as _;
use std::path::PathBuf;

use ent_bench::fig8;
use ent_energy::{FaultPlan, PlatformKind};
use ent_runtime::{RunResult, RuntimeConfig};
use ent_workloads::{
    e1_program, lowered_cached, platform_for, prepare_e1, run_batch_outcomes, BatchPolicy,
    BenchmarkSpec, PreparedProgram,
};

const SEED: u64 = 42;
const FAULT_SEED: u64 = 7;

/// Every semantic observable, energy/time by f64 bit pattern.
fn fingerprint(result: &RunResult) -> String {
    let s = &result.stats;
    let value = match &result.value {
        Ok(v) => format!("ok:{v}"),
        Err(e) => format!("err:{e}"),
    };
    format!(
        "steps={};snaps={};exc={};sf={};sr={};dd={};value={};out={};energy={:016x};time={:016x}",
        s.steps,
        s.snapshots,
        s.energy_exceptions,
        s.sensor_faults,
        s.stale_reads,
        s.degraded_decisions,
        value,
        result.output.join("\\n"),
        result.measurement.energy_j.to_bits(),
        result.measurement.time_s.to_bits(),
    )
}

fn e1_suite() -> Vec<(BenchmarkSpec, PreparedProgram)> {
    ent_bench::e_benchmarks(PlatformKind::SystemA)
        .into_iter()
        .map(|spec| {
            let prog = prepare_e1(&spec, PlatformKind::SystemA, 1);
            (spec, prog)
        })
        .collect()
}

/// Contract 1: installed-but-empty plan ≡ no plan, per benchmark.
fn check_zero_overhead(suite: &[(BenchmarkSpec, PreparedProgram)]) -> bool {
    let mut ok = true;
    for (spec, prog) in suite {
        let base = RuntimeConfig {
            seed: SEED,
            battery_level: 0.75,
            ..RuntimeConfig::default()
        };
        let off = prog.run(base.clone());
        let noop = prog.run(RuntimeConfig {
            faults: Some(FaultPlan::default()),
            fault_seed: 99,
            ..base
        });
        if fingerprint(&off) != fingerprint(&noop) {
            eprintln!("  {}: NOOP PLAN PERTURBED THE RUN", spec.name);
            ok = false;
        }
    }
    ok
}

fn chaos_fingerprint(rows: &[fig8::ChaosRow]) -> String {
    let mut out = String::new();
    for r in rows {
        let _ = writeln!(
            out,
            "{}/{}/{}/{} e={:?} err={:?} sf={} sr={} dd={}",
            r.benchmark,
            r.workload,
            r.boot,
            r.silent,
            r.energy_j.map(f64::to_bits),
            r.error,
            r.sensor_faults,
            r.stale_reads,
            r.degraded_decisions,
        );
    }
    out
}

/// Contract 3: one poisoned job fails alone; the rest match the clean
/// batch bit-for-bit.
fn check_batch_isolation() -> (bool, usize) {
    let spec = ent_bench::e_benchmarks(PlatformKind::SystemA)
        .into_iter()
        .next()
        .expect("suite is nonempty");
    let platform = platform_for(&spec, PlatformKind::SystemA);
    let src = e1_program(&spec, &platform, 1);
    let lowered = lowered_cached(spec.name, &src);
    let jobs: Vec<usize> = (0..12).collect();
    let run_one = |&i: &usize| {
        ent_runtime::run_lowered(
            &lowered,
            platform.clone(),
            RuntimeConfig {
                seed: SEED + i as u64,
                battery_level: 0.75,
                ..RuntimeConfig::default()
            },
        )
        .measurement
        .energy_j
        .to_bits()
    };
    let clean = run_batch_outcomes(4, &jobs, &BatchPolicy::default(), |i, _| run_one(i));
    let poisoned = run_batch_outcomes(4, &jobs, &BatchPolicy::default(), |&i, _| {
        assert!(i != 5, "chaos_resilience: deliberate poison job");
        run_one(&i)
    });
    let mut ok = poisoned.len() == jobs.len();
    let mut failed = 0;
    for (i, (c, p)) in clean.iter().zip(&poisoned).enumerate() {
        if i == 5 {
            match p {
                Err(e) if e.message.contains("deliberate poison job") => failed += 1,
                other => {
                    eprintln!("  poison job outcome unexpected: {other:?}");
                    ok = false;
                }
            }
        } else if c != p {
            eprintln!("  job {i}: outcome diverged between clean and poisoned batch");
            ok = false;
        }
    }
    (ok && failed == 1, failed)
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn main() {
    eprintln!("chaos resilience: zero-overhead-when-off check...");
    let suite = e1_suite();
    let zero_overhead = check_zero_overhead(&suite);

    eprintln!("chaos resilience: determinism check (full fig8 grid, twice)...");
    let plan = FaultPlan::chaos();
    let rows_a = fig8::chaos_rows(1, &plan, FAULT_SEED);
    let rows_b = fig8::chaos_rows(4, &plan, FAULT_SEED);
    let deterministic = chaos_fingerprint(&rows_a) == chaos_fingerprint(&rows_b);
    if !deterministic {
        eprintln!("  CHAOS GRID NOT DETERMINISTIC ACROSS RUNS/JOB COUNTS");
    }
    let rows_other = fig8::chaos_rows(1, &plan, FAULT_SEED + 1);
    let seed_sensitive = chaos_fingerprint(&rows_a) != chaos_fingerprint(&rows_other);
    if !seed_sensitive {
        eprintln!("  DIFFERENT FAULT SEED PRODUCED AN IDENTICAL GRID");
    }

    eprintln!("chaos resilience: batch isolation check...");
    let (isolated, _) = check_batch_isolation();
    if !isolated {
        eprintln!("  BATCH ISOLATION VIOLATED");
    }

    let cells = rows_a.len();
    let failed_cells = rows_a.iter().filter(|r| r.error.is_some()).count();
    let sensor_faults: u64 = rows_a.iter().map(|r| r.sensor_faults).sum();
    let stale_reads: u64 = rows_a.iter().map(|r| r.stale_reads).sum();
    let degraded: u64 = rows_a.iter().map(|r| r.degraded_decisions).sum();

    let mut json = String::from("{\n  \"suite\": \"fig8_e1_system_a\",\n");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"fault_seed\": {FAULT_SEED},");
    let _ = writeln!(json, "  \"plan\": \"chaos\",");
    let _ = writeln!(json, "  \"zero_overhead_when_off\": {zero_overhead},");
    let _ = writeln!(json, "  \"deterministic_per_fault_seed\": {deterministic},");
    let _ = writeln!(json, "  \"fault_seed_sensitive\": {seed_sensitive},");
    let _ = writeln!(json, "  \"batch_isolation\": {isolated},");
    let _ = writeln!(json, "  \"cells\": {cells},");
    let _ = writeln!(json, "  \"failed_cells\": {failed_cells},");
    let _ = writeln!(json, "  \"sensor_faults\": {sensor_faults},");
    let _ = writeln!(json, "  \"stale_reads\": {stale_reads},");
    let _ = writeln!(json, "  \"degraded_decisions\": {degraded},");
    let _ = writeln!(
        json,
        "  \"note\": \"Counters are totals over one deterministic fault-injected sweep of the Figure-8 grid. The three booleans are the fault layer's contracts; any false fails this bench.\""
    );
    json.push_str("}\n");

    let path = repo_root().join("BENCH_chaos.json");
    std::fs::write(&path, &json).unwrap();
    eprintln!("wrote {}", path.display());
    eprintln!(
        "cells {cells}, failed {failed_cells}, sensor faults {sensor_faults}, stale {stale_reads}, degraded {degraded}"
    );

    if !(zero_overhead && deterministic && seed_sensitive && isolated) {
        eprintln!("CHAOS RESILIENCE CONTRACT VIOLATED");
        std::process::exit(1);
    }
}
