//! Regenerates Figure 9: E1 normalized energy over the boot/workload
//! combinations where EnergyExceptions are thrown, on Systems A, B, and C,
//! with the percentage savings of ENT versus the silent counterpart.

use ent_bench::{fig9, metrics, mode_name, parse_grid_args, render_table, system_label};

fn main() {
    let args = parse_grid_args(5);
    let repeats = args.value as usize;
    println!("Figure 9: battery-exception (E1) runs on Systems A/B/C ({repeats} runs averaged)");
    println!("Normalized against the silent full_throttle-boot run of the same workload.\n");
    let data = fig9::rows(repeats, args.jobs);
    let metric_rows = fig9::metric_rows(&data);
    let rows: Vec<Vec<String>> = data
        .into_iter()
        .map(|r| {
            vec![
                system_label(r.system).to_string(),
                r.benchmark.to_string(),
                format!("{}/{}", mode_name(r.boot), mode_name(r.workload)),
                format!("{:.3}", r.ent_normalized),
                format!("{:.3}", r.silent_normalized),
                format!("{:.2}%", r.savings_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Sys",
                "benchmark",
                "boot/workload",
                "ENT (norm.)",
                "silent (norm.)",
                "% saved"
            ],
            &rows,
        )
    );
    match metrics::write("fig9_e1_all", "fig9_e1_all", &metric_rows) {
        Ok(path) => eprintln!("metrics written to {}", path.display()),
        Err(e) => eprintln!("could not write metrics json: {e}"),
    }
    match metrics::write_sched("fig9_e1_all") {
        Ok(path) => eprintln!("scheduler telemetry written to {}", path.display()),
        Err(e) => eprintln!("could not write scheduler telemetry: {e}"),
    }
}
