//! Regenerates Figure 9: E1 normalized energy over the boot/workload
//! combinations where EnergyExceptions are thrown, on Systems A, B, and C,
//! with the percentage savings of ENT versus the silent counterpart.

use ent_bench::{fig9, mode_name, render_table, system_label};

fn main() {
    let repeats = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    println!("Figure 9: battery-exception (E1) runs on Systems A/B/C ({repeats} runs averaged)");
    println!("Normalized against the silent full_throttle-boot run of the same workload.\n");
    let rows: Vec<Vec<String>> = fig9::rows(repeats)
        .into_iter()
        .map(|r| {
            vec![
                system_label(r.system).to_string(),
                r.benchmark.to_string(),
                format!("{}/{}", mode_name(r.boot), mode_name(r.workload)),
                format!("{:.3}", r.ent_normalized),
                format!("{:.3}", r.silent_normalized),
                format!("{:.2}%", r.savings_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Sys",
                "benchmark",
                "boot/workload",
                "ENT (norm.)",
                "silent (norm.)",
                "% saved"
            ],
            &rows,
        )
    );
}
