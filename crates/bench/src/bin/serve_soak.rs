//! Chaos-soak bench for the `ent-serve` daemon: runs the deterministic
//! in-process soak ([`ent_serve::soak`]) and writes `BENCH_serve.json`
//! at the workspace root.
//!
//! The soak drives a resident server through sensor-fault pressure,
//! runtime errors, poisoned (always-panicking) programs, compile
//! errors, an admission burst, an energy-budget blowout, an overload
//! flood, and a quarantine parole cycle, on a virtual clock with drain
//! barriers. The acceptance contract, all checked here:
//!
//! 1. **Zero daemon crashes**: no reply channel ever dies.
//! 2. **Byte identity**: every accepted job's reply equals its one-shot
//!    `ent run` byte for byte.
//! 3. **Typed sheds**: shed and quarantined jobs get typed error
//!    replies (counted per class).
//! 4. **Hysteresis**: the mode-transition log never recovers more than
//!    one level at a time.
//! 5. **Replay determinism**: the soak run twice with the same seed —
//!    and with one worker versus four — produces the identical
//!    deterministic record.
//!
//! Exits 1 if any contract is violated.
//!
//! Usage:
//!   cargo run -p ent-bench --release --bin serve_soak [seed]

use std::path::PathBuf;

use ent_bench::parse_grid_args;
use ent_serve::modes::SystemMode;
use ent_serve::soak::{run_soak, SoakConfig};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn main() {
    // Chaos panics are the point of the soak and every one is caught by
    // the worker isolation layer; keep their backtraces out of the
    // bench log while leaving real panics loud.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let is_chaos = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.starts_with("chaos:"));
        if !is_chaos {
            default_hook(info);
        }
    }));

    let args = parse_grid_args(42);
    let cfg = SoakConfig {
        seed: args.value,
        workers: 4,
        flood_jobs: 300,
    };
    eprintln!(
        "serve soak: seed {}, {} workers, flood {} jobs...",
        cfg.seed, cfg.workers, cfg.flood_jobs
    );
    let report = run_soak(&cfg);
    for line in &report.determinism_log {
        eprintln!("  {line}");
    }

    eprintln!("serve soak: replaying with the same seed...");
    let replay = run_soak(&cfg);
    let deterministic = report.deterministic_signature() == replay.deterministic_signature();

    eprintln!("serve soak: replaying with one worker...");
    let solo = run_soak(&SoakConfig { workers: 1, ..cfg });
    let worker_independent = report.deterministic_signature() == solo.deterministic_signature();

    let c = &report.counters;
    let survived = report.daemon_errors == 0
        && replay.daemon_errors == 0
        && solo.daemon_errors == 0
        && report.final_mode == SystemMode::Normal;
    let byte_identical = report.byte_identical && replay.byte_identical && solo.byte_identical;
    let typed_sheds = c.shed_rate_limited > 0
        && c.shed_energy_budget > 0
        && c.shed_quarantined > 0
        && c.shed_fallback > 0;
    let reached_floor = report
        .transitions
        .iter()
        .any(|(_, _, to)| *to == SystemMode::FallbackOnly);

    let json = format!(
        "{{\n  \"bench\": \"serve_soak\",\n  \"survived\": {survived},\n  \
         \"byte_identical\": {byte_identical},\n  \"typed_sheds\": {typed_sheds},\n  \
         \"hysteresis_ok\": {},\n  \"deterministic_replay\": {deterministic},\n  \
         \"worker_count_independent\": {worker_independent},\n  \
         \"reached_fallback_only\": {reached_floor},\n  \"report\": {}\n}}\n",
        report.hysteresis_ok && replay.hysteresis_ok && solo.hysteresis_ok,
        report.to_json(),
    );
    let path = repo_root().join("BENCH_serve.json");
    std::fs::write(&path, &json).unwrap();
    eprintln!("wrote {}", path.display());
    eprintln!(
        "sustained {:.0} req/s, p99 {:.2} ms, shed {} (overloaded {}, rate_limited {}, \
         energy {}, quarantined {}, fallback {}), paroled {}",
        report.req_per_s,
        report.p99_ms,
        c.shed_overloaded
            + c.shed_rate_limited
            + c.shed_energy_budget
            + c.shed_quarantined
            + c.shed_fallback,
        c.shed_overloaded,
        c.shed_rate_limited,
        c.shed_energy_budget,
        c.shed_quarantined,
        c.shed_fallback,
        report.quarantine_paroled,
    );

    if !(survived
        && byte_identical
        && typed_sheds
        && report.hysteresis_ok
        && deterministic
        && worker_independent
        && reached_floor)
    {
        eprintln!("SERVE SOAK CONTRACT VIOLATED");
        std::process::exit(1);
    }
}
