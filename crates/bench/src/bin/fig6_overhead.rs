//! Regenerates Figure 6: benchmark descriptions, statistics, and the
//! percentage energy overhead of ENT's runtime versus a no-op baseline.

use ent_bench::{fig6, metrics, parse_grid_args, render_table};

fn main() {
    let args = parse_grid_args(5);
    let repeats = args.value as usize;
    println!("Figure 6: ENT benchmark descriptions and statistics ({repeats} runs averaged)\n");
    let data = fig6::rows(repeats, args.jobs);
    let metric_rows: Vec<metrics::Row> = data
        .iter()
        .map(|r| metrics::Row::new(r.name).with("overhead_pct", r.overhead_pct))
        .collect();
    let rows: Vec<Vec<String>> = data
        .into_iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.description.to_string(),
                r.systems,
                r.cloc.to_string(),
                r.ent_changes.to_string(),
                format!("{:+.2}%", r.overhead_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "name",
                "description",
                "System",
                "CLOC",
                "ENT Changes",
                "% Energy Overhead"
            ],
            &rows,
        )
    );
    println!("(CLOC and ENT-change counts reproduce the paper's table for context;");
    println!(" the overhead column is measured on this reproduction's runtime.)");
    match metrics::write("fig6_overhead", "fig6_overhead", &metric_rows) {
        Ok(path) => eprintln!("metrics written to {}", path.display()),
        Err(e) => eprintln!("could not write metrics json: {e}"),
    }
    match metrics::write_sched("fig6_overhead") {
        Ok(path) => eprintln!("scheduler telemetry written to {}", path.display()),
        Err(e) => eprintln!("could not write scheduler telemetry: {e}"),
    }
}
