//! Migration-lattice benchmark: the typed/untyped configuration lattice
//! of three batch benchmarks (à la the gradual-typing performance
//! lattices), each point run under **both** enforcement strategies.
//!
//! Every benchmark's work is split across [`COMPONENTS`] pipeline
//! stages; bit `i` of a point's mask decides whether stage `i` is typed
//! (statically moded `this`-sends, no boundary) or untyped (a dynamic
//! `Worker` re-snapshotted at every chunk). Every point performs the
//! identical work sequence, so the per-point overhead against the
//! fully-typed corner isolates what each strategy charges for the
//! remaining dynamism: guarded re-snapshots physically copy
//! already-snapshotted objects, transient re-tags in place but checks
//! every call site.
//!
//! Usage:
//!   cargo run -p ent-bench --release --bin migration_lattice \
//!       [repeats] [--engine tree|bytecode]
//!
//! Defaults: 3 repeats averaged. The strategy grid is swept explicitly
//! (`--enforce` only changes the process default, which this binary
//! overrides per run). Writes `BENCH_lattice.json` at the workspace
//! root.

use std::fmt::Write as _;
use std::path::PathBuf;

use ent_bench::{parse_grid_args, render_table};
use ent_energy::PlatformKind;
use ent_runtime::{run_lowered, Enforcement, RuntimeConfig};
use ent_workloads::{
    benchmark, default_engine, lattice_program, lowered_cached, platform_for, LATTICE_CHUNKS,
};

/// Batch benchmarks swept (each must have `Shape::Batch`).
const BENCHMARKS: [&str; 3] = ["crypto", "sunflow", "batik"];
/// Lattice dimensions: 3 stages → 8 points per benchmark.
const COMPONENTS: u32 = 3;
/// Base measurement seed (repeat `r` runs with `SEED + r`).
const SEED: u64 = 23;

/// One (mask, strategy) cell, averaged over the repeats.
struct Cell {
    energy_j: f64,
    time_s: f64,
    snapshots: u64,
    copies: u64,
    transient_checks: u64,
    transient_failures: u64,
    /// Percent energy overhead vs the same strategy's fully-typed corner.
    overhead_pct: f64,
}

/// One lattice point: both strategies on the same program.
struct Point {
    mask: u32,
    guarded: Cell,
    transient: Cell,
}

struct ProgramSweep {
    name: &'static str,
    points: Vec<Point>,
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn run_cell(
    lowered: &std::sync::Arc<ent_runtime::LoweredProgram>,
    platform: &ent_energy::Platform,
    strategy: Enforcement,
    repeats: u64,
) -> Cell {
    let mut energy_sum = 0.0;
    let mut time_sum = 0.0;
    let mut last = None;
    for r in 0..repeats {
        let config = RuntimeConfig {
            engine: default_engine(),
            enforcement: strategy,
            seed: SEED + r,
            ..RuntimeConfig::default()
        };
        let result = run_lowered(lowered, platform.clone(), config);
        if let Err(e) = &result.value {
            panic!("lattice point failed under {}: {e}", strategy.name());
        }
        energy_sum += result.measurement.energy_j;
        time_sum += result.measurement.time_s;
        last = Some(result.stats);
    }
    let stats = last.expect("at least one repeat");
    let n = repeats as f64;
    Cell {
        energy_j: energy_sum / n,
        time_s: time_sum / n,
        snapshots: stats.snapshots,
        copies: stats.copies,
        transient_checks: stats.transient_checks,
        transient_failures: stats.transient_failures,
        overhead_pct: 0.0,
    }
}

fn sweep(name: &'static str, repeats: u64) -> ProgramSweep {
    let spec = benchmark(name).expect("lattice benchmark exists");
    let platform = platform_for(&spec, PlatformKind::SystemA);
    let n_points = 1u32 << COMPONENTS;
    let mut points: Vec<Point> = (0..n_points)
        .map(|mask| {
            let src = lattice_program(&spec, &platform, mask, COMPONENTS);
            let lowered = lowered_cached(name, &src);
            Point {
                mask,
                guarded: run_cell(&lowered, &platform, Enforcement::Guarded, repeats),
                transient: run_cell(&lowered, &platform, Enforcement::Transient, repeats),
            }
        })
        .collect();
    // The fully-typed corner (all mask bits set) is each strategy's own
    // baseline: overhead measures the cost of the remaining dynamism,
    // not guarded-vs-transient directly.
    let typed = (n_points - 1) as usize;
    let base_g = points[typed].guarded.energy_j;
    let base_t = points[typed].transient.energy_j;
    for p in &mut points {
        p.guarded.overhead_pct = (p.guarded.energy_j / base_g - 1.0) * 100.0;
        p.transient.overhead_pct = (p.transient.energy_j / base_t - 1.0) * 100.0;
    }
    ProgramSweep { name, points }
}

fn cell_json(c: &Cell) -> String {
    format!(
        "{{\"energy_j\": {:.6}, \"time_s\": {:.6}, \"overhead_pct\": {:.4}, \
         \"snapshots\": {}, \"copies\": {}, \"transient_checks\": {}, \
         \"transient_failures\": {}}}",
        c.energy_j,
        c.time_s,
        c.overhead_pct,
        c.snapshots,
        c.copies,
        c.transient_checks,
        c.transient_failures
    )
}

fn main() {
    let args = parse_grid_args(3);
    let repeats = args.value.max(1);
    eprintln!(
        "migration lattice: {} benchmarks x {} points x 2 strategies, {repeats} repeats",
        BENCHMARKS.len(),
        1u32 << COMPONENTS
    );

    let sweeps: Vec<ProgramSweep> = BENCHMARKS.iter().map(|&b| sweep(b, repeats)).collect();

    for s in &sweeps {
        println!(
            "\n{} migration lattice ({} stages, {} chunks/stage):",
            s.name, COMPONENTS, LATTICE_CHUNKS
        );
        let rows: Vec<Vec<String>> = s
            .points
            .iter()
            .map(|p| {
                let typed: String = (0..COMPONENTS)
                    .map(|i| if p.mask & (1 << i) != 0 { 'T' } else { 'U' })
                    .collect();
                vec![
                    typed,
                    format!("{:.3}", p.guarded.energy_j),
                    format!("{:+.2}%", p.guarded.overhead_pct),
                    format!("{}", p.guarded.copies),
                    format!("{:.3}", p.transient.energy_j),
                    format!("{:+.2}%", p.transient.overhead_pct),
                    format!("{}", p.transient.transient_checks),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "stages",
                    "guarded J",
                    "overhead",
                    "copies",
                    "transient J",
                    "overhead",
                    "checks"
                ],
                &rows,
            )
        );
    }

    let mut json = String::from("{\n  \"schema\": \"ent-lattice/1\",\n");
    let _ = writeln!(json, "  \"components\": {COMPONENTS},");
    let _ = writeln!(json, "  \"chunks_per_stage\": {LATTICE_CHUNKS},");
    let _ = writeln!(json, "  \"repeats\": {repeats},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"engine\": \"{}\",", default_engine().name());
    json.push_str("  \"programs\": [\n");
    for (bi, s) in sweeps.iter().enumerate() {
        let _ = writeln!(json, "    {{\"name\": \"{}\", \"points\": [", s.name);
        for (pi, p) in s.points.iter().enumerate() {
            let _ = write!(
                json,
                "      {{\"mask\": {}, \"typed_stages\": {}, \"guarded\": {}, \"transient\": {}}}",
                p.mask,
                p.mask.count_ones(),
                cell_json(&p.guarded),
                cell_json(&p.transient)
            );
            json.push_str(if pi + 1 == s.points.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        json.push_str("    ]}");
        json.push_str(if bi + 1 == sweeps.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"note\": \"overhead_pct is each strategy's energy vs its own fully-typed \
         corner; every point performs the identical work sequence, so the overhead \
         isolates enforcement cost.\""
    );
    json.push_str("}\n");

    let path = repo_root().join("BENCH_lattice.json");
    std::fs::write(&path, &json).unwrap();
    eprintln!("wrote {}", path.display());
}
