//! Overhead of the observability layer over the Figure-6 E2 suite.
//!
//! Measures interpreter throughput (`RunStats::steps` per wall-clock
//! second) in all four on/off configurations of `record_events` and
//! `profile`, asserts the semantics fingerprint is bit-identical across
//! the four (the zero-interference contract), and writes `BENCH_obs.json`
//! at the workspace root with the per-benchmark and geomean overheads.
//!
//! Usage:
//!   cargo run -p ent-bench --release --bin obs_overhead

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use ent_energy::PlatformKind;
use ent_runtime::{default_stack_size, run_lowered, with_interp_stack, RunResult, RuntimeConfig};
use ent_workloads::{all_benchmarks, prepare_e2};

const SEED: u64 = 42;
const BATTERY: f64 = 0.75;
/// Per-configuration measurement budget (seconds of wall time).
const BUDGET_S: f64 = 0.15;

/// The four observability configurations: `(label, record_events, profile)`.
const CONFIGS: [(&str, bool, bool); 4] = [
    ("off", false, false),
    ("events", true, false),
    ("profile", false, true),
    ("both", true, true),
];

fn config(events: bool, profile: bool) -> RuntimeConfig {
    RuntimeConfig {
        battery_level: BATTERY,
        seed: SEED,
        record_events: events,
        profile,
        ..RuntimeConfig::default()
    }
}

/// Every semantic observable, including the split check-failure counters;
/// energy and time compare by f64 bit pattern.
fn fingerprint(result: &RunResult) -> String {
    let s = &result.stats;
    let value = match &result.value {
        Ok(v) => format!("ok:{v}"),
        Err(e) => format!("err:{e}"),
    };
    format!(
        "steps={};snaps={};copies={};exc={};sfail={};dfail={};dyn={};allocs={};value={};pretty={};out={};energy={:016x};time={:016x}",
        s.steps,
        s.snapshots,
        s.copies,
        s.energy_exceptions,
        s.snapshot_failures,
        s.dfall_failures,
        s.dynamic_allocs,
        s.allocs,
        value,
        result.value_pretty.clone().unwrap_or_default(),
        result.output.join("\\n"),
        result.measurement.energy_j.to_bits(),
        result.measurement.time_s.to_bits(),
    )
}

struct Sample {
    name: String,
    steps: u64,
    /// steps/sec per configuration, in `CONFIGS` order.
    sps: [f64; 4],
    semantics_match: bool,
}

fn measure() -> Vec<Sample> {
    // One reusable big-stack worker for the whole measurement loop: every
    // `run_lowered` below is a direct call, not a thread spawn.
    with_interp_stack(default_stack_size(), measure_on_worker)
}

fn measure_on_worker() -> Vec<Sample> {
    let mut samples = Vec::new();
    for spec in all_benchmarks() {
        let prepared = prepare_e2(&spec, PlatformKind::SystemA, 1);
        let (lowered, platform) = (&prepared.lowered, &prepared.platform);

        let plain = run_lowered(lowered, platform.clone(), config(false, false));
        let fp = fingerprint(&plain);
        let steps = plain.stats.steps;

        let mut semantics_match = true;
        let mut sps = [0.0f64; 4];
        for (i, (label, events, profile)) in CONFIGS.iter().enumerate() {
            // Warm-up run doubles as the fingerprint check.
            let warm = run_lowered(lowered, platform.clone(), config(*events, *profile));
            if fingerprint(&warm) != fp {
                semantics_match = false;
                eprintln!("  {} [{}]: FINGERPRINT MISMATCH", spec.name, label);
            }
            let start = Instant::now();
            let mut runs = 0u32;
            while start.elapsed().as_secs_f64() < BUDGET_S || runs < 3 {
                let r = run_lowered(lowered, platform.clone(), config(*events, *profile));
                assert_eq!(r.stats.steps, steps, "{} must be deterministic", spec.name);
                runs += 1;
            }
            sps[i] = steps as f64 * runs as f64 / start.elapsed().as_secs_f64();
        }
        eprintln!(
            "  {:<12} off {:>11.0}  events {:>+6.2}%  profile {:>+6.2}%  both {:>+6.2}%",
            spec.name,
            sps[0],
            overhead_pct(sps[0], sps[1]),
            overhead_pct(sps[0], sps[2]),
            overhead_pct(sps[0], sps[3]),
        );
        samples.push(Sample {
            name: spec.name.to_string(),
            steps,
            sps,
            semantics_match,
        });
    }
    samples
}

/// Slowdown of `on` relative to `off`, in percent (positive = slower).
fn overhead_pct(off_sps: f64, on_sps: f64) -> f64 {
    (off_sps / on_sps - 1.0) * 100.0
}

fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = xs.fold((0.0, 0u32), |(s, n), x| (s + x.ln(), n + 1));
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).exp()
    }
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn main() {
    eprintln!("measuring observability overhead (Figure-6 E2 suite)...");
    let samples = measure();

    let mut json = String::from("{\n  \"suite\": \"fig6_e2_system_a\",\n  \"seed\": 42,\n");
    let _ = writeln!(
        json,
        "  \"configurations\": [\"off\", \"events\", \"profile\", \"both\"],"
    );
    let _ = writeln!(json, "  \"benchmarks\": [");
    for (i, s) in samples.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"steps\": {}, \"off_steps_per_sec\": {:.1}, \"events_steps_per_sec\": {:.1}, \"profile_steps_per_sec\": {:.1}, \"both_steps_per_sec\": {:.1}, \"events_overhead_pct\": {:.3}, \"profile_overhead_pct\": {:.3}, \"both_overhead_pct\": {:.3}, \"semantics_match\": {}}}",
            s.name,
            s.steps,
            s.sps[0],
            s.sps[1],
            s.sps[2],
            s.sps[3],
            overhead_pct(s.sps[0], s.sps[1]),
            overhead_pct(s.sps[0], s.sps[2]),
            overhead_pct(s.sps[0], s.sps[3]),
            s.semantics_match
        );
        json.push_str(if i + 1 == samples.len() { "\n" } else { ",\n" });
    }
    let _ = writeln!(json, "  ],");
    let off_geo = geomean(samples.iter().map(|s| s.sps[0]));
    // Geomean of throughput ratios, reported as a percentage slowdown.
    let geo_overhead =
        |cfg: usize| (geomean(samples.iter().map(|s| s.sps[0] / s.sps[cfg])) - 1.0) * 100.0;
    let identical = samples.iter().all(|s| s.semantics_match);
    let _ = writeln!(json, "  \"off_steps_per_sec_geomean\": {off_geo:.1},");
    let _ = writeln!(
        json,
        "  \"events_overhead_pct_geomean\": {:.3},",
        geo_overhead(1)
    );
    let _ = writeln!(
        json,
        "  \"profile_overhead_pct_geomean\": {:.3},",
        geo_overhead(2)
    );
    let _ = writeln!(
        json,
        "  \"both_overhead_pct_geomean\": {:.3},",
        geo_overhead(3)
    );
    let _ = writeln!(json, "  \"semantics_identical\": {identical},");
    let _ = writeln!(
        json,
        "  \"note\": \"The E2 programs run in tens of microseconds, so the profile-on columns are dominated by the fixed per-run report construction (~20us), not by interpreter slowdown; the off and events columns are the zero-overhead-when-off contract.\""
    );
    json.push_str("}\n");

    let path = repo_root().join("BENCH_obs.json");
    std::fs::write(&path, &json).unwrap();
    eprintln!("wrote {}", path.display());
    eprintln!(
        "geomean overhead: events {:+.2}%  profile {:+.2}%  both {:+.2}%",
        geo_overhead(1),
        geo_overhead(2),
        geo_overhead(3)
    );
    if !identical {
        eprintln!("SEMANTICS MISMATCH: observability perturbed a run");
        std::process::exit(1);
    }
}
