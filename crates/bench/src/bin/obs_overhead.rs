//! Overhead of the observability layer over the Figure-6 E2 suite.
//!
//! Measures interpreter throughput (`RunStats::steps` per wall-clock
//! second) in six configurations of `record_events` × `ProfileMode`
//! (off, events, exact profile, exact+events, sampled profile,
//! sampled+events), asserts the semantics fingerprint is bit-identical
//! across all of them (the zero-interference contract), runs a
//! sampled-vs-exact agreement pass (top-5 exclusive-steps rank overlap
//! and CI coverage of the exact values), and writes `BENCH_obs.json`
//! at the workspace root.
//!
//! The run also applies a regression check for pathological interaction
//! between the event ring and the profiler: any benchmark whose `both`
//! overhead exceeds 2× the sum of its `events` and `profile` overheads
//! (and is material, >20 points) is flagged in `overhead_anomalies`.
//!
//! Usage:
//!   cargo run -p ent-bench --release --bin obs_overhead

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use ent_energy::PlatformKind;
use ent_runtime::{
    default_stack_size, run_lowered, with_interp_stack, ProfileMode, RunResult, RuntimeConfig,
};
use ent_workloads::{all_benchmarks, prepare_e2};

const SEED: u64 = 42;
const BATTERY: f64 = 0.75;
/// Per-configuration measurement budget (seconds of wall time).
const BUDGET_S: f64 = 0.15;
/// Sample period for the agreement pass: finer than the default so even
/// the smallest E2 program (~1.2k steps) takes enough samples for a
/// meaningful rank comparison. The overhead columns use the default.
const AGREEMENT_PERIOD: u64 = 16;

/// The measured configurations: `(label, record_events, profile mode)`.
fn configs() -> [(&'static str, bool, ProfileMode); 6] {
    [
        ("off", false, ProfileMode::Off),
        ("events", true, ProfileMode::Off),
        ("profile", false, ProfileMode::Exact),
        ("both", true, ProfileMode::Exact),
        ("sampled", false, ProfileMode::sampled_default()),
        ("sampled_events", true, ProfileMode::sampled_default()),
    ]
}

fn config(events: bool, profile: ProfileMode) -> RuntimeConfig {
    RuntimeConfig {
        battery_level: BATTERY,
        seed: SEED,
        record_events: events,
        profile,
        ..RuntimeConfig::default()
    }
}

/// Every semantic observable, including the split check-failure counters;
/// energy and time compare by f64 bit pattern.
fn fingerprint(result: &RunResult) -> String {
    let s = &result.stats;
    let value = match &result.value {
        Ok(v) => format!("ok:{v}"),
        Err(e) => format!("err:{e}"),
    };
    format!(
        "steps={};snaps={};copies={};exc={};sfail={};dfail={};dyn={};allocs={};value={};pretty={};out={};energy={:016x};time={:016x}",
        s.steps,
        s.snapshots,
        s.copies,
        s.energy_exceptions,
        s.snapshot_failures,
        s.dfall_failures,
        s.dynamic_allocs,
        s.allocs,
        value,
        result.value_pretty.clone().unwrap_or_default(),
        result.output.join("\\n"),
        result.measurement.energy_j.to_bits(),
        result.measurement.time_s.to_bits(),
    )
}

struct Sample {
    name: String,
    steps: u64,
    /// steps/sec per configuration, in `configs()` order.
    sps: [f64; 6],
    semantics_match: bool,
    agreement: Agreement,
}

/// Sampled-vs-exact agreement for one benchmark.
struct Agreement {
    /// Captures the sampled run took (at `AGREEMENT_PERIOD`).
    samples: u64,
    /// Overlap between the top-5 methods by exact exclusive steps and by
    /// sampled exclusive-steps estimate, as a fraction of the compared
    /// rank depth.
    top5_overlap: f64,
    /// Fraction of exact-profile methods whose exact exclusive steps lie
    /// inside the sampled 95% CI (methods the sampler never saw score
    /// against the zero-hit Wilson interval).
    ci_coverage: f64,
}

/// Upper bound of the 95% Wilson interval at zero hits, as a proportion:
/// the CI a method absent from the sampled report implicitly carries.
fn wilson_zero_hi(n: u64) -> f64 {
    if n == 0 {
        return 1.0;
    }
    const Z: f64 = 1.959963984540054;
    let z2 = Z * Z;
    z2 / (n as f64 + z2)
}

fn measure() -> Vec<Sample> {
    // One reusable big-stack worker for the whole measurement loop: every
    // `run_lowered` below is a direct call, not a thread spawn.
    with_interp_stack(default_stack_size(), measure_on_worker)
}

fn measure_on_worker() -> Vec<Sample> {
    let mut samples = Vec::new();
    for spec in all_benchmarks() {
        let prepared = prepare_e2(&spec, PlatformKind::SystemA, 1);
        let (lowered, platform) = (&prepared.lowered, &prepared.platform);

        let plain = run_lowered(lowered, platform.clone(), config(false, ProfileMode::Off));
        let fp = fingerprint(&plain);
        let steps = plain.stats.steps;

        let mut semantics_match = true;
        let mut sps = [0.0f64; 6];
        for (i, (label, events, profile)) in configs().iter().enumerate() {
            // Warm-up run doubles as the fingerprint check.
            let warm = run_lowered(lowered, platform.clone(), config(*events, *profile));
            if fingerprint(&warm) != fp {
                semantics_match = false;
                eprintln!("  {} [{}]: FINGERPRINT MISMATCH", spec.name, label);
            }
            let start = Instant::now();
            let mut runs = 0u32;
            while start.elapsed().as_secs_f64() < BUDGET_S || runs < 3 {
                let r = run_lowered(lowered, platform.clone(), config(*events, *profile));
                assert_eq!(r.stats.steps, steps, "{} must be deterministic", spec.name);
                runs += 1;
            }
            sps[i] = steps as f64 * runs as f64 / start.elapsed().as_secs_f64();
        }

        let agreement = agreement_pass(lowered, platform);
        eprintln!(
            "  {:<12} off {:>11.0}  events {:>+6.2}%  profile {:>+6.2}%  both {:>+6.2}%  sampled {:>+6.2}%  (agree: top5 {:.2}, ci {:.2})",
            spec.name,
            sps[0],
            overhead_pct(sps[0], sps[1]),
            overhead_pct(sps[0], sps[2]),
            overhead_pct(sps[0], sps[3]),
            overhead_pct(sps[0], sps[4]),
            agreement.top5_overlap,
            agreement.ci_coverage,
        );
        samples.push(Sample {
            name: spec.name.to_string(),
            steps,
            sps,
            semantics_match,
            agreement,
        });
    }
    samples
}

/// Runs one exact and one sampled profile (finer period) and scores the
/// sampled estimates against the exact ground truth.
fn agreement_pass(
    lowered: &ent_runtime::LoweredProgram,
    platform: &ent_energy::Platform,
) -> Agreement {
    let exact = run_lowered(lowered, platform.clone(), config(false, ProfileMode::Exact));
    let sampled = run_lowered(
        lowered,
        platform.clone(),
        config(
            false,
            ProfileMode::Sampled {
                period: AGREEMENT_PERIOD,
                seed: ProfileMode::DEFAULT_SAMPLE_SEED,
            },
        ),
    );
    let exact = exact
        .profile
        .as_ref()
        .and_then(|p| p.as_exact())
        .expect("exact profile requested");
    let sampled = sampled
        .profile
        .as_ref()
        .and_then(|p| p.as_sampled())
        .expect("sampled profile requested");

    // Top-5 by exclusive steps, both sides.
    let mut exact_rank: Vec<(&str, u64)> = exact
        .methods
        .iter()
        .map(|m| (m.name.as_str(), m.exclusive.steps))
        .collect();
    exact_rank.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    let mut sampled_rank: Vec<(&str, f64)> = sampled
        .methods
        .iter()
        .map(|m| (m.name.as_str(), m.est_steps_excl))
        .collect();
    sampled_rank.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    let depth = 5.min(exact_rank.len()).min(sampled_rank.len());
    let top5_overlap = if depth == 0 {
        1.0
    } else {
        let top_exact: Vec<&str> = exact_rank[..depth].iter().map(|(n, _)| *n).collect();
        let hits = sampled_rank[..depth]
            .iter()
            .filter(|(n, _)| top_exact.contains(n))
            .count();
        hits as f64 / depth as f64
    };

    // CI coverage of the exact exclusive steps, over every exact method.
    let by_name: HashMap<&str, &ent_runtime::SampledMethod> = sampled
        .methods
        .iter()
        .map(|m| (m.name.as_str(), m))
        .collect();
    let total_steps = sampled.total_steps as f64;
    let zero_hi = wilson_zero_hi(sampled.samples) * total_steps;
    let mut covered = 0usize;
    for m in &exact.methods {
        let truth = m.exclusive.steps as f64;
        let (lo, hi) = match by_name.get(m.name.as_str()) {
            Some(sm) => sm.ci_steps_excl,
            None => (0.0, zero_hi),
        };
        if lo <= truth && truth <= hi {
            covered += 1;
        }
    }
    let ci_coverage = if exact.methods.is_empty() {
        1.0
    } else {
        covered as f64 / exact.methods.len() as f64
    };

    Agreement {
        samples: sampled.samples,
        top5_overlap,
        ci_coverage,
    }
}

/// Slowdown of `on` relative to `off`, in percent (positive = slower).
fn overhead_pct(off_sps: f64, on_sps: f64) -> f64 {
    (off_sps / on_sps - 1.0) * 100.0
}

fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = xs.fold((0.0, 0u32), |(s, n), x| (s + x.ln(), n + 1));
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).exp()
    }
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn main() {
    eprintln!("measuring observability overhead (Figure-6 E2 suite)...");
    let samples = measure();

    // Regression check: `both` costing far more than its parts means the
    // event ring and the profiler are interacting pathologically (the
    // newpipe anomaly class). Only material gaps count — these programs
    // run in tens of microseconds, so percentages jitter.
    let anomalies: Vec<&Sample> = samples
        .iter()
        .filter(|s| {
            let events = overhead_pct(s.sps[0], s.sps[1]).max(0.0);
            let profile = overhead_pct(s.sps[0], s.sps[2]).max(0.0);
            let both = overhead_pct(s.sps[0], s.sps[3]);
            both > 2.0 * (events + profile) && both - (events + profile) > 20.0
        })
        .collect();
    for s in &anomalies {
        eprintln!(
            "  ANOMALY {}: both {:+.1}% exceeds 2x(events {:+.1}% + profile {:+.1}%)",
            s.name,
            overhead_pct(s.sps[0], s.sps[3]),
            overhead_pct(s.sps[0], s.sps[1]),
            overhead_pct(s.sps[0], s.sps[2]),
        );
    }

    let mut json = String::from("{\n  \"suite\": \"fig6_e2_system_a\",\n  \"seed\": 42,\n");
    let _ = writeln!(
        json,
        "  \"configurations\": [\"off\", \"events\", \"profile\", \"both\", \"sampled\", \"sampled_events\"],"
    );
    let _ = writeln!(
        json,
        "  \"sample_period\": {},",
        ProfileMode::DEFAULT_SAMPLE_PERIOD
    );
    let _ = writeln!(json, "  \"benchmarks\": [");
    for (i, s) in samples.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"steps\": {}, \"off_steps_per_sec\": {:.1}, \"events_steps_per_sec\": {:.1}, \"profile_steps_per_sec\": {:.1}, \"both_steps_per_sec\": {:.1}, \"sampled_steps_per_sec\": {:.1}, \"sampled_events_steps_per_sec\": {:.1}, \"events_overhead_pct\": {:.3}, \"profile_overhead_pct\": {:.3}, \"both_overhead_pct\": {:.3}, \"sampled_overhead_pct\": {:.3}, \"sampled_events_overhead_pct\": {:.3}, \"semantics_match\": {}}}",
            s.name,
            s.steps,
            s.sps[0],
            s.sps[1],
            s.sps[2],
            s.sps[3],
            s.sps[4],
            s.sps[5],
            overhead_pct(s.sps[0], s.sps[1]),
            overhead_pct(s.sps[0], s.sps[2]),
            overhead_pct(s.sps[0], s.sps[3]),
            overhead_pct(s.sps[0], s.sps[4]),
            overhead_pct(s.sps[0], s.sps[5]),
            s.semantics_match
        );
        json.push_str(if i + 1 == samples.len() { "\n" } else { ",\n" });
    }
    let _ = writeln!(json, "  ],");
    let off_geo = geomean(samples.iter().map(|s| s.sps[0]));
    // Geomean of throughput ratios, reported as a percentage slowdown.
    let geo_overhead =
        |cfg: usize| (geomean(samples.iter().map(|s| s.sps[0] / s.sps[cfg])) - 1.0) * 100.0;
    let identical = samples.iter().all(|s| s.semantics_match);
    let _ = writeln!(json, "  \"off_steps_per_sec_geomean\": {off_geo:.1},");
    let _ = writeln!(
        json,
        "  \"events_overhead_pct_geomean\": {:.3},",
        geo_overhead(1)
    );
    let _ = writeln!(
        json,
        "  \"profile_overhead_pct_geomean\": {:.3},",
        geo_overhead(2)
    );
    let _ = writeln!(
        json,
        "  \"both_overhead_pct_geomean\": {:.3},",
        geo_overhead(3)
    );
    let _ = writeln!(
        json,
        "  \"sampled_overhead_pct_geomean\": {:.3},",
        geo_overhead(4)
    );
    let _ = writeln!(
        json,
        "  \"sampled_events_overhead_pct_geomean\": {:.3},",
        geo_overhead(5)
    );
    let _ = writeln!(json, "  \"semantics_identical\": {identical},");
    let _ = write!(json, "  \"overhead_anomalies\": [");
    for (i, s) in anomalies.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        let _ = write!(json, "\"{}\"", s.name);
    }
    let _ = writeln!(json, "],");

    // Sampled-vs-exact agreement section.
    let overlap_mean = samples
        .iter()
        .map(|s| s.agreement.top5_overlap)
        .sum::<f64>()
        / samples.len() as f64;
    let coverage_mean =
        samples.iter().map(|s| s.agreement.ci_coverage).sum::<f64>() / samples.len() as f64;
    let _ = writeln!(json, "  \"agreement\": {{");
    let _ = writeln!(json, "    \"sample_period\": {AGREEMENT_PERIOD},");
    let _ = writeln!(json, "    \"benchmarks\": [");
    for (i, s) in samples.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"name\": \"{}\", \"samples\": {}, \"top5_overlap\": {:.3}, \"ci_coverage\": {:.3}}}",
            s.name, s.agreement.samples, s.agreement.top5_overlap, s.agreement.ci_coverage
        );
        json.push_str(if i + 1 == samples.len() { "\n" } else { ",\n" });
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(json, "    \"top5_overlap_mean\": {overlap_mean:.3},");
    let _ = writeln!(json, "    \"ci_coverage_mean\": {coverage_mean:.3}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"note\": \"The E2 programs run in tens of microseconds, so the exact-profile columns are dominated by the fixed per-run report construction (~20us), not by interpreter slowdown; the off and events columns are the zero-overhead-when-off contract. The sampled columns use the default period; the agreement pass uses a finer period so every benchmark takes enough samples to rank.\""
    );
    json.push_str("}\n");

    let path = repo_root().join("BENCH_obs.json");
    std::fs::write(&path, &json).unwrap();
    eprintln!("wrote {}", path.display());
    eprintln!(
        "geomean overhead: events {:+.2}%  profile {:+.2}%  both {:+.2}%  sampled {:+.2}%  sampled+events {:+.2}%",
        geo_overhead(1),
        geo_overhead(2),
        geo_overhead(3),
        geo_overhead(4),
        geo_overhead(5)
    );
    eprintln!(
        "agreement: top5 overlap mean {overlap_mean:.3}, ci coverage mean {coverage_mean:.3}"
    );
    if !identical {
        eprintln!("SEMANTICS MISMATCH: observability perturbed a run");
        std::process::exit(1);
    }
}
