//! Interpreter perf baseline over the Figure-6 benchmark suite.
//!
//! Measures raw interpreter throughput (`RunStats::steps` per wall-clock
//! second) for every benchmark's E2 program at a fixed seed, under all
//! three execution engines (the recursive tree walker, the
//! register-bytecode VM, and the closure-threaded tier), plus a semantics
//! fingerprint (stats, output, pretty value, energy bits) so the faster
//! engines can prove they compute *exactly* the same thing — with fault
//! injection on as well as off.
//!
//! Usage:
//!   cargo run -p ent-bench --release --bin perf_baseline -- --phase baseline
//!     captures the reference numbers (tree engine) into
//!     crates/bench/data/perf_baseline.txt
//!   cargo run -p ent-bench --release --bin perf_baseline [-- --jobs N] [--engine E]
//!     measures both engines (or just E), compares against the stored
//!     baseline, and writes BENCH_interp.json at the workspace root.
//!
//! `--jobs` parallelizes the compile + fingerprint-verification phase; the
//! throughput timing loop always runs sequentially (concurrent timing on a
//! shared machine would measure contention, not the interpreter). Timing
//! runs in rounds after a *time-bounded* warmup (at least
//! [`WARMUP_RUNS`] runs and [`WARMUP_S`] seconds — long enough to settle
//! caches, branch predictors, and the threaded tier's hot counters); the
//! reported throughput is the **median** round, which shrugs off the
//! one-off scheduling hiccups that used to push findbugs/sunflow past 10%
//! RSD, and each benchmark still reports the honest relative standard
//! deviation across rounds so a noisy number is visibly noisy.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use ent_energy::{FaultPlan, PlatformKind};
use ent_runtime::{
    default_stack_size, run_lowered, with_interp_stack, Engine, RunResult, RuntimeConfig,
};
use ent_workloads::{all_benchmarks, prepare_e2, run_batch};

const SEED: u64 = 42;
const BATTERY: f64 = 0.75;
/// Per-benchmark, per-engine measurement budget (seconds of wall time).
const BUDGET_S: f64 = 0.3;
/// Timing rounds per engine (the RSD sample size; the reported number is
/// the median round).
const ROUNDS: usize = 6;
/// Untimed runs before the first timing round (a floor — warmup also
/// runs for at least [`WARMUP_S`] seconds).
const WARMUP_RUNS: u32 = 3;
/// Minimum untimed warmup wall time per engine, seconds.
const WARMUP_S: f64 = 0.05;

const ENGINES: [Engine; 3] = [Engine::Tree, Engine::Bytecode, Engine::Threaded];

struct EngineSample {
    steps_per_sec: f64,
    wall_ms_per_run: f64,
    /// Relative standard deviation of the per-round throughput, percent.
    rsd_pct: f64,
}

struct Sample {
    name: String,
    steps: u64,
    /// One measurement per engine probed, in the order requested.
    by_engine: Vec<(Engine, EngineSample)>,
    /// Plain-run fingerprint (identical across engines by construction:
    /// verification asserts it, faults off and on, before timing starts).
    fingerprint: String,
}

fn config(engine: Engine) -> RuntimeConfig {
    RuntimeConfig {
        battery_level: BATTERY,
        seed: SEED,
        engine,
        // Measure the threaded tier itself, not its bytecode warm-up
        // laps: compile every body on first entry.
        tier_up: match engine {
            Engine::Threaded => ent_runtime::TierUp::Always,
            _ => ent_runtime::TierUp::default(),
        },
        ..RuntimeConfig::default()
    }
}

fn faulted_config(engine: Engine) -> RuntimeConfig {
    RuntimeConfig {
        faults: Some(FaultPlan::chaos()),
        fault_seed: 17,
        ..config(engine)
    }
}

/// A semantics fingerprint: every observable the execution engine must
/// preserve, in one `|`-separated line. Energy and time are compared by
/// f64 bit pattern — "close" is not "identical".
fn fingerprint(result: &RunResult) -> String {
    let s = &result.stats;
    let value = match &result.value {
        Ok(v) => format!("ok:{v}"),
        Err(e) => format!("err:{e}"),
    };
    format!(
        "steps={};snaps={};copies={};exc={};dyn={};allocs={};value={};pretty={};out={};energy={:016x};time={:016x}",
        s.steps,
        s.snapshots,
        s.copies,
        s.energy_exceptions,
        s.dynamic_allocs,
        s.allocs,
        value,
        result.value_pretty.clone().unwrap_or_default(),
        result.output.join("\\n"),
        result.measurement.energy_j.to_bits(),
        result.measurement.time_s.to_bits(),
    )
}

fn measure(jobs: usize, engines: &[Engine]) -> Vec<Sample> {
    // Phase 1 — compile (through the engine's shared cache), warm up, and
    // verify fingerprints. Batch-parallel: each job is one benchmark.
    // Every engine must match the first engine's fingerprint, both on the
    // plain configuration and under chaos fault injection.
    let specs = all_benchmarks();
    let reference = engines[0];
    let verified = run_batch(jobs, &specs, |spec| {
        let prog = prepare_e2(spec, PlatformKind::SystemA, 1);
        let rl = |c: RuntimeConfig| run_lowered(&prog.lowered, prog.platform.clone(), c);
        let warm = rl(config(reference));
        let fp = fingerprint(&warm);
        let fp_faulted = fingerprint(&rl(faulted_config(reference)));

        for &engine in engines {
            assert_eq!(
                fingerprint(&rl(config(engine))),
                fp,
                "{}: {} disagrees with {} on the plain run",
                spec.name,
                engine.name(),
                reference.name()
            );
            assert_eq!(
                fingerprint(&rl(faulted_config(engine))),
                fp_faulted,
                "{}: {} disagrees with {} under fault injection",
                spec.name,
                engine.name(),
                reference.name()
            );
            // The observability layer must be a pure observer: a run with
            // the event ring and the profiler enabled computes bit-for-bit
            // the same thing as the plain run.
            let observed = rl(RuntimeConfig {
                record_events: true,
                profile: ent_runtime::ProfileMode::Exact,
                ..config(engine)
            });
            assert_eq!(
                fingerprint(&observed),
                fp,
                "{}: enabling events+profile changed the {} fingerprint",
                spec.name,
                engine.name()
            );
        }
        (prog, fp, warm.stats.steps)
    });

    // Phase 2 — the throughput timing loop: strictly sequential, on one
    // reusable big-stack worker so each `run_lowered` is a direct call.
    // Per engine: untimed warmup runs, then `ROUNDS` timed rounds whose
    // spread is the reported RSD.
    with_interp_stack(default_stack_size(), || {
        specs
            .iter()
            .zip(verified)
            .map(|(spec, (prog, fp, steps))| {
                let by_engine = engines
                    .iter()
                    .map(|&engine| {
                        let run_once = || {
                            let r =
                                run_lowered(&prog.lowered, prog.platform.clone(), config(engine));
                            assert_eq!(
                                r.stats.steps,
                                steps,
                                "{} must be deterministic under {}",
                                spec.name,
                                engine.name()
                            );
                        };
                        // Time-bounded warmup: at least WARMUP_RUNS runs
                        // *and* WARMUP_S seconds, so short benchmarks get
                        // enough laps to settle before the first round.
                        let warm_start = Instant::now();
                        let mut warm_runs = 0u32;
                        while warm_runs < WARMUP_RUNS
                            || warm_start.elapsed().as_secs_f64() < WARMUP_S
                        {
                            run_once();
                            warm_runs += 1;
                        }
                        let mut round_sps = Vec::with_capacity(ROUNDS);
                        let mut total_runs = 0u32;
                        let round_budget = BUDGET_S / ROUNDS as f64;
                        for _ in 0..ROUNDS {
                            let start = Instant::now();
                            let mut runs = 0u32;
                            while start.elapsed().as_secs_f64() < round_budget || runs < 3 {
                                run_once();
                                runs += 1;
                            }
                            let wall = start.elapsed().as_secs_f64();
                            round_sps.push(steps as f64 * runs as f64 / wall);
                            total_runs += runs;
                        }
                        // Median-of-rounds throughput: robust against a
                        // single descheduled round. RSD stays the honest
                        // spread of *all* rounds.
                        let mut sorted = round_sps.clone();
                        sorted.sort_by(f64::total_cmp);
                        let median = if sorted.len() % 2 == 1 {
                            sorted[sorted.len() / 2]
                        } else {
                            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
                        };
                        let mean = round_sps.iter().sum::<f64>() / round_sps.len() as f64;
                        let var = round_sps
                            .iter()
                            .map(|x| (x - mean) * (x - mean))
                            .sum::<f64>()
                            / round_sps.len() as f64;
                        let sample = EngineSample {
                            steps_per_sec: median,
                            wall_ms_per_run: steps as f64 / median * 1000.0,
                            rsd_pct: var.sqrt() / mean * 100.0,
                        };
                        eprintln!(
                            "  {:<12} {:<8} {:>12.0} steps/s  ({} steps, {:.3} ms/run, {} runs, RSD {:.1}%)",
                            spec.name,
                            engine.name(),
                            sample.steps_per_sec,
                            steps,
                            sample.wall_ms_per_run,
                            total_runs,
                            sample.rsd_pct
                        );
                        (engine, sample)
                    })
                    .collect();
                Sample {
                    name: spec.name.to_string(),
                    steps,
                    by_engine,
                    fingerprint: fp,
                }
            })
            .collect()
    })
}

fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = xs.fold((0.0, 0u32), |(s, n), x| (s + x.ln(), n + 1));
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).exp()
    }
}

fn repo_root() -> PathBuf {
    // crates/bench -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("data/perf_baseline.txt")
}

fn write_baseline(samples: &[Sample]) {
    let mut out = String::from(
        "# Tree-walking interpreter baseline (Figure-6 E2 suite, System A, seed 42).\n\
         # name<TAB>steps<TAB>steps_per_sec<TAB>wall_ms_per_run<TAB>fingerprint\n",
    );
    for s in samples {
        let tree = &s.by_engine[0].1;
        let _ = writeln!(
            out,
            "{}\t{}\t{:.3}\t{:.6}\t{}",
            s.name, s.steps, tree.steps_per_sec, tree.wall_ms_per_run, s.fingerprint
        );
    }
    let path = baseline_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, out).unwrap();
    eprintln!("baseline written to {}", path.display());
}

struct Baseline {
    steps_per_sec: f64,
    fingerprint: String,
}

fn read_baseline() -> Option<std::collections::BTreeMap<String, Baseline>> {
    let text = std::fs::read_to_string(baseline_path()).ok()?;
    let mut map = std::collections::BTreeMap::new();
    for line in text.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let mut parts = line.splitn(5, '\t');
        let name = parts.next()?.to_string();
        let _steps = parts.next()?;
        let sps: f64 = parts.next()?.parse().ok()?;
        let _wall = parts.next()?;
        let fp = parts.next()?.to_string();
        map.insert(
            name,
            Baseline {
                steps_per_sec: sps,
                fingerprint: fp,
            },
        );
    }
    Some(map)
}

fn main() {
    let capture_baseline = std::env::args().any(|a| a == "baseline")
        || std::env::args()
            .collect::<Vec<_>>()
            .windows(2)
            .any(|w| w[0] == "--phase" && w[1] == "baseline");
    let grid = ent_bench::parse_grid_args(0);
    let engines: Vec<Engine> = if capture_baseline {
        // The stored baseline is the tree walker's numbers by definition.
        vec![Engine::Tree]
    } else {
        match grid.engine {
            Some(e) => vec![e],
            None => ENGINES.to_vec(),
        }
    };

    eprintln!(
        "measuring interpreter throughput (Figure-6 E2 suite) under {}...",
        engines
            .iter()
            .map(|e| e.name())
            .collect::<Vec<_>>()
            .join(" + ")
    );
    let samples = measure(grid.jobs, &engines);

    if capture_baseline {
        write_baseline(&samples);
        return;
    }

    let baseline = read_baseline();
    let mut json = String::from("{\n  \"suite\": \"fig6_e2_system_a\",\n  \"seed\": 42,\n");
    let _ = writeln!(json, "  \"benchmarks\": [");
    let mut speedups = Vec::new();
    let mut engine_speedups = Vec::new();
    let mut threaded_speedups = Vec::new();
    let mut mismatches = Vec::new();
    for (i, s) in samples.iter().enumerate() {
        // The headline number is the last engine probed (bytecode in the
        // default two-engine sweep).
        let fastest = s.by_engine.last().expect("engine measured").1.steps_per_sec;
        let (base_sps, speedup, semantics_match) =
            match baseline.as_ref().and_then(|b| b.get(&s.name)) {
                Some(b) => {
                    let matches = b.fingerprint == s.fingerprint;
                    if !matches {
                        mismatches.push(s.name.clone());
                    }
                    (b.steps_per_sec, fastest / b.steps_per_sec, matches)
                }
                None => (0.0, 0.0, true),
            };
        if speedup > 0.0 {
            speedups.push(speedup);
        }
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"steps\": {}, \"engines\": {{",
            s.name, s.steps
        );
        for (j, (engine, e)) in s.by_engine.iter().enumerate() {
            let _ = write!(
                json,
                "{}\"{}\": {{\"steps_per_sec\": {:.1}, \"wall_ms_per_run\": {:.4}, \"rsd_pct\": {:.2}}}",
                if j == 0 { "" } else { ", " },
                engine.name(),
                e.steps_per_sec,
                e.wall_ms_per_run,
                e.rsd_pct
            );
        }
        let _ = write!(json, "}}");
        let sps_of = |engine: Engine| {
            s.by_engine
                .iter()
                .find(|(e, _)| *e == engine)
                .map(|(_, m)| m.steps_per_sec)
        };
        if let (Some(tree), Some(vm)) = (sps_of(Engine::Tree), sps_of(Engine::Bytecode)) {
            let ratio = vm / tree;
            engine_speedups.push(ratio);
            let _ = write!(json, ", \"bytecode_over_tree\": {ratio:.3}");
        }
        if let (Some(vm), Some(th)) = (sps_of(Engine::Bytecode), sps_of(Engine::Threaded)) {
            let ratio = th / vm;
            threaded_speedups.push(ratio);
            let _ = write!(json, ", \"threaded_over_bytecode\": {ratio:.3}");
        }
        let _ = write!(
            json,
            ", \"baseline_steps_per_sec\": {base_sps:.1}, \"speedup\": {speedup:.3}, \"semantics_match\": {semantics_match}}}"
        );
        json.push_str(if i + 1 == samples.len() { "\n" } else { ",\n" });
    }
    let _ = writeln!(json, "  ],");
    let current_geo = geomean(
        samples
            .iter()
            .map(|s| s.by_engine.last().unwrap().1.steps_per_sec),
    );
    let speedup_geo = geomean(speedups.iter().copied());
    let _ = writeln!(json, "  \"steps_per_sec_geomean\": {current_geo:.1},");
    if !engine_speedups.is_empty() {
        let _ = writeln!(
            json,
            "  \"bytecode_over_tree_geomean\": {:.3},",
            geomean(engine_speedups.iter().copied())
        );
    }
    if !threaded_speedups.is_empty() {
        let _ = writeln!(
            json,
            "  \"threaded_over_bytecode_geomean\": {:.3},",
            geomean(threaded_speedups.iter().copied())
        );
    }
    let _ = writeln!(
        json,
        "  \"speedup_geomean\": {:.3},",
        if speedups.is_empty() {
            0.0
        } else {
            speedup_geo
        }
    );
    let _ = writeln!(json, "  \"semantics_identical\": {}", mismatches.is_empty());
    json.push_str("}\n");

    let path = repo_root().join("BENCH_interp.json");
    std::fs::write(&path, &json).unwrap();
    eprintln!("wrote {}", path.display());

    let metric_rows: Vec<ent_bench::metrics::Row> = samples
        .iter()
        .flat_map(|s| {
            s.by_engine.iter().map(|(engine, e)| {
                ent_bench::metrics::Row::new(format!("{}/{}", s.name, engine.name()))
                    .with("steps", s.steps as f64)
                    .with("steps_per_sec", e.steps_per_sec)
                    .with("wall_ms_per_run", e.wall_ms_per_run)
                    .with("rsd_pct", e.rsd_pct)
            })
        })
        .collect();
    match ent_bench::metrics::write_in(
        repo_root(),
        "perf_baseline",
        "fig6_e2_system_a",
        &metric_rows,
    ) {
        Ok(p) => eprintln!("metrics written to {}", p.display()),
        Err(e) => eprintln!("could not write metrics json: {e}"),
    }
    if !engine_speedups.is_empty() {
        eprintln!(
            "bytecode over tree geomean: {:.2}x",
            geomean(engine_speedups.iter().copied())
        );
    }
    if !threaded_speedups.is_empty() {
        eprintln!(
            "threaded over bytecode geomean: {:.2}x",
            geomean(threaded_speedups.iter().copied())
        );
    }
    eprintln!(
        "steps/sec geomean: {:.0}   speedup vs baseline: {}",
        current_geo,
        if speedups.is_empty() {
            "n/a (no baseline captured)".to_string()
        } else {
            format!("{speedup_geo:.2}x")
        }
    );
    if !mismatches.is_empty() {
        eprintln!("SEMANTICS MISMATCH vs baseline in: {mismatches:?}");
        std::process::exit(1);
    }
}
