//! Interpreter perf baseline over the Figure-6 benchmark suite.
//!
//! Measures raw interpreter throughput (`RunStats::steps` per wall-clock
//! second) for every benchmark's E2 program at a fixed seed, plus a
//! semantics fingerprint (stats, output, pretty value, energy bits) so a
//! faster interpreter can prove it computes *exactly* the same thing.
//!
//! Usage:
//!   cargo run -p ent-bench --release --bin perf_baseline -- --phase baseline
//!     captures the reference numbers into crates/bench/data/perf_baseline.txt
//!   cargo run -p ent-bench --release --bin perf_baseline [-- --jobs N]
//!     measures the current interpreter, compares against the stored
//!     baseline, and writes BENCH_interp.json at the workspace root.
//!
//! `--jobs` parallelizes the compile + fingerprint-verification phase; the
//! throughput timing loop always runs sequentially (concurrent timing on a
//! shared machine would measure contention, not the interpreter).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use ent_energy::PlatformKind;
use ent_runtime::{default_stack_size, run_lowered, with_interp_stack, RunResult, RuntimeConfig};
use ent_workloads::{all_benchmarks, prepare_e2, run_batch};

const SEED: u64 = 42;
const BATTERY: f64 = 0.75;
/// Per-benchmark measurement budget (seconds of wall time).
const BUDGET_S: f64 = 0.25;

struct Sample {
    name: String,
    steps_per_sec: f64,
    wall_ms_per_run: f64,
    steps: u64,
    fingerprint: String,
}

fn config() -> RuntimeConfig {
    RuntimeConfig {
        battery_level: BATTERY,
        seed: SEED,
        ..RuntimeConfig::default()
    }
}

/// A semantics fingerprint: every observable the lowering pass must
/// preserve, in one `|`-separated line. Energy and time are compared by
/// f64 bit pattern — "close" is not "identical".
fn fingerprint(result: &RunResult) -> String {
    let s = &result.stats;
    let value = match &result.value {
        Ok(v) => format!("ok:{v}"),
        Err(e) => format!("err:{e}"),
    };
    format!(
        "steps={};snaps={};copies={};exc={};dyn={};allocs={};value={};pretty={};out={};energy={:016x};time={:016x}",
        s.steps,
        s.snapshots,
        s.copies,
        s.energy_exceptions,
        s.dynamic_allocs,
        s.allocs,
        value,
        result.value_pretty.clone().unwrap_or_default(),
        result.output.join("\\n"),
        result.measurement.energy_j.to_bits(),
        result.measurement.time_s.to_bits(),
    )
}

fn measure(jobs: usize) -> Vec<Sample> {
    // Phase 1 — compile (through the engine's shared cache), warm up, and
    // verify fingerprints. Batch-parallel: each job is one benchmark.
    let specs = all_benchmarks();
    let verified = run_batch(jobs, &specs, |spec| {
        let prog = prepare_e2(spec, PlatformKind::SystemA, 1);
        // Warm-up run doubles as the fingerprint capture.
        let warm = prog.run(config());
        let fp = fingerprint(&warm);

        // The observability layer must be a pure observer: a run with the
        // event ring and the profiler enabled computes bit-for-bit the
        // same thing as the plain run.
        let observed = prog.run(RuntimeConfig {
            record_events: true,
            profile: true,
            ..config()
        });
        assert_eq!(
            fingerprint(&observed),
            fp,
            "{}: enabling events+profile changed the semantics fingerprint",
            spec.name
        );
        (prog, fp, warm.stats.steps)
    });

    // Phase 2 — the throughput timing loop: strictly sequential, on one
    // reusable big-stack worker so each `run_lowered` is a direct call.
    with_interp_stack(default_stack_size(), || {
        specs
            .iter()
            .zip(verified)
            .map(|(spec, (prog, fp, steps))| {
                let start = Instant::now();
                let mut runs = 0u32;
                while start.elapsed().as_secs_f64() < BUDGET_S || runs < 3 {
                    let r = run_lowered(&prog.lowered, prog.platform.clone(), config());
                    assert_eq!(r.stats.steps, steps, "{} must be deterministic", spec.name);
                    runs += 1;
                }
                let wall = start.elapsed().as_secs_f64();
                let total_steps = steps as f64 * runs as f64;
                eprintln!(
                    "  {:<12} {:>12.0} steps/s  ({} steps, {:.2} ms/run, {} runs)",
                    spec.name,
                    total_steps / wall,
                    steps,
                    wall * 1000.0 / runs as f64,
                    runs
                );
                Sample {
                    name: spec.name.to_string(),
                    steps_per_sec: total_steps / wall,
                    wall_ms_per_run: wall * 1000.0 / runs as f64,
                    steps,
                    fingerprint: fp,
                }
            })
            .collect()
    })
}

fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = xs.fold((0.0, 0u32), |(s, n), x| (s + x.ln(), n + 1));
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).exp()
    }
}

fn repo_root() -> PathBuf {
    // crates/bench -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("data/perf_baseline.txt")
}

fn write_baseline(samples: &[Sample]) {
    let mut out = String::from(
        "# Pre-lowering interpreter baseline (Figure-6 E2 suite, System A, seed 42).\n\
         # name<TAB>steps<TAB>steps_per_sec<TAB>wall_ms_per_run<TAB>fingerprint\n",
    );
    for s in samples {
        let _ = writeln!(
            out,
            "{}\t{}\t{:.3}\t{:.6}\t{}",
            s.name, s.steps, s.steps_per_sec, s.wall_ms_per_run, s.fingerprint
        );
    }
    let path = baseline_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, out).unwrap();
    eprintln!("baseline written to {}", path.display());
}

struct Baseline {
    steps_per_sec: f64,
    fingerprint: String,
}

fn read_baseline() -> Option<std::collections::BTreeMap<String, Baseline>> {
    let text = std::fs::read_to_string(baseline_path()).ok()?;
    let mut map = std::collections::BTreeMap::new();
    for line in text.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let mut parts = line.splitn(5, '\t');
        let name = parts.next()?.to_string();
        let _steps = parts.next()?;
        let sps: f64 = parts.next()?.parse().ok()?;
        let _wall = parts.next()?;
        let fp = parts.next()?.to_string();
        map.insert(
            name,
            Baseline {
                steps_per_sec: sps,
                fingerprint: fp,
            },
        );
    }
    Some(map)
}

fn main() {
    let capture_baseline = std::env::args().any(|a| a == "baseline")
        || std::env::args()
            .collect::<Vec<_>>()
            .windows(2)
            .any(|w| w[0] == "--phase" && w[1] == "baseline");
    let jobs = ent_bench::parse_grid_args(0).jobs;

    eprintln!("measuring interpreter throughput (Figure-6 E2 suite)...");
    let samples = measure(jobs);

    if capture_baseline {
        write_baseline(&samples);
        return;
    }

    let baseline = read_baseline();
    let mut json = String::from("{\n  \"suite\": \"fig6_e2_system_a\",\n  \"seed\": 42,\n");
    let _ = writeln!(json, "  \"benchmarks\": [");
    let mut speedups = Vec::new();
    let mut mismatches = Vec::new();
    for (i, s) in samples.iter().enumerate() {
        let (base_sps, speedup, semantics_match) =
            match baseline.as_ref().and_then(|b| b.get(&s.name)) {
                Some(b) => {
                    let matches = b.fingerprint == s.fingerprint;
                    if !matches {
                        mismatches.push(s.name.clone());
                    }
                    (b.steps_per_sec, s.steps_per_sec / b.steps_per_sec, matches)
                }
                None => (0.0, 0.0, true),
            };
        if speedup > 0.0 {
            speedups.push(speedup);
        }
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"steps\": {}, \"steps_per_sec\": {:.1}, \"wall_ms_per_run\": {:.4}, \"baseline_steps_per_sec\": {:.1}, \"speedup\": {:.3}, \"semantics_match\": {}}}",
            s.name, s.steps, s.steps_per_sec, s.wall_ms_per_run, base_sps, speedup, semantics_match
        );
        json.push_str(if i + 1 == samples.len() { "\n" } else { ",\n" });
    }
    let _ = writeln!(json, "  ],");
    let current_geo = geomean(samples.iter().map(|s| s.steps_per_sec));
    let speedup_geo = geomean(speedups.iter().copied());
    let _ = writeln!(json, "  \"steps_per_sec_geomean\": {current_geo:.1},");
    let _ = writeln!(
        json,
        "  \"speedup_geomean\": {:.3},",
        if speedups.is_empty() {
            0.0
        } else {
            speedup_geo
        }
    );
    let _ = writeln!(json, "  \"semantics_identical\": {}", mismatches.is_empty());
    json.push_str("}\n");

    let path = repo_root().join("BENCH_interp.json");
    std::fs::write(&path, &json).unwrap();
    eprintln!("wrote {}", path.display());

    let metric_rows: Vec<ent_bench::metrics::Row> = samples
        .iter()
        .map(|s| {
            ent_bench::metrics::Row::new(&s.name)
                .with("steps", s.steps as f64)
                .with("steps_per_sec", s.steps_per_sec)
                .with("wall_ms_per_run", s.wall_ms_per_run)
        })
        .collect();
    match ent_bench::metrics::write_in(
        repo_root(),
        "perf_baseline",
        "fig6_e2_system_a",
        &metric_rows,
    ) {
        Ok(p) => eprintln!("metrics written to {}", p.display()),
        Err(e) => eprintln!("could not write metrics json: {e}"),
    }
    eprintln!(
        "steps/sec geomean: {:.0}   speedup vs baseline: {}",
        current_geo,
        if speedups.is_empty() {
            "n/a (no baseline captured)".to_string()
        } else {
            format!("{speedup_geo:.2}x")
        }
    );
    if !mismatches.is_empty() {
        eprintln!("SEMANTICS MISMATCH vs baseline in: {mismatches:?}");
        std::process::exit(1);
    }
}
