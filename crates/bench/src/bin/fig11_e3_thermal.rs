//! Regenerates Figure 11: temperature-casing (E3) runs — CPU temperature
//! traces of the ENT and Java variants for the five System A benchmarks.

use ent_bench::{fig11, metrics, parse_grid_args, sparkline};

fn main() {
    let args = parse_grid_args(7);
    let seed = args.value;
    println!("Figure 11: System A temperature-casing (E3) runs (seed {seed})");
    println!("Thresholds: hot at 60 °C, overheating at 65 °C; sleep mcase 0/250/1000 ms.\n");
    let mut metric_rows = Vec::new();
    for series in fig11::series(seed, args.jobs) {
        let summarize = |trace: &[(f64, f64)]| -> (f64, f64, Vec<f64>) {
            let temps: Vec<f64> = trace.iter().map(|(_, c)| *c).collect();
            let peak = temps.iter().copied().fold(f64::MIN, f64::max);
            let last_half: Vec<f64> = temps[temps.len() / 2..].to_vec();
            let avg = last_half.iter().sum::<f64>() / last_half.len().max(1) as f64;
            // Downsample to 60 columns for the sparkline.
            let step = (temps.len() / 60).max(1);
            let sampled: Vec<f64> = temps.iter().step_by(step).copied().collect();
            (peak, avg, sampled)
        };
        let (ent_peak, ent_avg, ent_line) = summarize(&series.ent);
        let (java_peak, java_avg, java_line) = summarize(&series.java);
        metric_rows.push(
            metrics::Row::new(series.benchmark)
                .with("ent_peak_c", ent_peak)
                .with("ent_steady_c", ent_avg)
                .with("java_peak_c", java_peak)
                .with("java_steady_c", java_avg),
        );
        println!("== {} ==", series.benchmark);
        println!(
            "  ent  [{}] peak {ent_peak:.1} °C, steady ~{ent_avg:.1} °C",
            sparkline(&ent_line, 42.0, 80.0)
        );
        println!(
            "  java [{}] peak {java_peak:.1} °C, steady ~{java_avg:.1} °C",
            sparkline(&java_line, 42.0, 80.0)
        );
        println!();
    }
    println!("(Sparkline scale: 42–80 °C. The ENT runs hover near the hot threshold;");
    println!(" the Java runs climb toward thermal saturation, as in the paper.)");
    match metrics::write("fig11_e3_thermal", "fig11_e3_thermal", &metric_rows) {
        Ok(path) => eprintln!("metrics written to {}", path.display()),
        Err(e) => eprintln!("could not write metrics json: {e}"),
    }
    match metrics::write_sched("fig11_e3_thermal") {
        Ok(path) => eprintln!("scheduler telemetry written to {}", path.display()),
        Err(e) => eprintln!("could not write scheduler telemetry: {e}"),
    }
}
