//! Reproduces §5's "Data Collection" statistics: the relative standard
//! deviation of repeated measurements per system. The paper reports
//! System A within 2 % for 93 % of experiments (99 % within 3 %), System B
//! within 2 % for all, and System C noisier (2 % for 84.3 %, 3 % for
//! 91.5 %, 5 % for 94.7 %).

use ent_bench::e_benchmarks;
use ent_energy::PlatformKind;
use ent_workloads::run_e2;

fn main() {
    let repeats: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    println!(
        "Data collection: relative standard deviation over {repeats} runs (first discarded)\n"
    );
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>10}",
        "System", "≤2% (runs)", "≤3% (runs)", "≤5% (runs)", "max RSD"
    );
    println!("{}", "-".repeat(58));

    for system in [
        PlatformKind::SystemA,
        PlatformKind::SystemB,
        PlatformKind::SystemC,
    ] {
        let mut rsds = Vec::new();
        for spec in e_benchmarks(system) {
            for boot in 0..3 {
                let samples: Vec<f64> = (1..=repeats as u64)
                    .map(|seed| run_e2(&spec, system, boot, 2, seed * 977 + 13).energy_j)
                    .collect();
                let mean = samples.iter().sum::<f64>() / samples.len() as f64;
                let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
                    / (samples.len() - 1) as f64;
                rsds.push(var.sqrt() / mean * 100.0);
            }
        }
        let total = rsds.len();
        let frac = |cut: f64| {
            let n = rsds.iter().filter(|r| **r <= cut).count();
            format!("{:.1}%", n as f64 / total as f64 * 100.0)
        };
        let max = rsds.iter().copied().fold(0.0f64, f64::max);
        let label = match system {
            PlatformKind::SystemA => "A",
            PlatformKind::SystemB => "B",
            PlatformKind::SystemC => "C",
        };
        println!(
            "{label:<6} {:>12} {:>12} {:>12} {max:>9.2}%",
            frac(2.0),
            frac(3.0),
            frac(5.0)
        );
    }
    println!("\n(Paper: A ≤2% for 93% / ≤3% for 99%; B ≤2% for 100%; C ≤2% for 84.3%,");
    println!(" ≤3% for 91.5%, ≤5% for 94.7%. The simulated noise models reproduce the");
    println!(" ordering: B tightest, C loosest.)");
}
