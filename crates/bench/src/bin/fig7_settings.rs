//! Regenerates Figure 7: the per-benchmark workload attribution and QoS
//! settings.

use ent_bench::{fig7, render_table};

fn main() {
    println!("Figure 7: ENT benchmark settings\n");
    let rows: Vec<Vec<String>> = fig7::rows()
        .into_iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.workload_attr.to_string(),
                r.workload[0].clone(),
                r.workload[1].clone(),
                r.workload[2].clone(),
                r.qos_knob.to_string(),
                r.qos[0].clone(),
                r.qos[1].clone(),
                r.qos[2].clone(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "name",
                "workload attribution by",
                "energy_saver",
                "managed",
                "full_throttle",
                "QoS adjustment",
                "energy_saver",
                "default (managed)",
                "full_throttle",
            ],
            &rows,
        )
    );
}
