//! Convenience driver: regenerates every figure and the two ablations,
//! writing each to `results/<name>.txt` (and echoing progress). The
//! measuring binaries additionally write their own machine-readable
//! `results/<name>.json` alongside the text tables.
//!
//! ```sh
//! cargo run --release -p ent-bench --bin fig_all [repeats] [--jobs N]
//! ```
//!
//! `--jobs` is forwarded to the measuring figure binaries; their output is
//! bit-identical at every jobs count, so it only changes wall-clock time.

use std::fs;
use std::process::Command;

fn main() {
    let args = ent_bench::parse_grid_args(5);
    let repeats = args.value.to_string();
    let jobs = args.jobs.to_string();
    fs::create_dir_all("results").expect("create results/");
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("bin dir")
        .to_path_buf();

    // (binary, forward repeats?, forward --jobs?)
    let bins: &[(&str, bool, bool)] = &[
        ("fig6_overhead", true, true),
        ("fig7_settings", false, false),
        ("fig8_e1_system_a", true, true),
        ("fig9_e1_all", true, true),
        ("fig10_e2", true, true),
        ("fig11_e3_thermal", false, true),
        ("ablation_snapshots", false, false),
        ("ablation_governor", false, false),
        ("data_collection_rsd", true, false),
    ];
    for (bin, takes_repeats, takes_jobs) in bins {
        let mut cmd = Command::new(exe_dir.join(bin));
        if *takes_repeats {
            cmd.arg(&repeats);
        }
        if *takes_jobs {
            cmd.args(["--jobs", &jobs]);
        }
        let out = cmd
            .output()
            .unwrap_or_else(|e| panic!("running {bin}: {e}"));
        assert!(
            out.status.success(),
            "{bin} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let path = format!("results/{bin}.txt");
        fs::write(&path, &out.stdout).expect("write result file");
        println!("wrote {path} ({} bytes)", out.stdout.len());
    }
    println!("\nAll figures and ablations regenerated.");
}
