//! Convenience driver: regenerates every figure and the two ablations,
//! writing each to `results/<name>.txt` (and echoing progress). The
//! measuring binaries additionally write their own machine-readable
//! `results/<name>.json` alongside the text tables.
//!
//! ```sh
//! cargo run --release -p ent-bench --bin fig_all [repeats]
//! ```

use std::fs;
use std::process::Command;

fn main() {
    let repeats = std::env::args().nth(1).unwrap_or_else(|| "5".to_string());
    fs::create_dir_all("results").expect("create results/");
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("bin dir")
        .to_path_buf();

    let bins: &[(&str, bool)] = &[
        ("fig6_overhead", true),
        ("fig7_settings", false),
        ("fig8_e1_system_a", true),
        ("fig9_e1_all", true),
        ("fig10_e2", true),
        ("fig11_e3_thermal", false),
        ("ablation_snapshots", false),
        ("ablation_governor", false),
        ("data_collection_rsd", true),
    ];
    for (bin, takes_repeats) in bins {
        let mut cmd = Command::new(exe_dir.join(bin));
        if *takes_repeats {
            cmd.arg(&repeats);
        }
        let out = cmd
            .output()
            .unwrap_or_else(|e| panic!("running {bin}: {e}"));
        assert!(
            out.status.success(),
            "{bin} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let path = format!("results/{bin}.txt");
        fs::write(&path, &out.stdout).expect("write result file");
        println!("wrote {path} ({} bytes)", out.stdout.len());
    }
    println!("\nAll figures and ablations regenerated.");
}
