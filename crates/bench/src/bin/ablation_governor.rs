//! Ablation: how application-level mode adaptation interacts with
//! OS-level power management (§6.2's discussion of the Pi's `ondemand`
//! governor). Runs the `video` E2 benchmark under all three governors and
//! reports the per-boot-mode energy and the application-level savings.

use ent_core::compile;
use ent_energy::{Governor, Platform};
use ent_runtime::{run, RuntimeConfig};
use ent_workloads::{battery_for_boot, benchmark, e2_program};

fn main() {
    let spec = benchmark("video").expect("video benchmark exists");
    let base = Platform::system_b();
    let src = e2_program(&spec, &base, 2);
    let compiled = compile(&src).expect("benchmark compiles");

    println!("Governor ablation: video (System B, Raspberry Pi), E2 battery-casing\n");
    println!(
        "{:<13} {:>14} {:>14} {:>14} {:>12}",
        "governor", "saver (J)", "managed (J)", "full (J)", "app savings"
    );
    println!("{}", "-".repeat(72));
    for governor in [
        Governor::Ondemand,
        Governor::Performance,
        Governor::Powersave,
    ] {
        let energy = |boot: usize| {
            let result = run(
                &compiled,
                base.clone().with_governor(governor),
                RuntimeConfig {
                    battery_level: battery_for_boot(boot),
                    seed: 3,
                    ..RuntimeConfig::default()
                },
            );
            result.value.as_ref().expect("run completes");
            result.measurement.energy_j
        };
        let (saver, managed, full) = (energy(0), energy(1), energy(2));
        println!(
            "{:<13} {saver:>14.1} {managed:>14.1} {full:>14.1} {:>11.1}%",
            governor.to_string(),
            (1.0 - saver / full) * 100.0
        );
    }
    println!(
        "\nUnder `performance` the package never drops into low-power states, so\n\
         the application's duty-cycle adaptation saves a smaller fraction —\n\
         the cooperative effect the paper observes with `ondemand` on the Pi."
    );
}
