//! The ENT experiment harness: drivers that regenerate every table and
//! figure of the paper's evaluation (§6) against the simulated platforms.
//!
//! Each `figN` module produces structured rows; the `fig*` binaries print
//! them as the paper's tables/series. Absolute joule values differ from
//! the paper (the substrate is a simulator, not the authors' testbed), but
//! the *shapes* are the reproduction targets:
//!
//! * Figure 6 — per-benchmark runtime overhead of tagging/snapshots is
//!   small, occasionally negative under noise;
//! * Figure 8 — E1 exceptions fire in exactly the 3 of 9 boot×workload
//!   combinations where the workload mode exceeds the boot mode, and the
//!   exception path saves energy versus the silent counterpart;
//! * Figure 9 — those savings hold on all three systems, with smaller
//!   percentages on the time-fixed System B/C benchmarks;
//! * Figure 10 — E2 energy is battery-proportional
//!   (energy_saver < managed < full_throttle);
//! * Figure 11 — E3 traces: ENT hovers near the `hot` threshold while the
//!   Java runs climb.

use ent_energy::{FaultPlan, PlatformKind};
use ent_workloads::{
    all_benchmarks, benchmark, e3_benchmarks, prepare_e1, prepare_e2, prepare_e3, run_batch,
    run_e1_chaos_prepared, run_e1_prepared, run_e2_prepared, run_e3_prepared,
    run_overhead_pair_prepared, BenchmarkSpec,
};

/// Benchmarks per system in the E1/E2 figures (Figures 8–10). `jython` and
/// `xalan` appear only in the overhead table and the E3 runs, as in the
/// paper.
pub fn e_benchmarks(system: PlatformKind) -> Vec<BenchmarkSpec> {
    let names: &[&str] = match system {
        PlatformKind::SystemA => &[
            "batik", "crypto", "findbugs", "jspider", "pagerank", "sunflow",
        ],
        PlatformKind::SystemB => &["camera", "crypto", "javaboy", "sunflow", "video"],
        PlatformKind::SystemC => &["duckduckgo", "materiallife", "newpipe", "soundrecorder"],
    };
    names
        .iter()
        .map(|n| benchmark(n).expect("benchmark exists"))
        .collect()
}

/// The three boot/workload combinations where the waterfall is violated
/// (Figure 9's bars): `(boot, workload)` indices.
pub const VIOLATING_COMBOS: [(usize, usize); 3] = [(1, 2), (0, 1), (0, 2)];

/// Averages a measurement over several seeds, discarding the first run
/// (the paper's JIT-warmup discipline).
pub fn average_runs(repeats: usize, mut f: impl FnMut(u64) -> f64) -> f64 {
    let repeats = repeats.max(1);
    let _warmup = f(0);
    let total: f64 = (1..=repeats as u64).map(&mut f).sum();
    total / repeats as f64
}

/// Command-line arguments shared by the figure binaries:
/// `[<value>] [--jobs N] [--faults <spec>] [--fault-seed N]
/// [--engine tree|bytecode|threaded] [--tier-up N|0|off]
/// [--enforce guarded|transient] [--adapt on|off|frozen] [--chunk N]`,
/// where the positional value is the repeat count (the seed, for
/// `fig11_e3_thermal`).
#[derive(Clone, Debug)]
pub struct GridArgs {
    /// The positional value (repeats or seed).
    pub value: u64,
    /// Batch worker count; `0` means one per available CPU.
    pub jobs: usize,
    /// Fault plan from `--faults` ("off", "chaos", or a key=value spec);
    /// `None` when the flag is absent or the plan is a no-op.
    pub faults: Option<FaultPlan>,
    /// Seed for the fault injector's deterministic schedule.
    pub fault_seed: u64,
    /// Engine from `--engine`; `None` when the flag is absent (the
    /// process default — `ENT_ENGINE`, else bytecode — stays in force).
    pub engine: Option<ent_runtime::Engine>,
    /// Tier-up threshold from `--tier-up`; `None` when the flag is
    /// absent (the process default — `ENT_TIER_UP`, else 8 — stays in
    /// force). Only the threaded engine reads it.
    pub tier_up: Option<ent_runtime::TierUp>,
    /// Enforcement strategy from `--enforce`; `None` when the flag is
    /// absent (the process default — `ENT_ENFORCE`, else guarded — stays
    /// in force).
    pub enforce: Option<ent_runtime::Enforcement>,
    /// Adaptation mode from `--adapt`; `None` when the flag is absent
    /// (the `ENT_ADAPT` environment variable, else off, stays in force).
    pub adapt: Option<ent_runtime::AdaptMode>,
    /// Scheduler chunk pin from `--chunk`; `None` when the flag is absent
    /// (the scheduler derives a chunk from the batch shape).
    pub chunk: Option<u32>,
}

/// Parses `std::env::args()` as
/// `[<value>] [--jobs N] [--faults <spec>] [--fault-seed N]
/// [--engine tree|bytecode|threaded] [--tier-up N|0|off]
/// [--enforce guarded|transient] [--adapt on|off|frozen] [--chunk N]`. The
/// jobs default comes from the `ENT_JOBS` environment variable (else 1);
/// figure output is bit-identical at every jobs count, under both
/// engines, at every chunk size, and in every adaptation mode, so those
/// flags only change speed (and, for `--adapt`, telemetry stamps).
/// `--enforce transient` changes which checks run, so it *does* change
/// results — that's the point of the migration-lattice sweep. A
/// malformed `--faults`, `--engine`, `--tier-up`, `--enforce`, or
/// `--adapt` value exits with status 1, as does a zero or non-numeric
/// `--jobs`, `--fault-seed`, or `--chunk` — never a silent default.
/// `--engine`, `--tier-up`, and `--enforce` are installed process-wide
/// via [`ent_workloads::set_default_engine`] /
/// [`ent_workloads::set_default_tier_up`] /
/// [`ent_workloads::set_default_enforcement`]; `--adapt` and `--chunk`
/// via [`ent_runtime::adapt::set_mode`] /
/// [`ent_runtime::adapt::pin_chunk`].
pub fn parse_grid_args(default_value: u64) -> GridArgs {
    let mut parsed = GridArgs {
        value: default_value,
        jobs: ent_workloads::default_jobs(),
        faults: None,
        fault_seed: 0,
        engine: None,
        tier_up: None,
        enforce: None,
        adapt: None,
        chunk: None,
    };
    let mut args = std::env::args().skip(1);
    let set_faults = |spec: &str, parsed: &mut GridArgs| match FaultPlan::parse(spec) {
        Ok(plan) => parsed.faults = (!plan.is_noop()).then_some(plan),
        Err(e) => {
            eprintln!("invalid --faults spec: {e}");
            std::process::exit(1);
        }
    };
    let set_engine = |name: &str, parsed: &mut GridArgs| match ent_runtime::Engine::parse(name) {
        Some(engine) => {
            ent_workloads::set_default_engine(engine);
            parsed.engine = Some(engine);
        }
        None => {
            eprintln!("invalid --engine value {name:?} (expected tree, bytecode, or threaded)");
            std::process::exit(1);
        }
    };
    let set_tier_up = |name: &str, parsed: &mut GridArgs| match ent_runtime::TierUp::parse(name) {
        Some(tier_up) => {
            ent_workloads::set_default_tier_up(tier_up);
            parsed.tier_up = Some(tier_up);
        }
        None => {
            eprintln!("invalid --tier-up value {name:?} (expected 0, off, or a count)");
            std::process::exit(1);
        }
    };
    let set_enforce =
        |name: &str, parsed: &mut GridArgs| match ent_runtime::Enforcement::parse(name) {
            Some(enforcement) => {
                ent_workloads::set_default_enforcement(enforcement);
                parsed.enforce = Some(enforcement);
            }
            None => {
                eprintln!("invalid --enforce value {name:?} (expected guarded or transient)");
                std::process::exit(1);
            }
        };
    let set_adapt = |name: &str, parsed: &mut GridArgs| match ent_runtime::AdaptMode::parse(name) {
        Some(mode) => {
            ent_runtime::adapt::set_mode(mode);
            parsed.adapt = Some(mode);
        }
        None => {
            eprintln!("invalid --adapt value {name:?} (expected on, off, or frozen)");
            std::process::exit(1);
        }
    };
    let set_chunk = |n: u32, parsed: &mut GridArgs| {
        ent_runtime::adapt::pin_chunk(n);
        parsed.chunk = Some(n);
    };
    let parse_jobs = |v: &str| -> usize {
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => exit_invalid("--jobs", v, "a positive integer"),
        }
    };
    let parse_seed = |v: &str| -> u64 {
        v.parse()
            .unwrap_or_else(|_| exit_invalid("--fault-seed", v, "a non-negative integer"))
    };
    let parse_chunk = |v: &str| -> u32 {
        match v.parse::<u32>() {
            Ok(n) if n >= 1 => n,
            _ => exit_invalid("--chunk", v, "a positive integer"),
        }
    };
    while let Some(a) = args.next() {
        if a == "--jobs" {
            let v = args.next().unwrap_or_default();
            parsed.jobs = parse_jobs(&v);
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            parsed.jobs = parse_jobs(v);
        } else if a == "--faults" {
            let spec = args.next().unwrap_or_default();
            set_faults(&spec, &mut parsed);
        } else if let Some(spec) = a.strip_prefix("--faults=") {
            let spec = spec.to_string();
            set_faults(&spec, &mut parsed);
        } else if a == "--fault-seed" {
            let v = args.next().unwrap_or_default();
            parsed.fault_seed = parse_seed(&v);
        } else if let Some(v) = a.strip_prefix("--fault-seed=") {
            parsed.fault_seed = parse_seed(v);
        } else if a == "--engine" {
            let name = args.next().unwrap_or_default();
            set_engine(&name, &mut parsed);
        } else if let Some(name) = a.strip_prefix("--engine=") {
            let name = name.to_string();
            set_engine(&name, &mut parsed);
        } else if a == "--tier-up" {
            let name = args.next().unwrap_or_default();
            set_tier_up(&name, &mut parsed);
        } else if let Some(name) = a.strip_prefix("--tier-up=") {
            let name = name.to_string();
            set_tier_up(&name, &mut parsed);
        } else if a == "--enforce" {
            let name = args.next().unwrap_or_default();
            set_enforce(&name, &mut parsed);
        } else if let Some(name) = a.strip_prefix("--enforce=") {
            let name = name.to_string();
            set_enforce(&name, &mut parsed);
        } else if a == "--adapt" {
            let name = args.next().unwrap_or_default();
            set_adapt(&name, &mut parsed);
        } else if let Some(name) = a.strip_prefix("--adapt=") {
            let name = name.to_string();
            set_adapt(&name, &mut parsed);
        } else if a == "--chunk" {
            let v = args.next().unwrap_or_default();
            set_chunk(parse_chunk(&v), &mut parsed);
        } else if let Some(v) = a.strip_prefix("--chunk=") {
            set_chunk(parse_chunk(v), &mut parsed);
        } else if let Ok(v) = a.parse() {
            parsed.value = v;
        }
    }
    parsed
}

/// The grid bins' usage-error exit: print what was wrong and stop with
/// status 1 — a malformed knob must never fall back to a default.
fn exit_invalid(flag: &str, value: &str, expected: &str) -> ! {
    eprintln!("invalid {flag} value {value:?} (expected {expected})");
    std::process::exit(1);
}

/// Figure 6: benchmark statistics and the percentage energy overhead of
/// ENT's runtime (tagging + snapshot metadata) versus the no-op baseline.
pub mod fig6 {
    use super::*;

    /// One table row.
    #[derive(Clone, Debug)]
    pub struct Row {
        /// Benchmark name.
        pub name: &'static str,
        /// Description from Figure 6.
        pub description: &'static str,
        /// Systems (A/B/C) it runs on.
        pub systems: String,
        /// CLOC of the original Java code base (paper's column; context).
        pub cloc: u32,
        /// Lines changed for the ENT port (paper's column; context).
        pub ent_changes: u32,
        /// Measured energy overhead, in percent.
        pub overhead_pct: f64,
    }

    /// Runs the overhead experiment for every benchmark, one batch job per
    /// table row.
    pub fn rows(repeats: usize, jobs: usize) -> Vec<Row> {
        let work = all_benchmarks();
        run_batch(jobs, &work, |spec| {
            let system = spec.primary_platform();
            let prog = prepare_e2(spec, system, 1);
            // Mix the benchmark name into the seed so each row draws an
            // independent noise sample, as distinct physical runs would.
            let name_salt: u64 = spec
                .name
                .bytes()
                .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64));
            let overhead_pct = average_runs(repeats, |seed| {
                let (tagged, baseline) =
                    run_overhead_pair_prepared(&prog, system, seed * 31 + 7 + name_salt);
                (tagged - baseline) / baseline * 100.0
            });
            let systems = spec
                .systems
                .iter()
                .map(|s| match s {
                    PlatformKind::SystemA => "A",
                    PlatformKind::SystemB => "B",
                    PlatformKind::SystemC => "C",
                })
                .collect::<Vec<_>>()
                .join(",");
            Row {
                name: spec.name,
                description: spec.description,
                systems,
                cloc: spec.cloc,
                ent_changes: spec.ent_changes,
                overhead_pct,
            }
        })
    }
}

/// Figure 7: the benchmark settings table (pure data; no runs).
pub mod fig7 {
    use super::*;

    /// One settings row, mirroring Figure 7's columns.
    #[derive(Clone, Debug)]
    pub struct Row {
        /// Benchmark name.
        pub name: &'static str,
        /// What the workload attributor inspects.
        pub workload_attr: &'static str,
        /// Workload labels per workload mode.
        pub workload: [String; 3],
        /// The QoS knob.
        pub qos_knob: &'static str,
        /// QoS labels per boot mode.
        pub qos: [String; 3],
    }

    /// Every benchmark's settings.
    pub fn rows() -> Vec<Row> {
        all_benchmarks()
            .into_iter()
            .map(|b| Row {
                name: b.name,
                workload_attr: b.workload_attr,
                workload: b.workload_labels.map(str::to_string),
                qos_knob: b.qos_knob,
                qos: b.qos_labels.map(str::to_string),
            })
            .collect()
    }
}

/// Figure 8: the full 9-combination battery-exception grid on System A,
/// with silent counterparts.
pub mod fig8 {
    use super::*;

    /// One bar of the figure.
    #[derive(Clone, Debug)]
    pub struct Row {
        /// Benchmark name.
        pub benchmark: &'static str,
        /// Workload mode index (0–2).
        pub workload: usize,
        /// Boot mode index (0–2).
        pub boot: usize,
        /// Whether this is the silent counterpart.
        pub silent: bool,
        /// Average energy in joules.
        pub energy_j: f64,
        /// Whether the waterfall was violated during the run.
        pub exception: bool,
        /// Snapshot-check failures in one run of this configuration.
        pub snapshot_failures: u64,
        /// Dynamic-waterfall failures in one run (zero for well-typed
        /// programs, per Corollary 1).
        pub dfall_failures: u64,
    }

    /// Runs the grid for the six System A benchmarks, one batch job per
    /// benchmark × workload × boot × runtime cell.
    pub fn rows(repeats: usize, jobs: usize) -> Vec<Row> {
        let mut work = Vec::new();
        for spec in e_benchmarks(PlatformKind::SystemA) {
            for workload in 0..3 {
                for boot in 0..3 {
                    for silent in [false, true] {
                        work.push((spec.clone(), workload, boot, silent));
                    }
                }
            }
        }
        run_batch(jobs, &work, |(spec, workload, boot, silent)| {
            let prog = prepare_e1(spec, PlatformKind::SystemA, *workload);
            let mut last = None;
            let energy_j = average_runs(repeats, |seed| {
                let o = run_e1_prepared(&prog, *boot, *silent, seed * 131 + 3);
                let energy_j = o.energy_j;
                last = Some(o);
                energy_j
            });
            let last = last.expect("average_runs ran at least once");
            Row {
                benchmark: spec.name,
                workload: *workload,
                boot: *boot,
                silent: *silent,
                energy_j,
                exception: last.exception,
                snapshot_failures: last.snapshot_failures,
                dfall_failures: last.dfall_failures,
            }
        })
    }

    /// Converts figure rows to the machine-readable metric rows the
    /// `fig8_e1_system_a` binary writes — the failure split (exception
    /// flag plus the snapshot/dfall counters behind it) rides along with
    /// the energy number.
    pub fn metric_rows(rows: &[Row]) -> Vec<metrics::Row> {
        rows.iter()
            .map(|r| {
                metrics::Row::new(format!(
                    "{}/{}/{}/{}",
                    r.benchmark,
                    mode_name(r.workload),
                    mode_name(r.boot),
                    if r.silent { "silent" } else { "ent" }
                ))
                .with("energy_j", r.energy_j)
                .with("exception", if r.exception { 1.0 } else { 0.0 })
                .with("snapshot_failures", r.snapshot_failures as f64)
                .with("dfall_failures", r.dfall_failures as f64)
            })
            .collect()
    }

    /// One cell of the fault-injected grid. Runtime errors are recorded
    /// results here (a degraded cell may legitimately fail), so the grid
    /// always has its full shape.
    #[derive(Clone, Debug)]
    pub struct ChaosRow {
        /// Benchmark name.
        pub benchmark: &'static str,
        /// Workload mode index (0–2).
        pub workload: usize,
        /// Boot mode index (0–2).
        pub boot: usize,
        /// Whether this is the silent counterpart.
        pub silent: bool,
        /// Energy in joules (`None` when the run failed).
        pub energy_j: Option<f64>,
        /// The runtime error, when the run failed.
        pub error: Option<String>,
        /// Whether the waterfall was violated during the run.
        pub exception: bool,
        /// Sensor reads the fault injector faulted.
        pub sensor_faults: u64,
        /// Faulted reads served from last-known-good.
        pub stale_reads: u64,
        /// Mode decisions forced to the conservative bound.
        pub degraded_decisions: u64,
    }

    /// Runs the Figure 8 grid with a fault plan installed: one run per
    /// cell, fault realization salted by the cell's grid position. The
    /// whole sweep is a pure function of `(plan, fault_seed)` — two calls
    /// with the same arguments produce identical rows, which the chaos
    /// bench and CI byte-diff rely on.
    pub fn chaos_rows(jobs: usize, plan: &FaultPlan, fault_seed: u64) -> Vec<ChaosRow> {
        let mut work = Vec::new();
        for spec in e_benchmarks(PlatformKind::SystemA) {
            for workload in 0..3 {
                for boot in 0..3 {
                    for silent in [false, true] {
                        let cell = work.len() as u64;
                        work.push((spec.clone(), workload, boot, silent, cell));
                    }
                }
            }
        }
        run_batch(jobs, &work, |(spec, workload, boot, silent, cell)| {
            let prog = prepare_e1(spec, PlatformKind::SystemA, *workload);
            let o = run_e1_chaos_prepared(
                &prog,
                *boot,
                *silent,
                131 + 3,
                Some(plan.clone()),
                fault_seed.wrapping_add(*cell),
            );
            let (energy_j, error, exception) = match &o.result {
                Ok(out) => (Some(out.energy_j), None, out.exception),
                Err(e) => (None, Some(e.clone()), false),
            };
            ChaosRow {
                benchmark: spec.name,
                workload: *workload,
                boot: *boot,
                silent: *silent,
                energy_j,
                error,
                exception,
                sensor_faults: o.sensor_faults,
                stale_reads: o.stale_reads,
                degraded_decisions: o.degraded_decisions,
            }
        })
    }

    /// Metric rows for a chaos sweep: the failure split (`failed`, the
    /// resilience counters) next to the energy of the surviving cells.
    pub fn chaos_metric_rows(rows: &[ChaosRow]) -> Vec<metrics::Row> {
        rows.iter()
            .map(|r| {
                metrics::Row::new(format!(
                    "{}/{}/{}/{}",
                    r.benchmark,
                    mode_name(r.workload),
                    mode_name(r.boot),
                    if r.silent { "silent" } else { "ent" }
                ))
                .with("energy_j", r.energy_j.unwrap_or(f64::NAN))
                .with("failed", if r.error.is_some() { 1.0 } else { 0.0 })
                .with("exception", if r.exception { 1.0 } else { 0.0 })
                .with("sensor_faults", r.sensor_faults as f64)
                .with("stale_reads", r.stale_reads as f64)
                .with("degraded_decisions", r.degraded_decisions as f64)
            })
            .collect()
    }
}

/// Figure 9: E1 normalized energy and percentage savings for the three
/// violating combinations, on all systems.
pub mod fig9 {
    use super::*;

    /// One bar pair (ENT + silent).
    #[derive(Clone, Debug)]
    pub struct Row {
        /// Which system.
        pub system: PlatformKind,
        /// Benchmark name.
        pub benchmark: &'static str,
        /// Boot mode index.
        pub boot: usize,
        /// Workload mode index.
        pub workload: usize,
        /// ENT energy (joules).
        pub ent_j: f64,
        /// Silent counterpart energy (joules).
        pub silent_j: f64,
        /// ENT energy normalized against the silent full_throttle-boot run
        /// of the same workload.
        pub ent_normalized: f64,
        /// Silent energy, same normalization.
        pub silent_normalized: f64,
        /// Percentage savings of ENT versus its silent counterpart.
        pub savings_pct: f64,
        /// Snapshot-check failures in one silent run of this cell (the
        /// would-be `EnergyException` count the runtime suppresses).
        pub snapshot_failures: u64,
        /// Dynamic-waterfall failures in the same silent run.
        pub dfall_failures: u64,
    }

    /// Runs the violating combinations for every system, one batch job per
    /// system × benchmark × combination cell.
    pub fn rows(repeats: usize, jobs: usize) -> Vec<Row> {
        let mut work = Vec::new();
        for system in [
            PlatformKind::SystemA,
            PlatformKind::SystemB,
            PlatformKind::SystemC,
        ] {
            for spec in e_benchmarks(system) {
                for (boot, workload) in VIOLATING_COMBOS {
                    work.push((system, spec.clone(), boot, workload));
                }
            }
        }
        run_batch(jobs, &work, |&(system, ref spec, boot, workload)| {
            // ENT, silent, and reference runs all share the one program
            // for (benchmark, system, workload) — boot and silent are
            // runtime configuration, not program shape.
            let prog = prepare_e1(spec, system, workload);
            let ent_j = average_runs(repeats, |seed| {
                run_e1_prepared(&prog, boot, false, seed * 17 + 1).energy_j
            });
            let mut last_silent = None;
            let silent_j = average_runs(repeats, |seed| {
                let o = run_e1_prepared(&prog, boot, true, seed * 17 + 5003);
                let energy_j = o.energy_j;
                last_silent = Some(o);
                energy_j
            });
            let reference = average_runs(repeats, |seed| {
                run_e1_prepared(&prog, 2, true, seed * 17 + 9001).energy_j
            });
            let last_silent = last_silent.expect("average_runs ran at least once");
            Row {
                system,
                benchmark: spec.name,
                boot,
                workload,
                ent_j,
                silent_j,
                ent_normalized: ent_j / reference,
                silent_normalized: silent_j / reference,
                savings_pct: (1.0 - ent_j / silent_j) * 100.0,
                snapshot_failures: last_silent.snapshot_failures,
                dfall_failures: last_silent.dfall_failures,
            }
        })
    }

    /// Converts figure rows to the machine-readable metric rows the
    /// `fig9_e1_all` binary writes, failure split included.
    pub fn metric_rows(rows: &[Row]) -> Vec<metrics::Row> {
        rows.iter()
            .map(|r| {
                metrics::Row::new(format!(
                    "{}/{}/{}-{}",
                    system_label(r.system),
                    r.benchmark,
                    mode_name(r.boot),
                    mode_name(r.workload)
                ))
                .with("ent_j", r.ent_j)
                .with("silent_j", r.silent_j)
                .with("ent_normalized", r.ent_normalized)
                .with("silent_normalized", r.silent_normalized)
                .with("savings_pct", r.savings_pct)
                .with("snapshot_failures", r.snapshot_failures as f64)
                .with("dfall_failures", r.dfall_failures as f64)
            })
            .collect()
    }
}

/// Figure 10: E2 battery-casing normalized energy per boot mode, large
/// workload.
pub mod fig10 {
    use super::*;

    /// One bar.
    #[derive(Clone, Debug)]
    pub struct Row {
        /// Which system.
        pub system: PlatformKind,
        /// Benchmark name.
        pub benchmark: &'static str,
        /// Boot mode index.
        pub boot: usize,
        /// Average energy (joules).
        pub energy_j: f64,
        /// Normalized against the full_throttle boot.
        pub normalized: f64,
        /// Percentage saved versus the full_throttle boot.
        pub savings_pct: f64,
    }

    /// Runs the casing experiment for every system and benchmark, one
    /// batch job per system × benchmark (each job owns its full-throttle
    /// reference and the three boot bars normalized against it).
    pub fn rows(repeats: usize, jobs: usize) -> Vec<Row> {
        let mut work = Vec::new();
        for system in [
            PlatformKind::SystemA,
            PlatformKind::SystemB,
            PlatformKind::SystemC,
        ] {
            for spec in e_benchmarks(system) {
                work.push((system, spec));
            }
        }
        run_batch(jobs, &work, |&(system, ref spec)| {
            let prog = prepare_e2(spec, system, 2);
            let ft = average_runs(repeats, |seed| {
                run_e2_prepared(&prog, 2, seed * 23 + 5).energy_j
            });
            (0..3)
                .map(|boot| {
                    let energy_j = if boot == 2 {
                        ft
                    } else {
                        average_runs(repeats, |seed| {
                            run_e2_prepared(&prog, boot, seed * 23 + 5).energy_j
                        })
                    };
                    Row {
                        system,
                        benchmark: spec.name,
                        boot,
                        energy_j,
                        normalized: energy_j / ft,
                        savings_pct: (1.0 - energy_j / ft) * 100.0,
                    }
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

/// Figure 11: E3 temperature traces, ENT versus Java, on System A.
pub mod fig11 {
    use super::*;

    /// One benchmark's pair of traces.
    #[derive(Clone, Debug)]
    pub struct Series {
        /// Benchmark name.
        pub benchmark: &'static str,
        /// `(normalized time, °C)` for the ENT run.
        pub ent: Vec<(f64, f64)>,
        /// `(normalized time, °C)` for the Java run.
        pub java: Vec<(f64, f64)>,
    }

    fn normalize(trace: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
        let end = trace.last().map(|(t, _)| *t).unwrap_or(1.0).max(1e-9);
        trace.into_iter().map(|(t, c)| (t / end, c)).collect()
    }

    /// Runs the five E3 benchmarks, one batch job per benchmark × variant
    /// (ENT and Java traces of one benchmark run concurrently).
    pub fn series(seed: u64, jobs: usize) -> Vec<Series> {
        let work: Vec<(&'static str, usize, f64, bool)> = e3_benchmarks()
            .into_iter()
            .flat_map(|(name, tasks, task_seconds)| {
                [true, false].map(|ent| (name, tasks, task_seconds, ent))
            })
            .collect();
        let traces = run_batch(jobs, &work, |&(name, tasks, task_seconds, ent)| {
            let spec = benchmark(name).expect("E3 benchmark exists");
            normalize(run_e3_prepared(
                &prepare_e3(&spec, tasks, task_seconds, ent),
                seed,
            ))
        });
        work.chunks(2)
            .zip(traces.chunks(2))
            .map(|(w, t)| Series {
                benchmark: w[0].0,
                ent: t[0].clone(),
                java: t[1].clone(),
            })
            .collect()
    }
}

/// Machine-readable companions to the figure binaries' text output.
///
/// Every measuring `fig*` binary prints its human-oriented table and, via
/// this module, drops the same numbers as `results/<bin>.json`, so
/// downstream tooling reads structured rows instead of scraping tables.
pub mod metrics {
    use std::fmt::Write as _;
    use std::io;
    use std::path::{Path, PathBuf};

    /// One benchmark/configuration row: a label plus named numeric values
    /// in presentation order.
    #[derive(Clone, Debug)]
    pub struct Row {
        /// Row label (benchmark name, optionally with system/mode suffixes).
        pub name: String,
        /// `(metric, value)` pairs, serialized in insertion order.
        pub values: Vec<(&'static str, f64)>,
    }

    impl Row {
        /// Starts a row with no values.
        pub fn new(name: impl Into<String>) -> Self {
            Row {
                name: name.into(),
                values: Vec::new(),
            }
        }

        /// Appends one metric (builder style).
        #[must_use]
        pub fn with(mut self, key: &'static str, value: f64) -> Self {
            self.values.push((key, value));
            self
        }
    }

    fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out
    }

    fn num(x: f64) -> String {
        // `Display` round-trips f64 and never uses an exponent JSON can't
        // parse; non-finite values have no JSON literal.
        if x.is_finite() {
            format!("{x}")
        } else {
            "null".to_string()
        }
    }

    /// Renders rows as one `ent-bench-metrics/1` JSON document.
    pub fn to_json(suite: &str, rows: &[Row]) -> String {
        let mut out = String::from("{\n  \"schema\": \"ent-bench-metrics/1\",\n");
        let _ = writeln!(out, "  \"suite\": \"{}\",", escape(suite));
        out.push_str("  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            let _ = write!(out, "    {{\"name\": \"{}\"", escape(&r.name));
            for (k, v) in &r.values {
                let _ = write!(out, ", \"{}\": {}", escape(k), num(*v));
            }
            out.push('}');
            out.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `<dir>/results/<stem>.json`, creating `results/` if needed,
    /// and returns the path written.
    ///
    /// The write is atomic (temp file + rename in the same directory), so
    /// concurrent figure binaries sharing a `results/` directory can never
    /// interleave partial documents — readers see the old file or the new
    /// one, nothing in between.
    pub fn write_in(
        dir: impl AsRef<Path>,
        stem: &str,
        suite: &str,
        rows: &[Row],
    ) -> io::Result<PathBuf> {
        let dir = dir.as_ref().join("results");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{stem}.json"));
        let tmp = dir.join(format!(".{stem}.json.tmp-{}", std::process::id()));
        std::fs::write(&tmp, to_json(suite, rows))?;
        std::fs::rename(&tmp, &path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })?;
        Ok(path)
    }

    /// Writes `results/<stem>.json` under the current directory.
    pub fn write(stem: &str, suite: &str, rows: &[Row]) -> io::Result<PathBuf> {
        write_in(".", stem, suite, rows)
    }

    /// Writes `<dir>/results/<stem>_sched.json`: the process-lifetime
    /// scheduler and cache telemetry ([`ent_workloads::sched_totals`]) as
    /// one `ent-batch-telemetry/1` document. Kept in a separate file from
    /// the figure metrics because steal counts vary with `--jobs` and the
    /// host's timing, while `results/<stem>.json` must stay byte-identical
    /// at every jobs count (CI byte-diffs the figure outputs and excludes
    /// `*_sched.json`). Atomic like [`write_in`].
    pub fn write_sched_in(dir: impl AsRef<Path>, stem: &str) -> io::Result<PathBuf> {
        let dir = dir.as_ref().join("results");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{stem}_sched.json"));
        let tmp = dir.join(format!(".{stem}_sched.json.tmp-{}", std::process::id()));
        std::fs::write(&tmp, ent_workloads::sched_totals().to_json())?;
        std::fs::rename(&tmp, &path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })?;
        Ok(path)
    }

    /// Writes `results/<stem>_sched.json` under the current directory.
    pub fn write_sched(stem: &str) -> io::Result<PathBuf> {
        write_sched_in(".", stem)
    }
}

/// Renders a simple fixed-width text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// A compact ASCII sparkline for temperature traces.
pub fn sparkline(values: &[f64], lo: f64, hi: f64) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    values
        .iter()
        .map(|v| {
            let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
            LEVELS[(t * (LEVELS.len() - 1) as f64).round() as usize]
        })
        .collect()
}

/// Human-readable mode names for boot/workload indices.
pub fn mode_name(i: usize) -> &'static str {
    ["energy_saver", "managed", "full_throttle"][i.min(2)]
}

/// Short system label.
pub fn system_label(system: PlatformKind) -> &'static str {
    match system {
        PlatformKind::SystemA => "A",
        PlatformKind::SystemB => "B",
        PlatformKind::SystemC => "C",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e_benchmark_lists_match_the_paper() {
        assert_eq!(e_benchmarks(PlatformKind::SystemA).len(), 6);
        assert_eq!(e_benchmarks(PlatformKind::SystemB).len(), 5);
        assert_eq!(e_benchmarks(PlatformKind::SystemC).len(), 4);
    }

    #[test]
    fn fig7_has_all_benchmarks() {
        assert_eq!(fig7::rows().len(), 15);
    }

    #[test]
    fn fig8_grid_shape() {
        let rows = fig8::rows(1, 1);
        // 6 benchmarks × 3 workloads × 3 boots × {ent, silent}.
        assert_eq!(rows.len(), 6 * 3 * 3 * 2);
        // Exceptions exactly where workload > boot, and the split
        // counters agree: every E1 violation enters as a snapshot-check
        // failure. Checked runs abort there (Corollary 1: no waterfall
        // failure can follow); silent runs keep going with the over-mode
        // object, so they may additionally record dfall failures. Under
        // `ENT_ENFORCE=transient` the same violations raise, but blame
        // lands in the transient counters, so the guarded split is empty.
        let transient = matches!(
            ent_workloads::default_enforcement(),
            ent_runtime::Enforcement::Transient
        );
        for r in &rows {
            assert_eq!(r.exception, r.workload > r.boot, "{r:?}");
            if transient {
                assert_eq!(r.snapshot_failures, 0, "{r:?}");
            } else {
                assert_eq!(r.exception, r.snapshot_failures > 0, "{r:?}");
            }
            if !r.silent || transient {
                assert_eq!(r.dfall_failures, 0, "{r:?}");
            }
        }
    }

    #[test]
    fn fig8_metric_rows_render_the_failure_split() {
        let rows = fig8::rows(1, 2);
        let metric_rows = fig8::metric_rows(&rows);
        assert_eq!(metric_rows.len(), rows.len());
        let json = metrics::to_json("fig8-test", &metric_rows);
        assert!(ent_runtime::json_is_valid(&json), "{json}");
        for (r, m) in rows.iter().zip(&metric_rows) {
            let get = |key: &str| {
                m.values
                    .iter()
                    .find(|(k, _)| *k == key)
                    .unwrap_or_else(|| panic!("row {} missing {key}", m.name))
                    .1
            };
            // The collapsed flag and the split counters must agree in the
            // rendered metrics exactly as they do in the figure rows (the
            // guarded split is empty when the process default is
            // transient — blame lands in the transient counters instead).
            assert_eq!(get("exception"), if r.exception { 1.0 } else { 0.0 });
            assert_eq!(get("snapshot_failures"), r.snapshot_failures as f64);
            assert_eq!(get("dfall_failures"), r.dfall_failures as f64);
            if matches!(
                ent_workloads::default_enforcement(),
                ent_runtime::Enforcement::Guarded
            ) {
                assert_eq!(get("exception") > 0.0, get("snapshot_failures") > 0.0);
            }
            if !r.silent {
                assert_eq!(get("dfall_failures"), 0.0, "{}", m.name);
            }
        }
    }

    #[test]
    fn fig9_metric_rows_render_the_failure_split() {
        let rows = fig9::rows(1, 2);
        let metric_rows = fig9::metric_rows(&rows);
        assert_eq!(metric_rows.len(), rows.len());
        let json = metrics::to_json("fig9-test", &metric_rows);
        assert!(ent_runtime::json_is_valid(&json), "{json}");
        for (r, m) in rows.iter().zip(&metric_rows) {
            let get = |key: &str| {
                m.values
                    .iter()
                    .find(|(k, _)| *k == key)
                    .unwrap_or_else(|| panic!("row {} missing {key}", m.name))
                    .1
            };
            assert_eq!(get("snapshot_failures"), r.snapshot_failures as f64);
            assert_eq!(get("dfall_failures"), r.dfall_failures as f64);
            // Every fig9 cell is a violating combination, so the silent
            // run it reports must have seen snapshot failures (guarded
            // blame; under a transient default the counter stays zero).
            if matches!(
                ent_workloads::default_enforcement(),
                ent_runtime::Enforcement::Guarded
            ) {
                assert!(get("snapshot_failures") > 0.0, "{}", m.name);
            }
            assert_eq!(get("savings_pct"), r.savings_pct);
        }
    }

    #[test]
    fn fig8_chaos_rows_are_deterministic_and_fault_off_cells_match() {
        let plan = ent_energy::FaultPlan {
            dropout_rate: 0.6,
            window_s: 0.5,
            ..ent_energy::FaultPlan::default()
        };
        let a = fig8::chaos_rows(2, &plan, 5);
        let b = fig8::chaos_rows(1, &plan, 5);
        assert_eq!(a.len(), 6 * 3 * 3 * 2);
        let total_faults: u64 = a.iter().map(|r| r.sensor_faults).sum();
        assert!(total_faults > 0, "the plan should fault some reads");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.energy_j.map(f64::to_bits), y.energy_j.map(f64::to_bits));
            assert_eq!(x.error, y.error);
            assert_eq!(
                (x.sensor_faults, x.stale_reads, x.degraded_decisions),
                (y.sensor_faults, y.stale_reads, y.degraded_decisions)
            );
        }
        let json = metrics::to_json("fig8-chaos-test", &fig8::chaos_metric_rows(&a));
        assert!(ent_runtime::json_is_valid(&json), "{json}");
        assert!(json.contains("\"degraded_decisions\""), "{json}");
    }

    #[test]
    fn parallel_rows_are_bit_identical_to_sequential() {
        // The engine's determinism contract, end to end: the same grid at
        // --jobs 1 and --jobs 4 must agree down to the f64 bit pattern.
        let seq = fig9::rows(1, 1);
        let par = fig9::rows(1, 4);
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.benchmark, p.benchmark);
            assert_eq!(s.system, p.system);
            assert_eq!((s.boot, s.workload), (p.boot, p.workload));
            assert_eq!(s.ent_j.to_bits(), p.ent_j.to_bits(), "{}", s.benchmark);
            assert_eq!(
                s.silent_j.to_bits(),
                p.silent_j.to_bits(),
                "{}",
                s.benchmark
            );
            assert_eq!(
                s.savings_pct.to_bits(),
                p.savings_pct.to_bits(),
                "{}",
                s.benchmark
            );
            assert_eq!(s.snapshot_failures, p.snapshot_failures);
            assert_eq!(s.dfall_failures, p.dfall_failures);
        }
    }

    #[test]
    fn fig9_savings_are_positive_everywhere() {
        for r in fig9::rows(2, 1) {
            assert!(
                r.savings_pct > 0.0,
                "{} {:?} boot {} workload {}: {:.2}%",
                r.benchmark,
                r.system,
                r.boot,
                r.workload,
                r.savings_pct
            );
            assert!(r.ent_normalized <= r.silent_normalized);
        }
    }

    #[test]
    fn fig9_system_a_savings_sit_in_the_paper_band() {
        // The paper's System A savings range roughly 14–58 %; with the
        // QoS-degradation handler the reproduction should land in a
        // comparable (not pathological) band.
        let rows = fig9::rows(2, 1);
        for r in rows.iter().filter(|r| r.system == PlatformKind::SystemA) {
            assert!(
                r.savings_pct > 10.0 && r.savings_pct < 80.0,
                "{} boot {} workload {}: {:.2}%",
                r.benchmark,
                r.boot,
                r.workload,
                r.savings_pct
            );
        }
    }

    #[test]
    fn fig9_time_fixed_systems_save_less_than_batch_system_a() {
        let rows = fig9::rows(2, 1);
        let avg = |system: PlatformKind, time_fixed: bool| {
            let vals: Vec<f64> = rows
                .iter()
                .filter(|r| {
                    r.system == system
                        && benchmark(r.benchmark).unwrap().is_time_fixed() == time_fixed
                })
                .map(|r| r.savings_pct)
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        let a_batch = avg(PlatformKind::SystemA, false);
        let b_fixed = avg(PlatformKind::SystemB, true);
        let c_fixed = avg(PlatformKind::SystemC, true);
        assert!(a_batch > b_fixed, "A batch {a_batch} vs B fixed {b_fixed}");
        assert!(a_batch > c_fixed, "A batch {a_batch} vs C fixed {c_fixed}");
    }

    #[test]
    fn fig10_is_battery_proportional() {
        let rows = fig10::rows(2, 2);
        for system in [
            PlatformKind::SystemA,
            PlatformKind::SystemB,
            PlatformKind::SystemC,
        ] {
            for spec in e_benchmarks(system) {
                let g = |boot: usize| {
                    rows.iter()
                        .find(|r| r.system == system && r.benchmark == spec.name && r.boot == boot)
                        .unwrap()
                        .energy_j
                };
                assert!(
                    g(0) < g(1) && g(1) < g(2),
                    "{}: {} < {} < {}",
                    spec.name,
                    g(0),
                    g(1),
                    g(2)
                );
            }
        }
    }

    #[test]
    fn fig11_ent_hovers_java_climbs() {
        for series in fig11::series(3, 2) {
            let peak = |t: &[(f64, f64)]| t.iter().map(|(_, c)| *c).fold(0.0, f64::max);
            assert!(
                peak(&series.java) > peak(&series.ent),
                "{}: java should peak higher",
                series.benchmark
            );
            assert!(peak(&series.java) > 65.0, "{}", series.benchmark);
        }
    }

    #[test]
    fn render_table_aligns_columns() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22".into()],
            ],
        );
        assert!(t.contains("long-name"));
        assert!(t.lines().count() == 4);
    }

    #[test]
    fn metrics_json_is_well_formed() {
        let rows = vec![
            metrics::Row::new("batik")
                .with("overhead_pct", 1.25)
                .with("broken", f64::NAN),
            metrics::Row::new("weird \"name\"\\x").with("energy_j", 3.0),
        ];
        let json = metrics::to_json("unit-test", &rows);
        assert!(ent_runtime::json_is_valid(&json), "{json}");
        assert!(json.contains("\"overhead_pct\": 1.25"));
        assert!(json.contains("\"broken\": null"));
        assert!(json.contains("ent-bench-metrics/1"));
    }

    #[test]
    fn sparkline_maps_range() {
        let s = sparkline(&[0.0, 0.5, 1.0], 0.0, 1.0);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁') && s.ends_with('█'));
    }

    #[test]
    fn write_sched_emits_valid_batch_telemetry() {
        // Drive at least one batch so the totals are non-trivial, then
        // check the emitted document's schema and required counters.
        let _ = ent_workloads::run_batch(2, &[1u32, 2, 3, 4], |&n| n);
        let dir = std::env::temp_dir().join(format!("ent-sched-test-{}", std::process::id()));
        let path = metrics::write_sched_in(&dir, "unit").expect("write sched telemetry");
        assert!(path.ends_with("results/unit_sched.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(ent_runtime::json_is_valid(&text), "{text}");
        for needle in [
            "\"schema\": \"ent-batch-telemetry/1\"",
            "\"batches\":",
            "\"steals\":",
            "\"chunks_claimed\":",
            "\"adapt\":",
            "\"cache\":",
            "\"entries\":",
            "\"shard_entries\": [",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
