//! Criterion micro-benchmarks for the ENT implementation itself: the cost
//! of the mixed type system's moving parts (host-side wall time, as
//! opposed to the simulated joules of the fig* binaries).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ent_core::compile;
use ent_energy::Platform;
use ent_modes::{ConstraintSet, ModeName, ModeTable, ModeVar, StaticMode};
use ent_runtime::{run, RuntimeConfig};
use ent_workloads::{benchmark, e1_program, e2_program};

/// A mid-sized program: the jspider E1 benchmark source.
fn jspider_src() -> String {
    let spec = benchmark("jspider").unwrap();
    e1_program(&spec, &Platform::system_a(), 1)
}

fn bench_compile(c: &mut Criterion) {
    let src = jspider_src();
    c.bench_function("compile/jspider_e1", |b| {
        b.iter(|| compile(std::hint::black_box(&src)).unwrap())
    });
}

fn bench_entailment(c: &mut Criterion) {
    let table = ModeTable::linear(["a", "b", "c", "d", "e", "f"]).unwrap();
    let mut k = ConstraintSet::new();
    for i in 0..6 {
        k.push(
            StaticMode::Var(ModeVar::new(format!("X{i}"))),
            StaticMode::Const(ModeName::new("c")),
        );
    }
    let lo = StaticMode::Var(ModeVar::new("X0"));
    let hi = StaticMode::Const(ModeName::new("f"));
    c.bench_function("modes/entailment_query", |b| {
        b.iter(|| k.entails(&table, std::hint::black_box(&lo), std::hint::black_box(&hi)))
    });
}

fn bench_snapshot(c: &mut Criterion) {
    // 200 snapshots of one dynamic object: measures attributor dispatch,
    // bound checks, and the lazy-copy machinery.
    let src = "modes { low <= high; }
        class D@mode<? <= X> {
          attributor { if (Ext.battery() >= 0.5) { return high; } else { return low; } }
        }
        class Main {
          unit main() {
            let d = new D();
            this.burst(d, 200);
            return {};
          }
          unit burst(D@mode<?> d, int remaining) {
            if (remaining <= 0) { return {}; }
            let D s = snapshot d [_, _];
            return this.burst(d, remaining - 1);
          }
        }";
    let compiled = compile(src).unwrap();
    c.bench_function("runtime/200_snapshots", |b| {
        b.iter_batched(
            || compiled.clone(),
            |p| run(&p, Platform::system_a(), RuntimeConfig::default()),
            BatchSize::SmallInput,
        )
    });
}

fn bench_dispatch(c: &mut Criterion) {
    // A tight recursive method-call loop: interpreter dispatch + dfall.
    let src = "modes { low <= high; }
        class Counter@mode<X> {
          int count(int n, int acc) {
            if (n <= 0) { return acc; }
            return this.count(n - 1, acc + 1);
          }
        }
        class Main {
          int main() {
            let c = new Counter@mode<high>();
            return c.count(2000, 0);
          }
        }";
    let compiled = compile(src).unwrap();
    c.bench_function("runtime/2000_dispatches", |b| {
        b.iter(|| run(&compiled, Platform::system_a(), RuntimeConfig::default()))
    });
}

fn bench_e2_run(c: &mut Criterion) {
    // End-to-end: compile + run the crypto E2 benchmark (small batch).
    let spec = benchmark("crypto").unwrap();
    let src = e2_program(&spec, &Platform::system_a(), 1);
    let compiled = compile(&src).unwrap();
    c.bench_function("experiment/crypto_e2_run", |b| {
        b.iter(|| {
            run(
                &compiled,
                Platform::system_a(),
                RuntimeConfig {
                    battery_level: 0.78,
                    ..RuntimeConfig::default()
                },
            )
        })
    });
}

fn bench_copy_strategies(c: &mut Criterion) {
    // Ablation: lazy vs eager and shallow vs deep snapshot copying over a
    // repeatedly re-snapshotted aggregate.
    let src = "modes { low <= high; }
        class Leaf { }
        class Node { Object child; }
        class Holder@mode<? <= H> {
          Node graph;
          attributor { return low; }
        }
        class Main {
          unit main() {
            let dh = new Holder(new Node(new Node(new Node(new Leaf()))));
            this.burst(dh, 100);
            return {};
          }
          unit burst(Holder@mode<?> h, int remaining) {
            if (remaining <= 0) { return {}; }
            let Holder s = snapshot h [_, _];
            return this.burst(h, remaining - 1);
          }
        }";
    let compiled = compile(src).unwrap();
    let mut group = c.benchmark_group("ablation/copy_strategy");
    for (label, eager, deep) in [
        ("lazy_shallow", false, false),
        ("eager_shallow", true, false),
        ("eager_deep", true, true),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                run(
                    &compiled,
                    Platform::system_a(),
                    RuntimeConfig {
                        eager_copy: eager,
                        deep_copy: deep,
                        ..RuntimeConfig::default()
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_compile,
    bench_entailment,
    bench_snapshot,
    bench_dispatch,
    bench_e2_run,
    bench_copy_strategies
);
criterion_main!(benches);
