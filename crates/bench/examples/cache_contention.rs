//! Lowered-program-cache contention microbenchmark: hot-lookup throughput
//! under concurrent workers, exercising the lock-striped shards.
//!
//!   cargo run -p ent-bench --release --example cache_contention [threads...]
//!
//! Two access patterns bracket the cache's regimes:
//!
//! * `spread` — each lookup targets one of 64 distinct programs spread
//!   across all [`ent_workloads::LOWERED_CACHE_SHARDS`] shards, the
//!   fig-suite shape (many benchmarks × modes prepared concurrently).
//!   Striping lets workers in different shards proceed in parallel; the
//!   pre-sharding global mutex serialized every lookup.
//! * `hammer` — every lookup hits the *same* program (one shard, maximal
//!   contention), the worst case striping cannot help with; it bounds the
//!   per-shard mutex cost.
//!
//! Numbers are wall-clock and machine-local; treat them as ratios across
//! thread counts, not absolutes. On a single-core host the parallel runs
//! measure lock overhead, not speedup.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use ent_workloads::{cache_shard_of, lowered_cache_stats, lowered_cached, LOWERED_CACHE_SHARDS};

const LOOKUPS_PER_THREAD: u64 = 200_000;

fn program_src(n: usize) -> String {
    format!("class Main {{ int main() {{ return {n} + 1; }} }}")
}

/// 64 sources spread across every shard (8 per shard, found by probing).
fn spread_sources() -> Vec<String> {
    let mut per_shard = [0usize; LOWERED_CACHE_SHARDS];
    let mut out = Vec::new();
    let mut n = 0usize;
    while out.len() < 8 * LOWERED_CACHE_SHARDS {
        let src = program_src(n);
        let shard = cache_shard_of(&src);
        if per_shard[shard] < 8 {
            per_shard[shard] += 1;
            out.push(src);
        }
        n += 1;
    }
    out
}

fn bench(label: &str, threads: usize, sources: &[String]) -> f64 {
    // Warm the cache so the measured loop is pure lookup traffic.
    for src in sources {
        let _ = lowered_cached("contention", src);
    }
    let done = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let done = &done;
            s.spawn(move || {
                for i in 0..LOOKUPS_PER_THREAD {
                    // Stride by a per-thread offset so threads walk the
                    // source list out of phase.
                    let src = &sources[(i as usize * 7 + t * 13) % sources.len()];
                    let prog = lowered_cached("contention", src);
                    std::hint::black_box(&prog);
                }
                done.fetch_add(LOOKUPS_PER_THREAD, Ordering::Relaxed);
            });
        }
    });
    let wall = start.elapsed().as_secs_f64();
    let rate = done.load(Ordering::Relaxed) as f64 / wall;
    println!(
        "{label:<8} {threads:>2} threads  {:>12.0} lookups/s  ({wall:.3}s)",
        rate
    );
    rate
}

fn main() {
    let threads: Vec<usize> = {
        let requested: Vec<usize> = std::env::args()
            .skip(1)
            .filter_map(|a| a.parse().ok())
            .collect();
        if requested.is_empty() {
            vec![1, 2, 4, 8]
        } else {
            requested
        }
    };
    let host = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "lowered-program cache contention ({} shards, host parallelism {host})\n",
        LOWERED_CACHE_SHARDS
    );
    let spread = spread_sources();
    let hammer = vec![program_src(0)];
    let mut base_spread = None;
    let mut base_hammer = None;
    for &t in &threads {
        let r = bench("spread", t, &spread);
        let b = *base_spread.get_or_insert(r);
        println!("{:>32}: {:.2}x vs 1 thread", "scaling", r / b);
        let r = bench("hammer", t, &hammer);
        let b = *base_hammer.get_or_insert(r);
        println!("{:>32}: {:.2}x vs 1 thread\n", "scaling", r / b);
    }
    let stats = lowered_cache_stats();
    println!(
        "cache: {} hits, {} misses, {} evictions across {} shards (capacity {})",
        stats.hits, stats.misses, stats.evictions, stats.shards, stats.capacity
    );
}
