//! Engine microbenchmarks: tree walker vs. bytecode VM on isolated
//! interpreter shapes, away from the energy sim and the fig-suite setup.
//!
//!   cargo run -p ent-bench --release --example vmperf
//!
//! The shapes bracket the dispatch loop's regimes:
//!
//! * `straight` — a 400-`let` arithmetic chain, pure fused-binop dispatch
//!   (body larger than L1, so both engines are partly memory-bound);
//! * `fib` — non-tail recursion, exercises the full invoke path;
//! * `tailloop` — tail self-send recursion, exercises the VM's tail-call
//!   elision against the tree walker's per-call frame machinery;
//! * `arr` — `Arr.push` accumulation (the parameter slot keeps the array
//!   `Arc` shared, so both engines deep-copy: a worst case, not a win).
//!
//! Numbers are wall-clock and machine-local; treat them as ratios, not
//! absolutes. The acceptance-grade measurement is `perf_baseline`.

use std::time::Instant;

use ent_energy::Platform;
use ent_runtime::{
    default_stack_size, lower_program, run_lowered, with_interp_stack, Engine, RuntimeConfig,
};

const BUDGET_S: f64 = 0.7;

fn bench(name: &str, src: &str) {
    let compiled = ent_core::compile(src).expect("benchmark program compiles");
    let lowered = lower_program(&compiled);
    let mut sps = Vec::new();
    with_interp_stack(default_stack_size(), || {
        for engine in [Engine::Tree, Engine::Bytecode] {
            let cfg = || RuntimeConfig {
                engine,
                gas_limit: 4_000_000_000,
                ..Default::default()
            };
            let r = run_lowered(&lowered, Platform::system_a(), cfg());
            let steps = r.stats.steps;
            if let Err(e) = &r.value {
                panic!("{name} {engine:?}: {e:?}");
            }
            let start = Instant::now();
            let mut runs = 0u32;
            while start.elapsed().as_secs_f64() < BUDGET_S || runs < 3 {
                let r = run_lowered(&lowered, Platform::system_a(), cfg());
                assert_eq!(r.stats.steps, steps, "{name} must be deterministic");
                runs += 1;
            }
            let wall = start.elapsed().as_secs_f64();
            sps.push(steps as f64 * f64::from(runs) / wall);
            println!(
                "{name:<10} {:<10} {:>12.0} steps/s ({steps} steps)",
                format!("{engine:?}"),
                sps.last().unwrap()
            );
        }
    });
    println!("{name:<10} ratio      {:>12.2}x", sps[1] / sps[0]);
}

fn main() {
    let mut body = String::from("let a0 = 1;\n");
    for i in 1..400 {
        body.push_str(&format!(
            "let a{i} = a{} * 3 + {i} - (a{} % 7);\n",
            i - 1,
            i - 1
        ));
    }
    let straight = format!(
        "class Main {{ int go(int n, int acc) {{ if (n <= 0) {{ return acc; }} {body} return this.go(n - 1, acc + a399); }} int main() {{ return this.go(400, 0); }} }}"
    );
    bench("straight", &straight);
    bench(
        "fib",
        "class Main { int fib(int n) { if (n < 2) { return n; } return this.fib(n-1) + this.fib(n-2); } int main() { return this.fib(24); } }",
    );
    bench(
        "tailloop",
        "class Main { int go(int n, int acc) { if (n <= 0) { return acc; } return this.go(n - 1, acc + n); } int main() { return this.go(30000, 0); } }",
    );
    bench(
        "arr",
        "class Main { int go(int n, int[] xs) { if (n <= 0) { return Arr.len(xs); } return this.go(n - 1, Arr.push(xs, n)); } int main() { return this.go(3000, Arr.range(0, 1)); } }",
    );
}
