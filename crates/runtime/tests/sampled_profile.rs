//! The sampled profiler's contracts:
//!
//! * **Determinism** — same program + seed + period ⇒ byte-identical
//!   telemetry across repeat runs and across both engines (the sampler
//!   keys off the virtual step counter, which bytecode gas batching
//!   keeps exact at every observable boundary).
//! * **Schema** — sampled reports self-describe with `"mode": "sampled"`
//!   and carry `samples`/`est_*`/`ci_lo`/`ci_hi` fields; exact reports
//!   keep their original schema byte-for-byte (no `mode` key); profiling
//!   off emits `"profile": null`.
//! * **Estimator coherence** — exclusive estimates partition the run,
//!   the root inclusive estimate is the whole run, CIs bracket their
//!   point estimates, and at period 1 the estimator degenerates to the
//!   exact profiler's frame-granular attribution.

use ent_core::compile;
use ent_energy::Platform;
use ent_runtime::{
    json_is_valid, lower_program, run_lowered, Engine, LoweredProgram, ProfileMode, RuntimeConfig,
};

/// Recursion, snapshots (one failing, caught), dynamic allocs, and sim
/// work — enough structure for a multi-frame sample tree.
const WORKLOAD: &str = "
modes { low <= mid; mid <= high; }
class Job@mode<? <= J> {
  int size;
  attributor {
    if (this.size > 100) { return high; }
    else if (this.size > 10) { return mid; }
    else { return low; }
  }
  int step(int n) {
    Sim.work(\"cpu\", Math.toDouble(this.size) * 100000.0);
    if (n <= 1) { return this.size; }
    return this.step(n - 1);
  }
}
class Runner@mode<? <= R> {
  attributor {
    if (Ext.battery() >= 0.5) { return high; } else { return low; }
  }
  int go() {
    return this.one(3) + this.one(40) + this.one(7);
  }
  int one(int size) {
    let dj = new Job(size);
    let Job j = snapshot dj [_, R];
    let Job j2 = snapshot dj [_, R];
    return j2.step(3);
  }
}
class Main {
  int main() {
    let dr = new Runner();
    let Runner r = snapshot dr [_, _];
    let bad = new Job(500);
    let fallback = try {
      let Job b = snapshot bad [_, low];
      b.step(1)
    } catch {
      0 - 1
    };
    return r.go() + fallback;
  }
}";

fn lowered() -> LoweredProgram {
    lower_program(&compile(WORKLOAD).expect("workload compiles"))
}

fn config(engine: Engine, profile: ProfileMode) -> RuntimeConfig {
    RuntimeConfig {
        engine,
        battery_level: 0.9,
        seed: 42,
        profile,
        ..RuntimeConfig::default()
    }
}

#[test]
fn sampled_telemetry_is_byte_identical_across_runs_and_engines() {
    let prog = lowered();
    let mode = ProfileMode::Sampled {
        period: 32,
        seed: 5,
    };
    let tree_a = run_lowered(&prog, Platform::system_a(), config(Engine::Tree, mode));
    let tree_b = run_lowered(&prog, Platform::system_a(), config(Engine::Tree, mode));
    let vm = run_lowered(&prog, Platform::system_a(), config(Engine::Bytecode, mode));
    assert!(tree_a.value.is_ok(), "workload runs clean: {tree_a:?}");
    let sampled = tree_a
        .profile
        .as_ref()
        .and_then(|p| p.as_sampled())
        .expect("sampled report");
    assert!(sampled.samples > 0, "the workload is long enough to sample");
    // The whole telemetry document — stats, measurement bit patterns,
    // and the profile object — is byte-stable.
    assert_eq!(tree_a.to_json(), tree_b.to_json(), "repeat run diverged");
    assert_eq!(tree_a.to_json(), vm.to_json(), "engines diverged");
}

#[test]
fn sampled_schedule_responds_to_seed_and_period() {
    let prog = lowered();
    let base = run_lowered(
        &prog,
        Platform::system_a(),
        config(
            Engine::Tree,
            ProfileMode::Sampled {
                period: 32,
                seed: 5,
            },
        ),
    );
    let wider = run_lowered(
        &prog,
        Platform::system_a(),
        config(
            Engine::Tree,
            ProfileMode::Sampled {
                period: 128,
                seed: 5,
            },
        ),
    );
    let a = base.profile.unwrap();
    let b = wider.profile.unwrap();
    let (a, b) = (a.as_sampled().unwrap(), b.as_sampled().unwrap());
    // 4× the period ⇒ roughly a quarter of the captures (jitter keeps it
    // from being exact; the bound is deliberately loose).
    assert!(
        b.samples < a.samples,
        "period 128 took {} samples vs {} at period 32",
        b.samples,
        a.samples
    );
    // Semantics are untouched either way.
    assert_eq!(base.stats.steps, wider.stats.steps);
    assert_eq!(
        base.measurement.energy_j.to_bits(),
        wider.measurement.energy_j.to_bits()
    );
}

#[test]
fn telemetry_schema_distinguishes_all_three_modes() {
    let prog = lowered();

    // Off: the profile key is literally null and the field is None.
    let off = run_lowered(
        &prog,
        Platform::system_a(),
        config(Engine::Tree, ProfileMode::Off),
    );
    assert!(off.profile.is_none());
    let json = off.to_json();
    assert!(json_is_valid(&json), "{json}");
    assert!(json.contains("\"profile\": null"));

    // Exact: the original PR-2 schema, byte-for-byte — object starts at
    // "methods", per-method inclusive/exclusive cost objects, no "mode"
    // key and no CI fields anywhere in the profile object.
    let exact = run_lowered(
        &prog,
        Platform::system_a(),
        config(Engine::Tree, ProfileMode::Exact),
    );
    let json = exact.to_json();
    assert!(json_is_valid(&json), "{json}");
    assert!(json.contains("\"profile\": {\"methods\": ["));
    let profile_json = exact.profile.as_ref().unwrap().to_json();
    assert!(
        !profile_json.contains("\"mode\""),
        "exact schema grew a mode key"
    );
    assert!(
        !profile_json.contains("\"ci_lo\""),
        "exact schema grew CI fields"
    );
    assert!(profile_json.contains("\"inclusive\""));
    assert!(profile_json.contains("\"exclusive\""));

    // Sampled: self-describing mode plus samples, estimates, and CIs.
    let sampled = run_lowered(
        &prog,
        Platform::system_a(),
        config(Engine::Tree, ProfileMode::sampled_default()),
    );
    let json = sampled.to_json();
    assert!(json_is_valid(&json), "{json}");
    assert!(json.contains("\"profile\": {\"mode\": \"sampled\""));
    for key in [
        "\"period\"",
        "\"samples\"",
        "\"total_steps\"",
        "\"est_steps_excl\"",
        "\"ci_lo\"",
        "\"ci_hi\"",
        "\"est_steps_incl\"",
        "\"est_energy_j_excl\"",
        "\"est_time_s_excl\"",
        "\"folded\"",
    ] {
        assert!(
            json.contains(key),
            "sampled telemetry missing {key}: {json}"
        );
    }
}

#[test]
fn sampled_estimates_are_coherent() {
    let prog = lowered();
    let result = run_lowered(
        &prog,
        Platform::system_a(),
        config(
            Engine::Tree,
            ProfileMode::Sampled {
                period: 16,
                seed: 0,
            },
        ),
    );
    let report = result.profile.as_ref().unwrap();
    let p = report.as_sampled().expect("sampled report");
    assert!(report.as_exact().is_none(), "mode accessors are exclusive");

    assert_eq!(p.total_steps, result.stats.steps);
    // The scaled-to totals come from the noise-free sim accumulator (the
    // whole-run measurement adds seeded noise on top), so they match the
    // exact profiler's attribution total, not `measurement.energy_j`.
    let exact_run = run_lowered(
        &prog,
        Platform::system_a(),
        config(Engine::Tree, ProfileMode::Exact),
    );
    let exact_total = exact_run
        .profile
        .as_ref()
        .unwrap()
        .as_exact()
        .unwrap()
        .total();
    assert!(
        (p.total_energy_j - exact_total.energy_j).abs() < 1e-9,
        "{} vs {}",
        p.total_energy_j,
        exact_total.energy_j
    );

    // Exclusive estimates partition the run (hit fractions sum to 1).
    let excl_sum: f64 = p.methods.iter().map(|m| m.est_steps_excl).sum();
    assert!(
        (excl_sum - p.total_steps as f64).abs() < 1e-6 * p.total_steps as f64,
        "exclusive estimates sum to {excl_sum}, run has {} steps",
        p.total_steps
    );
    let energy_sum: f64 = p.methods.iter().map(|m| m.est_energy_j_excl).sum();
    assert!((energy_sum - p.total_energy_j).abs() < 1e-9 + 1e-6 * p.total_energy_j);

    // The root's inclusive estimate is the whole run, exactly.
    let root = p.methods.iter().find(|m| m.name == "(root)").unwrap();
    assert_eq!(root.samples_incl, p.samples);
    assert!((root.est_steps_incl - p.total_steps as f64).abs() < 1e-9);
    assert!((root.est_energy_j_incl - p.total_energy_j).abs() < 1e-9);

    for m in &p.methods {
        assert!(m.samples_incl >= m.samples_excl, "{}", m.name);
        assert!(
            m.ci_steps_excl.0 <= m.est_steps_excl && m.est_steps_excl <= m.ci_steps_excl.1,
            "{}: CI {:?} does not bracket {}",
            m.name,
            m.ci_steps_excl,
            m.est_steps_excl
        );
        assert!(
            m.ci_steps_incl.0 <= m.est_steps_incl && m.est_steps_incl <= m.ci_steps_incl.1,
            "{}",
            m.name
        );
    }

    // Folded weights are sample counts and account for every capture.
    let folded_total: u64 = p
        .folded
        .iter()
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(folded_total, p.samples);
}

#[test]
fn period_one_degenerates_to_exact_attribution() {
    let prog = lowered();
    let exact_run = run_lowered(
        &prog,
        Platform::system_a(),
        config(Engine::Tree, ProfileMode::Exact),
    );
    let sampled_run = run_lowered(
        &prog,
        Platform::system_a(),
        config(Engine::Tree, ProfileMode::Sampled { period: 1, seed: 9 }),
    );
    let exact = exact_run.profile.as_ref().unwrap().as_exact().unwrap();
    let sampled = sampled_run.profile.as_ref().unwrap().as_sampled().unwrap();

    // Every step crosses a threshold, so hits == steps per frame.
    assert_eq!(sampled.samples, sampled_run.stats.steps);
    for m in &exact.methods {
        let est = sampled
            .methods
            .iter()
            .find(|s| s.name == m.name)
            .unwrap_or_else(|| panic!("method {} missing from sampled report", m.name));
        assert_eq!(
            est.est_steps_excl, m.exclusive.steps as f64,
            "{}: sampled estimate vs exact exclusive steps",
            m.name
        );
        assert_eq!(est.est_steps_incl, m.inclusive.steps as f64, "{}", m.name);
        // Energy is the step share of the run total (hit-share
        // attribution): exact steps ⇒ exact share of the total.
        let total = exact.total();
        let expect = m.exclusive.steps as f64 / total.steps as f64 * total.energy_j;
        assert!(
            (est.est_energy_j_excl - expect).abs() < 1e-9 + 1e-9 * expect.abs(),
            "{}: {} vs {}",
            m.name,
            est.est_energy_j_excl,
            expect
        );
    }

    // The folded stacks carry identical weights once the exact chains
    // are collapsed the way the sampler collapses them: consecutive
    // identical path segments merge (the sampler run-length encodes
    // direct self-recursion) and weights sum per collapsed path.
    let collapse = |lines: &[String]| -> std::collections::HashMap<String, u64> {
        let mut out = std::collections::HashMap::new();
        for line in lines {
            let (path, weight) = line.rsplit_once(' ').unwrap();
            let mut collapsed: Vec<&str> = Vec::new();
            for seg in path.split(';') {
                if collapsed.last() != Some(&seg) {
                    collapsed.push(seg);
                }
            }
            *out.entry(collapsed.join(";")).or_insert(0u64) += weight.parse::<u64>().unwrap();
        }
        out
    };
    assert_eq!(collapse(&exact.folded), collapse(&sampled.folded));
}
