//! Concurrency stress tests for the adaptive-tuning seqlock
//! ([`ent_runtime::AtomicConfig`]): under sustained concurrent writers,
//! readers must never observe a torn snapshot and must see generations
//! advance monotonically.
//!
//! Torn reads are made detectable by a field invariant: every published
//! config satisfies `steal_min == chunk + 1` and
//! `cache_capacity == chunk * 3 + 7`, with the engine hint keyed to the
//! chunk's parity. Any snapshot mixing fields from two writes breaks at
//! least one of those relations.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ent_runtime::{AdaptConfig, AtomicConfig, Engine};

/// A config whose fields are all derived from one seed, so a mixed-write
/// snapshot is detectable.
fn woven(seed: u32) -> AdaptConfig {
    AdaptConfig {
        chunk: seed,
        steal_min: seed + 1,
        cache_capacity: seed * 3 + 7,
        engine_hint: if seed.is_multiple_of(2) {
            Some(Engine::Bytecode)
        } else {
            Some(Engine::Tree)
        },
    }
}

fn assert_unwoven(config: &AdaptConfig) {
    let seed = config.chunk;
    assert_eq!(config.steal_min, seed + 1, "torn read: {config:?}");
    assert_eq!(config.cache_capacity, seed * 3 + 7, "torn read: {config:?}");
    let expect = if seed.is_multiple_of(2) {
        Some(Engine::Bytecode)
    } else {
        Some(Engine::Tree)
    };
    assert_eq!(config.engine_hint, expect, "torn read: {config:?}");
}

#[test]
fn concurrent_generation_swaps_never_tear_and_stay_monotone() {
    let cell = Arc::new(AtomicConfig::new(woven(0)));
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    const WRITERS: usize = 3;
    const READERS: usize = 5;
    const BUDGET: Duration = Duration::from_millis(400);

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let start = Instant::now();
                let mut seed = w as u32;
                while start.elapsed() < BUDGET {
                    cell.store(woven(seed));
                    seed = seed.wrapping_add(WRITERS as u32) % 100_000;
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
        for _ in 0..READERS {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads);
            s.spawn(move || {
                let mut last_generation = 0u64;
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let (generation, config) = cell.load();
                    assert_unwoven(&config);
                    assert!(
                        generation >= last_generation,
                        "generation moved backwards: {last_generation} -> {generation}"
                    );
                    last_generation = generation;
                    n += 1;
                }
                reads.fetch_add(n, Ordering::Relaxed);
            });
        }
    });

    // The run must have exercised real concurrency, not degenerate spins.
    assert!(
        reads.load(Ordering::Relaxed) > 1_000,
        "too few reads to mean anything"
    );
    let (final_generation, final_config) = cell.load();
    assert!(final_generation > 0);
    assert_unwoven(&final_config);
}

#[test]
fn writers_serialize_and_every_generation_is_observed_in_order() {
    // Two writers hammering the cell: generations returned by store() are
    // unique and strictly increasing per writer's own observations, and
    // the final generation equals the total number of stores.
    let cell = Arc::new(AtomicConfig::new(woven(1)));
    const STORES_PER_WRITER: u64 = 2_000;
    const WRITERS: u64 = 4;
    let max_seen = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let cell = Arc::clone(&cell);
            let max_seen = Arc::clone(&max_seen);
            s.spawn(move || {
                let mut last = 0u64;
                for i in 0..STORES_PER_WRITER {
                    let generation = cell.store(woven((w * STORES_PER_WRITER + i) as u32));
                    assert!(
                        generation > last,
                        "writer {w}: generation did not advance: {last} -> {generation}"
                    );
                    last = generation;
                }
                max_seen.fetch_max(last, Ordering::Relaxed);
            });
        }
    });

    let total = WRITERS * STORES_PER_WRITER;
    assert_eq!(cell.load().0, total, "every store advanced exactly once");
    assert_eq!(max_seen.load(Ordering::Relaxed), total);
}

#[test]
fn readers_make_progress_while_a_writer_spins() {
    // Liveness smoke test: a tight writer loop must not starve readers
    // (the seqlock read path retries only across the handful of stores
    // inside one publish).
    let cell = Arc::new(AtomicConfig::new(woven(5)));
    let stop = Arc::new(AtomicBool::new(false));
    let observed = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut seed = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    cell.store(woven(seed));
                    seed = seed.wrapping_add(1) % 100_000;
                }
            });
        }
        {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            let observed = Arc::clone(&observed);
            s.spawn(move || {
                let start = Instant::now();
                let mut n = 0u64;
                while start.elapsed() < Duration::from_millis(200) {
                    let (_, config) = cell.load();
                    assert_unwoven(&config);
                    n += 1;
                }
                observed.store(n, Ordering::Relaxed);
                stop.store(true, Ordering::Relaxed);
            });
        }
    });

    assert!(
        observed.load(Ordering::Relaxed) > 100,
        "reader starved by the writer"
    );
}
