//! The observability layer's contracts:
//!
//! * **Zero interference** — turning `record_events` and/or `profile` on
//!   leaves every semantic observable (steps, counters, output, value,
//!   exact energy/time f64 bit patterns) unchanged, in all four on/off
//!   configurations.
//! * **Determinism** — same program + seed ⇒ bit-identical event buffers
//!   and profile tables across runs.
//! * **Bounded recording** — the ring retains the newest `events_capacity`
//!   events and accounts for the rest in `dropped`.
//! * **Attribution sanity** — inclusive ≥ exclusive everywhere, the root
//!   inclusive totals cover the whole run, and the JSON report is
//!   well-formed.

use ent_core::compile;
use ent_energy::Platform;
use ent_runtime::{
    json_is_valid, lower_program, run_lowered, EventPayload, LoweredProgram, ProfileMode,
    RunResult, RuntimeConfig,
};

/// A workload exercising every event kind and a recursive call tree:
/// dynamic allocs, passing and failing snapshots (caught), copies, sim
/// work, and recursion.
const WORKLOAD: &str = "
modes { low <= mid; mid <= high; }
class Job@mode<? <= J> {
  int size;
  attributor {
    if (this.size > 100) { return high; }
    else if (this.size > 10) { return mid; }
    else { return low; }
  }
  int step(int n) {
    Sim.work(\"cpu\", Math.toDouble(this.size) * 100000.0);
    if (n <= 1) { return this.size; }
    return this.step(n - 1);
  }
}
class Runner@mode<? <= R> {
  attributor {
    if (Ext.battery() >= 0.5) { return high; } else { return low; }
  }
  int go() {
    return this.one(3) + this.one(40) + this.one(7);
  }
  int one(int size) {
    let dj = new Job(size);
    let Job j = snapshot dj [_, R];
    let Job j2 = snapshot dj [_, R];
    return j2.step(3);
  }
}
class Main {
  int main() {
    let dr = new Runner();
    let Runner r = snapshot dr [_, _];
    let bad = new Job(500);
    let fallback = try {
      let Job b = snapshot bad [_, low];
      b.step(1)
    } catch {
      0 - 1
    };
    return r.go() + fallback;
  }
}";

fn lowered() -> LoweredProgram {
    lower_program(&compile(WORKLOAD).expect("workload compiles"))
}

fn config(events: bool, profile: bool) -> RuntimeConfig {
    RuntimeConfig {
        battery_level: 0.9,
        seed: 42,
        record_events: events,
        profile: if profile {
            ProfileMode::Exact
        } else {
            ProfileMode::Off
        },
        ..RuntimeConfig::default()
    }
}

fn fingerprint(result: &RunResult) -> String {
    let s = &result.stats;
    let value = match &result.value {
        Ok(v) => format!("ok:{v}"),
        Err(e) => format!("err:{e}"),
    };
    format!(
        "steps={};snaps={};copies={};exc={};sfail={};dfail={};dyn={};allocs={};value={};pretty={};out={};energy={:016x};time={:016x}",
        s.steps,
        s.snapshots,
        s.copies,
        s.energy_exceptions,
        s.snapshot_failures,
        s.dfall_failures,
        s.dynamic_allocs,
        s.allocs,
        value,
        result.value_pretty.clone().unwrap_or_default(),
        result.output.join("\\n"),
        result.measurement.energy_j.to_bits(),
        result.measurement.time_s.to_bits(),
    )
}

#[test]
fn observability_never_perturbs_semantics() {
    let prog = lowered();
    let mut prints = Vec::new();
    for (events, profile) in [(false, false), (true, false), (false, true), (true, true)] {
        let result = run_lowered(&prog, Platform::system_a(), config(events, profile));
        assert!(result.value.is_ok(), "workload runs clean: {result:?}");
        prints.push((events, profile, fingerprint(&result)));
    }
    let baseline = &prints[0].2;
    for (events, profile, fp) in &prints[1..] {
        assert_eq!(
            fp, baseline,
            "fingerprint drifted with events={events} profile={profile}"
        );
    }
}

#[test]
fn event_buffers_and_profiles_are_deterministic() {
    let prog = lowered();
    let a = run_lowered(&prog, Platform::system_a(), config(true, true));
    let b = run_lowered(&prog, Platform::system_a(), config(true, true));
    assert!(!a.events.is_empty(), "workload produces events");
    assert_eq!(a.events, b.events, "event ring must be bit-identical");
    assert_eq!(a.profile, b.profile, "profile must be bit-identical");
    // A different seed still yields the same event structure here (no
    // control flow depends on noise), but the profile energy comes from
    // the same deterministic accumulation:
    let c = run_lowered(&prog, Platform::system_a(), config(true, true));
    assert_eq!(a.profile.unwrap(), c.profile.unwrap());
}

#[test]
fn event_ring_retains_newest_and_counts_dropped() {
    let prog = lowered();
    let full = run_lowered(&prog, Platform::system_a(), config(true, false));
    let total = full.events.recorded();
    assert!(total > 4, "need enough events to truncate ({total})");

    let mut small = config(true, false);
    small.events_capacity = 3;
    let clipped = run_lowered(&prog, Platform::system_a(), small);
    assert_eq!(clipped.events.len(), 3);
    assert_eq!(clipped.events.recorded(), total);
    assert_eq!(clipped.events.dropped(), total - 3);
    // The retained window is exactly the newest three:
    let newest: Vec<_> = full.events.to_vec()[full.events.len() - 3..].to_vec();
    assert_eq!(clipped.events.to_vec(), newest);
}

#[test]
fn profile_attribution_is_coherent() {
    let prog = lowered();
    let result = run_lowered(&prog, Platform::system_a(), config(false, true));
    let report = result.profile.expect("profile requested");
    let profile = report.as_exact().expect("exact-mode report");

    // Every method: inclusive ≥ exclusive on every metric.
    for m in &profile.methods {
        assert!(m.inclusive.steps >= m.exclusive.steps, "{}", m.name);
        assert!(m.inclusive.energy_j >= m.exclusive.energy_j, "{}", m.name);
        assert!(m.inclusive.time_s >= m.exclusive.time_s, "{}", m.name);
        assert!(m.inclusive.snapshots >= m.exclusive.snapshots, "{}", m.name);
        assert!(m.inclusive.copies >= m.exclusive.copies, "{}", m.name);
    }

    // The root's inclusive totals are the whole run.
    let total = profile.total();
    assert_eq!(total.steps, result.stats.steps, "all steps attributed");
    assert_eq!(total.snapshots, result.stats.snapshots);
    assert_eq!(total.copies, result.stats.copies);
    assert_eq!(total.dynamic_allocs, result.stats.dynamic_allocs);
    assert_eq!(total.snapshot_failures, result.stats.snapshot_failures);

    // Exclusive totals partition the run: summing them re-derives it.
    let excl_steps: u64 = profile.methods.iter().map(|m| m.exclusive.steps).sum();
    assert_eq!(excl_steps, result.stats.steps);
    let excl_energy: f64 = profile.methods.iter().map(|m| m.exclusive.energy_j).sum();
    assert!((excl_energy - total.energy_j).abs() < 1e-6);

    // The expected frames are present and the recursive Job.step carries
    // the work.
    let names: Vec<&str> = profile.methods.iter().map(|m| m.name.as_str()).collect();
    for expect in ["(root)", "Main.main", "Runner.go", "Runner.one", "Job.step"] {
        assert!(names.contains(&expect), "missing frame {expect}: {names:?}");
    }
    let step = profile
        .methods
        .iter()
        .find(|m| m.name == "Job.step")
        .unwrap();
    assert!(step.calls >= 9, "three sites × recursion depth 3");
    assert!(step.exclusive.energy_j > 0.0, "Sim.work charged to step");

    // Folded stacks: well-formed, weights match total steps.
    let folded_total: u64 = profile
        .folded
        .iter()
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(folded_total, result.stats.steps);
    assert!(profile
        .folded
        .iter()
        .any(|l| l.contains("Runner.one;Job.step")));
}

#[test]
fn telemetry_json_is_well_formed_and_complete() {
    let prog = lowered();
    let mut cfg = config(true, true);
    cfg.trace_interval_s = Some(0.005);
    let result = run_lowered(&prog, Platform::system_a(), cfg);
    let json = result.to_json();
    assert!(json_is_valid(&json), "telemetry must parse: {json}");
    for key in [
        "\"schema\"",
        "\"status\"",
        "\"stats\"",
        "\"measurement\"",
        "\"energy_j_bits\"",
        "\"trajectory\"",
        "\"events\"",
        "\"profile\"",
        "\"folded\"",
        "\"snapshot_failures\"",
        "\"dfall_failures\"",
    ] {
        assert!(json.contains(key), "telemetry missing {key}");
    }
    assert!(!result.samples.is_empty(), "sampling was enabled");

    // An error run is also representable.
    let strict = RuntimeConfig {
        battery_level: 0.3,
        seed: 42,
        ..RuntimeConfig::default()
    };
    let failing = compile(
        "modes { low <= high; }
         class D@mode<? <= X> { attributor { return high; } }
         class Main { unit main() { let d = new D(); let D s = snapshot d [_, low]; return {}; } }",
    )
    .unwrap();
    let failed = run_lowered(&lower_program(&failing), Platform::system_a(), strict);
    assert!(failed.value.is_err());
    let json = failed.to_json();
    assert!(json_is_valid(&json), "{json}");
    assert!(json.contains("\"status\": \"error\""));
}

#[test]
fn events_off_records_nothing_and_profile_off_reports_none() {
    let prog = lowered();
    let result = run_lowered(&prog, Platform::system_a(), config(false, false));
    assert!(result.events.is_empty());
    assert_eq!(result.events.recorded(), 0);
    assert_eq!(result.events.capacity(), 0);
    assert!(result.profile.is_none());
    // The stats still count check outcomes even with recording off.
    assert!(result.stats.snapshot_failures >= 1, "the risky Job fails");
    assert_eq!(
        result.stats.snapshot_failures + result.stats.dfall_failures,
        result.stats.energy_exceptions
    );
    // And the event kinds tally with stats when recording is on:
    let with_events = run_lowered(&prog, Platform::system_a(), config(true, false));
    let snaps = with_events
        .events
        .iter()
        .filter(|e| matches!(e.payload, EventPayload::Snapshot { .. }))
        .count() as u64;
    assert_eq!(snaps, result.stats.snapshots);
}
