//! Check-site blame under the transient enforcement strategy.
//!
//! Guarded opens the callee's profiler frame *before* the invocation
//! prologue, so prologue work — attributor evaluation, the mode check —
//! is historically charged to the callee. Transient blames the check
//! site: the prologue runs in the caller's frame, and a failing check
//! never opens the callee frame at all. These tests pin both the
//! attribution shift (exact and sampled profilers) and the distinct
//! error provenance of the two strategies.

use ent_core::compile;
use ent_energy::Platform;
use ent_runtime::{
    json_is_valid, lower_program, run_lowered, Enforcement, LoweredProgram, ProfileMode, RunResult,
    RuntimeConfig,
};

/// A driver repeatedly sends to a worker whose method carries a
/// deliberately chatty attributor: every send pays prologue steps that
/// the two strategies attribute to different frames.
const ATTRIBUTED: &str = "
modes { energy_saver <= managed; managed <= full_throttle; }
class Saver@mode<S> {
  int n;
  int save()
    attributor {
      if (this.n * 3 - 2 > 60) { return full_throttle; }
      else if (this.n * 3 - 2 > 28) { return managed; }
      else { return energy_saver; }
    }
  { Sim.work(\"cpu\", 50000.0); return this.n; }
}
class Driver@mode<D> {
  int drive(int k, Saver@mode<D> s) {
    if (k <= 0) { return 0; }
    s.save();
    return this.drive(k - 1, s);
  }
}
class Main {
  int main() {
    let d = new Driver@mode<energy_saver>();
    return d.drive(40, new Saver@mode<energy_saver>(5));
  }
}";

fn lowered(src: &str) -> LoweredProgram {
    lower_program(&compile(src).expect("program compiles"))
}

fn run(prog: &LoweredProgram, enforcement: Enforcement, profile: ProfileMode) -> RunResult {
    run_lowered(
        prog,
        Platform::system_a(),
        RuntimeConfig {
            enforcement,
            battery_level: 0.9,
            seed: 42,
            profile,
            ..RuntimeConfig::default()
        },
    )
}

fn excl_steps(r: &RunResult, method: &str) -> u64 {
    r.profile
        .as_ref()
        .and_then(|p| p.as_exact())
        .expect("exact profile")
        .methods
        .iter()
        .find(|m| m.name == method)
        .unwrap_or_else(|| panic!("method {method} missing from profile"))
        .exclusive
        .steps
}

#[test]
fn transient_charges_prologue_steps_to_the_check_site() {
    let prog = lowered(ATTRIBUTED);
    let guarded = run(&prog, Enforcement::Guarded, ProfileMode::Exact);
    let transient = run(&prog, Enforcement::Transient, ProfileMode::Exact);
    assert_eq!(guarded.value, transient.value, "same accepted program");

    // The attributor's steps move from the callee (guarded blames the
    // boundary) to the caller (transient blames the check site)...
    let g_callee = excl_steps(&guarded, "Saver.save");
    let t_callee = excl_steps(&transient, "Saver.save");
    let g_caller = excl_steps(&guarded, "Driver.drive");
    let t_caller = excl_steps(&transient, "Driver.drive");
    assert!(
        g_callee > t_callee,
        "guarded charges the callee for its own prologue ({g_callee} vs {t_callee})"
    );
    assert!(
        t_caller > g_caller,
        "transient charges the caller at the check site ({t_caller} vs {g_caller})"
    );
    // ...and only move: the shift is conserved, frame for frame.
    assert_eq!(
        g_callee - t_callee,
        t_caller - g_caller,
        "attribution shift must be conserved between the two frames"
    );
    let g_total = guarded
        .profile
        .as_ref()
        .unwrap()
        .as_exact()
        .unwrap()
        .total();
    let t_total = transient
        .profile
        .as_ref()
        .unwrap()
        .as_exact()
        .unwrap()
        .total();
    assert_eq!(g_total.steps, t_total.steps, "total work is unchanged");
}

#[test]
fn sampled_profiler_stays_deterministic_under_transient() {
    let prog = lowered(ATTRIBUTED);
    let mode = ProfileMode::Sampled {
        period: 16,
        seed: 5,
    };
    let a = run(&prog, Enforcement::Transient, mode);
    let b = run(&prog, Enforcement::Transient, mode);
    assert!(a.value.is_ok());
    let sampled = a
        .profile
        .as_ref()
        .and_then(|p| p.as_sampled())
        .expect("sampled report");
    assert!(sampled.samples > 0, "workload long enough to sample");
    assert_eq!(a.to_json(), b.to_json(), "repeat transient run diverged");
    assert!(
        json_is_valid(&a.to_json()),
        "telemetry must stay valid JSON"
    );
}

/// The dfall-violating variant: `n = 50` attributes the send at
/// `full_throttle` against an `energy_saver` sender.
const VIOLATING: &str = "
modes { energy_saver <= managed; managed <= full_throttle; }
class Saver@mode<S> {
  int n;
  int save()
    attributor {
      if (this.n > 20) { return full_throttle; }
      else { return energy_saver; }
    }
  { return this.n; }
}
class Booter@mode<energy_saver> {
  Saver@mode<energy_saver> s;
  int go() { return this.s.save(); }
}
class Main {
  int main() {
    let b = new Booter(new Saver@mode<energy_saver>(50));
    return b.go();
  }
}";

#[test]
fn failing_check_blames_its_site_and_keeps_the_shadow_stack_balanced() {
    let prog = lowered(VIOLATING);
    let guarded = run(&prog, Enforcement::Guarded, ProfileMode::Exact);
    let transient = run(&prog, Enforcement::Transient, ProfileMode::Exact);

    // Distinct provenance: guarded speaks of the waterfall invariant,
    // transient of the check site.
    let g_err = guarded.value.unwrap_err().to_string();
    let t_err = transient.value.unwrap_err().to_string();
    assert!(
        g_err.contains("dynamic waterfall violation"),
        "guarded blame: {g_err}"
    );
    assert!(
        t_err.contains("transient check failed at call site"),
        "transient blame: {t_err}"
    );
    assert_eq!(transient.stats.transient_failures, 1);
    assert_eq!(transient.stats.dfall_failures, 0);

    // The failing prologue never opened a callee frame, so the profile
    // unwinds cleanly: the callee shows zero completed calls while the
    // root still carries the run.
    let profile = transient.profile.as_ref().and_then(|p| p.as_exact());
    let profile = profile.expect("profile survives a failing run");
    assert!(
        profile.methods.iter().any(|m| m.name == "Main.main"),
        "root frame must be attributed"
    );
    assert!(
        !profile
            .methods
            .iter()
            .any(|m| m.name == "Saver.save" && m.calls > 0),
        "a send rejected at the check site must not count as a callee call"
    );
}
