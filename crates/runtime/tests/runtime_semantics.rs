//! Behavioral tests for the ENT runtime: snapshot semantics, mode tagging,
//! lazy copying, EnergyException, silent mode, mode cases, and energy
//! accounting.

use ent_core::compile;
use ent_energy::Platform;
use ent_runtime::{run, RtError, RunResult, RuntimeConfig, Value};

const MODES: &str = "modes { energy_saver <= managed; managed <= full_throttle; }\n";

fn run_src(src: &str, config: RuntimeConfig) -> RunResult {
    let compiled = compile(src).unwrap_or_else(|e| panic!("compile failed:\n{}", e.render(src)));
    run(&compiled, Platform::system_a(), config)
}

fn at_battery(level: f64) -> RuntimeConfig {
    RuntimeConfig {
        battery_level: level,
        ..RuntimeConfig::default()
    }
}

/// The attributor picks the mode from the battery level, as in §6.1's
/// boot-mode thresholds.
fn agent_program(body: &str) -> String {
    format!(
        "{MODES}
        class Agent@mode<? <= X> {{
          attributor {{
            if (Ext.battery() >= 0.9) {{ return full_throttle; }}
            else if (Ext.battery() >= 0.7) {{ return managed; }}
            else {{ return energy_saver; }}
          }}
          mcase<int> depth = mcase{{ energy_saver: 1; managed: 2; full_throttle: 3; }};
          int work(int n) {{ return n * (this.depth <| X); }}
        }}
        class Main {{
          int main() {{ {body} }}
        }}"
    )
}

#[test]
fn attributor_reads_battery_and_modes_select_behavior() {
    let src = agent_program(
        "let da = new Agent();
         let Agent a = snapshot da [_, _];
         return a.work(10);",
    );
    // full battery → full_throttle → depth 3.
    let r = run_src(&src, at_battery(1.0));
    assert_eq!(r.value.unwrap(), Value::Int(30));
    // 80 % → managed → depth 2.
    let r = run_src(&src, at_battery(0.8));
    assert_eq!(r.value.unwrap(), Value::Int(20));
    // 40 % → energy_saver → depth 1.
    let r = run_src(&src, at_battery(0.4));
    assert_eq!(r.value.unwrap(), Value::Int(10));
}

#[test]
fn bounded_snapshot_throws_energy_exception_when_violated() {
    let src = agent_program(
        "let da = new Agent();
         let Agent a = snapshot da [_, managed];
         return a.work(10);",
    );
    // Full battery → attributor says full_throttle, above the `managed`
    // upper bound → EnergyException (a bad check).
    let r = run_src(&src, at_battery(1.0));
    assert!(
        matches!(r.value, Err(RtError::EnergyException(_))),
        "{:?}",
        r.value
    );
    assert_eq!(r.stats.energy_exceptions, 1);

    // Low battery → energy_saver, within bounds → fine.
    let r = run_src(&src, at_battery(0.3));
    assert_eq!(r.value.unwrap(), Value::Int(10));
}

#[test]
fn try_catch_recovers_from_energy_exception() {
    let src = agent_program(
        "let da = new Agent();
         return try {
           let Agent a = snapshot da [_, managed];
           a.work(10)
         } catch { 0 - 1 };",
    );
    let r = run_src(&src, at_battery(1.0));
    assert_eq!(r.value.unwrap(), Value::Int(-1));
    assert_eq!(r.stats.energy_exceptions, 1);
}

#[test]
fn silent_mode_suppresses_the_exception_but_keeps_tagging() {
    let src = agent_program(
        "let da = new Agent();
         let Agent a = snapshot da [_, managed];
         return a.work(10);",
    );
    let config = RuntimeConfig {
        silent: true,
        battery_level: 1.0,
        ..RuntimeConfig::default()
    };
    let r = run_src(&src, config);
    // The silent run proceeds at the (out-of-bounds) full_throttle mode:
    // depth eliminates to 3.
    assert_eq!(r.value.unwrap(), Value::Int(30));
    // The violation was still *counted* (tagging in place).
    assert_eq!(r.stats.energy_exceptions, 1);
}

#[test]
fn first_snapshot_tags_in_place_subsequent_snapshots_copy() {
    let src = agent_program(
        "let da = new Agent();
         let Agent a1 = snapshot da [_, _];
         let Agent a2 = snapshot da [_, _];
         let Agent a3 = snapshot da [_, _];
         return a1.work(1) + a2.work(1) + a3.work(1);",
    );
    let r = run_src(&src, at_battery(1.0));
    assert_eq!(r.value.unwrap(), Value::Int(9));
    assert_eq!(r.stats.snapshots, 3);
    // Lazy copying: the first snapshot is free; the other two copy.
    assert_eq!(r.stats.copies, 2);
}

#[test]
fn snapshot_copies_have_independent_modes() {
    // Re-snapshotting under a different battery level must not disturb the
    // earlier snapshot's mode (monotonic type change / non-equivocation).
    let src = format!(
        "{MODES}
        class Probe@mode<? <= P> {{
          attributor {{
            if (Ext.battery() >= 0.5) {{ return full_throttle; }}
            else {{ return energy_saver; }}
          }}
          mcase<int> tag = mcase{{ energy_saver: 1; managed: 2; full_throttle: 3; }};
          int read() {{ return this.tag <| P; }}
        }}
        class Main {{
          int main() {{
            let dp = new Probe();
            let Probe p1 = snapshot dp [_, _];
            let first = p1.read();
            // Heavy work drains the battery below 50 %...
            Sim.work(\"cpu\", 500000000000.0);
            let Probe p2 = snapshot dp [_, _];
            // ...so the second snapshot is energy_saver, while p1 keeps
            // full_throttle.
            return first * 10 + p2.read();
          }}
        }}"
    );
    let mut config = at_battery(0.52);
    config.gas_limit = 500_000_000;
    let r = run_src(&src, config);
    assert_eq!(r.value.unwrap(), Value::Int(31));
}

#[test]
fn mode_case_eliminates_to_largest_arm_at_or_below() {
    // Eliminating at ⊤ (Main's boot mode) selects the largest arm.
    let src = format!(
        "{MODES}
        class Main {{
          int main() {{
            let mcase<int> cases = mcase{{ energy_saver: 1; managed: 2; full_throttle: 3; }};
            return cases <| full_throttle;
          }}
        }}"
    );
    let r = run_src(&src, at_battery(1.0));
    assert_eq!(r.value.unwrap(), Value::Int(3));
}

#[test]
fn co_adaptation_shares_one_mode_across_objects() {
    let src = format!(
        "{MODES}
        class Rule@mode<R> {{ }}
        class DepthRule@mode<X> extends Rule@mode<X> {{
          mcase<int> depth = mcase{{ energy_saver: 1; managed: 2; full_throttle: 3; }};
          int value() {{ return this.depth <| X; }}
        }}
        class Site@mode<S> {{
          int resources;
          int crawl(DepthRule@mode<S> r) {{ return this.resources * r.value(); }}
        }}
        class Agent@mode<? <= X> {{
          attributor {{
            if (Ext.battery() >= 0.7) {{ return managed; }}
            else {{ return energy_saver; }}
          }}
          int work(int n) {{
            let s = new Site@mode<X>(n);
            return s.crawl(new DepthRule@mode<X>());
          }}
        }}
        class Main {{
          int main() {{
            let da = new Agent();
            let Agent a = snapshot da [_, _];
            return a.work(100);
          }}
        }}"
    );
    // 80 % battery → managed → DepthRule eliminates its mcase at managed.
    let r = run_src(&src, at_battery(0.8));
    assert_eq!(r.value.unwrap(), Value::Int(200));
    // 30 % battery → energy_saver everywhere.
    let r = run_src(&src, at_battery(0.3));
    assert_eq!(r.value.unwrap(), Value::Int(100));
}

#[test]
fn method_level_attributor_checks_dfall_at_runtime() {
    let src = format!(
        "{MODES}
        class Saver@mode<S> {{
          int n;
          int save()
            attributor {{
              if (this.n > 20) {{ return full_throttle; }}
              else {{ return energy_saver; }}
            }}
          {{ return this.n; }}
        }}
        class Booter@mode<energy_saver> {{
          Saver@mode<energy_saver> s;
          int go() {{ return try {{ this.s.save() }} catch {{ 0 - 1 }}; }}
        }}
        class Main {{
          int main() {{
            let small = new Booter(new Saver@mode<energy_saver>(5));
            let big = new Booter(new Saver@mode<energy_saver>(50));
            return small.go() * 1000 + big.go();
          }}
        }}"
    );
    // small: attributor says energy_saver ≤ energy_saver → 5.
    // big: attributor says full_throttle > energy_saver → EnergyException
    // caught → -1. Result: 5 * 1000 + (-1) = 4999.
    let r = run_src(&src, at_battery(1.0));
    assert_eq!(r.value.unwrap(), Value::Int(4999));
}

#[test]
fn recursion_and_arrays_drive_work() {
    let src = format!(
        "{MODES}
        class Crawler@mode<C> {{
          int crawlAll(int[] sizes, int i) {{
            if (i >= Arr.len(sizes)) {{ return 0; }}
            Sim.work(\"net\", Math.toDouble(Arr.get(sizes, i)) * 1000000.0);
            return Arr.get(sizes, i) + this.crawlAll(sizes, i + 1);
          }}
        }}
        class Main {{
          int main() {{
            let c = new Crawler@mode<managed>();
            return c.crawlAll([10, 20, 30], 0);
          }}
        }}"
    );
    let r = run_src(&src, at_battery(1.0));
    assert_eq!(r.value.unwrap(), Value::Int(60));
    assert!(r.measurement.energy_j > 0.0);
    assert!(r.measurement.time_s > 0.0);
}

#[test]
fn more_work_consumes_more_energy() {
    let prog = |units: f64| {
        format!("class Main {{ unit main() {{ Sim.work(\"cpu\", {units:.1}); return {{}}; }} }}")
    };
    let small = run_src(&prog(1.0e9), RuntimeConfig::default());
    let large = run_src(&prog(4.0e9), RuntimeConfig::default());
    assert!(
        large.measurement.energy_j > 2.0 * small.measurement.energy_j,
        "large {} vs small {}",
        large.measurement.energy_j,
        small.measurement.energy_j
    );
}

#[test]
fn tagging_overhead_is_small_but_nonzero() {
    let src = agent_program(
        "let da = new Agent();
         let Agent a = snapshot da [_, _];
         Sim.work(\"cpu\", 10000000000.0);
         return a.work(1);",
    );
    let with_tagging = run_src(
        &src,
        RuntimeConfig {
            seed: 5,
            ..at_battery(1.0)
        },
    );
    let without = run_src(
        &src,
        RuntimeConfig {
            tagging: false,
            seed: 5,
            ..at_battery(1.0)
        },
    );
    let overhead = (with_tagging.measurement.energy_j - without.measurement.energy_j)
        / without.measurement.energy_j;
    // The overhead must be tiny relative to the 5 s of real work.
    assert!(overhead.abs() < 0.05, "overhead {overhead}");
}

#[test]
fn io_print_is_captured() {
    let src = "class Main { unit main() { IO.print(\"hello \" + Str.ofInt(42)); return {}; } }";
    let r = run_src(src, RuntimeConfig::default());
    assert_eq!(r.output, vec!["hello 42"]);
}

#[test]
fn bad_cast_at_runtime() {
    let src = format!(
        "{MODES}
        class Rule@mode<R> {{ }}
        class DepthRule@mode<X> extends Rule@mode<X> {{ }}
        class Main {{
          unit main() {{
            let Rule@mode<managed> r = new Rule@mode<managed>();
            let d = (DepthRule@mode<managed>)r;
            return {{}};
          }}
        }}"
    );
    let r = run_src(&src, RuntimeConfig::default());
    assert!(matches!(r.value, Err(RtError::BadCast(_))));
}

#[test]
fn gas_limit_stops_divergence() {
    let src = "class Loop { int spin(int n) { return this.spin(n + 1); } }
        class Main { int main() { let l = new Loop(); return l.spin(0); } }";
    let config = RuntimeConfig {
        gas_limit: 100_000,
        ..RuntimeConfig::default()
    };
    let r = run_src(src, config);
    assert!(matches!(r.value, Err(RtError::OutOfGas)));
}

#[test]
fn missing_main_is_reported() {
    let compiled = compile("class NotMain { }").unwrap();
    let r = run(&compiled, Platform::system_a(), RuntimeConfig::default());
    assert!(matches!(r.value, Err(RtError::NoMain)));
}

#[test]
fn field_initializers_and_inheritance() {
    let src = format!(
        "{MODES}
        class Base@mode<B> {{
          int a;
          int doubled = 0;
        }}
        class Derived@mode<D> extends Base@mode<D> {{
          int b;
          int sum() {{ return this.a + this.b; }}
        }}
        class Main {{
          int main() {{
            let d = new Derived@mode<managed>(3, 4);
            return d.sum();
          }}
        }}"
    );
    let r = run_src(&src, RuntimeConfig::default());
    assert_eq!(r.value.unwrap(), Value::Int(7));
}

#[test]
fn generic_method_modes_at_runtime() {
    let src = format!(
        "{MODES}
        class Rule@mode<R> {{
          mcase<int> depth = mcase{{ energy_saver: 1; managed: 2; full_throttle: 3; }};
          int value() {{ return this.depth <| R; }}
        }}
        class Factory@mode<F> {{
          Rule@mode<s> make<s>() {{ return new Rule@mode<s>(); }}
        }}
        class Main {{
          int main() {{
            let f = new Factory@mode<full_throttle>();
            let r1 = f.make@mode<energy_saver>();
            let r2 = f.make@mode<managed>();
            return r1.value() * 10 + r2.value();
          }}
        }}"
    );
    let r = run_src(&src, RuntimeConfig::default());
    assert_eq!(r.value.unwrap(), Value::Int(12));
}

#[test]
fn battery_exception_run_uses_less_energy_than_silent() {
    // A miniature E1 experiment: the workload is full_throttle-sized, the
    // boot mode is energy_saver. ENT throws and falls back to a small
    // crawl; silent processes everything.
    let src = format!(
        "{MODES}
        class Crawler@mode<? <= C> {{
          attributor {{
            if (Ext.battery() >= 0.9) {{ return full_throttle; }}
            else if (Ext.battery() >= 0.7) {{ return managed; }}
            else {{ return energy_saver; }}
          }}
          unit crawl(int resources) {{
            Sim.work(\"net\", Math.toDouble(resources) * 10000000.0);
            return {{}};
          }}
        }}
        class Site@mode<? <= S> {{
          int resources;
          attributor {{
            if (this.resources > 200) {{ return full_throttle; }}
            else if (this.resources > 50) {{ return managed; }}
            else {{ return energy_saver; }}
          }}
          int size() {{ return this.resources; }}
        }}
        class Main {{
          unit main() {{
            let dc = new Crawler();
            let Crawler c = snapshot dc [_, _];
            let dsite = new Site(1967);
            try {{
              let Site s = snapshot dsite [_, energy_saver];
              c.crawl(s.size());
            }} catch {{
              // Scale down to the energy_saver workload.
              c.crawl(89);
            }}
            return {{}};
          }}
        }}"
    );
    let ent = run_src(
        &src,
        RuntimeConfig {
            battery_level: 0.4,
            seed: 1,
            ..RuntimeConfig::default()
        },
    );
    let silent = run_src(
        &src,
        RuntimeConfig {
            battery_level: 0.4,
            silent: true,
            seed: 1,
            ..RuntimeConfig::default()
        },
    );
    assert!(ent.value.is_ok());
    assert!(silent.value.is_ok());
    assert!(
        silent.measurement.energy_j > 2.0 * ent.measurement.energy_j,
        "silent {} vs ent {}",
        silent.measurement.energy_j,
        ent.measurement.energy_j
    );
}

#[test]
fn temperature_rises_under_load_and_trace_is_sampled() {
    let src = "class Main { unit main() { Sim.work(\"cpu\", 100000000000.0); return {}; } }";
    let config = RuntimeConfig {
        trace_interval_s: Some(1.0),
        gas_limit: 500_000_000,
        ..RuntimeConfig::default()
    };
    let r = run_src(src, config);
    assert!(r.trace.len() > 10);
    let first = r.trace.first().unwrap().1;
    let last = r.trace.last().unwrap().1;
    assert!(
        last > first + 5.0,
        "temperature should climb: {first} → {last}"
    );
}

#[test]
fn method_attributor_binds_its_named_view_at_runtime() {
    // Listing 3: the JPEGWriter created inside saveImages co-adapts to the
    // mode the method's attributor produced.
    let src = format!(
        "{MODES}
        class JPEGWriter@mode<W> {{
          mcase<int> quality = mcase{{ energy_saver: 30; managed: 60; full_throttle: 95; }};
          int write() {{ return this.quality <| W; }}
        }}
        class Saver@mode<V> {{
          int parsedimgs;
          int saveImages<X>()
            attributor {{
              if (this.parsedimgs > 20) {{ return full_throttle; }}
              else if (this.parsedimgs > 10) {{ return managed; }}
              else {{ return energy_saver; }}
            }}
          {{
            let writer = new JPEGWriter@mode<X>();
            return writer.write();
          }}
        }}
        class Main {{
          int main() {{
            let few = new Saver@mode<full_throttle>(5);
            let some = new Saver@mode<full_throttle>(15);
            let many = new Saver@mode<full_throttle>(25);
            return few.saveImages() * 10000 + some.saveImages() * 100 + many.saveImages();
          }}
        }}"
    );
    let r = run_src(&src, RuntimeConfig::default());
    // 5 imgs → energy_saver quality 30; 15 → managed 60; 25 → full 95.
    assert_eq!(r.value.unwrap(), Value::Int(30 * 10000 + 60 * 100 + 95));
}

#[test]
fn dynamic_dispatch_selects_the_subclass_override() {
    let src = format!(
        "{MODES}
        class Animal@mode<A> {{
          int sound() {{ return 1; }}
          int describe() {{ return this.sound() * 100; }}
        }}
        class Dog@mode<D> extends Animal@mode<D> {{
          int sound() {{ return 2; }}
        }}
        class Main {{
          int main() {{
            let Animal@mode<managed> a = new Dog@mode<managed>();
            // describe() is inherited; this.sound() dispatches to Dog.
            return a.describe();
          }}
        }}"
    );
    let r = run_src(&src, RuntimeConfig::default());
    assert_eq!(r.value.unwrap(), Value::Int(200));
}

#[test]
fn inherited_methods_see_superclass_mode_parameters() {
    let src = format!(
        "{MODES}
        class Base@mode<B> {{
          mcase<int> tag = mcase{{ energy_saver: 1; managed: 2; full_throttle: 3; }};
          int read() {{ return this.tag <| B; }}
        }}
        class Derived@mode<D> extends Base@mode<D> {{ }}
        class Main {{
          int main() {{
            let d = new Derived@mode<managed>();
            return d.read();
          }}
        }}"
    );
    let r = run_src(&src, RuntimeConfig::default());
    assert_eq!(r.value.unwrap(), Value::Int(2));
}
