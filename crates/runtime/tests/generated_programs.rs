//! Randomized end-to-end soundness fuzzing: generate random well-typed
//! ENT programs (random lattices, worker chains with descending modes,
//! dynamic classes with battery attributors, bounded snapshots, mode
//! cases), then assert the pipeline invariants:
//!
//! * every generated program typechecks (well-typedness by construction);
//! * the pretty-printer round-trips the whole program;
//! * execution never gets stuck: the result is a value or a *caught*
//!   EnergyException path (Theorem 1 / Corollary 1);
//! * runs are deterministic per seed.

use ent_core::compile;
use ent_energy::Platform;
use ent_runtime::{run, RuntimeConfig};
use ent_syntax::{parse_program, print_program};
use proptest::prelude::*;

/// Parameters of one generated program.
#[derive(Clone, Debug)]
struct GenProgram {
    /// Number of modes in the linear lattice (2–4).
    mode_count: usize,
    /// Worker chain length (1–4); worker `i` holds worker `i+1` at a mode
    /// no higher than its own.
    chain_len: usize,
    /// Mode index (into the lattice) of each worker; enforced descending.
    chain_modes: Vec<usize>,
    /// Whether main snapshots the dynamic prober inside a try/catch.
    guarded: bool,
    /// Snapshot upper bound: index into modes, or `mode_count` for ⊤.
    bound: usize,
    /// Attributor thresholds (sorted descending battery cutoffs).
    cutoffs: Vec<u32>,
    /// mcase payload values.
    payload: Vec<i64>,
}

fn arb_gen() -> impl Strategy<Value = GenProgram> {
    (
        2usize..=4,
        1usize..=4,
        any::<bool>(),
        0u32..100,
        0u32..100,
        proptest::collection::vec(-50i64..50, 4),
    )
        .prop_flat_map(|(mode_count, chain_len, guarded, c1, c2, payload)| {
            (
                Just(mode_count),
                Just(chain_len),
                proptest::collection::vec(0..mode_count, chain_len),
                Just(guarded),
                0..=mode_count,
                Just(vec![c1.max(c2), c1.min(c2)]),
                Just(payload),
            )
        })
        .prop_map(
            |(mode_count, chain_len, mut chain_modes, guarded, bound, cutoffs, payload)| {
                // Descending worker modes keep the waterfall satisfied by
                // construction.
                chain_modes.sort_unstable_by(|a, b| b.cmp(a));
                GenProgram {
                    mode_count,
                    chain_len,
                    chain_modes,
                    guarded,
                    bound,
                    cutoffs,
                    payload,
                }
            },
        )
}

fn mode_name(i: usize) -> String {
    format!("m{i}")
}

/// Renders the generated program as ENT source.
fn render(g: &GenProgram) -> String {
    let mut src = String::new();

    // Lattice.
    src.push_str("modes { ");
    for i in 0..g.mode_count - 1 {
        src.push_str(&format!("{} <= {}; ", mode_name(i), mode_name(i + 1)));
    }
    src.push_str("}\n");

    // mcase arms must cover every mode.
    let mcase_arms: String = (0..g.mode_count)
        .map(|i| {
            format!(
                "{}: {}; ",
                mode_name(i),
                g.payload[i % g.payload.len()] + i as i64
            )
        })
        .collect();

    // Worker chain: Worker0 holds Worker1 holds … ; each is generic and
    // instantiated at a descending mode.
    for i in 0..g.chain_len {
        let has_next = i + 1 < g.chain_len;
        // A worker holding a successor must bound its own mode parameter
        // below by the successor's mode, or the chained `run` call could
        // not satisfy the waterfall (the bounded-generics idiom).
        let param = if has_next {
            format!("{} <= W{i} <= top", mode_name(g.chain_modes[i + 1]))
        } else {
            format!("W{i}")
        };
        let field = if has_next {
            format!(
                "Worker{}@mode<{}> next;",
                i + 1,
                mode_name(g.chain_modes[i + 1])
            )
        } else {
            String::new()
        };
        let body = if has_next {
            "return this.next.run(n + 1);".to_string()
        } else {
            "return n;".to_string()
        };
        src.push_str(&format!(
            "class Worker{i}@mode<{param}> {{
               {field}
               mcase<int> weight = mcase{{ {mcase_arms} }};
               int run(int n) {{ {body} }}
               int weigh() {{ return this.weight <| W{i}; }}
             }}\n"
        ));
    }

    // A dynamic prober with a battery attributor over the cutoffs.
    let hi_cut = g.cutoffs[0] as f64 / 100.0;
    let lo_cut = g.cutoffs[1] as f64 / 100.0;
    let top_mode = mode_name(g.mode_count - 1);
    let mid_mode = mode_name((g.mode_count - 1) / 2);
    let low_mode = mode_name(0);
    src.push_str(&format!(
        "class Prober@mode<? <= P> {{
           mcase<int> level = mcase{{ {mcase_arms} }};
           attributor {{
             if (Ext.battery() >= {hi_cut:.2}) {{ return {top_mode}; }}
             else if (Ext.battery() >= {lo_cut:.2}) {{ return {mid_mode}; }}
             else {{ return {low_mode}; }}
           }}
           int probe() {{ return this.level <| P; }}
         }}\n"
    ));

    // Main: build the chain innermost-first, snapshot the prober
    // (optionally bounded and guarded), combine the results.
    let bound = if g.bound >= g.mode_count {
        "_".to_string()
    } else {
        mode_name(g.bound)
    };
    let mut chain_new = format!(
        "new Worker{}@mode<{}>()",
        g.chain_len - 1,
        mode_name(g.chain_modes[g.chain_len - 1])
    );
    for i in (0..g.chain_len - 1).rev() {
        chain_new = format!(
            "new Worker{i}@mode<{}>({chain_new})",
            mode_name(g.chain_modes[i])
        );
    }
    let snapshot_expr = if g.guarded {
        format!(
            "try {{
               let Prober p = snapshot dp [_, {bound}];
               p.probe()
             }} catch {{ 0 - 7 }}"
        )
    } else {
        // Unbounded snapshots never fail the check.
        "{
           let Prober p = snapshot dp [_, _];
           p.probe()
         }"
        .to_string()
    };
    src.push_str(&format!(
        "class Main {{
           int main() {{
             let w = {chain_new};
             let dp = new Prober();
             let probed = {snapshot_expr};
             return w.run(0) + w.weigh() * 100 + probed * 10000;
           }}
         }}\n"
    ));
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Generated programs typecheck, round-trip through the printer, and
    /// run to completion without getting stuck, at any battery level.
    #[test]
    fn generated_programs_are_sound(g in arb_gen(), battery in 0.0f64..1.0, seed in 0u64..500) {
        let src = render(&g);

        // 1. Well-typed by construction.
        let compiled = compile(&src)
            .unwrap_or_else(|e| panic!("generator produced an ill-typed program:\n{}\n---\n{src}", e.render(&src)));

        // 2. Printer round-trip: print → parse → print is a fixpoint.
        let printed = print_program(&compiled.program);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("printed program failed to parse: {e}\n---\n{printed}"));
        prop_assert_eq!(printed.clone(), print_program(&reparsed));

        // 3. Soundness: value, or (only when bounded) a caught
        //    EnergyException path — never a stuck state.
        let config = RuntimeConfig { battery_level: battery, seed, ..RuntimeConfig::default() };
        let result = run(&compiled, Platform::system_a(), config.clone());
        match &result.value {
            Ok(_) => {}
            Err(other) => {
                prop_assert!(false, "generated program got stuck: {other}\n---\n{src}");
            }
        }

        // 4. Determinism.
        let again = run(&compiled, Platform::system_a(), config);
        prop_assert_eq!(&result.value, &again.value);
        prop_assert_eq!(result.measurement.energy_j, again.measurement.energy_j);
    }

    /// The same programs run in silent mode always complete with the
    /// snapshot proceeding regardless of bounds.
    #[test]
    fn generated_programs_complete_silently(g in arb_gen(), battery in 0.0f64..1.0) {
        let src = render(&g);
        let compiled = compile(&src).expect("well-typed by construction");
        let config = RuntimeConfig {
            battery_level: battery,
            silent: true,
            ..RuntimeConfig::default()
        };
        let result = run(&compiled, Platform::system_a(), config);
        prop_assert!(result.value.is_ok(), "silent run failed: {:?}", result.value);
    }
}

// ---------------------------------------------------------------------------
// Golden semantics preservation
// ---------------------------------------------------------------------------

/// A fixed corpus from the generator family. These instances are frozen:
/// their observable behavior (stats, output, value, energy bits) is
/// recorded in `goldens/generated.txt` and any interpreter change must
/// reproduce it bit-for-bit. Refresh with `ENT_UPDATE_GOLDENS=1`.
fn golden_corpus() -> Vec<GenProgram> {
    vec![
        GenProgram {
            mode_count: 3,
            chain_len: 3,
            chain_modes: vec![2, 1, 0],
            guarded: true,
            bound: 1,
            cutoffs: vec![80, 40],
            payload: vec![5, -3, 11, 0],
        },
        GenProgram {
            mode_count: 2,
            chain_len: 1,
            chain_modes: vec![1],
            guarded: false,
            bound: 2,
            cutoffs: vec![90, 10],
            payload: vec![1, 2, 3, 4],
        },
        GenProgram {
            mode_count: 4,
            chain_len: 4,
            chain_modes: vec![3, 2, 1, 0],
            guarded: true,
            bound: 0,
            cutoffs: vec![60, 30],
            payload: vec![-50, 49, 0, -1],
        },
        GenProgram {
            mode_count: 4,
            chain_len: 2,
            chain_modes: vec![2, 2],
            guarded: false,
            bound: 4,
            cutoffs: vec![75, 75],
            payload: vec![7, 7, 7, 7],
        },
        GenProgram {
            mode_count: 2,
            chain_len: 4,
            chain_modes: vec![1, 1, 0, 0],
            guarded: true,
            bound: 0,
            cutoffs: vec![99, 1],
            payload: vec![13, -13, 26, -26],
        },
        GenProgram {
            mode_count: 3,
            chain_len: 2,
            chain_modes: vec![1, 0],
            guarded: true,
            bound: 3,
            cutoffs: vec![50, 25],
            payload: vec![-8, 4, -2, 1],
        },
    ]
}

fn fingerprint(result: &ent_runtime::RunResult) -> String {
    let s = &result.stats;
    let value = match &result.value {
        Ok(v) => format!("ok:{v}"),
        Err(e) => format!("err:{e}"),
    };
    format!(
        "steps={};snaps={};copies={};exc={};dyn={};allocs={};value={};pretty={};out={};energy={:016x};time={:016x}",
        s.steps,
        s.snapshots,
        s.copies,
        s.energy_exceptions,
        s.dynamic_allocs,
        s.allocs,
        value,
        result.value_pretty.clone().unwrap_or_default(),
        result.output.join("\\n"),
        result.measurement.energy_j.to_bits(),
        result.measurement.time_s.to_bits(),
    )
}

/// Every observable of every corpus program, at two battery levels and two
/// seeds, must match the golden file captured from the pre-lowering
/// interpreter.
#[test]
fn golden_semantics_preserved() {
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/goldens/generated.txt");
    let mut lines = Vec::new();
    for (i, g) in golden_corpus().iter().enumerate() {
        let src = render(g);
        let compiled = compile(&src).expect("corpus programs are well-typed");
        for (battery, seed) in [(0.95, 7u64), (0.35, 11u64)] {
            let config = RuntimeConfig {
                battery_level: battery,
                seed,
                ..RuntimeConfig::default()
            };
            let result = run(&compiled, Platform::system_a(), config);
            lines.push(format!(
                "gen[{i}] battery={battery} seed={seed} {}",
                fingerprint(&result)
            ));
        }
    }
    let actual = lines.join("\n") + "\n";
    if std::env::var_os("ENT_UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(std::path::Path::new(golden_path).parent().unwrap()).unwrap();
        std::fs::write(golden_path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(golden_path)
        .expect("golden file missing — run with ENT_UPDATE_GOLDENS=1 to capture");
    for (a, e) in actual.lines().zip(expected.lines()) {
        assert_eq!(a, e, "semantics drifted from the pre-lowering interpreter");
    }
    assert_eq!(
        actual.lines().count(),
        expected.lines().count(),
        "golden line count changed"
    );
}

/// A deterministic regression case from the generator family, kept as a
/// plain test for quick iteration.
#[test]
fn representative_generated_program() {
    let g = GenProgram {
        mode_count: 3,
        chain_len: 3,
        chain_modes: vec![2, 1, 0],
        guarded: true,
        bound: 1,
        cutoffs: vec![80, 40],
        payload: vec![5, -3, 11, 0],
    };
    let src = render(&g);
    let compiled = compile(&src).unwrap();
    // High battery → attributor says m2, above bound m1 → caught (-7).
    let high = run(
        &compiled,
        Platform::system_a(),
        RuntimeConfig {
            battery_level: 0.95,
            ..RuntimeConfig::default()
        },
    );
    assert!(high.value.is_ok());
    assert_eq!(high.stats.energy_exceptions, 1);
    // Low battery → m0 within bounds → no exception.
    let low = run(
        &compiled,
        Platform::system_a(),
        RuntimeConfig {
            battery_level: 0.1,
            ..RuntimeConfig::default()
        },
    );
    assert!(low.value.is_ok());
    assert_eq!(low.stats.energy_exceptions, 0);
}
