//! Error-path telemetry: a run that *fails* — out of gas, stack overflow,
//! bad cast — must still emit a well-formed `ent-run-telemetry/1` document
//! with the error recorded and every counter intact, because chaos sweeps
//! and CI consume the JSON of failed runs the same way as successful ones.

use ent_core::compile;
use ent_energy::Platform;
use ent_runtime::{json_is_valid, run, RtError, RunResult, RuntimeConfig};

fn run_src(src: &str, config: RuntimeConfig) -> RunResult {
    let compiled = compile(src).unwrap_or_else(|e| panic!("{}", e.render(src)));
    run(&compiled, Platform::system_a(), config)
}

/// Checks the invariants every failed-run document must satisfy.
fn assert_error_document(result: &RunResult, expect_error_fragment: &str) {
    let err = result
        .value
        .as_ref()
        .expect_err("the run is supposed to fail");
    assert!(
        err.to_string().contains(expect_error_fragment),
        "unexpected error: {err}"
    );
    let json = result.to_json();
    assert!(json_is_valid(&json), "malformed telemetry: {json}");
    assert!(
        json.contains("\"schema\": \"ent-run-telemetry/1\""),
        "{json}"
    );
    assert!(json.contains("\"status\": \"error\""), "{json}");
    assert!(json.contains("\"value\": null"), "{json}");
    // The error text is embedded (escaped) in the document.
    assert!(
        json.contains(&expect_error_fragment.replace('"', "\\\"")),
        "{json}"
    );
    // Counters survive the failure.
    assert!(json.contains("\"stats\": {\"steps\": "), "{json}");
    assert!(json.contains("\"sensor_faults\": "), "{json}");
}

#[test]
fn out_of_gas_still_emits_valid_telemetry() {
    let src = "class Loop { int spin(int n) { return this.spin(n + 1); } }
        class Main { int main() { let l = new Loop(); return l.spin(0); } }";
    let result = run_src(
        src,
        RuntimeConfig {
            gas_limit: 50_000,
            ..RuntimeConfig::default()
        },
    );
    assert!(matches!(result.value, Err(RtError::OutOfGas)));
    assert_error_document(&result, "gas");
}

#[test]
fn stack_overflow_still_emits_valid_telemetry() {
    let src = "class Main {
        int go(int n) { if (n <= 0) { return 0; } return this.go(n - 1); }
        int main() { return this.go(300000); }
      }";
    let result = run_src(src, RuntimeConfig::default());
    assert!(matches!(result.value, Err(RtError::StackOverflow)));
    assert_error_document(&result, "call depth");
}

#[test]
fn bad_cast_still_emits_valid_telemetry() {
    let src = "modes { low <= high; }
        class Rule@mode<R> { }
        class DepthRule@mode<X> extends Rule@mode<X> { }
        class Main {
          unit main() {
            let Rule@mode<low> r = new Rule@mode<low>();
            let d = (DepthRule@mode<low>)r;
            return {};
          }
        }";
    let result = run_src(src, RuntimeConfig::default());
    assert!(matches!(result.value, Err(RtError::BadCast(_))));
    assert_error_document(&result, "is not a");
}

#[test]
fn failed_runs_report_partial_measurements() {
    // The failed run's measurement reflects the work done before the
    // failure — consumers chart energy of failed cells too.
    let src = "class Main {
        unit main() {
          Sim.work(\"cpu\", 100000.0);
          let a = [1, 2, 3];
          let x = Arr.get(a, 99);
          return {};
        }
      }";
    let result = run_src(src, RuntimeConfig::default());
    assert!(matches!(result.value, Err(RtError::Native(_))));
    assert!(result.measurement.energy_j > 0.0);
    let json = result.to_json();
    assert!(json_is_valid(&json), "{json}");
    assert!(json.contains("out of bounds"), "{json}");
}
