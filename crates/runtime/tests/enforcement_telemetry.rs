//! The `enforcement` object of `ent-run-telemetry/1`: every run document
//! names the strategy that produced it and carries that strategy's check
//! counters, so downstream consumers can tell a guarded measurement from
//! a transient one without out-of-band context (mirroring the `adapt`
//! object's role for the tuner).

use ent_core::compile;
use ent_energy::Platform;
use ent_runtime::{json_is_valid, run, Enforcement, RunResult, RuntimeConfig};

const PROGRAM: &str = "
modes { low <= high; }
class Job@mode<? <= J> {
  int n;
  attributor {
    if (Ext.battery() >= 0.5) { return high; } else { return low; }
  }
  int work(int k) {
    Sim.work(\"cpu\", 10000.0);
    if (k <= 1) { return this.n; }
    return this.work(k - 1);
  }
}
class Main {
  int main() {
    let dj = new Job(7);
    let Job j = snapshot dj [_, _];
    return j.work(5);
  }
}";

fn run_with(enforcement: Enforcement) -> RunResult {
    let compiled = compile(PROGRAM).unwrap_or_else(|e| panic!("{}", e.render(PROGRAM)));
    run(
        &compiled,
        Platform::system_a(),
        RuntimeConfig {
            enforcement,
            battery_level: 0.9,
            seed: 3,
            ..RuntimeConfig::default()
        },
    )
}

#[test]
fn guarded_document_names_its_strategy_with_idle_counters() {
    let result = run_with(Enforcement::Guarded);
    assert!(result.value.is_ok());
    let json = result.to_json();
    assert!(json_is_valid(&json), "malformed telemetry: {json}");
    assert!(
        json.contains("\"enforcement\": {\"strategy\": \"guarded\", \"transient_checks\": 0, \"transient_failures\": 0,"),
        "{json}"
    );
    // The stats block carries the same counters for flat consumers.
    assert!(json.contains("\"transient_checks\": 0"), "{json}");
}

#[test]
fn transient_document_counts_its_checks() {
    let result = run_with(Enforcement::Transient);
    assert!(result.value.is_ok());
    let json = result.to_json();
    assert!(json_is_valid(&json), "malformed telemetry: {json}");
    assert!(
        json.contains("\"enforcement\": {\"strategy\": \"transient\""),
        "{json}"
    );
    let checks = result.stats.transient_checks;
    assert!(checks > 0, "the program sends and snapshots");
    assert!(
        json.contains(&format!(
            "\"strategy\": \"transient\", \"transient_checks\": {checks}, \"transient_failures\": 0,"
        )),
        "{json}"
    );
}

#[test]
fn failed_transient_run_still_reports_the_enforcement_object() {
    let src = "
modes { low <= high; }
class Hot@mode<H> {
  int f()
    attributor { if (Ext.battery() >= 0.0) { return high; } else { return low; } }
  { return 1; }
}
class Cold@mode<low> {
  Hot@mode<low> h;
  int go() { return this.h.f(); }
}
class Main {
  int main() {
    let c = new Cold(new Hot@mode<low>());
    return c.go();
  }
}";
    let compiled = compile(src).unwrap_or_else(|e| panic!("{}", e.render(src)));
    let result = run(
        &compiled,
        Platform::system_a(),
        RuntimeConfig {
            enforcement: Enforcement::Transient,
            battery_level: 0.9,
            seed: 3,
            ..RuntimeConfig::default()
        },
    );
    let err = result.value.as_ref().expect_err("the check must fail");
    assert!(
        err.to_string()
            .contains("transient check failed at call site"),
        "unexpected error: {err}"
    );
    let json = result.to_json();
    assert!(json_is_valid(&json), "malformed telemetry: {json}");
    assert!(json.contains("\"status\": \"error\""), "{json}");
    assert!(json.contains("\"strategy\": \"transient\""), "{json}");
    assert!(json.contains("\"transient_failures\": 1"), "{json}");
    // Guarded blame counters stay untouched by a transient failure.
    assert!(
        json.contains("\"dfall_failures\": 0") && json.contains("\"snapshot_failures\": 0"),
        "{json}"
    );
}
