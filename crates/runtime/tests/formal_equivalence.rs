//! Differential tests: surface programs in the overlapping FJ core are
//! lowered to the formal machine (Figure 5) and must agree with the
//! production interpreter — same final value (structurally), and failures
//! of the same category (bad check ↔ EnergyException).

use ent_core::compile;
use ent_energy::Platform;
use ent_modes::StaticMode;
use ent_runtime::formal::{describe_value, lower, FormalError, Machine};
use ent_runtime::{run, RtError, RuntimeConfig};

/// Runs a surface program both ways and compares.
fn check_equivalence(src: &str) {
    let compiled =
        compile(src).unwrap_or_else(|e| panic!("source failed to typecheck:\n{}", e.render(src)));
    let formal_program = lower(&compiled.program)
        .unwrap_or_else(|| panic!("program is outside the FJ core and cannot be lowered"));

    // Production semantics.
    let production = run(&compiled, Platform::system_a(), RuntimeConfig::default());

    // Formal semantics.
    let mut machine = Machine::new(&formal_program);
    let formal_result = machine
        .boot()
        .and_then(|t| machine.run(t, &StaticMode::Top, 1_000_000));

    match (&production.value, &formal_result) {
        (Ok(_), Ok(term)) => {
            let formal_str = describe_value(&formal_program, term);
            let production_str = production
                .value_pretty
                .clone()
                .expect("successful runs carry a rendering");
            assert_eq!(
                production_str, formal_str,
                "production and formal results differ"
            );
        }
        (Err(RtError::EnergyException(_)), Err(FormalError::BadCheck(_))) => {}
        (Err(RtError::BadCast(_)), Err(FormalError::BadCast(_))) => {}
        (p, f) => panic!("semantics disagree: production {p:?} vs formal {f:?}"),
    }
}

const MODES: &str = "modes { low <= high; }\n";

#[test]
fn object_construction_and_field_access() {
    check_equivalence(&format!(
        "{MODES}
        class Pair@mode<P> {{
          Leaf@mode<P> first;
          Leaf@mode<P> second;
          Leaf@mode<P> fst() {{ return this.first; }}
        }}
        class Leaf@mode<L> {{ }}
        class Main {{
          Leaf@mode<low> main() {{
            let p = new Pair@mode<low>(new Leaf@mode<low>(), new Leaf@mode<low>());
            return p.fst();
          }}
        }}"
    ));
}

#[test]
fn method_dispatch_through_inheritance() {
    check_equivalence(&format!(
        "{MODES}
        class Base@mode<B> {{
          Base@mode<B> me() {{ return this; }}
        }}
        class Derived@mode<D> extends Base@mode<D> {{ }}
        class Main {{
          Base@mode<high> main() {{
            let d = new Derived@mode<high>();
            return d.me();
          }}
        }}"
    ));
}

#[test]
fn snapshot_produces_the_same_tagged_object() {
    check_equivalence(&format!(
        "{MODES}
        class Probe@mode<? <= P> {{
          Tag@mode<low> tag;
          attributor {{ return high; }}
        }}
        class Tag@mode<T> {{ }}
        class Main {{
          Object main() {{
            let dp = new Probe(new Tag@mode<low>());
            let Probe p = snapshot dp [_, _];
            return p;
          }}
        }}"
    ));
}

#[test]
fn bad_check_matches_energy_exception() {
    check_equivalence(&format!(
        "{MODES}
        class Probe@mode<? <= P> {{
          attributor {{ return high; }}
        }}
        class Main {{
          Object main() {{
            let dp = new Probe();
            let Probe p = snapshot dp [_, low];
            return p;
          }}
        }}"
    ));
}

#[test]
fn bad_cast_matches() {
    check_equivalence(&format!(
        "{MODES}
        class A@mode<X> {{ }}
        class B@mode<Y> extends A@mode<Y> {{ }}
        class Main {{
          B@mode<low> main() {{
            let A@mode<low> a = new A@mode<low>();
            return (B@mode<low>)a;
          }}
        }}"
    ));
}

#[test]
fn upcast_succeeds_in_both() {
    check_equivalence(&format!(
        "{MODES}
        class A@mode<X> {{ }}
        class B@mode<Y> extends A@mode<Y> {{ }}
        class Main {{
          A@mode<low> main() {{
            let b = new B@mode<low>();
            return (A@mode<low>)b;
          }}
        }}"
    ));
}

#[test]
fn snapshot_after_call_chain() {
    // A deeper program: a Maker object constructs the dynamic Probe, the
    // snapshot flows through a method return.
    check_equivalence(&format!(
        "{MODES}
        class Probe@mode<? <= P> {{
          attributor {{ return low; }}
        }}
        class Maker@mode<M> {{
          Probe@mode<?> make() {{ return new Probe(); }}
        }}
        class Main {{
          Object main() {{
            let m = new Maker@mode<high>();
            let dp = m.make();
            let Probe p = snapshot dp [_, high];
            return p;
          }}
        }}"
    ));
}

#[test]
fn lowering_rejects_extended_programs() {
    let src = "class Main { int main() { return 1 + 2; } }";
    let compiled = compile(src).unwrap();
    assert!(
        lower(&compiled.program).is_none(),
        "primitive arithmetic is outside the formal core"
    );
}
