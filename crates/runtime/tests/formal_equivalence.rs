//! Differential tests: surface programs in the overlapping FJ core are
//! lowered to the formal machine (Figure 5) and must agree with the
//! production interpreter — same final value (structurally), and failures
//! of the same category (bad check ↔ EnergyException).

use ent_core::compile;
use ent_energy::Platform;
use ent_modes::StaticMode;
use ent_runtime::formal::{describe_value, lower, FormalError, Machine};
use ent_runtime::{run, RtError, RuntimeConfig};

/// Runs a surface program both ways and compares.
fn check_equivalence(src: &str) {
    let compiled =
        compile(src).unwrap_or_else(|e| panic!("source failed to typecheck:\n{}", e.render(src)));
    let formal_program = lower(&compiled.program)
        .unwrap_or_else(|| panic!("program is outside the FJ core and cannot be lowered"));

    // Production semantics.
    let production = run(&compiled, Platform::system_a(), RuntimeConfig::default());

    // Formal semantics.
    let mut machine = Machine::new(&formal_program);
    let formal_result = machine
        .boot()
        .and_then(|t| machine.run(t, &StaticMode::Top, 1_000_000));

    match (&production.value, &formal_result) {
        (Ok(_), Ok(term)) => {
            let formal_str = describe_value(&formal_program, term);
            let production_str = production
                .value_pretty
                .clone()
                .expect("successful runs carry a rendering");
            assert_eq!(
                production_str, formal_str,
                "production and formal results differ"
            );
        }
        (Err(RtError::EnergyException(_)), Err(FormalError::BadCheck(_))) => {}
        (Err(RtError::BadCast(_)), Err(FormalError::BadCast(_))) => {}
        (p, f) => panic!("semantics disagree: production {p:?} vs formal {f:?}"),
    }
}

const MODES: &str = "modes { low <= high; }\n";

#[test]
fn object_construction_and_field_access() {
    check_equivalence(&format!(
        "{MODES}
        class Pair@mode<P> {{
          Leaf@mode<P> first;
          Leaf@mode<P> second;
          Leaf@mode<P> fst() {{ return this.first; }}
        }}
        class Leaf@mode<L> {{ }}
        class Main {{
          Leaf@mode<low> main() {{
            let p = new Pair@mode<low>(new Leaf@mode<low>(), new Leaf@mode<low>());
            return p.fst();
          }}
        }}"
    ));
}

#[test]
fn method_dispatch_through_inheritance() {
    check_equivalence(&format!(
        "{MODES}
        class Base@mode<B> {{
          Base@mode<B> me() {{ return this; }}
        }}
        class Derived@mode<D> extends Base@mode<D> {{ }}
        class Main {{
          Base@mode<high> main() {{
            let d = new Derived@mode<high>();
            return d.me();
          }}
        }}"
    ));
}

#[test]
fn snapshot_produces_the_same_tagged_object() {
    check_equivalence(&format!(
        "{MODES}
        class Probe@mode<? <= P> {{
          Tag@mode<low> tag;
          attributor {{ return high; }}
        }}
        class Tag@mode<T> {{ }}
        class Main {{
          Object main() {{
            let dp = new Probe(new Tag@mode<low>());
            let Probe p = snapshot dp [_, _];
            return p;
          }}
        }}"
    ));
}

#[test]
fn bad_check_matches_energy_exception() {
    check_equivalence(&format!(
        "{MODES}
        class Probe@mode<? <= P> {{
          attributor {{ return high; }}
        }}
        class Main {{
          Object main() {{
            let dp = new Probe();
            let Probe p = snapshot dp [_, low];
            return p;
          }}
        }}"
    ));
}

#[test]
fn bad_cast_matches() {
    check_equivalence(&format!(
        "{MODES}
        class A@mode<X> {{ }}
        class B@mode<Y> extends A@mode<Y> {{ }}
        class Main {{
          B@mode<low> main() {{
            let A@mode<low> a = new A@mode<low>();
            return (B@mode<low>)a;
          }}
        }}"
    ));
}

#[test]
fn upcast_succeeds_in_both() {
    check_equivalence(&format!(
        "{MODES}
        class A@mode<X> {{ }}
        class B@mode<Y> extends A@mode<Y> {{ }}
        class Main {{
          A@mode<low> main() {{
            let b = new B@mode<low>();
            return (A@mode<low>)b;
          }}
        }}"
    ));
}

#[test]
fn snapshot_after_call_chain() {
    // A deeper program: a Maker object constructs the dynamic Probe, the
    // snapshot flows through a method return.
    check_equivalence(&format!(
        "{MODES}
        class Probe@mode<? <= P> {{
          attributor {{ return low; }}
        }}
        class Maker@mode<M> {{
          Probe@mode<?> make() {{ return new Probe(); }}
        }}
        class Main {{
          Object main() {{
            let m = new Maker@mode<high>();
            let dp = m.make();
            let Probe p = snapshot dp [_, high];
            return p;
          }}
        }}"
    ));
}

#[test]
fn lowering_rejects_extended_programs() {
    let src = "class Main { int main() { return 1 + 2; } }";
    let compiled = compile(src).unwrap();
    assert!(
        lower(&compiled.program).is_none(),
        "primitive arithmetic is outside the formal core"
    );
}

// ---------------------------------------------------------------------------
// Golden semantics preservation for the example programs
// ---------------------------------------------------------------------------

fn fingerprint(result: &ent_runtime::RunResult) -> String {
    let s = &result.stats;
    let value = match &result.value {
        Ok(v) => format!("ok:{v}"),
        Err(e) => format!("err:{e}"),
    };
    format!(
        "steps={};snaps={};copies={};exc={};dyn={};allocs={};value={};pretty={};out={};energy={:016x};time={:016x}",
        s.steps,
        s.snapshots,
        s.copies,
        s.energy_exceptions,
        s.dynamic_allocs,
        s.allocs,
        value,
        result.value_pretty.clone().unwrap_or_default(),
        result.output.join("\\n"),
        result.measurement.energy_j.to_bits(),
        result.measurement.time_s.to_bits(),
    )
}

/// Runs every `.ent` example at two battery levels and two seeds and
/// compares all observables against goldens captured from the
/// pre-lowering interpreter. Refresh with `ENT_UPDATE_GOLDENS=1`.
#[test]
fn golden_semantics_for_example_programs() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/ent");
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/goldens/examples.txt");
    let mut names: Vec<_> = std::fs::read_dir(dir)
        .expect("examples/ent exists")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.ends_with(".ent").then_some(name)
        })
        .collect();
    names.sort();
    assert!(!names.is_empty(), "example corpus must not be empty");

    let mut lines = Vec::new();
    for name in &names {
        let src = std::fs::read_to_string(format!("{dir}/{name}")).unwrap();
        let compiled = compile(&src)
            .unwrap_or_else(|e| panic!("{name} failed to compile:\n{}", e.render(&src)));
        for (battery, seed) in [(0.95, 7u64), (0.35, 11u64)] {
            let config = RuntimeConfig {
                battery_level: battery,
                seed,
                ..RuntimeConfig::default()
            };
            let result = run(&compiled, Platform::system_a(), config);
            lines.push(format!(
                "{name} battery={battery} seed={seed} {}",
                fingerprint(&result)
            ));
        }
    }
    let actual = lines.join("\n") + "\n";
    if std::env::var_os("ENT_UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(std::path::Path::new(golden_path).parent().unwrap()).unwrap();
        std::fs::write(golden_path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(golden_path)
        .expect("golden file missing — run with ENT_UPDATE_GOLDENS=1 to capture");
    for (a, e) in actual.lines().zip(expected.lines()) {
        assert_eq!(a, e, "semantics drifted from the pre-lowering interpreter");
    }
    assert_eq!(actual.lines().count(), expected.lines().count());
}
