//! The §6.3 energy-debugging workflow, as an executable narrative:
//!
//! 1. The programmer forgets the `[_, X]` bound — the *typechecker* points
//!    at the unprovable crawl;
//! 2. they add the bound — the *runtime* throws `EnergyException`, and the
//!    event log identifies exactly which Site was the energy hotspot;
//! 3. they add the handler — the program completes, and the event log
//!    records the degraded path.
//!
//! Events carry interned ids; the tests lower explicitly and resolve them
//! back through the lowered program, the way the CLI does.

use ent_core::{compile, CompileError, TypeErrorKind};
use ent_energy::Platform;
use ent_runtime::{lower_program, run, run_lowered, EventPayload, RtError, RuntimeConfig};

fn crawler(bound: &str, handler: bool) -> String {
    let crawl = if handler {
        // The handler falls back to a small site, re-snapshotted within
        // the agent's mode.
        "try {
           let Site s = snapshot ds BOUND;
           s.crawl(2)
         } catch {
           let ds0 = new Site(25);
           let Site s0 = snapshot ds0 [_, X];
           s0.crawl(1)
         }"
    } else {
        "{
           let Site s = snapshot ds BOUND;
           s.crawl(2)
         }"
    };
    format!(
        "modes {{ energy_saver <= managed; managed <= full_throttle; }}
        class Site@mode<? <= S> {{
          int resources;
          attributor {{
            if (this.resources > 200) {{ return full_throttle; }}
            else if (this.resources > 50) {{ return managed; }}
            else {{ return energy_saver; }}
          }}
          int crawl(int depth) {{
            Sim.work(\"net\", Math.toDouble(this.resources * depth) * 1000000.0);
            return this.resources * depth;
          }}
        }}
        class Agent@mode<? <= X> {{
          attributor {{
            if (Ext.battery() >= 0.75) {{ return full_throttle; }}
            else if (Ext.battery() >= 0.50) {{ return managed; }}
            else {{ return energy_saver; }}
          }}
          int work(int resources) {{
            let ds = new Site(resources);
            return {crawl};
          }}
        }}
        class Main {{
          int main() {{
            let da = new Agent();
            let Agent a = snapshot da [_, _];
            return a.work(1500);
          }}
        }}"
    )
    .replace("BOUND", bound)
}

#[test]
fn step1_missing_bound_is_a_compile_time_error() {
    let src = crawler("[_, _]", false);
    match compile(&src) {
        Err(CompileError::Type(errors)) => {
            let waterfall: Vec<_> = errors
                .iter()
                .filter(|e| e.kind == TypeErrorKind::WaterfallViolation)
                .collect();
            assert!(!waterfall.is_empty());
            // The diagnostic names the offending call.
            assert!(waterfall[0].message.contains("crawl"), "{}", waterfall[0]);
        }
        other => panic!("expected the §6.3 compile error, got {other:?}"),
    }
}

#[test]
fn step2_bounded_snapshot_throws_and_the_event_log_names_the_hotspot() {
    let src = crawler("[_, X]", false);
    let compiled = compile(&src).expect("bounded version typechecks");
    let lowered = lower_program(&compiled);
    let result = run_lowered(
        &lowered,
        Platform::system_a(),
        RuntimeConfig {
            battery_level: 0.3,
            record_events: true,
            ..RuntimeConfig::default()
        },
    );
    assert!(matches!(result.value, Err(RtError::EnergyException(_))));
    // The event log answers §6.3's question (1): "Why is a large Site
    // crawled with low battery?" — there it is:
    let failure = result
        .events
        .iter()
        .find_map(|e| match e.payload {
            EventPayload::Snapshot {
                class,
                mode,
                hi,
                failed: true,
                ..
            } => Some((class, mode, hi)),
            _ => None,
        })
        .expect("the failed check is in the log");
    assert_eq!(lowered.class_name(failure.0), "Site");
    assert_eq!(lowered.mode_string(failure.1), "full_throttle");
    // The agent's (boot) mode bound:
    assert_eq!(lowered.mode_string(failure.2), "energy_saver");
}

#[test]
fn step3_handler_recovers_and_consumes_less_energy() {
    let src = crawler("[_, X]", true);
    let compiled = compile(&src).expect("handled version typechecks");
    let low = run(
        &compiled,
        Platform::system_a(),
        RuntimeConfig {
            battery_level: 0.3,
            seed: 9,
            ..RuntimeConfig::default()
        },
    );
    // The handler crawled the small fallback site instead.
    assert_eq!(low.value.as_ref().unwrap(), &ent_runtime::Value::Int(25));

    let high = run(
        &compiled,
        Platform::system_a(),
        RuntimeConfig {
            battery_level: 0.95,
            seed: 9,
            ..RuntimeConfig::default()
        },
    );
    assert_eq!(high.value.as_ref().unwrap(), &ent_runtime::Value::Int(3000));
    assert!(
        high.measurement.energy_j > low.measurement.energy_j * 10.0,
        "the recovered path must be far cheaper: {} vs {}",
        high.measurement.energy_j,
        low.measurement.energy_j
    );
}

#[test]
fn event_log_orders_and_timestamps_snapshots() {
    let src = crawler("[_, X]", true);
    let compiled = compile(&src).unwrap();
    let result = run(
        &compiled,
        Platform::system_a(),
        RuntimeConfig {
            battery_level: 0.95,
            record_events: true,
            ..RuntimeConfig::default()
        },
    );
    let times: Vec<f64> = result.events.iter().map(|e| e.at_s).collect();
    assert!(
        times.windows(2).all(|w| w[0] <= w[1]),
        "monotone timestamps"
    );
    // Full battery: Agent + big Site snapshots only (no fallback).
    let snaps = result
        .events
        .iter()
        .filter(|e| matches!(e.payload, EventPayload::Snapshot { .. }))
        .count();
    assert_eq!(snaps, 2);
    assert_eq!(result.events.dropped(), 0);
}

#[test]
fn rendered_event_stream_matches_the_golden_narrative() {
    // The golden test pinning the lossless rendering: interned ids resolve
    // back to the exact human-readable lines the CLI prints.
    let src = crawler("[_, X]", true);
    let compiled = compile(&src).unwrap();
    let lowered = lower_program(&compiled);
    let result = run_lowered(
        &lowered,
        Platform::system_a(),
        RuntimeConfig {
            battery_level: 0.3,
            record_events: true,
            ..RuntimeConfig::default()
        },
    );
    assert_eq!(result.value.as_ref().unwrap(), &ent_runtime::Value::Int(25));
    let rendered: Vec<String> = result
        .events
        .iter()
        .map(|e| ent_runtime::render_event(&lowered, e))
        .collect();
    let expected = [
        "[   0.000s] alloc dynamic Agent",
        "[   0.000s] snapshot Agent -> energy_saver in [⊥, ⊤] (tagged in place)",
        "[   0.000s] alloc dynamic Site",
        "[   0.000s] snapshot Site -> full_throttle in [⊥, energy_saver] (FAILED CHECK)",
        "[   0.000s] alloc dynamic Site",
        "[   0.000s] snapshot Site -> energy_saver in [⊥, energy_saver] (tagged in place)",
    ];
    assert_eq!(rendered, expected, "rendered event stream drifted");
}
