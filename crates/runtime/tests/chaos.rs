//! Fault injection and graceful degradation at the runtime layer: the
//! fault-off path is bit-identical to a no-fault run, fault runs are
//! deterministic per fault seed, and faulted sensor reads walk the
//! degradation ladder (last-known-good → staleness bound → conservative
//! mode) instead of crashing or silently mis-moding.

use ent_core::compile;
use ent_energy::{FaultPlan, Platform, SensorKind};
use ent_runtime::{
    lower_program, run_lowered, EventPayload, FaultServe, LoweredProgram, RunResult, RuntimeConfig,
};

/// An adaptive program in the benchmark suite's shape: a battery-threshold
/// attributor, an explicit conservative `low` snapshot bound, work scaled
/// by the produced mode, and a catchable failure path.
const PROGRAM: &str = r#"
modes { low <= mid; mid <= high; }
class App@mode<? <= X> {
  attributor {
    if (Ext.battery() >= 0.7) { return high; }
    else if (Ext.battery() >= 0.3) { return mid; }
    else { return low; }
  }
  int effort() {
    return mcase{ low: 1; mid: 4; high: 9; } <| X;
  }
  int round(int i) {
    Sim.work("cpu", 500.0);
    Sim.sleepMs(400);
    let dapp = new App();
    let got = try {
      let App a = snapshot dapp [low, X];
      a.effort()
    } catch { 0 };
    if (i <= 0) { return got; }
    return got + this.round(i - 1);
  }
}
class Main {
  int main() {
    let dapp = new App();
    let App a = snapshot dapp [low, high];
    let total = a.round(20);
    IO.print("total " + total);
    return total;
  }
}
"#;

fn lowered() -> LoweredProgram {
    let compiled = compile(PROGRAM).expect("chaos program compiles");
    lower_program(&compiled)
}

/// Every semantic observable of a run, f64s by bit pattern.
fn fingerprint(result: &RunResult) -> String {
    let s = &result.stats;
    let value = match &result.value {
        Ok(v) => format!("ok:{v}"),
        Err(e) => format!("err:{e}"),
    };
    format!(
        "steps={};snaps={};exc={};sf={};sr={};dd={};value={};out={};energy={:016x};time={:016x};batt={:016x}",
        s.steps,
        s.snapshots,
        s.energy_exceptions,
        s.sensor_faults,
        s.stale_reads,
        s.degraded_decisions,
        value,
        result.output.join("\\n"),
        result.measurement.energy_j.to_bits(),
        result.measurement.time_s.to_bits(),
        result.measurement.battery_level.to_bits(),
    )
}

fn run_with(prog: &LoweredProgram, faults: Option<FaultPlan>, fault_seed: u64) -> RunResult {
    run_lowered(
        prog,
        Platform::system_a(),
        RuntimeConfig {
            seed: 42,
            battery_level: 0.8,
            faults,
            fault_seed,
            ..RuntimeConfig::default()
        },
    )
}

#[test]
fn noop_plan_is_bit_identical_to_fault_off() {
    let prog = lowered();
    let off = run_with(&prog, None, 0);
    assert!(off.value.is_ok(), "{:?}", off.value);
    assert_eq!(off.stats.sensor_faults, 0);
    // An installed-but-empty plan and a different fault seed must change
    // nothing at all: the injector is not even constructed.
    let noop = run_with(&prog, Some(FaultPlan::default()), 99);
    assert_eq!(fingerprint(&off), fingerprint(&noop));
}

#[test]
fn chaos_runs_are_deterministic_per_fault_seed() {
    let prog = lowered();
    let a = run_with(&prog, Some(FaultPlan::chaos()), 7);
    let b = run_with(&prog, Some(FaultPlan::chaos()), 7);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert!(a.stats.sensor_faults > 0, "chaos should fault some reads");

    // A different fault seed realizes a different schedule somewhere.
    let c = run_with(&prog, Some(FaultPlan::chaos()), 8);
    assert_ne!(fingerprint(&a), fingerprint(&c));
}

#[test]
fn total_dropout_degrades_to_the_conservative_low_bound() {
    let prog = lowered();
    let plan = FaultPlan {
        dropout_rate: 1.0,
        ..FaultPlan::default()
    };
    let r = run_with(&prog, Some(plan), 1);
    // Every read drops and no last-known-good ever forms, so every
    // snapshot decision degrades to `low` — the program still completes,
    // throws nothing, and does the conservative amount of work.
    assert!(r.value.is_ok(), "{:?}", r.value);
    assert_eq!(r.output, vec!["total 21"], "every round at low effort (1)");
    assert!(r.stats.sensor_faults > 0);
    assert_eq!(r.stats.stale_reads, 0);
    assert_eq!(r.stats.degraded_decisions, r.stats.snapshots);
    assert_eq!(r.stats.energy_exceptions, 0);
}

#[test]
fn intermittent_faults_serve_last_known_good_within_the_bound() {
    let prog = lowered();
    // Half the windows drop; the virtual clock moves ~0.9 s per round, so
    // faulted reads usually have a sub-second-old last-known-good to lean
    // on. Scan fault seeds for a run that exercises the middle rung of the
    // ladder (stale service without any degraded decision).
    let found = (0..64).any(|fs| {
        let plan = FaultPlan {
            dropout_rate: 0.5,
            window_s: 0.5,
            ..FaultPlan::default()
        };
        let r = run_with(&prog, Some(plan), fs);
        r.value.is_ok()
            && r.stats.stale_reads > 0
            && r.stats.degraded_decisions == 0
            && r.stats.stale_reads <= r.stats.sensor_faults
    });
    assert!(
        found,
        "some fault seed should serve last-known-good without degrading"
    );
}

#[test]
fn staleness_bound_controls_when_degradation_kicks_in() {
    let prog = lowered();
    let plan = FaultPlan {
        dropout_rate: 0.5,
        window_s: 0.5,
        ..FaultPlan::default()
    };
    // With an infinite bound, a last-known-good reading never expires, so
    // nothing degrades after the first clean read; with a zero bound every
    // faulted read degrades immediately.
    let mut saw_non_degraded = false;
    let mut saw_degraded = false;
    for fs in 0..64 {
        let relaxed = run_lowered(
            &prog,
            Platform::system_a(),
            RuntimeConfig {
                seed: 42,
                battery_level: 0.8,
                faults: Some(plan.clone()),
                fault_seed: fs,
                staleness_bound_s: f64::INFINITY,
                ..RuntimeConfig::default()
            },
        );
        let strict = run_lowered(
            &prog,
            Platform::system_a(),
            RuntimeConfig {
                seed: 42,
                battery_level: 0.8,
                faults: Some(plan.clone()),
                fault_seed: fs,
                staleness_bound_s: 0.0,
                ..RuntimeConfig::default()
            },
        );
        if relaxed.stats.sensor_faults > 0 && relaxed.stats.stale_reads > 0 {
            saw_non_degraded = true;
            // Under the infinite bound, the only degraded decisions come
            // from faults before the first clean read.
            assert!(relaxed.stats.stale_reads >= strict.stats.stale_reads);
        }
        if strict.stats.sensor_faults > 0 {
            // A zero bound never serves last-known-good.
            assert_eq!(strict.stats.stale_reads, 0);
            if strict.stats.degraded_decisions > 0 {
                saw_degraded = true;
            }
        }
    }
    assert!(saw_non_degraded && saw_degraded);
}

#[test]
fn noise_spikes_pass_through_but_are_counted() {
    let compiled = compile(
        r#"
        class Main {
          double main() { return Ext.battery(); }
        }
        "#,
    )
    .expect("probe compiles");
    let prog = lower_program(&compiled);
    let clean = run_with(&prog, None, 0);
    let plan = FaultPlan {
        spike_rate: 1.0,
        spike_mag: 0.5,
        ..FaultPlan::default()
    };
    let spiked = run_with(&prog, Some(plan), 3);
    assert!(spiked.value.is_ok());
    assert_ne!(clean.value, spiked.value, "the spike must corrupt the read");
    assert_eq!(spiked.stats.sensor_faults, 1);
    assert_eq!(spiked.stats.stale_reads, 0);
    assert_eq!(spiked.stats.degraded_decisions, 0);
}

#[test]
fn sensor_fault_events_are_recorded_and_renderable() {
    let prog = lowered();
    let plan = FaultPlan {
        dropout_rate: 1.0,
        ..FaultPlan::default()
    };
    let r = run_lowered(
        &prog,
        Platform::system_a(),
        RuntimeConfig {
            seed: 42,
            battery_level: 0.8,
            faults: Some(plan),
            fault_seed: 1,
            record_events: true,
            ..RuntimeConfig::default()
        },
    );
    let faults: Vec<_> = r
        .events
        .iter()
        .filter_map(|ev| match ev.payload {
            EventPayload::SensorFault { sensor, served } => Some((sensor, served)),
            _ => None,
        })
        .collect();
    assert_eq!(faults.len() as u64, r.stats.sensor_faults);
    assert!(faults
        .iter()
        .all(|&(s, v)| s == SensorKind::Battery && v == FaultServe::Conservative));
    let fault_event = r
        .events
        .iter()
        .find(|ev| matches!(ev.payload, EventPayload::SensorFault { .. }))
        .expect("at least one sensor-fault event");
    let rendered = ent_runtime::render_event(&prog, fault_event);
    assert!(
        rendered.contains("sensor fault on battery"),
        "unexpected rendering: {rendered}"
    );
}

#[test]
fn telemetry_json_carries_the_resilience_counters() {
    let prog = lowered();
    let r = run_with(
        &prog,
        Some(FaultPlan {
            dropout_rate: 1.0,
            ..FaultPlan::default()
        }),
        1,
    );
    let json = r.to_json();
    assert!(ent_runtime::json_is_valid(&json), "{json}");
    assert!(json.contains("\"sensor_faults\""), "{json}");
    assert!(json.contains("\"stale_reads\""), "{json}");
    assert!(json.contains("\"degraded_decisions\""), "{json}");
}
