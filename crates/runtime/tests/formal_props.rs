//! Property tests over the formal machine's reduction sequences:
//!
//! * **Monotonic type change** (§4.2's copy-semantics discussion): an
//!   object value's mode tag moves at most once, from `?` to one ground
//!   mode — no tagged object is ever re-tagged, so no two aliases can
//!   disagree about a mode (non-equivocation).
//! * **Empirical progress** (Theorem 1): well-typed core programs reduce
//!   to a value or stop at a bad check — never at a stuck term or a
//!   dynamic waterfall violation.

use std::collections::HashMap;

use ent_core::compile;
use ent_modes::StaticMode;
use ent_runtime::formal::{lower, FMode, FormalError, Machine, Term};
use proptest::prelude::*;

/// Collects every object value in a term into `id → mode`.
fn collect_modes(term: &Term, out: &mut HashMap<u64, FMode>) {
    match term {
        Term::Obj(o) => {
            out.entry(o.id).or_insert_with(|| o.mode.clone());
            for f in &o.fields {
                collect_modes(f, out);
            }
        }
        Term::MCaseV(arms) | Term::MCase(arms) => {
            for (_, t) in arms {
                collect_modes(t, out);
            }
        }
        Term::Field(e, _) | Term::Cast(_, e) | Term::Elim(e, _) | Term::Cl(_, e) => {
            collect_modes(e, out)
        }
        Term::Snapshot(e, _, _) => collect_modes(e, out),
        Term::New { args, .. } => args.iter().for_each(|a| collect_modes(a, out)),
        Term::Call(recv, _, args) => {
            collect_modes(recv, out);
            args.iter().for_each(|a| collect_modes(a, out));
        }
        Term::Let(_, rhs, body) => {
            collect_modes(rhs, out);
            collect_modes(body, out);
        }
        Term::Check { body, obj, .. } => {
            collect_modes(body, out);
            for f in &obj.fields {
                collect_modes(f, out);
            }
        }
        Term::Var(_) | Term::ModeV(_) => {}
    }
}

/// A parametric FJ-core program: a dynamic probe whose attributor returns
/// a constructor-supplied mode, snapshotted `snapshots` times under a
/// bound, returning the last result.
fn probe_source(
    mode_count: usize,
    stored: usize,
    bound: Option<usize>,
    snapshots: usize,
) -> String {
    let mode = |i: usize| format!("m{i}");
    let mut modes_block = String::from("modes { ");
    for i in 0..mode_count - 1 {
        modes_block.push_str(&format!("{} <= {}; ", mode(i), mode(i + 1)));
    }
    modes_block.push('}');

    let mcase_arms: String = (0..mode_count)
        .map(|i| format!("{}: new Token(); ", mode(i)))
        .collect();
    let bound_s = bound.map(&mode).unwrap_or_else(|| "_".to_string());

    let mut body = String::new();
    for i in 0..snapshots {
        body.push_str(&format!("let Probe s{i} = snapshot dp [_, {bound_s}];\n"));
    }
    let last = snapshots.saturating_sub(1);
    // The mcase is a constructor argument (no field initializer), keeping
    // the program inside the lowerable FJ core.
    format!(
        "{modes_block}
        class Token {{ }}
        class Probe@mode<? <= P> {{
          Level level;
          mcase<Token> pick;
          attributor {{ return {stored_mode}; }}
          Token choose() {{ return this.pick <| P; }}
        }}
        class Level {{ }}
        class Main {{
          Object main() {{
            let dp = new Probe(new Level(), mcase<Token>{{ {mcase_arms} }});
            {body}
            return s{last}.choose();
          }}
        }}",
        stored_mode = mode(stored),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Reduction never re-tags an object: modes move `?` → ground once.
    #[test]
    fn object_modes_change_monotonically(
        mode_count in 2usize..=4,
        stored in 0usize..4,
        bound in proptest::option::of(0usize..4),
        snapshots in 1usize..=4,
    ) {
        let stored = stored % mode_count;
        let bound = bound.map(|b| b % mode_count);
        let src = probe_source(mode_count, stored, bound, snapshots);
        let compiled = compile(&src)
            .unwrap_or_else(|e| panic!("probe family must typecheck:\n{}", e.render(&src)));
        let program = lower(&compiled.program).expect("probe family is FJ-core");

        let mut machine = Machine::new(&program);
        let mut term = machine.boot().expect("boot");
        let mut seen: HashMap<u64, FMode> = HashMap::new();
        for _ in 0..100_000 {
            if term.is_value() {
                break;
            }
            let mut now = HashMap::new();
            collect_modes(&term, &mut now);
            for (id, mode) in &now {
                if let Some(prev) = seen.get(id) {
                    // Once ground, forever that ground mode; dynamic may
                    // become ground.
                    match (prev, mode) {
                        (FMode::Dynamic, _) => {}
                        (a, b) => prop_assert_eq!(a, b, "object {} re-tagged", id),
                    }
                }
                seen.insert(*id, mode.clone());
            }
            match machine.step(term.clone(), &StaticMode::Top) {
                Ok(next) => term = next,
                Err(FormalError::BadCheck(_)) => return Ok(()),
                Err(other) => {
                    prop_assert!(false, "unexpected stop: {other}");
                    unreachable!()
                }
            }
        }
    }

    /// Empirical progress: well-typed core programs end in a value or a
    /// bad check, never stuck.
    #[test]
    fn well_typed_core_programs_never_get_stuck(
        mode_count in 2usize..=4,
        stored in 0usize..4,
        bound in proptest::option::of(0usize..4),
        snapshots in 1usize..=4,
    ) {
        let stored = stored % mode_count;
        let bound = bound.map(|b| b % mode_count);
        let src = probe_source(mode_count, stored, bound, snapshots);
        let compiled = compile(&src).expect("probe family typechecks");
        let program = lower(&compiled.program).expect("probe family is FJ-core");

        let mut machine = Machine::new(&program);
        let booted = machine.boot().expect("boot");
        match machine.run(booted, &StaticMode::Top, 1_000_000) {
            Ok(v) => prop_assert!(v.is_value()),
            Err(FormalError::BadCheck(_)) => {
                // Only possible when a bound was declared below the stored
                // mode.
                let bound = bound.expect("unbounded snapshots cannot fail");
                prop_assert!(stored > bound, "bad check requires stored > bound");
            }
            Err(other) => prop_assert!(false, "stuck: {other}"),
        }
    }

    /// The bad-check condition is exact: it fires iff the attributor's
    /// mode exceeds the snapshot's upper bound.
    #[test]
    fn bad_check_fires_exactly_when_bound_exceeded(
        mode_count in 2usize..=4,
        stored in 0usize..4,
        bound in 0usize..4,
    ) {
        let stored = stored % mode_count;
        let bound = bound % mode_count;
        let src = probe_source(mode_count, stored, Some(bound), 1);
        let compiled = compile(&src).expect("probe family typechecks");
        let program = lower(&compiled.program).expect("probe family is FJ-core");
        let mut machine = Machine::new(&program);
        let booted = machine.boot().expect("boot");
        let result = machine.run(booted, &StaticMode::Top, 1_000_000);
        if stored > bound {
            prop_assert!(matches!(result, Err(FormalError::BadCheck(_))));
        } else {
            prop_assert!(result.is_ok(), "{result:?}");
        }
    }
}
