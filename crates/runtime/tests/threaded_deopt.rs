//! Every deopt guard in the closure-threaded tier, exercised end to end:
//! each test forces one [`DeoptReason`] to fire under `--tier-up 0`,
//! asserts the matching counter is nonzero (the guard actually tripped,
//! the test is not vacuously passing on the VM), and asserts the full
//! observable surface — value, rendering, stats, output, energy/time
//! bits, and the rendered event stream — is byte-identical to a pure
//! bytecode run. Deopt is a performance event, never a semantic one.

use std::fmt::Write as _;

use ent_core::compile;
use ent_energy::{FaultPlan, Platform};
use ent_runtime::{
    lower_program, render_event, run_lowered, Enforcement, Engine, LoweredProgram, RunResult,
    RuntimeConfig, TierUp,
};

/// Every semantic observable, f64s by bit pattern (tier counters are
/// deliberately excluded: they are *supposed* to differ between engines).
fn observe(prog: &LoweredProgram, r: &RunResult) -> String {
    let mut out = String::new();
    let value = match &r.value {
        Ok(v) => format!("ok:{v:?}"),
        Err(e) => format!("err:{e}"),
    };
    let _ = writeln!(out, "value={value}");
    let _ = writeln!(out, "pretty={:?}", r.value_pretty);
    let _ = writeln!(out, "stats={:?}", r.stats);
    let _ = writeln!(
        out,
        "energy={:016x} time={:016x} batt={:016x}",
        r.measurement.energy_j.to_bits(),
        r.measurement.time_s.to_bits(),
        r.measurement.battery_level.to_bits(),
    );
    for line in &r.output {
        let _ = writeln!(out, "out|{line}");
    }
    for ev in r.events.iter() {
        let _ = writeln!(out, "ev|{}", render_event(prog, ev));
    }
    out
}

/// Runs `src` under the bytecode VM and the always-tiering threaded
/// engine with the same config, asserts byte-identical observables, and
/// returns the threaded run for deopt-counter assertions.
fn run_pair(src: &str, mutate: impl Fn(&mut RuntimeConfig)) -> RunResult {
    let compiled =
        compile(src).unwrap_or_else(|e| panic!("program fails to compile:\n{}", e.render(src)));
    let lowered = lower_program(&compiled);
    let config = |engine| {
        let mut c = RuntimeConfig {
            engine,
            battery_level: 0.8,
            seed: 42,
            record_events: true,
            tier_up: TierUp::Always,
            ..RuntimeConfig::default()
        };
        mutate(&mut c);
        c
    };
    let vm = run_lowered(&lowered, Platform::system_a(), config(Engine::Bytecode));
    let th = run_lowered(&lowered, Platform::system_a(), config(Engine::Threaded));
    assert_eq!(
        observe(&lowered, &vm),
        observe(&lowered, &th),
        "bytecode and threaded observables diverge"
    );
    assert_eq!(vm.tier.deopts(), 0, "the VM run must never count deopts");
    assert!(
        th.tier.threaded_entries > 0,
        "threaded run never entered compiled code"
    );
    th
}

/// A snapshot taken after the virtual clock has moved well past a fault
/// window boundary: the mode-window guard must bail to the VM rather
/// than decide against stale window-keyed state.
const SNAPSHOT_AFTER_SLEEP: &str = r#"
modes { low <= mid; mid <= high; }
class App@mode<? <= X> {
  attributor {
    if (Ext.battery() >= 0.7) { return high; }
    else if (Ext.battery() >= 0.3) { return mid; }
    else { return low; }
  }
  int effort() {
    return mcase{ low: 1; mid: 4; high: 9; } <| X;
  }
  int round(int i) {
    Sim.sleepMs(1500);
    let dapp = new App();
    let got = try {
      let App a = snapshot dapp [low, X];
      a.effort()
    } catch { 0 };
    if (i <= 0) { return got; }
    return got + this.round(i - 1);
  }
}
class Main {
  int main() {
    let dapp = new App();
    let App a = snapshot dapp [low, high];
    return a.round(8);
  }
}
"#;

#[test]
fn mode_window_deopt_is_semantically_invisible() {
    // chaos() uses 0.5 s windows; each round sleeps 1.5 s before its
    // snapshot, so the window observed at body entry has always rolled
    // by the time `SnapB` runs.
    let th = run_pair(SNAPSHOT_AFTER_SLEEP, |c| {
        c.faults = Some(FaultPlan::chaos());
        c.fault_seed = 7;
    });
    assert!(
        th.tier.deopt_mode_window > 0,
        "mode-window guard never fired: {:?}",
        th.tier
    );
}

/// One static call site fed five receiver classes: the send IC goes
/// megamorphic and the site must deopt instead of thrashing.
const MEGAMORPHIC_SEND: &str = r#"
modes { low <= high; }
class Shape { int sides() { return 0; } }
class Tri extends Shape { int sides() { return 3; } }
class Quad extends Shape { int sides() { return 4; } }
class Penta extends Shape { int sides() { return 5; } }
class Hexa extends Shape { int sides() { return 6; } }
class Main {
  Shape pick(int i) {
    let r = i - (i / 5) * 5;
    if (r == 0) { return new Shape(); }
    if (r == 1) { return new Tri(); }
    if (r == 2) { return new Quad(); }
    if (r == 3) { return new Penta(); }
    return new Hexa();
  }
  int loop(int i, int acc) {
    if (i >= 25) { return acc; }
    let s = this.pick(i);
    return this.loop(i + 1, acc + s.sides());
  }
  int main() { return this.loop(0, 0); }
}
"#;

#[test]
fn megamorphic_ic_deopt_is_semantically_invisible() {
    let th = run_pair(MEGAMORPHIC_SEND, |_| {});
    assert!(
        th.tier.deopt_ic_megamorphic > 0,
        "megamorphic guard never fired: {:?}",
        th.tier
    );
}

/// A hot body that reads a sensor under total dropout: every read
/// faults, bumping the injector epoch, and the fault-epoch guard must
/// hand the rest of the body to the VM.
const SENSOR_UNDER_DROPOUT: &str = r#"
modes { low <= high; }
class Main {
  int probe(int i, int acc) {
    if (i <= 0) { return acc; }
    Sim.sleepMs(700);
    let lvl = Ext.battery();
    if (lvl >= 0.5) { return this.probe(i - 1, acc + 1); }
    return this.probe(i - 1, acc);
  }
  int main() { return this.probe(10, 0); }
}
"#;

#[test]
fn fault_epoch_deopt_is_semantically_invisible() {
    let th = run_pair(SENSOR_UNDER_DROPOUT, |c| {
        c.faults = Some(FaultPlan {
            dropout_rate: 1.0,
            ..FaultPlan::default()
        });
        c.fault_seed = 3;
    });
    assert!(
        th.tier.deopt_fault_epoch > 0,
        "fault-epoch guard never fired: {:?}",
        th.tier
    );
    assert!(th.stats.sensor_faults > 0, "dropout plan never faulted");
}

#[test]
fn transient_enforcement_deopts_at_entry() {
    // Only guarded semantics are compiled; a transient run must count an
    // enforcement deopt per entry and execute entirely on the VM.
    let th = run_pair(MEGAMORPHIC_SEND, |c| {
        c.enforcement = Enforcement::Transient;
    });
    assert!(
        th.tier.deopt_enforcement > 0,
        "enforcement guard never fired: {:?}",
        th.tier
    );
    assert_eq!(
        th.tier.deopt_enforcement, th.tier.threaded_entries,
        "every transient entry must deopt exactly once"
    );
    assert!(th.stats.transient_checks > 0, "transient strategy was idle");
}
