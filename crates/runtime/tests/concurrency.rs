//! Re-entrancy stress tests: one shared `LoweredProgram` driven from many
//! threads at once must produce exactly the per-config results a
//! sequential caller sees — the engine's determinism contract, exercised
//! at the runtime layer (no engine involved), including with the
//! observability layer switched on.

use ent_core::compile;
use ent_energy::Platform;
use ent_runtime::{lower_program, run_lowered, LoweredProgram, RunResult, RuntimeConfig};

/// A program that exercises the dynamic machinery: a mode lattice, a
/// dynamic object with an attributor, snapshots (bounded, so low battery
/// raises and catches an `EnergyException`), recursion, and `Sim` work.
const PROGRAM: &str = r#"
modes { low <= mid; mid <= high; }
class Workload@mode<? <= W> {
  int items;
  attributor {
    if (this.items >= 20) { return high; }
    else if (this.items >= 5) { return mid; }
    else { return low; }
  }
  int size() { return this.items; }
}
class App@mode<? <= X> {
  attributor {
    if (Ext.battery() >= 0.7) { return high; }
    else if (Ext.battery() >= 0.3) { return mid; }
    else { return low; }
  }
  int step(int n) {
    Sim.work("cpu", 250.0);
    if (n <= 0) { return 0; }
    return 1 + this.step(n - 1);
  }
  int round(int items) {
    let dw = new Workload(items);
    let got = try {
      let Workload w = snapshot dw [_, X];
      this.step(w.size())
    } catch {
      Sim.work("cpu", 50.0);
      0
    };
    return got;
  }
  int iterate(int i) {
    if (i <= 0) { return 0; }
    return this.round(4 * i) + this.iterate(i - 1);
  }
}
class Main {
  int main() {
    let dapp = new App();
    let App a = snapshot dapp [_, _];
    let total = a.iterate(6);
    IO.print("total " + total);
    return total;
  }
}
"#;

/// The runtime configurations the stress matrix covers: silent on/off,
/// observability on/off, eager copying, several seeds and battery levels.
fn configs() -> Vec<RuntimeConfig> {
    let mut out = Vec::new();
    for seed in [1, 7, 42] {
        for battery in [0.15, 0.5, 0.9] {
            out.push(RuntimeConfig {
                seed,
                battery_level: battery,
                ..RuntimeConfig::default()
            });
        }
    }
    out.push(RuntimeConfig {
        seed: 9,
        battery_level: 0.5,
        silent: true,
        ..RuntimeConfig::default()
    });
    out.push(RuntimeConfig {
        seed: 9,
        battery_level: 0.5,
        record_events: true,
        profile: ent_runtime::ProfileMode::Exact,
        ..RuntimeConfig::default()
    });
    out.push(RuntimeConfig {
        seed: 9,
        battery_level: 0.5,
        eager_copy: true,
        ..RuntimeConfig::default()
    });
    out
}

/// Every semantic observable of a run, f64s by bit pattern.
fn fingerprint(result: &RunResult) -> String {
    let s = &result.stats;
    let value = match &result.value {
        Ok(v) => format!("ok:{v}"),
        Err(e) => format!("err:{e}"),
    };
    format!(
        "steps={};snaps={};copies={};exc={};sfail={};dfail={};value={};out={};energy={:016x};time={:016x}",
        s.steps,
        s.snapshots,
        s.copies,
        s.energy_exceptions,
        s.snapshot_failures,
        s.dfall_failures,
        value,
        result.output.join("\\n"),
        result.measurement.energy_j.to_bits(),
        result.measurement.time_s.to_bits(),
    )
}

fn lowered() -> LoweredProgram {
    let compiled = compile(PROGRAM).expect("stress program compiles");
    lower_program(&compiled)
}

#[test]
fn eight_threads_match_sequential_fingerprints() {
    let prog = lowered();
    let configs = configs();
    let expected: Vec<String> = configs
        .iter()
        .map(|c| fingerprint(&run_lowered(&prog, Platform::system_a(), c.clone())))
        .collect();
    // The program must actually exercise the interesting paths.
    assert!(expected.iter().any(|fp| fp.contains("exc=0")));
    assert!(expected.iter().any(|fp| !fp.contains("exc=0")));

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let (prog, configs, expected) = (&prog, &configs, &expected);
                s.spawn(move || {
                    // Each thread sweeps the whole matrix, starting at a
                    // different offset so distinct configs overlap in time.
                    for i in 0..configs.len() {
                        let i = (i + t * 3) % configs.len();
                        let result = run_lowered(prog, Platform::system_a(), configs[i].clone());
                        assert_eq!(
                            fingerprint(&result),
                            expected[i],
                            "config {i} diverged on thread {t}"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("stress thread");
        }
    });
}

#[test]
fn observability_results_are_complete_under_concurrency() {
    // `record_events` and `profile` allocate per-run state; under
    // concurrency each run must still get its own complete event log and
    // profile (nothing shared, nothing lost).
    let prog = lowered();
    let config = RuntimeConfig {
        seed: 3,
        battery_level: 0.5,
        record_events: true,
        profile: ent_runtime::ProfileMode::Exact,
        ..RuntimeConfig::default()
    };
    let reference = run_lowered(&prog, Platform::system_a(), config.clone());
    let ref_events = reference.events.iter().count();
    assert!(ref_events > 0, "the stress program should emit events");
    let ref_profile = reference
        .profile
        .as_ref()
        .expect("profile requested")
        .render_table();

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (prog, config) = (&prog, &config);
                s.spawn(move || {
                    let r = run_lowered(prog, Platform::system_a(), config.clone());
                    (
                        r.events.iter().count(),
                        r.profile
                            .as_ref()
                            .expect("profile requested")
                            .render_table(),
                    )
                })
            })
            .collect();
        for h in handles {
            let (events, profile) = h.join().expect("stress thread");
            assert_eq!(events, ref_events);
            assert_eq!(profile, ref_profile);
        }
    });
}

#[test]
fn small_stacks_turn_deep_recursion_into_a_graceful_error() {
    // The depth limit scales with the configured stack size: a recursion
    // that would blow a 16 MiB native stack must surface as the runtime's
    // stack-overflow error, never abort the process.
    let compiled = compile(
        r#"
        class Main {
          int go(int n) {
            if (n <= 0) { return 0; }
            return this.go(n - 1);
          }
          int main() { return this.go(30000); }
        }
        "#,
    )
    .expect("deep program compiles");
    let prog = lower_program(&compiled);
    let result = run_lowered(
        &prog,
        Platform::system_a(),
        RuntimeConfig {
            stack_size: 16 * 1024 * 1024,
            ..RuntimeConfig::default()
        },
    );
    let err = result.value.expect_err("depth guard should fire");
    assert!(err.to_string().contains("call depth"), "{err}");
}

#[test]
fn tiny_configured_stacks_still_complete() {
    // The depth guard (MAX_CALL_DEPTH) protects legitimate programs long
    // before a 16 MiB stack runs out; a configured stack must be honored
    // without breaking shallow programs.
    let prog = lowered();
    let result = run_lowered(
        &prog,
        Platform::system_a(),
        RuntimeConfig {
            seed: 1,
            battery_level: 0.9,
            stack_size: 16 * 1024 * 1024,
            ..RuntimeConfig::default()
        },
    );
    assert!(result.value.is_ok(), "{:?}", result.value);
}
