//! Property-based soundness smoke tests.
//!
//! Theorem 1 / Corollary 1 of the paper: a well-typed program either
//! produces a value, diverges, or stops at a *bad cast* or *bad check* —
//! it never gets stuck at a message send (no dynamic waterfall violations,
//! no missing members, no unbound variables). These properties drive the
//! crawler program over randomized battery levels, workload sizes, and
//! snapshot bounds and assert exactly that.

use ent_core::compile;
use ent_energy::Platform;
use ent_runtime::{run, RtError, RuntimeConfig};
use proptest::prelude::*;

const BOUNDS: &[&str] = &["energy_saver", "managed", "full_throttle", "top"];

fn crawler(bound: &str) -> String {
    let bound = if bound == "top" {
        "_".to_string()
    } else {
        bound.to_string()
    };
    format!(
        "modes {{ energy_saver <= managed; managed <= full_throttle; }}
        class Site@mode<? <= S> {{
          int resources;
          attributor {{
            if (this.resources > 200) {{ return full_throttle; }}
            else if (this.resources > 50) {{ return managed; }}
            else {{ return energy_saver; }}
          }}
          int crawl(int depth) {{
            Sim.work(\"net\", Math.toDouble(this.resources * depth) * 100000.0);
            return this.resources * depth;
          }}
        }}
        class Agent@mode<? <= X> {{
          mcase<int> depth = mcase{{ energy_saver: 1; managed: 2; full_throttle: 3; }};
          attributor {{
            if (Ext.battery() >= 0.9) {{ return full_throttle; }}
            else if (Ext.battery() >= 0.7) {{ return managed; }}
            else {{ return energy_saver; }}
          }}
          int work(int resources) {{
            let ds = new Site(resources);
            let Site s = snapshot ds [_, X];
            return s.crawl(this.depth <| X);
          }}
        }}
        class Main {{
          int main() {{
            let da = new Agent();
            let Agent a = snapshot da [_, {bound}];
            return a.work(1000);
          }}
        }}"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Well-typed runs only ever stop at an EnergyException (bad check) —
    /// never at a dfall violation, missing member, or unbound variable.
    #[test]
    fn well_typed_programs_never_get_stuck(
        battery in 0.0f64..1.0,
        bound_idx in 0usize..BOUNDS.len(),
        resources in 1i64..3000,
        seed in 0u64..1000,
    ) {
        let src = crawler(BOUNDS[bound_idx]).replace("a.work(1000)", &format!("a.work({resources})"));
        let compiled = compile(&src).expect("crawler template is well-typed");
        let config = RuntimeConfig { battery_level: battery, seed, ..RuntimeConfig::default() };
        let result = run(&compiled, Platform::system_a(), config);
        match &result.value {
            Ok(_) => {}
            Err(RtError::EnergyException(_)) => {}
            Err(other) => {
                prop_assert!(false, "well-typed program got stuck: {other}");
            }
        }
    }

    /// In silent mode the same programs always complete (checks are
    /// suppressed), and the tagging metadata still counts violations.
    #[test]
    fn silent_runs_always_complete(
        battery in 0.0f64..1.0,
        bound_idx in 0usize..BOUNDS.len(),
        seed in 0u64..1000,
    ) {
        let src = crawler(BOUNDS[bound_idx]);
        let compiled = compile(&src).expect("crawler template is well-typed");
        let config = RuntimeConfig {
            battery_level: battery,
            silent: true,
            seed,
            ..RuntimeConfig::default()
        };
        let result = run(&compiled, Platform::system_a(), config);
        prop_assert!(result.value.is_ok(), "silent run failed: {:?}", result.value);
    }

    /// Lazy copying: copies = snapshots − first-snapshots.
    #[test]
    fn lazy_copy_accounting(extra_snapshots in 0usize..6) {
        let snaps: String = (0..extra_snapshots)
            .map(|i| format!("let Agent a{i} = snapshot da [_, _];"))
            .collect();
        let src = format!(
            "modes {{ low <= high; }}
            class Agent@mode<? <= X> {{
              attributor {{ return low; }}
            }}
            class Main {{
              unit main() {{
                let da = new Agent();
                let Agent a = snapshot da [_, _];
                {snaps}
                return {{}};
              }}
            }}"
        );
        let compiled = compile(&src).expect("well-typed");
        let result = run(&compiled, Platform::system_a(), RuntimeConfig::default());
        prop_assert!(result.value.is_ok());
        prop_assert_eq!(result.stats.snapshots, 1 + extra_snapshots as u64);
        prop_assert_eq!(result.stats.copies, extra_snapshots as u64);
    }

    /// Determinism: identical configuration ⇒ identical value, energy, and
    /// statistics.
    #[test]
    fn runs_are_deterministic(battery in 0.0f64..1.0, seed in 0u64..100) {
        let src = crawler("top");
        let compiled = compile(&src).expect("well-typed");
        let config = RuntimeConfig { battery_level: battery, seed, ..RuntimeConfig::default() };
        let a = run(&compiled, Platform::system_b(), config.clone());
        let b = run(&compiled, Platform::system_b(), config);
        prop_assert_eq!(&a.value, &b.value);
        prop_assert_eq!(a.measurement.energy_j, b.measurement.energy_j);
        prop_assert_eq!(&a.stats, &b.stats);
    }
}
