//! Behavioral coverage for the builtin namespaces (`Str`, `Math`, `Arr`,
//! `Sim`, `Ext`, `IO`) at run time.

use ent_core::compile;
use ent_energy::Platform;
use ent_runtime::{run, RtError, RunResult, RuntimeConfig, Value};

fn eval_int(expr: &str) -> Value {
    let src = format!("class Main {{ int main() {{ return {expr}; }} }}");
    run_src(&src).value.unwrap()
}

fn eval_str(expr: &str) -> String {
    let src = format!("class Main {{ string main() {{ return {expr}; }} }}");
    match run_src(&src).value.unwrap() {
        Value::Str(s) => s.to_string(),
        other => panic!("expected a string, got {other:?}"),
    }
}

fn run_src(src: &str) -> RunResult {
    let compiled = compile(src).unwrap_or_else(|e| panic!("{}", e.render(src)));
    run(&compiled, Platform::system_a(), RuntimeConfig::default())
}

#[test]
fn string_builtins() {
    assert_eq!(eval_int("Str.len(\"héllo\")"), Value::Int(5));
    assert_eq!(eval_str("Str.ofInt(-42)"), "-42");
    assert_eq!(eval_str("Str.ofDouble(2.5)"), "2.5");
    assert_eq!(eval_str("Str.sub(\"abcdef\", 1, 4)"), "bcd");
    // Out-of-range indices clamp instead of failing.
    assert_eq!(eval_str("Str.sub(\"abc\", 2, 99)"), "c");
    assert_eq!(eval_str("Str.sub(\"abc\", 5, 2)"), "");
}

#[test]
fn math_builtins() {
    assert_eq!(eval_int("Math.floor(3.99)"), Value::Int(3));
    assert_eq!(eval_int("Math.floor(-1.5)"), Value::Int(-2));
    assert_eq!(eval_int("Math.min(3, 7) + Math.max(3, 7)"), Value::Int(10));
    assert_eq!(eval_int("Math.abs(0 - 9)"), Value::Int(9));
    assert_eq!(eval_int("Math.floor(Math.sqrt(81.0))"), Value::Int(9));
    assert_eq!(
        eval_int("Math.floor(Math.pow(2.0, 10.0))"),
        Value::Int(1024)
    );
    assert_eq!(
        eval_int("Math.floor(Math.fmin(1.5, 2.5) + Math.fmax(1.5, 2.5))"),
        Value::Int(4)
    );
}

#[test]
fn array_builtins() {
    assert_eq!(eval_int("Arr.len(Arr.range(2, 9))"), Value::Int(7));
    assert_eq!(eval_int("Arr.get([10, 20, 30], 1)"), Value::Int(20));
    assert_eq!(
        eval_int("Arr.len(Arr.sub([1,2,3,4,5], 1, 4))"),
        Value::Int(3)
    );
    assert_eq!(
        eval_int("Arr.len(Arr.concat([1,2],[3,4,5]))"),
        Value::Int(5)
    );
    assert_eq!(eval_int("Arr.get(Arr.push([1,2], 7), 2)"), Value::Int(7));
    assert_eq!(eval_int("Arr.len(Arr.make(4, 0))"), Value::Int(4));
    // Empty ranges.
    assert_eq!(eval_int("Arr.len(Arr.range(5, 5))"), Value::Int(0));
}

#[test]
fn array_index_out_of_bounds_is_a_runtime_error() {
    let src = "class Main { int main() { return Arr.get([1], 3); } }";
    let r = run_src(src);
    assert!(matches!(r.value, Err(RtError::Native(_))), "{:?}", r.value);
}

#[test]
fn division_and_remainder_by_zero() {
    let r = run_src("class Main { int main() { return 1 / 0; } }");
    assert!(matches!(r.value, Err(RtError::Native(_))));
    let r = run_src("class Main { int main() { return 1 % 0; } }");
    assert!(matches!(r.value, Err(RtError::Native(_))));
}

#[test]
fn short_circuit_evaluation_skips_the_rhs() {
    // The RHS would divide by zero; && must not evaluate it.
    assert_eq!(
        eval_int("if (false && (1 / 0 == 0)) { 1 } else { 2 }"),
        Value::Int(2)
    );
    assert_eq!(
        eval_int("if (true || (1 / 0 == 0)) { 3 } else { 4 }"),
        Value::Int(3)
    );
}

#[test]
fn ext_builtins_read_the_simulator() {
    let src = "class Main {
        bool main() {
          let b = Ext.battery();
          let t = Ext.temperature();
          let ms = Ext.timeMs();
          return b >= 0.0 && b <= 1.0 && t > 0.0 && ms >= 0.0;
        }
      }";
    assert_eq!(run_src(src).value.unwrap(), Value::Bool(true));
}

#[test]
fn sim_rand_is_in_range_and_seeded() {
    let src = "class Main {
        bool main() {
          let a = Sim.rand();
          let b = Sim.rand();
          return a >= 0.0 && a < 1.0 && b >= 0.0 && b < 1.0 && (a == b) == false;
        }
      }";
    assert_eq!(run_src(src).value.unwrap(), Value::Bool(true));
}

#[test]
fn string_concat_renders_every_kind() {
    assert_eq!(
        eval_str("\"i=\" + 1 + \" d=\" + 0.5 + \" b=\" + true + \" a=\" + [1, 2]"),
        "i=1 d=0.5 b=true a=[1, 2]"
    );
}

#[test]
fn print_order_is_preserved() {
    let src = "class Main {
        unit main() {
          IO.print(\"one\");
          IO.print(\"two\");
          IO.print(\"three\");
          return {};
        }
      }";
    assert_eq!(run_src(src).output, vec!["one", "two", "three"]);
}

#[test]
fn integer_arithmetic_wraps_rather_than_panics() {
    // Wrapping semantics on overflow (documented choice, matching the
    // release-mode behavior of the host).
    let src = "class Main { int main() { return 9223372036854775807 + 1; } }";
    assert_eq!(run_src(src).value.unwrap(), Value::Int(i64::MIN));
}

#[test]
fn negation_and_abs_wrap_on_int_min_rather_than_panicking() {
    // `-i64::MIN` and `Math.abs(i64::MIN)` have no i64 representation;
    // both wrap (to i64::MIN) like the binary arithmetic ops do, instead
    // of tripping the host's debug overflow check.
    let src = "class Main { int main() { return -(-9223372036854775807 - 1); } }";
    assert_eq!(run_src(src).value.unwrap(), Value::Int(i64::MIN));
    let src = "class Main { int main() { return Math.abs(-9223372036854775807 - 1); } }";
    assert_eq!(run_src(src).value.unwrap(), Value::Int(i64::MIN));
}

#[test]
fn hostile_array_allocations_error_instead_of_aborting() {
    // `Arr.make`/`Arr.range` with astronomic sizes must surface as runtime
    // errors, not exhaust the allocator.
    let src = "class Main { int main() { return Arr.len(Arr.make(9000000000000000000, 0)); } }";
    let r = run_src(src);
    match r.value {
        Err(RtError::Native(msg)) => assert!(msg.contains("exceeds the limit"), "{msg}"),
        other => panic!("expected a native error, got {other:?}"),
    }
    let src = "class Main { int main() { return Arr.len(Arr.range(0, 9000000000000000000)); } }";
    match run_src(src).value {
        Err(RtError::Native(msg)) => assert!(msg.contains("exceeds the limit"), "{msg}"),
        other => panic!("expected a native error, got {other:?}"),
    }
    // Reversed range stays an empty array, as before.
    assert_eq!(eval_int("Arr.len(Arr.range(5, -5))"), Value::Int(0));
}

#[test]
fn hostile_sleep_durations_terminate() {
    // A sleep of i64::MAX ms must not spin the integrator effectively
    // forever: the simulator clamps a single advance.
    let src = "class Main { unit main() { Sim.sleepMs(9223372036854775807); return {}; } }";
    let r = run_src(src);
    assert!(r.value.is_ok(), "{:?}", r.value);
    assert!(r.measurement.time_s <= 1.0e6 + 1.0);
}
