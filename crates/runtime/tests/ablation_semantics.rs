//! Tests for the snapshot-copy ablation flags: the strategies must differ
//! only in cost and aliasing, never in observable modes or results.

use ent_core::compile;
use ent_energy::Platform;
use ent_runtime::{run, RunResult, RuntimeConfig, Value};

const SRC: &str = "modes { low <= high; }
class Leaf { }
class Node { Object child; }
class Probe@mode<? <= P> {
  Node graph;
  mcase<int> tag = mcase{ low: 1; high: 2; };
  attributor {
    if (Ext.battery() >= 0.5) { return high; } else { return low; }
  }
  int read() { return this.tag <| P; }
}
class Main {
  int main() {
    let dp = new Probe(new Node(new Node(new Leaf())));
    let Probe a = snapshot dp [_, _];
    let Probe b = snapshot dp [_, _];
    let Probe c = snapshot dp [_, _];
    return a.read() * 100 + b.read() * 10 + c.read();
  }
}";

fn run_with(eager: bool, deep: bool) -> RunResult {
    let compiled = compile(SRC).unwrap();
    run(
        &compiled,
        Platform::system_a(),
        RuntimeConfig {
            eager_copy: eager,
            deep_copy: deep,
            battery_level: 0.9,
            seed: 4,
            ..RuntimeConfig::default()
        },
    )
}

#[test]
fn all_strategies_agree_on_results() {
    let expected = Value::Int(222); // high tag everywhere at 90% battery
    for eager in [false, true] {
        for deep in [false, true] {
            let r = run_with(eager, deep);
            assert_eq!(
                r.value.as_ref().unwrap(),
                &expected,
                "eager={eager} deep={deep}"
            );
        }
    }
}

#[test]
fn lazy_copies_less_than_eager() {
    let lazy = run_with(false, false);
    let eager = run_with(true, false);
    assert_eq!(lazy.stats.snapshots, 3);
    assert_eq!(eager.stats.snapshots, 3);
    assert_eq!(lazy.stats.copies, 2, "first snapshot tags in place");
    assert_eq!(eager.stats.copies, 3, "eager copies every time");
}

#[test]
fn deep_copy_costs_more_energy_than_shallow() {
    let shallow = run_with(true, false);
    let deep = run_with(true, true);
    assert!(
        deep.measurement.energy_j > shallow.measurement.energy_j,
        "deep {} vs shallow {}",
        deep.measurement.energy_j,
        shallow.measurement.energy_j
    );
}

#[test]
fn deep_copy_handles_cyclic_reachability_via_sharing() {
    // A diamond: two fields referencing the same object; deep copy must
    // preserve the sharing (and terminate).
    let src = "modes { low <= high; }
        class Leaf { }
        class Pair { Leaf a; Leaf b; }
        class Holder@mode<? <= H> {
          Pair pair;
          attributor { return low; }
        }
        class Main {
          unit main() {
            let shared = new Leaf();
            let dh = new Holder(new Pair(shared, shared));
            let Holder s1 = snapshot dh [_, _];
            let Holder s2 = snapshot dh [_, _];
            return {};
          }
        }";
    let compiled = compile(src).unwrap();
    let r = run(
        &compiled,
        Platform::system_a(),
        RuntimeConfig {
            deep_copy: true,
            ..RuntimeConfig::default()
        },
    );
    assert!(r.value.is_ok(), "{:?}", r.value);
}
