//! The transient enforcement strategy: shallow first-order checks, in the
//! spirit of *A Transient Semantics for Typed Racket* (PAPERS.md).
//!
//! Instead of trusting a deep guarantee established once at the boundary,
//! the transient tier re-checks a cheap first-order property at every use
//! site:
//!
//! * **Boundaries** still evaluate the attributor and the bounds check
//!   (those *are* first-order — one mode, two bounds) but commit by
//!   re-tagging the object in place. No lazy-copy discipline, no physical
//!   copies, ever: [`crate::RunStats::copies`] stays 0 under transient.
//! * **Call sites** perform the waterfall lattice comparison per send and
//!   count it as a transient check even when the receiver is untagged.
//! * **Field reads** check that the receiver is not an unsnapshotted
//!   dynamic view (the property the typechecker establishes statically,
//!   re-asserted dynamically; reads via `this` are exempt exactly as in
//!   the static rule, so well-typed programs never fail here).
//!
//! Failures blame the *check site*, not the boundary: the error names the
//! send or field read that observed the violation, and the profiler
//! charges the check's cost to the calling frame (see
//! [`Interp::invoke`]'s strategy-dependent hook ordering). Where both
//! strategies accept a program and the guarded run performs zero copies,
//! the two strategies are value- and energy-identical — the
//! `enforcement_differential` suite pins this on the lattice corners.

use ent_syntax::{Ident, Symbol};

use super::super::{Frame, Interp, RtTag};
use crate::error::{Flow, RtError};
use crate::events::{EnergyEvent, EventPayload};
use crate::lower::GMode;
use crate::value::{ObjRef, Value};

impl<'p> Interp<'p> {
    /// The per-send shallow check: the waterfall comparison, counted on
    /// every send (attributed, overridden, tagged, or untagged). An
    /// untagged dynamic receiver — reachable only via `this` — inherits
    /// the sender's mode, exactly as under guarded.
    pub(crate) fn transient_call_check(
        &mut self,
        class: u32,
        method: u32,
        receiver_mode: Option<GMode>,
        sender_mode: GMode,
    ) -> Result<GMode, Flow> {
        self.stats.transient_checks += 1;
        match receiver_mode {
            Some(rm) => {
                if !self.prog.le(rm, sender_mode) {
                    self.stats.energy_exceptions += 1;
                    self.stats.transient_failures += 1;
                    if self.config.record_events {
                        self.events.push(EnergyEvent {
                            at_s: self.sim.time_s(),
                            payload: EventPayload::DfallFailure {
                                class,
                                method,
                                receiver_mode: rm,
                                sender_mode,
                            },
                        });
                    }
                    if !self.config.silent {
                        let prog = self.prog;
                        return Err(RtError::EnergyException(format!(
                            "transient check failed at call site: `{}.{}` runs at mode `{}` but the caller is at `{}`",
                            prog.classes[class as usize].name,
                            prog.method_names.resolve(Symbol::from_raw(method)),
                            prog.mode_disp(rm),
                            prog.mode_disp(sender_mode)
                        ))
                        .into());
                    }
                }
                Ok(rm)
            }
            None => Ok(sender_mode),
        }
    }

    /// The per-field-read shallow check: reading through a dynamic,
    /// never-snapshotted view is a violation the typechecker forbids
    /// statically; transient re-asserts it at the site. Reads via `this`
    /// are exempt (the internal view), mirroring the static rule, so the
    /// check can only fail for unchecked programs. Pure — no simulator
    /// cost, no event — but counted.
    pub(crate) fn transient_field_check(
        &mut self,
        frame: &Frame,
        r: ObjRef,
        name: &Ident,
    ) -> Result<(), Flow> {
        self.stats.transient_checks += 1;
        if matches!(self.heap[r].mode, RtTag::Dynamic) && frame.this_ref != Some(r) {
            self.stats.energy_exceptions += 1;
            self.stats.transient_failures += 1;
            if !self.config.silent {
                let class = self.heap[r].class;
                return Err(RtError::EnergyException(format!(
                    "transient check failed at field read: `{}` read on a dynamic object of class `{}`; snapshot it first",
                    name,
                    self.prog.classes[class as usize].name
                ))
                .into());
            }
        }
        Ok(())
    }

    /// A failed bounds check blames the check site's provenance with a
    /// transient-tier error and counters (never
    /// [`crate::RunStats::snapshot_failures`], which belongs to guarded).
    pub(crate) fn transient_snapshot_failure(
        &mut self,
        class: u32,
        mode: GMode,
        lo: GMode,
        hi: GMode,
    ) -> Result<(), Flow> {
        let prog = self.prog;
        self.stats.energy_exceptions += 1;
        self.stats.transient_failures += 1;
        if !self.config.silent {
            return Err(RtError::EnergyException(format!(
                "transient check failed at boundary: snapshot of `{}` produced mode `{}` outside bounds [{}, {}]",
                prog.classes[class as usize].name,
                prog.mode_disp(mode),
                prog.mode_disp(lo),
                prog.mode_disp(hi)
            ))
            .into());
        }
        Ok(())
    }

    /// The transient commit: always re-tag the same object in place —
    /// first snapshot or fifteenth, there is never a physical copy, so
    /// every alias observes the new tag. (`snapshotted` is still recorded
    /// for heap introspection; nothing in the transient tier consults it.)
    pub(crate) fn transient_snapshot_commit(
        &mut self,
        obj: ObjRef,
        mode: GMode,
        has_internal: bool,
    ) -> Value {
        let data = &mut self.heap[obj];
        data.snapshotted = true;
        data.mode = RtTag::Ground(mode);
        if has_internal {
            data.mode_env[0] = mode;
        }
        Value::Obj(obj)
    }
}
