//! The guarded enforcement strategy: the paper's semantics, verbatim.
//!
//! Boundaries pay a deep snapshot — attributor dispatch, bounds check,
//! and the lazy-copy discipline (first snapshot tags in place, subsequent
//! snapshots physically copy; §5 "Implementation") — and every message
//! send re-checks the dynamic waterfall invariant `dfall`. Failures blame
//! the *boundary*: a bad snapshot names the snapshotted class, a bad send
//! names the receiver method. This file is a code motion of the
//! historically inlined logic; the byte-diff gates on the fig harnesses
//! pin that moving it changed nothing observable.

use std::collections::HashMap;

use ent_energy::WorkKind;
use ent_syntax::Symbol;

use super::super::{EvalResult, Interp, RtTag, COPY_OVERHEAD_OPS};
use crate::error::{Flow, RtError};
use crate::events::{EnergyEvent, EventPayload};
use crate::lower::GMode;
use crate::profile::AnyProfiler;
use crate::value::{ObjRef, Value};

impl<'p> Interp<'p> {
    /// dfall(o, m): the receiver mode must be ≤ the sender (closure)
    /// mode. Untagged dynamic receivers are only reachable via `this`,
    /// which keeps the sender's mode.
    pub(crate) fn guarded_call_check(
        &mut self,
        class: u32,
        method: u32,
        receiver_mode: Option<GMode>,
        sender_mode: GMode,
    ) -> Result<GMode, Flow> {
        let prog = self.prog;
        match receiver_mode {
            Some(rm) => {
                if !prog.le(rm, sender_mode) {
                    self.stats.energy_exceptions += 1;
                    self.stats.dfall_failures += 1;
                    if let Some(c) = self.profiler.as_mut().and_then(AnyProfiler::own) {
                        c.dfall_failures += 1;
                    }
                    if self.config.record_events {
                        self.events.push(EnergyEvent {
                            at_s: self.sim.time_s(),
                            payload: EventPayload::DfallFailure {
                                class,
                                method,
                                receiver_mode: rm,
                                sender_mode,
                            },
                        });
                    }
                    if !self.config.silent {
                        return Err(RtError::EnergyException(format!(
                            "dynamic waterfall violation: `{}.{}` runs at mode `{}` but the caller is at `{}`",
                            prog.classes[class as usize].name,
                            prog.method_names.resolve(Symbol::from_raw(method)),
                            prog.mode_disp(rm),
                            prog.mode_disp(sender_mode)
                        ))
                        .into());
                    }
                }
                Ok(rm)
            }
            None => Ok(sender_mode),
        }
    }

    /// A failed bounds check blames the boundary: the snapshotted class.
    pub(crate) fn guarded_snapshot_failure(
        &mut self,
        class: u32,
        mode: GMode,
        lo: GMode,
        hi: GMode,
    ) -> Result<(), Flow> {
        let prog = self.prog;
        self.stats.energy_exceptions += 1;
        self.stats.snapshot_failures += 1;
        if let Some(c) = self.profiler.as_mut().and_then(AnyProfiler::own) {
            c.snapshot_failures += 1;
        }
        if !self.config.silent {
            return Err(RtError::EnergyException(format!(
                "snapshot of `{}` produced mode `{}` outside bounds [{}, {}]",
                prog.classes[class as usize].name,
                prog.mode_disp(mode),
                prog.mode_disp(lo),
                prog.mode_disp(hi)
            ))
            .into());
        }
        Ok(())
    }

    /// The lazy-copy commit (paper §5): the first snapshot tags the object
    /// in place; subsequent snapshots (or the eager-copy ablation)
    /// physically copy — shallow by default, the whole reachable graph
    /// under the deep-copy ablation.
    pub(crate) fn guarded_snapshot_commit(
        &mut self,
        obj: ObjRef,
        mode: GMode,
        has_internal: bool,
    ) -> EvalResult {
        if !self.heap[obj].snapshotted && !self.config.eager_copy {
            // Lazy copy: tag in place on first snapshot.
            let data = &mut self.heap[obj];
            data.snapshotted = true;
            data.mode = RtTag::Ground(mode);
            if has_internal {
                data.mode_env[0] = mode;
            }
            Ok(Value::Obj(obj))
        } else {
            // Subsequent snapshots copy (shallow by default; the deep-copy
            // ablation clones the reachable object graph).
            self.stats.copies += 1;
            if self.config.tagging {
                self.advance_sim(|sim| sim.do_work(WorkKind::Cpu, COPY_OVERHEAD_OPS));
            }
            if let Some(c) = self.profiler.as_mut().and_then(AnyProfiler::own) {
                c.copies += 1;
            }
            self.heap[obj].snapshotted = true;
            let copy = if self.config.deep_copy {
                self.deep_copy_obj(obj, &mut HashMap::new())
            } else {
                let data = self.heap[obj].clone();
                let copy = self.heap.len();
                self.heap.push(data);
                copy
            };
            let data = &mut self.heap[copy];
            data.mode = RtTag::Ground(mode);
            if has_internal {
                data.mode_env[0] = mode;
            }
            data.snapshotted = true;
            Ok(Value::Obj(copy))
        }
    }

    /// The deep-copy ablation: clones the object graph reachable from
    /// `obj`, preserving sharing and cycles via the `seen` map. Each
    /// cloned object is charged the copy overhead.
    fn deep_copy_obj(&mut self, obj: ObjRef, seen: &mut HashMap<ObjRef, ObjRef>) -> ObjRef {
        if let Some(&copy) = seen.get(&obj) {
            return copy;
        }
        let copy = self.heap.len();
        seen.insert(obj, copy);
        let data = self.heap[obj].clone();
        self.heap.push(data);
        let field_count = self.heap[copy].fields.len();
        for i in 0..field_count {
            let field = self.heap[copy].fields[i].clone();
            if let Value::Obj(r) = field {
                if self.config.tagging {
                    self.advance_sim(|sim| sim.do_work(WorkKind::Cpu, COPY_OVERHEAD_OPS));
                }
                let cloned = self.deep_copy_obj(r, seen);
                self.heap[copy].fields[i] = Value::Obj(cloned);
            }
        }
        copy
    }
}
