//! The enforcement seam: *how* the runtime discharges the typechecker's
//! obligations (`ent_core::Obligation`) at boundaries, call sites, and
//! field reads.
//!
//! Declared as a child module of the interpreter (exactly like the
//! bytecode VM) so both strategies operate on the same private machinery —
//! heap, stats, events, profiler — and both engines funnel every check
//! through the single implementation here. The strategy is selected per
//! run by [`crate::RuntimeConfig::enforcement`]:
//!
//! * **guarded** — the paper's semantics: deep snapshot checks at
//!   boundaries (attributor + bounds + lazy copy) and the dynamic
//!   waterfall at sends. The default; byte-identical to the historical
//!   hard-coded behavior, which the fig-harness byte-diff gates pin.
//! * **transient** — shallow first-order checks in the spirit of *A
//!   Transient Semantics for Typed Racket*: boundaries re-tag the object
//!   in place (never copy), every send and field read performs a cheap
//!   tag/lattice check, and failures blame the *check site* rather than
//!   the boundary. Counted in [`crate::RunStats::transient_checks`] /
//!   [`crate::RunStats::transient_failures`].
//!
//! The dispatch methods in this file are the only places the interpreter
//! and VM consult the strategy; the strategy-specific behavior lives in
//! [`guarded`] and [`transient`]. The shared check-site helpers
//! ([`Interp::read_field`], [`Interp::resolve_new`],
//! [`Interp::check_cast`], [`Interp::apply_unop`]) also live here so the
//! two engines share one copy of each site's semantics instead of the
//! historical per-engine duplicates.

mod guarded;
mod transient;

use ent_syntax::{Ident, UnOp};

use super::{EvalResult, Frame, Interp, RtTag};
use crate::error::{Flow, RtError};
use crate::lower::{CastCheck, GMode, LMethod, NewPlan};
use crate::value::{ObjRef, Value};

/// Which enforcement strategy discharges mode obligations at run time.
///
/// Selected per run via [`crate::RuntimeConfig::enforcement`], the CLI
/// `--enforce` flag, or the `ENT_ENFORCE` environment variable (workloads
/// and harness layers only — like `ENT_ENGINE`, the env var never leaks
/// into [`crate::RuntimeConfig::default`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Enforcement {
    /// Deep guarded boundaries: snapshot attributor + bounds check + lazy
    /// copy, and the dynamic waterfall (`dfall`) at every send. The
    /// paper's semantics and the default.
    #[default]
    Guarded,
    /// Shallow first-order checks at boundaries, call sites, and field
    /// reads; no copies, check-site blame on failure.
    Transient,
}

impl Enforcement {
    /// Parses a CLI-facing strategy name (`guarded` | `transient`).
    pub fn parse(s: &str) -> Option<Enforcement> {
        match s {
            "guarded" => Some(Enforcement::Guarded),
            "transient" => Some(Enforcement::Transient),
            _ => None,
        }
    }

    /// The CLI-facing name of this strategy.
    pub fn name(self) -> &'static str {
        match self {
            Enforcement::Guarded => "guarded",
            Enforcement::Transient => "transient",
        }
    }

    /// The process-default strategy: `ENT_ENFORCE` (`guarded` |
    /// `transient`), or `Guarded` when unset or unparseable.
    pub fn from_env() -> Enforcement {
        std::env::var("ENT_ENFORCE")
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or_default()
    }
}

impl<'p> Interp<'p> {
    /// Call-site enforcement: validates the receiver-side mode against the
    /// sender's closure mode and returns the mode the callee's frame runs
    /// at. `receiver_mode` is `None` for an untagged dynamic receiver
    /// (only reachable via `this`), which inherits the sender's mode under
    /// both strategies.
    pub(super) fn enforce_call(
        &mut self,
        class: u32,
        method: u32,
        receiver_mode: Option<GMode>,
        sender_mode: GMode,
    ) -> Result<GMode, Flow> {
        match self.config.enforcement {
            Enforcement::Guarded => {
                self.guarded_call_check(class, method, receiver_mode, sender_mode)
            }
            Enforcement::Transient => {
                self.transient_call_check(class, method, receiver_mode, sender_mode)
            }
        }
    }

    /// Boundary failure: the produced mode fell outside the declared
    /// bounds. Accounts the failure per strategy and raises the catchable
    /// [`RtError::EnergyException`] unless running silent.
    pub(super) fn enforce_snapshot_failure(
        &mut self,
        class: u32,
        mode: GMode,
        lo: GMode,
        hi: GMode,
    ) -> Result<(), Flow> {
        match self.config.enforcement {
            Enforcement::Guarded => self.guarded_snapshot_failure(class, mode, lo, hi),
            Enforcement::Transient => self.transient_snapshot_failure(class, mode, lo, hi),
        }
    }

    /// Boundary commit: a passed (or silent-failed) check materializes the
    /// statically-moded view — by the lazy-copy discipline under guarded,
    /// by re-tagging in place under transient.
    pub(super) fn enforce_snapshot_commit(
        &mut self,
        obj: ObjRef,
        mode: GMode,
        has_internal: bool,
    ) -> EvalResult {
        match self.config.enforcement {
            Enforcement::Guarded => self.guarded_snapshot_commit(obj, mode, has_internal),
            Enforcement::Transient => Ok(self.transient_snapshot_commit(obj, mode, has_internal)),
        }
    }

    // ---- shared check sites (one copy for both engines) -------------------

    /// Reads `field` of the object `r` — the single field-read site both
    /// engines use. Under the transient strategy the read is itself a
    /// check site (a dynamic, never-snapshotted view must not be read
    /// through, mirroring the typechecker's static rule); guarded relies
    /// on that static rule and performs no runtime check.
    pub(super) fn read_field(
        &mut self,
        frame: &Frame,
        r: ObjRef,
        field: u32,
        name: &Ident,
    ) -> Result<Value, Flow> {
        // The tag check precedes the member lookup, in the same order the
        // typechecker rejects (MessagedDynamic before UnknownMember).
        if matches!(self.config.enforcement, Enforcement::Transient) {
            self.transient_field_check(frame, r, name)?;
        }
        let prog = self.prog;
        let data = &self.heap[r];
        let layout = &prog.classes[data.class as usize];
        // Field ids interned after this layout was built are names no
        // class declares: out-of-range reads report them absent.
        match layout.field_slot.get(field as usize) {
            Some(&s) if s != u32::MAX => Ok(data.fields[s as usize].clone()),
            _ => Err(
                RtError::Native(format!("class `{}` has no field `{name}`", layout.name)).into(),
            ),
        }
    }

    /// Resolves a `new` site's lowered plan to the allocation's mode tag
    /// and mode environment — shared by `LExpr::New` and `Op::NewObj`.
    pub(super) fn resolve_new(
        &self,
        frame: &Frame,
        class: u32,
        plan: &NewPlan,
    ) -> Result<(RtTag, Vec<GMode>), Flow> {
        use crate::lower::DefaultNew;
        let layout = &self.prog.classes[class as usize];
        let n = layout.n_mode_params as usize;
        Ok(match plan {
            NewPlan::Dynamic { rest } => {
                let mut env = vec![GMode::Missing; n];
                for (i, m) in rest.iter().enumerate() {
                    env[1 + i] = self.resolve_mode(frame, m)?;
                }
                (RtTag::Dynamic, env)
            }
            NewPlan::Static { flat } => {
                let mut resolved = Vec::with_capacity(flat.len());
                for m in flat {
                    resolved.push(self.resolve_mode(frame, m)?);
                }
                let mode = resolved.first().copied().unwrap_or(GMode::Bot);
                let mut env = vec![GMode::Missing; n];
                for (i, g) in resolved.into_iter().take(n).enumerate() {
                    env[i] = g;
                }
                (RtTag::Ground(mode), env)
            }
            NewPlan::Default => match &layout.default_new {
                DefaultNew::Dynamic => (RtTag::Dynamic, vec![GMode::Missing; n]),
                DefaultNew::Fixed { env } => {
                    let mode = env.first().copied().unwrap_or(GMode::Bot);
                    (RtTag::Ground(mode), env.to_vec())
                }
            },
        })
    }

    /// Validates an object downcast — shared by `LExpr::Cast` and
    /// `Op::CastV`. Non-object values and upcasts pass unchecked.
    pub(super) fn check_cast(&self, v: &Value, check: &Option<CastCheck>) -> Result<(), Flow> {
        let (Value::Obj(r), Some(check)) = (v, check) else {
            return Ok(());
        };
        let prog = self.prog;
        let actual = self.heap[*r].class;
        let actual_name = &prog.classes[actual as usize].name;
        match check {
            CastCheck::Class(cid) => {
                if !prog.is_subclass_id(actual, *cid) {
                    return Err(RtError::BadCast(format!(
                        "object of class `{actual_name}` is not a `{}`",
                        prog.classes[*cid as usize].name
                    ))
                    .into());
                }
                Ok(())
            }
            CastCheck::Unknown(class) => Err(RtError::BadCast(format!(
                "object of class `{actual_name}` is not a `{class}`"
            ))
            .into()),
        }
    }

    /// Applies a unary operator to a forced operand — shared by
    /// `LExpr::Unary` and `Op::Un`.
    pub(super) fn apply_unop(op: UnOp, v: Value) -> EvalResult {
        match (op, v) {
            (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
            (UnOp::Neg, Value::Int(n)) => Ok(Value::Int(n.wrapping_neg())),
            (UnOp::Neg, Value::Double(x)) => Ok(Value::Double(-x)),
            (op, v) => {
                Err(RtError::Native(format!("cannot apply `{op}` to a {}", v.kind())).into())
            }
        }
    }

    /// Runs a resolved method body in its prepared frame and recycles the
    /// register file — the half of a send that executes *after* the
    /// enforcement prologue ([`Interp::invoke_prologue`]).
    pub(super) fn invoke_body(&mut self, m: &'p LMethod, mut frame: Frame) -> EvalResult {
        let out = match self.run_body(&mut frame, &m.body, &m.body_code, m.n_params) {
            Ok(v) => Ok(v),
            Err(Flow::Return(v)) => Ok(v),
            Err(e) => Err(e),
        };
        self.recycle_locals(frame.locals);
        self.recycle_env(frame.env);
        out
    }
}
